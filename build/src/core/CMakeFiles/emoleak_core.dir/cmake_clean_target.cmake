file(REMOVE_RECURSE
  "libemoleak_core.a"
)
