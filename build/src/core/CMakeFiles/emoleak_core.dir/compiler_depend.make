# Empty compiler generated dependencies file for emoleak_core.
# This may be replaced when dependencies are built.
