file(REMOVE_RECURSE
  "CMakeFiles/emoleak_core.dir/attack.cpp.o"
  "CMakeFiles/emoleak_core.dir/attack.cpp.o.d"
  "CMakeFiles/emoleak_core.dir/pipeline.cpp.o"
  "CMakeFiles/emoleak_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/emoleak_core.dir/report.cpp.o"
  "CMakeFiles/emoleak_core.dir/report.cpp.o.d"
  "CMakeFiles/emoleak_core.dir/speech_region.cpp.o"
  "CMakeFiles/emoleak_core.dir/speech_region.cpp.o.d"
  "CMakeFiles/emoleak_core.dir/streaming.cpp.o"
  "CMakeFiles/emoleak_core.dir/streaming.cpp.o.d"
  "libemoleak_core.a"
  "libemoleak_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emoleak_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
