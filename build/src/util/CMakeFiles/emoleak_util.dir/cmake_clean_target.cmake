file(REMOVE_RECURSE
  "libemoleak_util.a"
)
