# Empty compiler generated dependencies file for emoleak_util.
# This may be replaced when dependencies are built.
