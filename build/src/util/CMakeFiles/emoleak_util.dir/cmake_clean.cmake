file(REMOVE_RECURSE
  "CMakeFiles/emoleak_util.dir/csv.cpp.o"
  "CMakeFiles/emoleak_util.dir/csv.cpp.o.d"
  "CMakeFiles/emoleak_util.dir/table.cpp.o"
  "CMakeFiles/emoleak_util.dir/table.cpp.o.d"
  "libemoleak_util.a"
  "libemoleak_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emoleak_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
