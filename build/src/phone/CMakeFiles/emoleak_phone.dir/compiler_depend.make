# Empty compiler generated dependencies file for emoleak_phone.
# This may be replaced when dependencies are built.
