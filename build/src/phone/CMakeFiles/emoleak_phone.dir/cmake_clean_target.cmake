file(REMOVE_RECURSE
  "libemoleak_phone.a"
)
