file(REMOVE_RECURSE
  "CMakeFiles/emoleak_phone.dir/channel.cpp.o"
  "CMakeFiles/emoleak_phone.dir/channel.cpp.o.d"
  "CMakeFiles/emoleak_phone.dir/profile.cpp.o"
  "CMakeFiles/emoleak_phone.dir/profile.cpp.o.d"
  "CMakeFiles/emoleak_phone.dir/recorder.cpp.o"
  "CMakeFiles/emoleak_phone.dir/recorder.cpp.o.d"
  "libemoleak_phone.a"
  "libemoleak_phone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emoleak_phone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
