
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phone/channel.cpp" "src/phone/CMakeFiles/emoleak_phone.dir/channel.cpp.o" "gcc" "src/phone/CMakeFiles/emoleak_phone.dir/channel.cpp.o.d"
  "/root/repo/src/phone/profile.cpp" "src/phone/CMakeFiles/emoleak_phone.dir/profile.cpp.o" "gcc" "src/phone/CMakeFiles/emoleak_phone.dir/profile.cpp.o.d"
  "/root/repo/src/phone/recorder.cpp" "src/phone/CMakeFiles/emoleak_phone.dir/recorder.cpp.o" "gcc" "src/phone/CMakeFiles/emoleak_phone.dir/recorder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/emoleak_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/emoleak_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/audio/CMakeFiles/emoleak_audio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
