file(REMOVE_RECURSE
  "CMakeFiles/emoleak_features.dir/features.cpp.o"
  "CMakeFiles/emoleak_features.dir/features.cpp.o.d"
  "CMakeFiles/emoleak_features.dir/info_gain.cpp.o"
  "CMakeFiles/emoleak_features.dir/info_gain.cpp.o.d"
  "CMakeFiles/emoleak_features.dir/selection.cpp.o"
  "CMakeFiles/emoleak_features.dir/selection.cpp.o.d"
  "libemoleak_features.a"
  "libemoleak_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emoleak_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
