# Empty compiler generated dependencies file for emoleak_features.
# This may be replaced when dependencies are built.
