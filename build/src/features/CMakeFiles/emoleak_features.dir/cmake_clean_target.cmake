file(REMOVE_RECURSE
  "libemoleak_features.a"
)
