
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/features.cpp" "src/features/CMakeFiles/emoleak_features.dir/features.cpp.o" "gcc" "src/features/CMakeFiles/emoleak_features.dir/features.cpp.o.d"
  "/root/repo/src/features/info_gain.cpp" "src/features/CMakeFiles/emoleak_features.dir/info_gain.cpp.o" "gcc" "src/features/CMakeFiles/emoleak_features.dir/info_gain.cpp.o.d"
  "/root/repo/src/features/selection.cpp" "src/features/CMakeFiles/emoleak_features.dir/selection.cpp.o" "gcc" "src/features/CMakeFiles/emoleak_features.dir/selection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/emoleak_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/emoleak_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
