
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/audio/corpus.cpp" "src/audio/CMakeFiles/emoleak_audio.dir/corpus.cpp.o" "gcc" "src/audio/CMakeFiles/emoleak_audio.dir/corpus.cpp.o.d"
  "/root/repo/src/audio/emotion.cpp" "src/audio/CMakeFiles/emoleak_audio.dir/emotion.cpp.o" "gcc" "src/audio/CMakeFiles/emoleak_audio.dir/emotion.cpp.o.d"
  "/root/repo/src/audio/playlist.cpp" "src/audio/CMakeFiles/emoleak_audio.dir/playlist.cpp.o" "gcc" "src/audio/CMakeFiles/emoleak_audio.dir/playlist.cpp.o.d"
  "/root/repo/src/audio/prosody.cpp" "src/audio/CMakeFiles/emoleak_audio.dir/prosody.cpp.o" "gcc" "src/audio/CMakeFiles/emoleak_audio.dir/prosody.cpp.o.d"
  "/root/repo/src/audio/utterance.cpp" "src/audio/CMakeFiles/emoleak_audio.dir/utterance.cpp.o" "gcc" "src/audio/CMakeFiles/emoleak_audio.dir/utterance.cpp.o.d"
  "/root/repo/src/audio/voice.cpp" "src/audio/CMakeFiles/emoleak_audio.dir/voice.cpp.o" "gcc" "src/audio/CMakeFiles/emoleak_audio.dir/voice.cpp.o.d"
  "/root/repo/src/audio/wav.cpp" "src/audio/CMakeFiles/emoleak_audio.dir/wav.cpp.o" "gcc" "src/audio/CMakeFiles/emoleak_audio.dir/wav.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/emoleak_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/emoleak_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
