# Empty compiler generated dependencies file for emoleak_audio.
# This may be replaced when dependencies are built.
