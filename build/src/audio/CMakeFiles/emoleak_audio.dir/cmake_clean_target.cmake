file(REMOVE_RECURSE
  "libemoleak_audio.a"
)
