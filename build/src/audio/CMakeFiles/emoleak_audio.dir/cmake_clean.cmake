file(REMOVE_RECURSE
  "CMakeFiles/emoleak_audio.dir/corpus.cpp.o"
  "CMakeFiles/emoleak_audio.dir/corpus.cpp.o.d"
  "CMakeFiles/emoleak_audio.dir/emotion.cpp.o"
  "CMakeFiles/emoleak_audio.dir/emotion.cpp.o.d"
  "CMakeFiles/emoleak_audio.dir/playlist.cpp.o"
  "CMakeFiles/emoleak_audio.dir/playlist.cpp.o.d"
  "CMakeFiles/emoleak_audio.dir/prosody.cpp.o"
  "CMakeFiles/emoleak_audio.dir/prosody.cpp.o.d"
  "CMakeFiles/emoleak_audio.dir/utterance.cpp.o"
  "CMakeFiles/emoleak_audio.dir/utterance.cpp.o.d"
  "CMakeFiles/emoleak_audio.dir/voice.cpp.o"
  "CMakeFiles/emoleak_audio.dir/voice.cpp.o.d"
  "CMakeFiles/emoleak_audio.dir/wav.cpp.o"
  "CMakeFiles/emoleak_audio.dir/wav.cpp.o.d"
  "libemoleak_audio.a"
  "libemoleak_audio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emoleak_audio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
