# Empty compiler generated dependencies file for emoleak_nn.
# This may be replaced when dependencies are built.
