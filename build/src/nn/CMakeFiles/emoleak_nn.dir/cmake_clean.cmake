file(REMOVE_RECURSE
  "CMakeFiles/emoleak_nn.dir/cnn_models.cpp.o"
  "CMakeFiles/emoleak_nn.dir/cnn_models.cpp.o.d"
  "CMakeFiles/emoleak_nn.dir/layers.cpp.o"
  "CMakeFiles/emoleak_nn.dir/layers.cpp.o.d"
  "CMakeFiles/emoleak_nn.dir/model.cpp.o"
  "CMakeFiles/emoleak_nn.dir/model.cpp.o.d"
  "CMakeFiles/emoleak_nn.dir/tensor.cpp.o"
  "CMakeFiles/emoleak_nn.dir/tensor.cpp.o.d"
  "libemoleak_nn.a"
  "libemoleak_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emoleak_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
