file(REMOVE_RECURSE
  "libemoleak_nn.a"
)
