file(REMOVE_RECURSE
  "CMakeFiles/emoleak_dsp.dir/envelope.cpp.o"
  "CMakeFiles/emoleak_dsp.dir/envelope.cpp.o.d"
  "CMakeFiles/emoleak_dsp.dir/fft.cpp.o"
  "CMakeFiles/emoleak_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/emoleak_dsp.dir/filter.cpp.o"
  "CMakeFiles/emoleak_dsp.dir/filter.cpp.o.d"
  "CMakeFiles/emoleak_dsp.dir/pitch.cpp.o"
  "CMakeFiles/emoleak_dsp.dir/pitch.cpp.o.d"
  "CMakeFiles/emoleak_dsp.dir/resample.cpp.o"
  "CMakeFiles/emoleak_dsp.dir/resample.cpp.o.d"
  "CMakeFiles/emoleak_dsp.dir/stats.cpp.o"
  "CMakeFiles/emoleak_dsp.dir/stats.cpp.o.d"
  "CMakeFiles/emoleak_dsp.dir/stft.cpp.o"
  "CMakeFiles/emoleak_dsp.dir/stft.cpp.o.d"
  "CMakeFiles/emoleak_dsp.dir/window.cpp.o"
  "CMakeFiles/emoleak_dsp.dir/window.cpp.o.d"
  "libemoleak_dsp.a"
  "libemoleak_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emoleak_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
