# Empty compiler generated dependencies file for emoleak_dsp.
# This may be replaced when dependencies are built.
