file(REMOVE_RECURSE
  "libemoleak_dsp.a"
)
