# Empty compiler generated dependencies file for emoleak_ml.
# This may be replaced when dependencies are built.
