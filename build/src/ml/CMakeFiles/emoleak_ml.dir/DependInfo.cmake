
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/emoleak_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/emoleak_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/ensemble.cpp" "src/ml/CMakeFiles/emoleak_ml.dir/ensemble.cpp.o" "gcc" "src/ml/CMakeFiles/emoleak_ml.dir/ensemble.cpp.o.d"
  "/root/repo/src/ml/eval.cpp" "src/ml/CMakeFiles/emoleak_ml.dir/eval.cpp.o" "gcc" "src/ml/CMakeFiles/emoleak_ml.dir/eval.cpp.o.d"
  "/root/repo/src/ml/lmt.cpp" "src/ml/CMakeFiles/emoleak_ml.dir/lmt.cpp.o" "gcc" "src/ml/CMakeFiles/emoleak_ml.dir/lmt.cpp.o.d"
  "/root/repo/src/ml/logistic.cpp" "src/ml/CMakeFiles/emoleak_ml.dir/logistic.cpp.o" "gcc" "src/ml/CMakeFiles/emoleak_ml.dir/logistic.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/emoleak_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/emoleak_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/multiclass.cpp" "src/ml/CMakeFiles/emoleak_ml.dir/multiclass.cpp.o" "gcc" "src/ml/CMakeFiles/emoleak_ml.dir/multiclass.cpp.o.d"
  "/root/repo/src/ml/serialize.cpp" "src/ml/CMakeFiles/emoleak_ml.dir/serialize.cpp.o" "gcc" "src/ml/CMakeFiles/emoleak_ml.dir/serialize.cpp.o.d"
  "/root/repo/src/ml/tree.cpp" "src/ml/CMakeFiles/emoleak_ml.dir/tree.cpp.o" "gcc" "src/ml/CMakeFiles/emoleak_ml.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/emoleak_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
