file(REMOVE_RECURSE
  "libemoleak_ml.a"
)
