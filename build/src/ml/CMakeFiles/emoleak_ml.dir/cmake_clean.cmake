file(REMOVE_RECURSE
  "CMakeFiles/emoleak_ml.dir/dataset.cpp.o"
  "CMakeFiles/emoleak_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/emoleak_ml.dir/ensemble.cpp.o"
  "CMakeFiles/emoleak_ml.dir/ensemble.cpp.o.d"
  "CMakeFiles/emoleak_ml.dir/eval.cpp.o"
  "CMakeFiles/emoleak_ml.dir/eval.cpp.o.d"
  "CMakeFiles/emoleak_ml.dir/lmt.cpp.o"
  "CMakeFiles/emoleak_ml.dir/lmt.cpp.o.d"
  "CMakeFiles/emoleak_ml.dir/logistic.cpp.o"
  "CMakeFiles/emoleak_ml.dir/logistic.cpp.o.d"
  "CMakeFiles/emoleak_ml.dir/metrics.cpp.o"
  "CMakeFiles/emoleak_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/emoleak_ml.dir/multiclass.cpp.o"
  "CMakeFiles/emoleak_ml.dir/multiclass.cpp.o.d"
  "CMakeFiles/emoleak_ml.dir/serialize.cpp.o"
  "CMakeFiles/emoleak_ml.dir/serialize.cpp.o.d"
  "CMakeFiles/emoleak_ml.dir/tree.cpp.o"
  "CMakeFiles/emoleak_ml.dir/tree.cpp.o.d"
  "libemoleak_ml.a"
  "libemoleak_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emoleak_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
