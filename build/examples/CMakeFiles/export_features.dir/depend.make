# Empty dependencies file for export_features.
# This may be replaced when dependencies are built.
