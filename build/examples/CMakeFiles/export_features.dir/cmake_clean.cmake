file(REMOVE_RECURSE
  "CMakeFiles/export_features.dir/export_features.cpp.o"
  "CMakeFiles/export_features.dir/export_features.cpp.o.d"
  "export_features"
  "export_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
