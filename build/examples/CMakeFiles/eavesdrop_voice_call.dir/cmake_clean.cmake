file(REMOVE_RECURSE
  "CMakeFiles/eavesdrop_voice_call.dir/eavesdrop_voice_call.cpp.o"
  "CMakeFiles/eavesdrop_voice_call.dir/eavesdrop_voice_call.cpp.o.d"
  "eavesdrop_voice_call"
  "eavesdrop_voice_call.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eavesdrop_voice_call.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
