# Empty compiler generated dependencies file for eavesdrop_voice_call.
# This may be replaced when dependencies are built.
