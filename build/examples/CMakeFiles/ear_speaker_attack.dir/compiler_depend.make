# Empty compiler generated dependencies file for ear_speaker_attack.
# This may be replaced when dependencies are built.
