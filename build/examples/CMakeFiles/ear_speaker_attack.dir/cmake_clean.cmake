file(REMOVE_RECURSE
  "CMakeFiles/ear_speaker_attack.dir/ear_speaker_attack.cpp.o"
  "CMakeFiles/ear_speaker_attack.dir/ear_speaker_attack.cpp.o.d"
  "ear_speaker_attack"
  "ear_speaker_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ear_speaker_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
