file(REMOVE_RECURSE
  "CMakeFiles/emoleak_cli.dir/emoleak_cli.cpp.o"
  "CMakeFiles/emoleak_cli.dir/emoleak_cli.cpp.o.d"
  "emoleak_cli"
  "emoleak_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emoleak_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
