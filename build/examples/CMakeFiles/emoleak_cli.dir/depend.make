# Empty dependencies file for emoleak_cli.
# This may be replaced when dependencies are built.
