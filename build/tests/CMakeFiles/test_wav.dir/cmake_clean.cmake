file(REMOVE_RECURSE
  "CMakeFiles/test_wav.dir/test_wav.cpp.o"
  "CMakeFiles/test_wav.dir/test_wav.cpp.o.d"
  "test_wav"
  "test_wav.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wav.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
