# Empty compiler generated dependencies file for test_wav.
# This may be replaced when dependencies are built.
