file(REMOVE_RECURSE
  "CMakeFiles/test_info_gain.dir/test_info_gain.cpp.o"
  "CMakeFiles/test_info_gain.dir/test_info_gain.cpp.o.d"
  "test_info_gain"
  "test_info_gain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_info_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
