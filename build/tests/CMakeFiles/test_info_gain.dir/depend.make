# Empty dependencies file for test_info_gain.
# This may be replaced when dependencies are built.
