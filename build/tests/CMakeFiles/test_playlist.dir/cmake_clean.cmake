file(REMOVE_RECURSE
  "CMakeFiles/test_playlist.dir/test_playlist.cpp.o"
  "CMakeFiles/test_playlist.dir/test_playlist.cpp.o.d"
  "test_playlist"
  "test_playlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_playlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
