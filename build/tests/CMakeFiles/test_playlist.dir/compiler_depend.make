# Empty compiler generated dependencies file for test_playlist.
# This may be replaced when dependencies are built.
