# Empty dependencies file for test_stft.
# This may be replaced when dependencies are built.
