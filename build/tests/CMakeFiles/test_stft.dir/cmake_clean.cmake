file(REMOVE_RECURSE
  "CMakeFiles/test_stft.dir/test_stft.cpp.o"
  "CMakeFiles/test_stft.dir/test_stft.cpp.o.d"
  "test_stft"
  "test_stft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
