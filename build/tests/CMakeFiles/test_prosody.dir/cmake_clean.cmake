file(REMOVE_RECURSE
  "CMakeFiles/test_prosody.dir/test_prosody.cpp.o"
  "CMakeFiles/test_prosody.dir/test_prosody.cpp.o.d"
  "test_prosody"
  "test_prosody.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prosody.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
