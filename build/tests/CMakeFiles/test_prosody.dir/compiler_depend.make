# Empty compiler generated dependencies file for test_prosody.
# This may be replaced when dependencies are built.
