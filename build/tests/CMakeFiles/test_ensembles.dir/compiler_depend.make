# Empty compiler generated dependencies file for test_ensembles.
# This may be replaced when dependencies are built.
