file(REMOVE_RECURSE
  "CMakeFiles/test_ensembles.dir/test_ensembles.cpp.o"
  "CMakeFiles/test_ensembles.dir/test_ensembles.cpp.o.d"
  "test_ensembles"
  "test_ensembles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ensembles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
