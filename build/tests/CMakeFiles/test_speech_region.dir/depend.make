# Empty dependencies file for test_speech_region.
# This may be replaced when dependencies are built.
