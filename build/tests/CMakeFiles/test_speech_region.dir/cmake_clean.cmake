file(REMOVE_RECURSE
  "CMakeFiles/test_speech_region.dir/test_speech_region.cpp.o"
  "CMakeFiles/test_speech_region.dir/test_speech_region.cpp.o.d"
  "test_speech_region"
  "test_speech_region.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_speech_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
