file(REMOVE_RECURSE
  "CMakeFiles/test_phone.dir/test_phone.cpp.o"
  "CMakeFiles/test_phone.dir/test_phone.cpp.o.d"
  "test_phone"
  "test_phone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
