file(REMOVE_RECURSE
  "CMakeFiles/test_pitch.dir/test_pitch.cpp.o"
  "CMakeFiles/test_pitch.dir/test_pitch.cpp.o.d"
  "test_pitch"
  "test_pitch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pitch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
