# Empty dependencies file for test_pitch.
# This may be replaced when dependencies are built.
