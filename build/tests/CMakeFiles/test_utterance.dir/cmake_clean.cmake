file(REMOVE_RECURSE
  "CMakeFiles/test_utterance.dir/test_utterance.cpp.o"
  "CMakeFiles/test_utterance.dir/test_utterance.cpp.o.d"
  "test_utterance"
  "test_utterance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_utterance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
