# Empty dependencies file for test_utterance.
# This may be replaced when dependencies are built.
