# Empty dependencies file for bench_ext_pitch.
# This may be replaced when dependencies are built.
