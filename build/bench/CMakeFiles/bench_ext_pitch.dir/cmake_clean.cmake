file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_pitch.dir/bench_ext_pitch.cpp.o"
  "CMakeFiles/bench_ext_pitch.dir/bench_ext_pitch.cpp.o.d"
  "bench_ext_pitch"
  "bench_ext_pitch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_pitch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
