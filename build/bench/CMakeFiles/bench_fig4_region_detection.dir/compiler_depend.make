# Empty compiler generated dependencies file for bench_fig4_region_detection.
# This may be replaced when dependencies are built.
