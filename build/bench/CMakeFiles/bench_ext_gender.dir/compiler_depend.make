# Empty compiler generated dependencies file for bench_ext_gender.
# This may be replaced when dependencies are built.
