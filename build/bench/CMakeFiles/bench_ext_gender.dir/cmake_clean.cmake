file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_gender.dir/bench_ext_gender.cpp.o"
  "CMakeFiles/bench_ext_gender.dir/bench_ext_gender.cpp.o.d"
  "bench_ext_gender"
  "bench_ext_gender.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_gender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
