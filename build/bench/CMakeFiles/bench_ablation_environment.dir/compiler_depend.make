# Empty compiler generated dependencies file for bench_ablation_environment.
# This may be replaced when dependencies are built.
