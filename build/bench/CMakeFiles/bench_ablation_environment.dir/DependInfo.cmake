
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_environment.cpp" "bench/CMakeFiles/bench_ablation_environment.dir/bench_ablation_environment.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_environment.dir/bench_ablation_environment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/emoleak_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/emoleak_core.dir/DependInfo.cmake"
  "/root/repo/build/src/phone/CMakeFiles/emoleak_phone.dir/DependInfo.cmake"
  "/root/repo/build/src/audio/CMakeFiles/emoleak_audio.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/emoleak_features.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/emoleak_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/emoleak_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/emoleak_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/emoleak_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
