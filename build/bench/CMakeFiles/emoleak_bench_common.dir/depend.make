# Empty dependencies file for emoleak_bench_common.
# This may be replaced when dependencies are built.
