file(REMOVE_RECURSE
  "libemoleak_bench_common.a"
)
