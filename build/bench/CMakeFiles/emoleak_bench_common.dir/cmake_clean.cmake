file(REMOVE_RECURSE
  "CMakeFiles/emoleak_bench_common.dir/common.cpp.o"
  "CMakeFiles/emoleak_bench_common.dir/common.cpp.o.d"
  "libemoleak_bench_common.a"
  "libemoleak_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emoleak_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
