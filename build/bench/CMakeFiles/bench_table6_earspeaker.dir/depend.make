# Empty dependencies file for bench_table6_earspeaker.
# This may be replaced when dependencies are built.
