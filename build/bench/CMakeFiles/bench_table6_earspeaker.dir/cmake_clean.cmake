file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_earspeaker.dir/bench_table6_earspeaker.cpp.o"
  "CMakeFiles/bench_table6_earspeaker.dir/bench_table6_earspeaker.cpp.o.d"
  "bench_table6_earspeaker"
  "bench_table6_earspeaker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_earspeaker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
