# Empty dependencies file for bench_table4_cremad.
# This may be replaced when dependencies are built.
