file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_cremad.dir/bench_table4_cremad.cpp.o"
  "CMakeFiles/bench_table4_cremad.dir/bench_table4_cremad.cpp.o.d"
  "bench_table4_cremad"
  "bench_table4_cremad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_cremad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
