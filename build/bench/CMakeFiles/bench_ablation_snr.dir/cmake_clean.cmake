file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_snr.dir/bench_ablation_snr.cpp.o"
  "CMakeFiles/bench_ablation_snr.dir/bench_ablation_snr.cpp.o.d"
  "bench_ablation_snr"
  "bench_ablation_snr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_snr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
