# Empty dependencies file for bench_fig2_spectrograms.
# This may be replaced when dependencies are built.
