file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_spectrograms.dir/bench_fig2_spectrograms.cpp.o"
  "CMakeFiles/bench_fig2_spectrograms.dir/bench_fig2_spectrograms.cpp.o.d"
  "bench_fig2_spectrograms"
  "bench_fig2_spectrograms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_spectrograms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
