# Empty dependencies file for bench_table7_summary.
# This may be replaced when dependencies are built.
