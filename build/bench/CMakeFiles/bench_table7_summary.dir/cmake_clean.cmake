file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_summary.dir/bench_table7_summary.cpp.o"
  "CMakeFiles/bench_table7_summary.dir/bench_table7_summary.cpp.o.d"
  "bench_table7_summary"
  "bench_table7_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
