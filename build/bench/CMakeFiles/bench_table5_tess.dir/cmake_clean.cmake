file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_tess.dir/bench_table5_tess.cpp.o"
  "CMakeFiles/bench_table5_tess.dir/bench_table5_tess.cpp.o.d"
  "bench_table5_tess"
  "bench_table5_tess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_tess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
