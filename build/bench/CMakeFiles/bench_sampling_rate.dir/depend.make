# Empty dependencies file for bench_sampling_rate.
# This may be replaced when dependencies are built.
