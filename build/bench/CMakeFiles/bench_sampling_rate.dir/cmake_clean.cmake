file(REMOVE_RECURSE
  "CMakeFiles/bench_sampling_rate.dir/bench_sampling_rate.cpp.o"
  "CMakeFiles/bench_sampling_rate.dir/bench_sampling_rate.cpp.o.d"
  "bench_sampling_rate"
  "bench_sampling_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sampling_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
