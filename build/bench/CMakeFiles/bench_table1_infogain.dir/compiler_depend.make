# Empty compiler generated dependencies file for bench_table1_infogain.
# This may be replaced when dependencies are built.
