file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_infogain.dir/bench_table1_infogain.cpp.o"
  "CMakeFiles/bench_table1_infogain.dir/bench_table1_infogain.cpp.o.d"
  "bench_table1_infogain"
  "bench_table1_infogain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_infogain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
