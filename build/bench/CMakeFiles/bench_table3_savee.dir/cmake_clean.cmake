file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_savee.dir/bench_table3_savee.cpp.o"
  "CMakeFiles/bench_table3_savee.dir/bench_table3_savee.cpp.o.d"
  "bench_table3_savee"
  "bench_table3_savee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_savee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
