// Example: evaluating the paper's proposed mitigations (§VI-B).
//
// The paper discusses three defence directions: (1) the Android 12+
// 200 Hz sampling cap, (2) vibration damping / sensor placement, and
// (3) explicit permission gating. This example quantifies (1) and (2)
// with the simulator so a defender can see how much each actually buys.
#include <cstdlib>
#include <iostream>

#include "core/attack.h"
#include "ml/logistic.h"
#include "util/table.h"

namespace {

double attack_accuracy(const emoleak::phone::PhoneProfile& phone,
                       std::uint64_t seed) {
  using namespace emoleak;
  core::ScenarioConfig sc =
      core::loudspeaker_scenario(audio::tess_spec(), phone, seed);
  sc.corpus_fraction = 0.35;
  const core::ExtractedData data = core::capture(sc);
  if (data.features.size() < 60) return 1.0 / 7.0;  // attack broken
  return core::evaluate_classical(ml::LogisticRegression{}, data.features, seed)
      .accuracy;
}

}  // namespace

int main() {
  using namespace emoleak;
  constexpr std::uint64_t kSeed = 11;
  util::TablePrinter t{{"mitigation", "attack accuracy", "vs baseline"}};

  const double baseline = attack_accuracy(phone::oneplus_7t(), kSeed);
  t.add_row({"none (stock OnePlus 7T)", util::percent(baseline), "-"});

  // (1) Android 12 rate cap.
  const double capped =
      attack_accuracy(phone::with_rate_cap(phone::oneplus_7t(), 200.0), kSeed);
  t.add_row({"Android 12 cap (200 Hz)", util::percent(capped),
             util::fixed((capped - baseline) * 100.0, 1) + "pp"});

  // (2) Vibration damping at increasing strengths.
  for (const double damping_db : {6.0, 12.0, 20.0, 30.0}) {
    phone::PhoneProfile damped = phone::oneplus_7t();
    const double factor = std::pow(10.0, -damping_db / 20.0);
    damped.loudspeaker_gain *= factor;
    damped.ear_speaker_gain *= factor;
    const double acc = attack_accuracy(damped, kSeed);
    t.add_row({"vibration damping, -" + util::fixed(damping_db, 0) + " dB",
               util::percent(acc),
               util::fixed((acc - baseline) * 100.0, 1) + "pp"});
  }

  std::cout << "Mitigation study (TESS, loudspeaker, Logistic classifier; "
               "random guess 14.29%):\n"
            << t.str();
  std::cout << "\nReading the table like the paper does (SVI-B): the 200 Hz "
               "cap degrades but does not stop the attack; damping only "
               "works once conduction drops by tens of dB. Neither is a "
               "substitute for explicit permission gating of motion "
               "sensors.\n";
  return EXIT_SUCCESS;
}
