// Load generator for the emoleak::net TCP transport.
//
// Spins up ServeService + NetServer in-process on an ephemeral loopback
// port, then drives hundreds of concurrent device streams at it from a
// single-threaded epoll client engine:
//
//   arrivals   open-loop: connection i starts at t0 + i/rate, on a
//              clock, independent of how fast earlier connections
//              complete (the arrival process a fleet of exfiltrating
//              devices actually presents)
//   cadence    each connection pushes `--chunk` samples every
//              `--cadence-ms` (0 = ack-paced), retrying overloaded
//              chunks after the server's advertised retry_after_ms
//   parity     every connection streams one of a few synthetic traces;
//              the events it gets back must be bit-identical to a
//              standalone core::StreamingAttack fed the same chunks,
//              and every expected event must arrive (zero drops)
//
// Progress is sampled into a trajectory (connections done, events/sec,
// drain p99 from the obs-registry-backed service counters) and written
// with the summary as JSON for scripts/bench_compare.py --serve.
//
//   loadgen [--conns N] [--rate CONNS_PER_S] [--chunk N] [--cadence-ms N]
//           [--trace-len N] [--threads N] [--sample-ms N] [--json PATH]
//           [--model NAME[,NAME...]] [--smoke]
//
// --model registers one model per name and round-robins connections
// over them (connection i streams against models[i % N], announced
// with a StreamStart frame before its first chunk) — mixed-task
// traffic through one registry. Each connection's parity reference is
// the standalone attack run with *its* model, so cross-binding any
// stream to the wrong task fails the bit-identical check.
//
// Exits non-zero on any dropped frame, parity mismatch, unexpected
// close, or timeout — the ctest smoke target (loadgen --smoke) rides on
// that.
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <numbers>
#include <optional>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "core/streaming.h"
#include "ml/dataset.h"
#include "ml/logistic.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "util/rng.h"

namespace {

using namespace emoleak;
using Clock = std::chrono::steady_clock;
using serve::Status;

constexpr double kRate = 420.0;
constexpr std::size_t kTraceVariants = 4;

struct Options {
  std::size_t conns = 120;
  double rate = 300.0;        // connection arrivals per second
  std::size_t chunk = 512;
  std::uint32_t cadence_ms = 0;
  std::size_t trace_len = 10000;
  std::size_t threads = 1;
  std::uint32_t sample_ms = 250;
  std::string json_path;
  double timeout_s = 120.0;
  /// Registry model names to round-robin connections over; empty =
  /// single default model, no StreamStart frames (the legacy shape).
  std::vector<std::string> models;
  /// Cross-session batched inference (ServeConfig::batched_forward);
  /// --batched off measures the legacy per-session predict path.
  bool batched = true;
};

std::vector<double> make_trace(std::size_t n, std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<double> x(n, 9.81);
  for (std::size_t i = 0; i < n; ++i) x[i] += 0.003 * rng.normal();
  // Bursts sit past the detector's noise-floor warm-up (10 s at 420 Hz)
  // as fractions of the trace, so any --trace-len long enough to detect
  // anything yields events.
  const std::pair<double, double> bursts[] = {
      {0.50, 0.56}, {0.68, 0.74}, {0.88, 0.94}};
  for (const auto& [lo_f, hi_f] : bursts) {
    const auto lo = static_cast<std::size_t>(lo_f * static_cast<double>(n));
    const auto hi = static_cast<std::size_t>(hi_f * static_cast<double>(n));
    for (std::size_t i = lo; i < hi && i < n; ++i) {
      x[i] += 0.1 * std::sin(2.0 * std::numbers::pi * 100.0 *
                             static_cast<double>(i) / kRate);
    }
  }
  return x;
}

std::shared_ptr<const ml::Classifier> make_model(int classes,
                                                 std::uint64_t seed) {
  util::Rng rng{seed};
  ml::Dataset d;
  d.class_count = classes;
  for (int c = 0; c < classes; ++c) {
    for (int i = 0; i < 12; ++i) {
      std::vector<double> row(24);
      for (double& v : row) v = rng.normal() + 1.5 * c;
      d.x.push_back(std::move(row));
      d.y.push_back(c);
    }
  }
  auto model = std::make_shared<ml::LogisticRegression>();
  model->fit(d);
  return model;
}

core::StreamingConfig stream_config() {
  core::StreamingConfig cfg;
  cfg.detector = core::tabletop_detector_config();
  return cfg;
}

std::vector<core::EmotionEvent> standalone_events(
    const std::vector<double>& trace, std::size_t chunk,
    std::shared_ptr<const ml::Classifier> model) {
  core::StreamingAttack attack{stream_config(), kRate, std::move(model)};
  std::vector<core::EmotionEvent> events;
  for (std::size_t i = 0; i < trace.size(); i += chunk) {
    const std::size_t hi = std::min(i + chunk, trace.size());
    auto out = attack.push(std::span<const double>{trace.data() + i, hi - i});
    events.insert(events.end(), out.begin(), out.end());
  }
  if (auto last = attack.finish()) events.push_back(*last);
  return events;
}

bool same_events(const std::vector<core::EmotionEvent>& a,
                 const std::vector<core::EmotionEvent>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].start_sample != b[i].start_sample ||
        a[i].end_sample != b[i].end_sample ||
        a[i].predicted_class != b[i].predicted_class ||
        a[i].probabilities != b[i].probabilities) {
      return false;
    }
  }
  return true;
}

// ---- epoll client engine ------------------------------------------------

struct ClientConn {
  net::Fd fd;
  std::size_t id = 0;
  std::size_t variant = 0;
  std::size_t model = 0;  ///< round-robin index into Options::models
  bool start_sent = false;
  bool awaiting_start_ack = false;
  std::size_t pos = 0;  ///< samples pushed so far
  std::string inbuf;
  std::string outbuf;
  std::size_t out_off = 0;
  std::vector<core::EmotionEvent> events;
  enum class State { kConnecting, kStreaming, kFinishing, kDraining } state =
      State::kConnecting;
  bool awaiting_ack = false;
  Clock::time_point next_send{};
  std::uint32_t armed = 0;
  std::uint64_t overloads = 0;
};

struct TrajectoryRow {
  double t_s = 0.0;
  std::size_t started = 0;
  std::size_t done = 0;
  std::size_t active = 0;
  std::uint64_t events = 0;
  std::uint64_t overloads = 0;
  double drain_p99_us = 0.0;
};

/// Single-threaded open-loop load engine against a NetServer port.
/// `references` is indexed [model][variant]: each connection's parity
/// oracle is the standalone attack with the model it bound to.
class LoadEngine {
 public:
  LoadEngine(const Options& opt, std::uint16_t port,
             const std::vector<std::vector<double>>& traces,
             const std::vector<std::vector<std::vector<core::EmotionEvent>>>&
                 references,
             const serve::ServeService& service)
      : opt_{opt}, port_{port}, traces_{traces}, references_{references},
        service_{service}, epoll_{::epoll_create1(EPOLL_CLOEXEC)} {
    if (!epoll_.valid()) throw net::errno_error("loadgen: epoll_create1");
    results_.resize(opt.conns);
  }

  /// Runs the open-loop schedule to completion. Returns false on any
  /// failed/unfinished connection (details in failures()).
  bool run() {
    t0_ = Clock::now();
    const auto deadline =
        t0_ + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>{opt_.timeout_s});
    auto next_sample = t0_;

    while (done_ + failed_ < opt_.conns) {
      const auto now = Clock::now();
      if (now >= deadline) {
        fail_remaining("timed out");
        break;
      }
      start_due_arrivals(now);
      for (auto it = conns_.begin(); it != conns_.end();) {
        ClientConn& conn = *it->second;
        ++it;  // maybe_send can retire the connection
        maybe_send(conn, now);
      }
      if (now >= next_sample) {
        sample_trajectory(now);
        next_sample = now + std::chrono::milliseconds{opt_.sample_ms};
      }
      wait_and_dispatch(now, next_sample, deadline);
    }
    elapsed_s_ = std::chrono::duration<double>(Clock::now() - t0_).count();
    sample_trajectory(Clock::now());
    return failed_ == 0;
  }

  [[nodiscard]] const std::vector<std::vector<core::EmotionEvent>>& results()
      const noexcept {
    return results_;
  }
  [[nodiscard]] const std::vector<std::string>& failures() const noexcept {
    return failures_;
  }
  [[nodiscard]] const std::vector<TrajectoryRow>& trajectory() const noexcept {
    return trajectory_;
  }
  [[nodiscard]] double elapsed_s() const noexcept { return elapsed_s_; }
  [[nodiscard]] std::size_t peak_concurrent() const noexcept { return peak_; }
  [[nodiscard]] std::uint64_t total_events() const noexcept {
    return events_total_;
  }
  [[nodiscard]] std::uint64_t total_overloads() const noexcept {
    return overloads_total_;
  }

 private:
  void start_due_arrivals(Clock::time_point now) {
    while (started_ < opt_.conns) {
      const auto due =
          t0_ + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>{
                        static_cast<double>(started_) / opt_.rate});
      if (now < due) break;
      spawn(started_++);
    }
  }

  void spawn(std::size_t id) {
    auto conn = std::make_unique<ClientConn>();
    conn->id = id;
    conn->variant = id % kTraceVariants;
    conn->model = opt_.models.empty() ? 0 : id % opt_.models.size();
    conn->fd = net::connect_loopback_nonblocking(port_);
    conn->next_send = Clock::now();
    const int fd = conn->fd.get();
    // EPOLLOUT fires when the non-blocking connect resolves.
    arm(*conn, EPOLLIN | EPOLLOUT);
    conns_.emplace(fd, std::move(conn));
    peak_ = std::max(peak_, conns_.size());
  }

  void arm(ClientConn& conn, std::uint32_t mask) {
    if (conn.armed == mask) return;
    epoll_event ev{};
    ev.events = mask;
    ev.data.fd = conn.fd.get();
    const int op = conn.armed == 0 ? EPOLL_CTL_ADD : EPOLL_CTL_MOD;
    if (::epoll_ctl(epoll_.get(), op, conn.fd.get(), &ev) != 0) {
      throw net::errno_error("loadgen: epoll_ctl");
    }
    conn.armed = mask;
  }

  void maybe_send(ClientConn& conn, Clock::time_point now) {
    if (conn.state == ClientConn::State::kConnecting ||
        conn.state == ClientConn::State::kDraining || conn.awaiting_ack ||
        now < conn.next_send) {
      return;
    }
    if (!opt_.models.empty() && !conn.start_sent) {
      // Bind the stream to its task before any sample travels; the
      // start rides the same shard FIFO as the chunks, so ordering is
      // guaranteed server-side too.
      serve::encode(conn.outbuf, serve::StreamStartMsg{
                                     conn.id, opt_.models[conn.model]});
      conn.start_sent = true;
      conn.awaiting_start_ack = true;
      conn.awaiting_ack = true;
      flush(conn);
      return;
    }
    const std::vector<double>& trace = traces_[conn.variant];
    if (conn.state == ClientConn::State::kStreaming &&
        conn.pos >= trace.size()) {
      conn.state = ClientConn::State::kFinishing;
    }
    if (conn.state == ClientConn::State::kFinishing) {
      serve::encode(conn.outbuf, serve::StreamFinishMsg{conn.id});
    } else {
      const std::size_t hi = std::min(conn.pos + opt_.chunk, trace.size());
      serve::encode(
          conn.outbuf,
          serve::ChunkPushMsg{
              conn.id,
              {trace.begin() + static_cast<std::ptrdiff_t>(conn.pos),
               trace.begin() + static_cast<std::ptrdiff_t>(hi)}});
    }
    conn.awaiting_ack = true;
    flush(conn);
  }

  void flush(ClientConn& conn) {
    while (conn.out_off < conn.outbuf.size()) {
      const ssize_t sent =
          ::send(conn.fd.get(), conn.outbuf.data() + conn.out_off,
                 conn.outbuf.size() - conn.out_off, MSG_NOSIGNAL);
      if (sent > 0) {
        conn.out_off += static_cast<std::size_t>(sent);
        continue;
      }
      if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (sent < 0 && errno == EINTR) continue;
      fail(conn, "send failed");
      return;
    }
    if (conn.out_off == conn.outbuf.size()) {
      conn.outbuf.clear();
      conn.out_off = 0;
      arm(conn, EPOLLIN);
    } else {
      arm(conn, EPOLLIN | EPOLLOUT);
    }
  }

  void wait_and_dispatch(Clock::time_point now, Clock::time_point next_sample,
                         Clock::time_point deadline) {
    // Sleep until the earliest thing to do: next arrival, next due
    // send, next trajectory sample, or the run deadline.
    auto next = std::min(next_sample, deadline);
    if (started_ < opt_.conns) {
      next = std::min(
          next, t0_ + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>{
                              static_cast<double>(started_) / opt_.rate}));
    }
    for (const auto& [fd, conn] : conns_) {
      if (!conn->awaiting_ack &&
          conn->state != ClientConn::State::kConnecting &&
          conn->state != ClientConn::State::kDraining) {
        next = std::min(next, conn->next_send);
      }
    }
    int timeout_ms = 0;
    if (next > now) {
      timeout_ms = static_cast<int>(std::chrono::duration_cast<
                                        std::chrono::milliseconds>(next - now)
                                        .count()) +
                   1;
      timeout_ms = std::min(timeout_ms, 50);
    }

    epoll_event events[64];
    const int n = ::epoll_wait(epoll_.get(), events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return;
      throw net::errno_error("loadgen: epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      const auto it = conns_.find(events[i].data.fd);
      if (it == conns_.end()) continue;  // retired by an earlier event
      ClientConn& conn = *it->second;
      if (conn.state == ClientConn::State::kConnecting) {
        if (!finish_connect(conn)) continue;
      }
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        // Drain whatever the server wrote before it closed; readable()
        // fails the connection if it is not complete.
        readable(conn);
        continue;
      }
      if (events[i].events & EPOLLIN) {
        readable(conn);
        if (conns_.find(events[i].data.fd) == conns_.end()) continue;
      }
      if (events[i].events & EPOLLOUT) flush(conn);
    }
  }

  bool finish_connect(ClientConn& conn) {
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(conn.fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      fail(conn, "connect failed");
      return false;
    }
    conn.state = ClientConn::State::kStreaming;
    arm(conn, EPOLLIN);
    maybe_send(conn, Clock::now());
    return conns_.count(conn.fd.get()) != 0;
  }

  void readable(ClientConn& conn) {
    const int fd = conn.fd.get();
    for (;;) {
      char chunk[64 * 1024];
      const ssize_t got = ::recv(fd, chunk, sizeof chunk, 0);
      if (got > 0) {
        conn.inbuf.append(chunk, static_cast<std::size_t>(got));
        continue;
      }
      if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (got < 0 && errno == EINTR) continue;
      // EOF or reset: only valid after this connection retired, which
      // would have erased it from conns_ already.
      parse(conn);
      if (conns_.count(fd) != 0) fail(conn, "server closed early");
      return;
    }
    parse(conn);
  }

  void parse(ClientConn& conn) {
    serve::FrameReader reader{conn.inbuf};
    const int fd = conn.fd.get();
    try {
      while (auto msg = reader.next()) {
        handle(conn, *msg);
        if (conns_.count(fd) == 0) return;  // retired mid-parse
      }
    } catch (const util::DataError& e) {
      fail(conn, std::string{"corrupt reply: "} + e.what());
      return;
    }
    conn.inbuf.erase(0, reader.offset());
  }

  void handle(ClientConn& conn, const serve::Message& msg) {
    const auto now = Clock::now();
    if (const auto* ev = std::get_if<serve::EventMsg>(&msg)) {
      conn.events.push_back(ev->event);
      ++events_total_;
      if (conn.state == ClientConn::State::kDraining) check_done(conn);
      return;
    }
    const auto* ack = std::get_if<serve::AckMsg>(&msg);
    if (ack == nullptr) return;  // stats replies etc. — not sent here
    conn.awaiting_ack = false;
    if (ack->status == Status::kOverloaded) {
      ++conn.overloads;
      ++overloads_total_;
      conn.next_send =
          now + std::chrono::milliseconds{
                    std::max<std::uint32_t>(ack->retry_after_ms, 1)};
      return;
    }
    if (ack->status != Status::kOk) {
      fail(conn, "error ack from server");
      return;
    }
    if (conn.awaiting_start_ack) {
      // The StreamStart was admitted; begin pushing samples.
      conn.awaiting_start_ack = false;
      conn.next_send = now;
      maybe_send(conn, now);
      return;
    }
    if (conn.state == ClientConn::State::kFinishing) {
      conn.state = ClientConn::State::kDraining;
      check_done(conn);
      return;
    }
    conn.pos = std::min(conn.pos + opt_.chunk, traces_[conn.variant].size());
    conn.next_send = now + std::chrono::milliseconds{opt_.cadence_ms};
    maybe_send(conn, now);
  }

  void check_done(ClientConn& conn) {
    if (conn.events.size() < references_[conn.model][conn.variant].size()) {
      return;
    }
    results_[conn.id] = std::move(conn.events);
    ++done_;
    retire(conn);
  }

  void fail(ClientConn& conn, const std::string& why) {
    failures_.push_back("conn " + std::to_string(conn.id) + ": " + why);
    ++failed_;
    retire(conn);
  }

  void retire(ClientConn& conn) {
    conns_.erase(conn.fd.get());  // closes the fd, deregisters from epoll
  }

  void fail_remaining(const std::string& why) {
    std::vector<ClientConn*> open;
    open.reserve(conns_.size());
    for (auto& [fd, conn] : conns_) open.push_back(conn.get());
    for (ClientConn* conn : open) fail(*conn, why);
    failed_ += opt_.conns - started_;  // never-started arrivals
  }

  void sample_trajectory(Clock::time_point now) {
    TrajectoryRow row;
    row.t_s = std::chrono::duration<double>(now - t0_).count();
    row.started = started_;
    row.done = done_;
    row.active = conns_.size();
    row.events = events_total_;
    row.overloads = overloads_total_;
    row.drain_p99_us = service_.stats().drain_p99_us;
    trajectory_.push_back(row);
  }

  const Options& opt_;
  std::uint16_t port_;
  const std::vector<std::vector<double>>& traces_;
  const std::vector<std::vector<std::vector<core::EmotionEvent>>>& references_;
  const serve::ServeService& service_;
  net::Fd epoll_;
  std::unordered_map<int, std::unique_ptr<ClientConn>> conns_;
  std::vector<std::vector<core::EmotionEvent>> results_;
  std::vector<std::string> failures_;
  std::vector<TrajectoryRow> trajectory_;
  Clock::time_point t0_{};
  std::size_t started_ = 0;
  std::size_t done_ = 0;
  std::size_t failed_ = 0;
  std::size_t peak_ = 0;
  std::uint64_t events_total_ = 0;
  std::uint64_t overloads_total_ = 0;
  double elapsed_s_ = 0.0;
};

// ---- end-of-run wire scrape ---------------------------------------------

/// Pulls the server's merged metrics snapshot over the same TCP
/// transport the load ran on (one kMetricsRequest frame), so the JSON
/// output records what a real remote scraper would see — including the
/// net.* transport counters this client cannot observe locally. Best
/// effort: a failed scrape warns and the JSON omits the section.
std::optional<obs::RegistrySnapshot> scrape_metrics(std::uint16_t port) {
  try {
    net::BlockingClient client{port};
    client.set_recv_timeout(5000);
    client.send(serve::MetricsRequestMsg{});
    const auto reply = client.recv();
    if (reply) {
      if (const auto* m = std::get_if<serve::MetricsReplyMsg>(&*reply)) {
        return m->snapshot;
      }
    }
    std::cerr << "loadgen: metrics scrape got no usable reply\n";
  } catch (const std::exception& error) {
    std::cerr << "loadgen: metrics scrape failed: " << error.what() << "\n";
  }
  return std::nullopt;
}

// ---- JSON output --------------------------------------------------------

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // names are ASCII
    out.push_back(c);
  }
  return out;
}

void write_json(const std::string& path, const Options& opt,
                const LoadEngine& engine, const serve::ServeStats& stats,
                const net::NetServerStats& net_stats,
                const std::optional<obs::RegistrySnapshot>& scraped,
                std::uint64_t dropped_frames) {
  std::ofstream out{path};
  if (!out) throw std::runtime_error{"loadgen: cannot write " + path};
  const double elapsed = std::max(engine.elapsed_s(), 1e-9);
  out << "{\n"
      << "  \"config\": {\n"
      << "    \"conns\": " << opt.conns << ",\n"
      << "    \"arrival_rate_per_s\": " << fmt(opt.rate) << ",\n"
      << "    \"chunk\": " << opt.chunk << ",\n"
      << "    \"cadence_ms\": " << opt.cadence_ms << ",\n"
      << "    \"trace_len\": " << opt.trace_len << ",\n"
      << "    \"threads\": " << opt.threads << ",\n"
      << "    \"batched\": " << (opt.batched ? "true" : "false") << "\n"
      << "  },\n"
      << "  \"summary\": {\n"
      << "    \"elapsed_s\": " << fmt(engine.elapsed_s()) << ",\n"
      << "    \"conns_per_sec\": "
      << fmt(static_cast<double>(opt.conns) / elapsed) << ",\n"
      << "    \"events_per_sec\": "
      << fmt(static_cast<double>(engine.total_events()) / elapsed) << ",\n"
      << "    \"samples_per_sec\": "
      << fmt(static_cast<double>(stats.samples_processed) / elapsed) << ",\n"
      << "    \"drain_p50_us\": " << fmt(stats.drain_p50_us) << ",\n"
      << "    \"drain_p99_us\": " << fmt(stats.drain_p99_us) << ",\n"
      << "    \"dropped_frames\": " << dropped_frames << ",\n"
      << "    \"peak_concurrent\": " << engine.peak_concurrent() << ",\n"
      << "    \"overload_acks\": " << engine.total_overloads() << ",\n"
      << "    \"frames_in\": " << net_stats.frames_in << ",\n"
      << "    \"partial_reads\": " << net_stats.partial_reads << ",\n"
      << "    \"events_routed\": " << net_stats.events_routed << ",\n"
      << "    \"windows_batched\": " << stats.windows_batched << ",\n"
      << "    \"windows_solo\": " << stats.windows_solo << ",\n"
      << "    \"batch_count\": " << stats.batch_count << ",\n"
      << "    \"batch_p50\": " << fmt(stats.batch_p50) << ",\n"
      << "    \"batch_p99\": " << fmt(stats.batch_p99) << "\n"
      << "  },\n";
  if (scraped) {
    // The snapshot a remote scraper saw mid-run, verbatim: counters and
    // gauges flat, histograms reduced to count/p50/p99 (full bucket
    // detail stays wire-side; the trajectory only needs the shape).
    out << "  \"server_metrics\": {\n    \"counters\": {";
    for (std::size_t i = 0; i < scraped->counters.size(); ++i) {
      const auto& [name, value] = scraped->counters[i];
      out << (i == 0 ? "" : ",") << "\n      \"" << json_escape(name)
          << "\": " << value;
    }
    out << "\n    },\n    \"gauges\": {";
    for (std::size_t i = 0; i < scraped->gauges.size(); ++i) {
      const auto& [name, value] = scraped->gauges[i];
      out << (i == 0 ? "" : ",") << "\n      \"" << json_escape(name)
          << "\": " << value;
    }
    out << "\n    },\n    \"histograms\": {";
    for (std::size_t i = 0; i < scraped->histograms.size(); ++i) {
      const auto& [name, hist] = scraped->histograms[i];
      out << (i == 0 ? "" : ",") << "\n      \"" << json_escape(name)
          << "\": {\"count\": " << hist.count << ", \"p50\": "
          << fmt(hist.quantile(0.5)) << ", \"p99\": "
          << fmt(hist.quantile(0.99)) << "}";
    }
    out << "\n    }\n  },\n";
  }
  out << "  \"trajectory\": [\n";
  const auto& rows = engine.trajectory();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const TrajectoryRow& r = rows[i];
    out << "    {\"t_s\": " << fmt(r.t_s) << ", \"started\": " << r.started
        << ", \"done\": " << r.done << ", \"active\": " << r.active
        << ", \"events\": " << r.events << ", \"overloads\": " << r.overloads
        << ", \"drain_p99_us\": " << fmt(r.drain_p99_us) << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const auto arg = [&](const char* name) {
      return std::strcmp(argv[i], name) == 0 && i + 1 < argc;
    };
    if (arg("--conns")) {
      opt.conns = std::stoul(argv[++i]);
    } else if (arg("--rate")) {
      opt.rate = std::stod(argv[++i]);
    } else if (arg("--chunk")) {
      opt.chunk = std::stoul(argv[++i]);
    } else if (arg("--cadence-ms")) {
      opt.cadence_ms = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else if (arg("--trace-len")) {
      opt.trace_len = std::stoul(argv[++i]);
    } else if (arg("--threads")) {
      opt.threads = std::stoul(argv[++i]);
    } else if (arg("--sample-ms")) {
      opt.sample_ms = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else if (arg("--json")) {
      opt.json_path = argv[++i];
    } else if (arg("--model")) {
      std::string list = argv[++i];
      for (std::size_t pos = 0; pos <= list.size();) {
        const std::size_t comma = std::min(list.find(',', pos), list.size());
        if (comma > pos) opt.models.push_back(list.substr(pos, comma - pos));
        pos = comma + 1;
      }
    } else if (arg("--timeout-s")) {
      opt.timeout_s = std::stod(argv[++i]);
    } else if (arg("--batched")) {
      const std::string v = argv[++i];
      if (v != "on" && v != "off") {
        std::cerr << "loadgen: --batched takes on|off\n";
        return EXIT_FAILURE;
      }
      opt.batched = v == "on";
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      // Small preset for the ctest smoke target: quick, but still
      // concurrent enough to exercise accept/affinity/drain routing.
      opt.conns = 16;
      opt.rate = 400.0;
      opt.trace_len = 6300;
      opt.timeout_s = 60.0;
    } else {
      std::cerr << "unknown or incomplete option: " << argv[i] << "\n";
      return EXIT_FAILURE;
    }
  }
  if (opt.conns == 0 || opt.chunk == 0 || opt.rate <= 0.0) {
    std::cerr << "loadgen: --conns, --chunk, --rate must be positive\n";
    return EXIT_FAILURE;
  }
  for (std::size_t m = 0; m < opt.models.size(); ++m) {
    for (std::size_t k = m + 1; k < opt.models.size(); ++k) {
      if (opt.models[m] == opt.models[k]) {
        std::cerr << "loadgen: duplicate --model name " << opt.models[m]
                  << "\n";
        return EXIT_FAILURE;
      }
    }
  }

  // ---- traces + standalone references (the parity oracle) -----------
  // One distinct model per --model name (different training seeds, so
  // their probability vectors differ); references[model][variant] is
  // what a stream bound to that model must emit, bit for bit.
  const std::size_t model_count = std::max<std::size_t>(1, opt.models.size());
  std::vector<std::shared_ptr<const ml::Classifier>> models;
  for (std::size_t m = 0; m < model_count; ++m) {
    models.push_back(make_model(3, 7 + 11 * m));
  }
  std::vector<std::vector<double>> traces;
  for (std::size_t v = 0; v < kTraceVariants; ++v) {
    traces.push_back(make_trace(opt.trace_len, 1000 + v));
  }
  std::vector<std::vector<std::vector<core::EmotionEvent>>> references(
      model_count);
  std::size_t expected_per_cycle = 0;
  for (std::size_t m = 0; m < model_count; ++m) {
    for (std::size_t v = 0; v < kTraceVariants; ++v) {
      references[m].push_back(
          standalone_events(traces[v], opt.chunk, models[m]));
      expected_per_cycle += references[m][v].size();
    }
  }
  if (expected_per_cycle == 0) {
    std::cerr << "loadgen: warning: no trace variant produces events "
                 "(--trace-len below the detector warm-up?); only the "
                 "ack path will be exercised\n";
  }

  // ---- server ---------------------------------------------------------
  auto registry = std::make_shared<serve::ModelRegistry>();
  if (opt.models.empty()) {
    registry->add("loadgen-logistic", models[0]);
  } else {
    for (std::size_t m = 0; m < opt.models.size(); ++m) {
      registry->add(opt.models[m], models[m]);
    }
  }
  serve::ServeConfig cfg;
  cfg.session.stream = stream_config();
  cfg.session.sample_rate_hz = kRate;
  cfg.session.max_sessions = opt.conns;
  cfg.batcher.shard_count = 8;
  cfg.batcher.queue_capacity = 1024;
  cfg.parallelism = util::Parallelism{.threads = opt.threads};
  cfg.batched_forward = opt.batched;
  serve::ServeService service{cfg, registry};

  net::NetServerConfig net_cfg;
  net_cfg.max_connections = opt.conns + 8;
  net::NetServer server{net_cfg, service};
  server.start();
  std::cout << "serving on 127.0.0.1:" << server.port() << " — " << opt.conns
            << " connections at " << opt.rate << "/s, chunk " << opt.chunk
            << ", cadence " << opt.cadence_ms << " ms\n";

  // ---- drive ----------------------------------------------------------
  LoadEngine engine{opt, server.port(), traces, references, service};
  const bool completed = engine.run();
  // Scrape while the server is still live: the whole point is to read
  // the metrics the way an external scraper would, over the wire.
  const std::optional<obs::RegistrySnapshot> scraped =
      scrape_metrics(server.port());
  server.stop();

  // ---- verify: zero drops, bit-identical events ----------------------
  // Per-task accounting: connection id streams trace id % kTraceVariants
  // against model id % model_count, so its oracle is
  // references[model][variant].
  std::uint64_t expected_events = 0;
  std::vector<std::uint64_t> expected_per_model(model_count, 0);
  for (std::size_t id = 0; id < opt.conns; ++id) {
    const std::size_t m = opt.models.empty() ? 0 : id % model_count;
    const std::uint64_t n = references[m][id % kTraceVariants].size();
    expected_events += n;
    expected_per_model[m] += n;
  }
  const std::uint64_t got_events = engine.total_events();
  const std::uint64_t dropped =
      expected_events > got_events ? expected_events - got_events : 0;

  std::size_t parity_failures = 0;
  std::vector<std::uint64_t> got_per_model(model_count, 0);
  for (std::size_t id = 0; id < opt.conns; ++id) {
    const std::size_t m = opt.models.empty() ? 0 : id % model_count;
    got_per_model[m] += engine.results()[id].size();
    if (!same_events(engine.results()[id],
                     references[m][id % kTraceVariants])) {
      ++parity_failures;
    }
  }

  const serve::ServeStats stats = service.stats();
  const net::NetServerStats net_stats = server.stats();
  std::cout << "completed in " << fmt(engine.elapsed_s()) << " s: "
            << got_events << "/" << expected_events << " events, peak "
            << engine.peak_concurrent() << " concurrent, "
            << engine.total_overloads() << " overload acks honored, drain "
            << "p50 " << fmt(stats.drain_p50_us) << " us / p99 "
            << fmt(stats.drain_p99_us) << " us ("
            << net_stats.partial_reads << " partial reads reassembled)\n";
  if (opt.batched) {
    const double mean_batch =
        stats.batch_count > 0
            ? static_cast<double>(stats.windows_batched) /
                  static_cast<double>(stats.batch_count)
            : 0.0;
    std::cout << "batched inference: " << stats.windows_batched
              << " windows over " << stats.batch_count << " batches (mean "
              << fmt(mean_batch) << ", p50 " << fmt(stats.batch_p50)
              << ", p99 " << fmt(stats.batch_p99) << "), "
              << stats.windows_solo << " solo\n";
    if (!stats.batch_hist.empty()) {
      std::cout << "  batch-size histogram:";
      for (const auto& [upper, count] : stats.batch_hist) {
        std::cout << " <=" << static_cast<std::uint64_t>(upper) << ":"
                  << count;
      }
      std::cout << "\n";
    }
  }
  if (!opt.models.empty()) {
    for (std::size_t m = 0; m < model_count; ++m) {
      std::cout << "  task " << opt.models[m] << ": " << got_per_model[m]
                << "/" << expected_per_model[m] << " events\n";
    }
  }

  if (!opt.json_path.empty()) {
    write_json(opt.json_path, opt, engine, stats, net_stats, scraped, dropped);
    std::cout << "wrote " << opt.json_path << "\n";
  }

  bool ok = completed && dropped == 0 && parity_failures == 0;
  for (const std::string& f : engine.failures()) {
    std::cerr << "FAIL: " << f << "\n";
  }
  if (dropped != 0) std::cerr << "FAIL: " << dropped << " dropped events\n";
  if (parity_failures != 0) {
    std::cerr << "FAIL: " << parity_failures
              << " connections diverged from the standalone attack\n";
  }
  if (server.running()) {
    std::cerr << "FAIL: server still running after stop()\n";
    ok = false;
  }
  if (!ok) return EXIT_FAILURE;
  std::cout << "all " << opt.conns
            << " connections bit-identical to the standalone attack; zero "
               "dropped frames; clean shutdown\n";
  return EXIT_SUCCESS;
}
