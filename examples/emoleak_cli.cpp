// emoleak_cli — command-line driver for the EmoLeak pipeline.
//
// Runs any dataset x device x channel x classifier combination and
// optionally writes a Markdown report, the extracted features (CSV /
// ARFF), and a serialized model. Examples:
//
//   emoleak_cli --dataset tess --phone oneplus7t --classifier logistic
//   emoleak_cli --dataset savee --speaker ear --classifier randomforest
//               --cv 10 --report run.md
//   emoleak_cli --dataset cremad --phone galaxys10 --fraction 0.3
//               --features features.csv --save-model model.txt
//   emoleak_cli --dataset tess --model model.txt        # evaluate a
//               pre-trained model file instead of training
//   emoleak_cli --scrape 9090                           # pull metrics
//               from a live serve_demo/NetServer in Prometheus text
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "core/attack.h"
#include "core/dataset_cache.h"
#include "net/client.h"
#include "obs/obs.h"
#include "serve/protocol.h"
#include "util/error.h"
#include "core/report.h"
#include "ml/ensemble.h"
#include "ml/lmt.h"
#include "ml/logistic.h"
#include "ml/multiclass.h"
#include "ml/serialize.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using namespace emoleak;

struct CliOptions {
  std::string dataset = "tess";
  std::string phone = "oneplus7t";
  std::string speaker = "loud";
  std::string classifier = "logistic";
  double fraction = 1.0;
  std::uint64_t seed = 43;
  std::size_t cv_folds = 0;  // 0 = 80/20 split
  std::size_t threads = 0;   // 0 = hardware concurrency, 1 = serial
  bool rate_cap = false;
  bool binned = false;  // histogram-binned tree induction
  std::string report_path;
  std::string features_path;
  std::string arff_path;
  std::string model_path;
  std::string load_model_path;
  std::string trace_path;
  bool metrics = false;
  std::string scrape_target;  ///< PORT or HOST:PORT (loopback only)
};

void usage() {
  std::cout <<
      "usage: emoleak_cli [options]\n"
      "  --dataset tess|savee|cremad     corpus to replay (default tess)\n"
      "  --phone oneplus7t|oneplus9|pixel5|galaxys10|galaxys21|galaxys21ultra\n"
      "  --speaker loud|ear              channel (default loud; ear => handheld)\n"
      "  --classifier logistic|multiclass|lmt|randomforest|randomsubspace\n"
      "  --fraction F                    corpus fraction in (0,1] (default 1)\n"
      "  --seed N                        experiment seed (default 43)\n"
      "  --cv K                          K-fold CV instead of the 80/20 split\n"
      "  --threads N                     worker threads for extraction/CV\n"
      "                                  (0 = all cores, 1 = serial; results\n"
      "                                  are identical at any thread count)\n"
      "  --rate-cap                      apply the Android 12 200 Hz cap\n"
      "  --binned                        train tree ensembles with\n"
      "                                  histogram-binned split finding\n"
      "                                  (faster on large captures; exact\n"
      "                                  Gini splits remain the default)\n"
      "  --report PATH                   write a Markdown report\n"
      "  --features PATH                 write extracted features as CSV\n"
      "  --arff PATH                     write extracted features as ARFF\n"
      "  --save-model PATH               serialize the trained classifier\n"
      "  --model PATH                    load a pre-trained model (from\n"
      "                                  --save-model) and evaluate it on\n"
      "                                  the captured data, skipping training\n"
      "  --trace PATH                    record scoped spans and write a\n"
      "                                  Chrome trace_event JSON file\n"
      "                                  (open in chrome://tracing / Perfetto)\n"
      "  --metrics                       print the metrics registry (counters,\n"
      "                                  gauges, histograms) on exit\n"
      "  --scrape PORT|HOST:PORT         connect to a running NetServer (e.g.\n"
      "                                  serve_demo --listen), pull its metrics\n"
      "                                  over the wire, and print them in\n"
      "                                  Prometheus text exposition format;\n"
      "                                  combine with --trace PATH to also pull\n"
      "                                  the server's span rings as a Chrome\n"
      "                                  trace file. HOST must be loopback.\n";
}

/// "9090", "127.0.0.1:9090", "localhost:9090" -> 9090. The blocking
/// client only dials loopback, so any other host is rejected up front.
std::uint16_t parse_scrape_port(const std::string& target) {
  std::string port_str = target;
  const auto colon = target.rfind(':');
  if (colon != std::string::npos) {
    const std::string host = target.substr(0, colon);
    if (host != "127.0.0.1" && host != "localhost") {
      throw util::ConfigError{"--scrape host must be loopback, got: " + host};
    }
    port_str = target.substr(colon + 1);
  }
  const unsigned long port = std::stoul(port_str);
  if (port == 0 || port > 65535) {
    throw util::ConfigError{"--scrape port out of range: " + port_str};
  }
  return static_cast<std::uint16_t>(port);
}

/// Remote scrape: one kMetricsRequest (and optionally one
/// kTraceRequest) over a fresh connection, Prometheus text to stdout.
int run_scrape(const CliOptions& opts) {
  net::BlockingClient client{parse_scrape_port(opts.scrape_target)};
  client.set_recv_timeout(5000);

  client.send(serve::MetricsRequestMsg{});
  const auto metrics_reply = client.recv();
  if (!metrics_reply) throw util::DataError{"server closed before reply"};
  const auto* metrics = std::get_if<serve::MetricsReplyMsg>(&*metrics_reply);
  if (metrics == nullptr) {
    throw util::DataError{"unexpected reply to metrics request (old server?)"};
  }
  std::cout << obs::prometheus_text(metrics->snapshot);

  if (!opts.trace_path.empty()) {
    client.send(serve::TraceRequestMsg{});
    const auto trace_reply = client.recv();
    if (!trace_reply) throw util::DataError{"server closed before trace reply"};
    const auto* trace = std::get_if<serve::TraceReplyMsg>(&*trace_reply);
    if (trace == nullptr) {
      throw util::DataError{"unexpected reply to trace request (old server?)"};
    }
    std::ofstream out{opts.trace_path, std::ios::binary};
    if (!out) throw util::ConfigError{"cannot open " + opts.trace_path};
    out << trace->trace_json;
    std::cerr << "Wrote server trace to " << opts.trace_path;
    if (trace->dropped_spans != 0) {
      std::cerr << " (" << trace->dropped_spans
                << " spans dropped by ring wrap)";
    }
    std::cerr << "\n";
  }
  return EXIT_SUCCESS;
}

phone::PhoneProfile parse_phone(const std::string& name) {
  const std::map<std::string, phone::PhoneProfile> phones{
      {"oneplus7t", phone::oneplus_7t()},
      {"oneplus9", phone::oneplus_9()},
      {"pixel5", phone::pixel_5()},
      {"galaxys10", phone::galaxy_s10()},
      {"galaxys21", phone::galaxy_s21()},
      {"galaxys21ultra", phone::galaxy_s21_ultra()},
  };
  const auto it = phones.find(name);
  if (it == phones.end()) throw util::ConfigError{"unknown phone: " + name};
  return it->second;
}

audio::DatasetSpec parse_dataset(const std::string& name) {
  if (name == "tess") return audio::tess_spec();
  if (name == "savee") return audio::savee_spec();
  if (name == "cremad") return audio::cremad_spec();
  throw util::ConfigError{"unknown dataset: " + name};
}

std::unique_ptr<ml::Classifier> parse_classifier(const std::string& name,
                                                 bool binned) {
  if (name == "randomforest") {
    ml::RandomForestConfig cfg;
    cfg.tree.exact = !binned;
    return std::make_unique<ml::RandomForest>(cfg);
  }
  if (name == "randomsubspace") {
    ml::RandomSubspaceConfig cfg;
    cfg.tree.exact = !binned;
    return std::make_unique<ml::RandomSubspace>(cfg);
  }
  if (binned) {
    throw util::ConfigError{"--binned applies to randomforest/randomsubspace"};
  }
  if (name == "logistic") return std::make_unique<ml::LogisticRegression>();
  if (name == "multiclass") return std::make_unique<ml::OneVsRestLogistic>();
  if (name == "lmt") return std::make_unique<ml::LogisticModelTree>();
  throw util::ConfigError{"unknown classifier: " + name};
}

CliOptions parse_args(int argc, char** argv) {
  CliOptions opts;
  const auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) throw util::ConfigError{std::string{"missing value for "} + argv[i]};
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dataset") opts.dataset = need_value(i);
    else if (arg == "--phone") opts.phone = need_value(i);
    else if (arg == "--speaker") opts.speaker = need_value(i);
    else if (arg == "--classifier") opts.classifier = need_value(i);
    else if (arg == "--fraction") opts.fraction = std::stod(need_value(i));
    else if (arg == "--seed") opts.seed = std::stoull(need_value(i));
    else if (arg == "--cv") opts.cv_folds = std::stoul(need_value(i));
    else if (arg == "--threads") opts.threads = std::stoul(need_value(i));
    else if (arg == "--rate-cap") opts.rate_cap = true;
    else if (arg == "--binned") opts.binned = true;
    else if (arg == "--report") opts.report_path = need_value(i);
    else if (arg == "--features") opts.features_path = need_value(i);
    else if (arg == "--arff") opts.arff_path = need_value(i);
    else if (arg == "--save-model") opts.model_path = need_value(i);
    else if (arg == "--model") opts.load_model_path = need_value(i);
    else if (arg == "--trace") opts.trace_path = need_value(i);
    else if (arg == "--metrics") opts.metrics = true;
    else if (arg == "--scrape") opts.scrape_target = need_value(i);
    else if (arg == "--help" || arg == "-h") {
      usage();
      std::exit(EXIT_SUCCESS);
    } else {
      throw util::ConfigError{"unknown option: " + arg};
    }
  }
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliOptions opts = parse_args(argc, argv);
    if (!opts.scrape_target.empty()) return run_scrape(opts);
    if (!opts.trace_path.empty()) obs::set_trace_enabled(true);

    phone::PhoneProfile device = parse_phone(opts.phone);
    if (opts.rate_cap) device = phone::with_rate_cap(device, 200.0);
    core::ScenarioConfig scenario =
        opts.speaker == "ear"
            ? core::ear_speaker_scenario(parse_dataset(opts.dataset), device,
                                         opts.seed)
            : core::loudspeaker_scenario(parse_dataset(opts.dataset), device,
                                         opts.seed);
    scenario.corpus_fraction = opts.fraction;
    const util::Parallelism parallelism{.threads = opts.threads};
    scenario.pipeline.parallelism = parallelism;

    std::cout << "Capturing " << scenario.dataset.name << " via "
              << device.name << " ("
              << (opts.speaker == "ear" ? "ear speaker, handheld"
                                        : "loudspeaker, table-top")
              << ", fraction " << opts.fraction << ")...\n";
    // Route through the tiered DatasetCache: with
    // EMOLEAK_DATASET_CACHE_DIR set, repeated invocations (even from
    // different processes) mmap the extracted dataset from disk
    // instead of re-synthesizing and re-extracting it.
    const auto data_ptr = core::capture_cached(scenario);
    const core::ExtractedData& data = *data_ptr;
    std::cout << "  " << data.features.size() << " labelled regions, "
              << util::percent(data.extraction_rate) << " extraction rate\n";

    core::ClassifierResult result;
    std::unique_ptr<ml::Classifier> prototype;
    if (!opts.load_model_path.empty()) {
      // Serve-side handoff: evaluate a model trained in a different
      // process (ml::load_model_file rejects malformed files with
      // util::DataError) on this capture, without retraining.
      const std::unique_ptr<ml::Classifier> loaded =
          ml::load_model_file(opts.load_model_path);
      std::cout << "Evaluating pre-trained " << loaded->name() << " from "
                << opts.load_model_path << " on the full capture...\n";
      result.classifier = loaded->name();
      result.confusion = ml::ConfusionMatrix{data.features.class_count};
      for (std::size_t i = 0; i < data.features.size(); ++i) {
        result.confusion.add(data.features.y[i],
                             loaded->predict(data.features.x[i]));
      }
      result.accuracy = result.confusion.accuracy();
    } else {
      prototype = parse_classifier(opts.classifier, opts.binned);
      std::cout << "Evaluating " << prototype->name()
                << (opts.cv_folds >= 2
                        ? " (" + std::to_string(opts.cv_folds) + "-fold CV)"
                        : " (80/20 split)")
                << "...\n";
      result = core::evaluate_classical(*prototype, data.features, opts.seed,
                                        opts.cv_folds, parallelism);
    }
    std::cout << "  accuracy " << util::percent(result.accuracy)
              << " (random guess "
              << util::percent(1.0 / data.features.class_count) << ")\n\n"
              << util::render_confusion(result.confusion.counts(),
                                        data.features.class_names);

    if (!opts.report_path.empty()) {
      core::ReportInputs report;
      report.scenario = scenario;
      report.data = &data;
      report.results = {result};
      std::ofstream out{opts.report_path};
      out << core::render_report(report);
      std::cout << "\nWrote report to " << opts.report_path << "\n";
    }
    if (!opts.features_path.empty() || !opts.arff_path.empty()) {
      std::vector<std::string> labels;
      for (const int y : data.features.y) {
        labels.push_back(
            data.features.class_names[static_cast<std::size_t>(y)]);
      }
      if (!opts.features_path.empty()) {
        std::ofstream out{opts.features_path};
        util::write_csv(out, data.features.feature_names, data.features.x,
                        labels);
        std::cout << "Wrote features to " << opts.features_path << "\n";
      }
      if (!opts.arff_path.empty()) {
        std::ofstream out{opts.arff_path};
        util::write_arff(out, "emoleak", data.features.feature_names,
                         data.features.x, labels, data.features.class_names);
        std::cout << "Wrote ARFF to " << opts.arff_path << "\n";
      }
    }
    if (!opts.model_path.empty()) {
      if (!prototype) {
        throw util::ConfigError{"--save-model requires training (drop --model)"};
      }
      // Refit on everything so the exported model uses all the data.
      const std::unique_ptr<ml::Classifier> final_model = prototype->clone();
      final_model->fit(data.features);
      ml::save_model_file(opts.model_path, *final_model);
      std::cout << "Wrote model to " << opts.model_path << "\n";
    }
    if (!opts.trace_path.empty()) {
      obs::set_trace_enabled(false);
      obs::write_trace_file(opts.trace_path);
      std::cout << "Wrote trace to " << opts.trace_path;
      if (const std::uint64_t dropped = obs::trace_dropped()) {
        std::cout << " (" << dropped << " spans dropped by ring wrap)";
      }
      std::cout << "\n";
    }
    if (opts.metrics) {
      const core::DatasetCacheStats cache = core::DatasetCache::instance().stats();
      util::TablePrinter ct{{"dataset cache", "hits", "misses", "evictions",
                             "entries", "bytes"}};
      const auto tier_row = [&](const char* tier,
                                const core::DatasetCacheTierStats& t) {
        ct.add_row({tier, std::to_string(t.hits), std::to_string(t.misses),
                    std::to_string(t.evictions), std::to_string(t.entries),
                    std::to_string(t.bytes)});
      };
      tier_row("memory", cache.memory);
      tier_row("disk", cache.disk);
      std::cout << "\nDataset cache (" << cache.misses << " builds):\n"
                << ct.str() << "\nMetrics registry:\n"
                << obs::Registry::instance().render_text();
    }
    return EXIT_SUCCESS;
  } catch (const std::exception& error) {
    std::cerr << "emoleak_cli: " << error.what() << "\n\n";
    usage();
    return EXIT_FAILURE;
  }
}
