// Example: the ear-speaker attack (paper contribution #2).
//
// During a normal handheld phone conversation the remote voice plays
// through the *ear speaker* at 36-46 dB — inaudible to bystanders and
// traditionally assumed to be too weak to matter. The paper shows that
// modern stereo-speaker phones leak enough vibration from the earpiece
// to classify the caller's emotion. This example walks through the
// three stages the paper describes:
//   (a) raw handheld capture — speech invisible under body motion,
//   (b) 8 Hz high-pass for region detection only,
//   (c) classification of features extracted from the *raw* samples.
#include <cstdlib>
#include <iostream>

#include "core/attack.h"
#include "ml/ensemble.h"
#include "util/table.h"

int main() {
  using namespace emoleak;

  core::ScenarioConfig scenario = core::ear_speaker_scenario(
      audio::tess_spec(), phone::oneplus_7t(), /*seed=*/7);
  scenario.corpus_fraction = 0.25;

  // Stage (a)/(b): show what the 8 Hz detection filter accomplishes.
  audio::DatasetSpec spec =
      audio::scaled_spec(scenario.dataset, scenario.corpus_fraction);
  const audio::Corpus corpus{spec, scenario.seed};
  phone::RecorderConfig rc;
  rc.speaker = scenario.speaker;
  rc.posture = scenario.posture;
  rc.seed = scenario.seed ^ 0x5E5510ULL;
  const phone::Recording rec =
      record_session(corpus, scenario.phone, rc);

  core::DetectorConfig unfiltered = core::handheld_detector_config();
  unfiltered.detection_highpass_hz = 0.0;
  const core::SpeechRegionDetector raw_det{unfiltered};
  const core::SpeechRegionDetector hpf_det{core::handheld_detector_config()};
  const auto raw_regions = raw_det.detect(rec.accel, rec.rate_hz);
  const auto hpf_regions = hpf_det.detect(rec.accel, rec.rate_hz);
  const double raw_rate =
      core::extraction_rate(core::label_regions(raw_regions, rec), rec);
  const double hpf_rate =
      core::extraction_rate(core::label_regions(hpf_regions, rec), rec);
  std::cout << "Word-region extraction from the handheld trace:\n"
            << "  without filter : " << util::percent(raw_rate)
            << " of played words (speech buried in hand/body motion)\n"
            << "  with 8 Hz HPF  : " << util::percent(hpf_rate)
            << " of played words (paper reports >= 45%)\n\n";

  // Stage (c): classify emotions from the raw-sample features with the
  // paper's ear-speaker classifier stable (Table VI).
  const core::ExtractedData data = core::extract(rec, scenario.pipeline);
  const core::ClassifierResult rf = core::evaluate_classical(
      ml::RandomForest{}, data.features, /*seed=*/9, /*cv=*/10);
  std::cout << "RandomForest, 10-fold cross-validation: "
            << util::percent(rf.accuracy) << " accuracy vs "
            << util::percent(1.0 / data.features.class_count)
            << " random guess — a "
            << util::fixed(rf.accuracy * data.features.class_count, 1)
            << "x improvement, matching the paper's ~4x claim.\n\n";
  std::cout << util::render_confusion(rf.confusion.counts(),
                                      data.features.class_names);
  std::cout << "\nTakeaway: even the quiet earpiece leaks the caller's "
               "emotional state through the zero-permission accelerometer.\n";
  return EXIT_SUCCESS;
}
