// Example: eavesdropping the emotional state of a voice call.
//
// Models the paper's headline threat (§III-A scenario b): the victim is
// on a speakerphone call; a zero-permission app logs the accelerometer
// and ships it to the attacker, who has previously trained emotion
// models on replayed corpora for the same phone model. This example
// plays the attacker end to end:
//
//   1. offline: train on a labelled replay session (TESS corpus),
//   2. online: capture an unlabelled "call" (fresh utterances through
//      the same channel) and classify each detected speech region,
//   3. aggregate region predictions into a per-call emotional profile.
#include <cstdlib>
#include <iostream>
#include <map>

#include "core/attack.h"
#include "ml/logistic.h"
#include "util/table.h"

int main() {
  using namespace emoleak;
  const phone::PhoneProfile victim_phone = phone::oneplus_7t();

  // ---- 1. Offline training on a replayed, labelled corpus. ----------
  core::ScenarioConfig training = core::loudspeaker_scenario(
      audio::tess_spec(), victim_phone, /*seed=*/1001);
  training.corpus_fraction = 0.35;
  const core::ExtractedData train_data = core::capture(training);
  ml::LogisticRegression model;
  model.fit(train_data.features);
  std::cout << "Attacker trained on " << train_data.features.size()
            << " labelled speech regions.\n\n";

  // ---- 2. The victim's call: same channel, unseen utterances. -------
  // The caller is mostly angry with some neutral stretches.
  audio::DatasetSpec call_spec = audio::scaled_spec(audio::tess_spec(), 0.05);
  const audio::Corpus call_corpus{call_spec, /*seed=*/2002};
  std::vector<std::size_t> call_utterances;
  for (const auto& entry : call_corpus.entries()) {
    if (entry.emotion == audio::Emotion::kAngry ||
        (entry.emotion == audio::Emotion::kNeutral && entry.index % 2 == 0)) {
      call_utterances.push_back(entry.index);
    }
  }
  phone::RecorderConfig rc;
  rc.seed = 3003;
  const phone::Recording call =
      record_session(call_corpus, call_utterances, victim_phone, rc);
  const core::ExtractedData call_data = core::extract(call, training.pipeline);

  // ---- 3. Classify each region and profile the call. ----------------
  std::map<int, int> votes;
  for (const auto& row : call_data.features.x) {
    ++votes[model.predict(row)];
  }
  util::TablePrinter t{{"emotion", "speech regions", "share"}};
  for (const auto& [cls, count] : votes) {
    t.add_row({call_data.features.class_names[static_cast<std::size_t>(cls)],
               std::to_string(count),
               util::percent(static_cast<double>(count) /
                             static_cast<double>(call_data.features.size()))});
  }
  std::cout << "Inferred emotional profile of the call ("
            << call_data.features.size() << " speech regions):\n"
            << t.str();

  const int angry_class = 0;  // TESS order: Angry first
  const double angry_share =
      static_cast<double>(votes[angry_class]) /
      static_cast<double>(call_data.features.size());
  std::cout << "\nConclusion: the attacker flags this call as "
            << (angry_share > 0.4 ? "predominantly ANGRY" : "mixed-emotion")
            << " using nothing but zero-permission accelerometer data.\n";
  return EXIT_SUCCESS;
}
