// Example: exporting extracted features for external toolchains.
//
// Reproduces the paper's artifact boundary (§IV-D): the MATLAB feature
// extractor writes CSV for the Keras CNN and ARFF for Weka. This
// example captures a small session and writes both files so the
// features can be inspected or consumed by other ML stacks.
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "core/attack.h"
#include "core/report.h"
#include "ml/logistic.h"
#include "util/csv.h"

int main() {
  using namespace emoleak;

  core::ScenarioConfig sc = core::loudspeaker_scenario(
      audio::savee_spec(), phone::oneplus_7t(), /*seed=*/5);
  const core::ExtractedData data = core::capture(sc);
  std::cout << "Extracted " << data.features.size()
            << " feature rows from a SAVEE replay session.\n";

  std::vector<std::string> labels;
  labels.reserve(data.features.size());
  for (const int y : data.features.y) {
    labels.push_back(data.features.class_names[static_cast<std::size_t>(y)]);
  }

  {
    std::ofstream csv{"emoleak_features.csv"};
    util::write_csv(csv, data.features.feature_names, data.features.x, labels);
  }
  std::cout << "Wrote emoleak_features.csv (for the CNN pipeline, SIV-D2).\n";

  {
    std::ofstream arff{"emoleak_features.arff"};
    util::write_arff(arff, "emoleak_savee", data.features.feature_names,
                     data.features.x, labels, data.features.class_names);
  }
  std::cout << "Wrote emoleak_features.arff (for Weka-style tools, SIV-D1).\n";

  // A complete experiment report for the archive.
  const core::ClassifierResult result =
      core::evaluate_classical(ml::LogisticRegression{}, data.features, 7);
  core::ReportInputs report;
  report.scenario = sc;
  report.data = &data;
  report.results = {result};
  report.title = "SAVEE / OnePlus 7T loudspeaker run";
  {
    std::ofstream md{"emoleak_report.md"};
    md << core::render_report(report);
  }
  std::cout << "Wrote emoleak_report.md (scenario + capture + classifier "
               "breakdown).\n";
  return EXIT_SUCCESS;
}
