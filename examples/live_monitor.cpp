// Example: live emotion monitoring with the streaming pipeline.
//
// The deployed shape of the attack: a background process receives
// accelerometer samples in small chunks (as Android delivers them) and
// must emit emotion events in real time, with bounded memory. This
// example trains a model offline, persists it with ml::save_model, then
// "deploys" it into a StreamingAttack fed 256-sample chunks.
//
//   --save-model PATH   persist the trained model file (the handoff
//                       artifact serve_demo / emoleak_cli --model load)
//   --model PATH        skip training and deploy a model file instead
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/attack.h"
#include "core/streaming.h"
#include "ml/logistic.h"
#include "ml/serialize.h"
#include "obs/obs.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace emoleak;

  // --threads N parallelizes the offline extraction stage (0 = all
  // cores, 1 = serial); the streaming stage is inherently sequential.
  util::Parallelism parallelism;
  std::string save_model_path;
  std::string load_model_path;
  std::string trace_path;
  bool metrics = false;
  // Value-taking flags consume argv[i + 1]; --metrics stands alone, so
  // the loop runs to argc and checks for the value where one is needed.
  const auto value_of = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "live_monitor: missing value for " << argv[i] << "\n";
      std::exit(EXIT_FAILURE);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      try {
        parallelism.threads = std::stoul(value_of(i));
      } catch (const std::exception&) {
        std::cerr << "live_monitor: --threads expects a number\n";
        return EXIT_FAILURE;
      }
    } else if (std::strcmp(argv[i], "--save-model") == 0) {
      save_model_path = value_of(i);
    } else if (std::strcmp(argv[i], "--model") == 0) {
      load_model_path = value_of(i);
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace_path = value_of(i);
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
    }
  }
  if (!trace_path.empty()) obs::set_trace_enabled(true);

  // ---- Offline: train (or load) the attacker's model. ---------------
  std::shared_ptr<const ml::Classifier> deployed;
  std::vector<std::string> class_names;
  if (!load_model_path.empty()) {
    // The handoff artifact from a previous run (or emoleak_cli
    // --save-model): a real file, not an in-memory blob.
    deployed = ml::load_model_file(load_model_path);
    class_names = audio::Corpus{audio::tess_spec(), /*seed=*/21}.class_names();
    std::cout << "Deployed pre-trained " << deployed->name() << " from "
              << load_model_path << ".\n\n";
  } else {
    core::ScenarioConfig training = core::loudspeaker_scenario(
        audio::tess_spec(), phone::oneplus_7t(), /*seed=*/21);
    training.corpus_fraction = 0.2;
    training.pipeline.parallelism = parallelism;
    const core::ExtractedData train_data = core::capture(training);
    ml::LogisticRegression trained;
    trained.fit(train_data.features);
    class_names = train_data.features.class_names;

    std::stringstream model_blob;  // a file shipped to the implant
    ml::save_model(model_blob, trained);
    std::cout << "Trained on " << train_data.features.size()
              << " regions; serialized model is " << model_blob.str().size()
              << " bytes.\n\n";
    if (!save_model_path.empty()) {
      ml::save_model_file(save_model_path, trained);
      std::cout << "Wrote model to " << save_model_path << ".\n\n";
    }

    // ---- Online: the implant loads the model and monitors live. -----
    deployed = ml::load_model(model_blob);
  }

  const audio::Corpus live_corpus{audio::scaled_spec(audio::tess_spec(), 0.03),
                                  /*seed=*/22};
  phone::RecorderConfig rc;
  rc.seed = 23;
  const phone::Recording live =
      record_session(live_corpus, phone::oneplus_7t(), rc);

  core::StreamingConfig stream_cfg;
  stream_cfg.detector = core::tabletop_detector_config();
  core::StreamingAttack monitor{stream_cfg, live.rate_hz, deployed};

  std::vector<core::EmotionEvent> events;
  for (std::size_t i = 0; i < live.accel.size(); i += 256) {
    const std::size_t hi = std::min(i + 256, live.accel.size());
    auto chunk = monitor.push(
        std::span<const double>{live.accel.data() + i, hi - i});
    events.insert(events.end(), chunk.begin(), chunk.end());
  }
  if (auto last = monitor.finish()) events.push_back(*last);

  // ---- Report: a live timeline of classified speech. ----------------
  util::TablePrinter t{{"time (s)", "duration (s)", "emotion", "confidence"}};
  std::size_t shown = 0;
  for (const auto& e : events) {
    if (e.predicted_class < 0 || shown >= 12) continue;
    ++shown;
    const double t0 = static_cast<double>(e.start_sample) / live.rate_hz;
    const double dur =
        static_cast<double>(e.end_sample - e.start_sample) / live.rate_hz;
    t.add_row({util::fixed(t0, 1), util::fixed(dur, 2),
               class_names[static_cast<std::size_t>(e.predicted_class)],
               util::percent(e.probabilities[static_cast<std::size_t>(
                   e.predicted_class)])});
  }
  std::cout << "First " << shown << " of " << events.size()
            << " live emotion events:\n"
            << t.str();
  std::cout << "\nThe monitor used bounded memory (a few seconds of history) "
               "and processed the stream chunk by chunk — exactly the shape "
               "of the malicious app in the paper's threat model (SIII-A).\n";

  if (!trace_path.empty()) {
    obs::set_trace_enabled(false);
    obs::write_trace_file(trace_path);
    std::cout << "\nWrote trace to " << trace_path << "\n";
  }
  if (metrics) {
    std::cout << "\nMetrics registry:\n"
              << obs::Registry::instance().render_text();
  }
  return EXIT_SUCCESS;
}
