// Example: the emoleak::serve inference service end-to-end.
//
// The deployed threat model (paper §III-A) at fleet scale: an operator
// trains a model offline, ships it as a file, and a service classifies
// exfiltrated accelerometer streams from many devices concurrently.
// This demo
//
//   1. trains a Logistic model on TESS and persists it with
//      ml::save_model_file (the offline-train -> serve handoff),
//   2. warm-loads it into a ModelRegistry,
//   3. drives N synthetic phone recordings through ServeService over
//      the wire protocol — one producer thread per device, pushes
//      retried on overload, a pump loop draining batches —
//   4. cross-checks every stream's event sequence against a standalone
//      core::StreamingAttack fed the same chunks: the sequences must be
//      bit-identical (same regions, same probabilities) at any thread
//      count, and
//   5. prints the service counters (requests, rejections, p50/p99
//      drain latency).
//
// With --listen PORT it instead exposes the trained service on a real
// TCP socket (127.0.0.1:PORT, the emoleak::net epoll transport) and
// serves until SIGINT — the counterpart for examples/loadgen or any
// client speaking the wire protocol.
//
// With --retrain-every MS a retrainer thread refits the emotion model
// as a histogram-binned RandomForest (ml::TreeConfig::exact = false)
// every MS milliseconds *while traffic flows* and hot-swaps each new
// version through the ModelRegistry (add + activate). Binned training
// is deterministic, so every retrained version is bit-identical and
// the served event streams still match the standalone reference —
// the drain-latency percentiles then show that swapping models under
// load never stalls the serving path.
//
//   serve_demo [--streams N] [--threads N] [--trace PATH] [--metrics]
//              [--retrain-every MS]
//   serve_demo --listen PORT [--threads N] [--retrain-every MS]
#include <csignal>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/attack.h"
#include "core/dataset_cache.h"
#include "core/streaming.h"
#include "ml/ensemble.h"
#include "ml/logistic.h"
#include "ml/serialize.h"
#include "net/server.h"
#include "obs/obs.h"
#include "serve/service.h"
#include "util/table.h"

namespace {

using namespace emoleak;

constexpr std::size_t kChunk = 256;

/// Reference implementation: the same chunks through one standalone
/// StreamingAttack.
std::vector<core::EmotionEvent> standalone_events(
    const phone::Recording& recording, const core::StreamingConfig& cfg,
    std::shared_ptr<const ml::Classifier> model) {
  core::StreamingAttack attack{cfg, recording.rate_hz, std::move(model)};
  std::vector<core::EmotionEvent> events;
  for (std::size_t i = 0; i < recording.accel.size(); i += kChunk) {
    const std::size_t hi = std::min(i + kChunk, recording.accel.size());
    auto chunk = attack.push(
        std::span<const double>{recording.accel.data() + i, hi - i});
    events.insert(events.end(), chunk.begin(), chunk.end());
  }
  if (auto last = attack.finish()) events.push_back(*last);
  return events;
}

bool same_events(const std::vector<core::EmotionEvent>& a,
                 const std::vector<core::EmotionEvent>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].start_sample != b[i].start_sample ||
        a[i].end_sample != b[i].end_sample ||
        a[i].predicted_class != b[i].predicted_class ||
        a[i].probabilities != b[i].probabilities) {
      return false;
    }
  }
  return true;
}

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

/// --listen mode: serve over TCP until SIGINT/SIGTERM, then stop
/// gracefully (open sessions flushed, final events delivered).
int listen_forever(serve::ServeService& service, std::uint16_t port) {
  net::NetServerConfig net_cfg;
  net_cfg.port = port;
  net::NetServer server{net_cfg, service};
  server.start();
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::cout << "listening on 127.0.0.1:" << server.port()
            << " — Ctrl-C to stop (open sessions are flushed)" << std::endl;
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds{100});
  }
  std::cout << "\nstopping...\n";
  server.stop();

  const net::NetServerStats ns = server.stats();
  const serve::ServeStats stats = service.stats();
  util::TablePrinter table{{"counter", "value"}};
  table.add_row({"connections accepted", std::to_string(ns.connections_accepted)});
  table.add_row({"frames in", std::to_string(ns.frames_in)});
  table.add_row({"partial reads", std::to_string(ns.partial_reads)});
  table.add_row({"events routed", std::to_string(ns.events_routed)});
  table.add_row({"overload acks", std::to_string(ns.overload_acks)});
  table.add_row({"bytes in/out", std::to_string(ns.bytes_in) + " / " +
                                     std::to_string(ns.bytes_out)});
  table.add_row({"drain p99 (us)", util::fixed(stats.drain_p99_us, 1)});
  std::cout << "\nTransport counters:\n" << table.str();
  return EXIT_SUCCESS;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t stream_count = 8;
  std::size_t threads = 0;  // 0 = all cores
  std::string trace_path;
  bool metrics = false;
  int listen_port = -1;
  std::size_t retrain_every_ms = 0;  // 0 = no retraining
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--streams") == 0 && i + 1 < argc) {
      stream_count = std::stoul(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::stoul(argv[++i]);
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
    } else if (std::strcmp(argv[i], "--listen") == 0 && i + 1 < argc) {
      listen_port = std::stoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--retrain-every") == 0 && i + 1 < argc) {
      retrain_every_ms = std::stoul(argv[++i]);
    }
  }
  if (stream_count == 0) stream_count = 1;
  // Listen mode needs no synthetic device streams — just one recording
  // to pin the service's sample rate.
  if (listen_port >= 0) stream_count = 1;
  if (!trace_path.empty()) obs::set_trace_enabled(true);

  // ---- Offline: train and persist the operator's model. --------------
  // The dataset comes through the tiered DatasetCache: point
  // EMOLEAK_DATASET_CACHE_DIR at a directory and repeated runs mmap
  // the extracted dataset from disk instead of re-synthesizing it.
  core::ScenarioConfig training = core::loudspeaker_scenario(
      audio::tess_spec(), phone::oneplus_7t(), /*seed=*/21);
  training.corpus_fraction = 0.1;
  training.pipeline.parallelism = util::Parallelism{.threads = threads};
  const auto train_data = core::capture_cached(training);

  // Retrain mode serves the paper's emotion forest on the histogram-
  // binned training path (what the retrainer refits under load);
  // otherwise the original logistic model keeps the demo light.
  ml::RandomForestConfig forest_cfg;
  forest_cfg.tree_count = 30;
  forest_cfg.tree.exact = false;  // histogram-binned split finding
  forest_cfg.seed = 77;
  forest_cfg.parallelism = util::Parallelism{.threads = threads};
  const std::string model_path = "/tmp/emoleak_serve_demo_model.txt";
  const char* model_name = "tess-logistic";
  if (retrain_every_ms > 0) {
    model_name = "tess-forest";
    ml::RandomForest trained{forest_cfg};
    trained.fit(train_data->features);
    ml::save_model_file(model_path, trained);
  } else {
    ml::LogisticRegression trained;
    trained.fit(train_data->features);
    ml::save_model_file(model_path, trained);
  }
  std::cout << "Trained on " << train_data->features.size()
            << " regions; model persisted to " << model_path << "\n";

  // ---- Synthesize one recording per device stream. -------------------
  std::vector<phone::Recording> recordings;
  recordings.reserve(stream_count);
  for (std::size_t s = 0; s < stream_count; ++s) {
    const audio::Corpus corpus{audio::scaled_spec(audio::tess_spec(), 0.01),
                               /*seed=*/100 + s};
    phone::RecorderConfig rc;
    rc.seed = 200 + s;
    recordings.push_back(record_session(corpus, phone::oneplus_7t(), rc));
  }

  // ---- Online: registry + service. -----------------------------------
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->load_file(model_name, model_path);

  serve::ServeConfig cfg;
  cfg.session.stream.detector = core::tabletop_detector_config();
  cfg.session.sample_rate_hz = recordings.front().rate_hz;
  cfg.session.max_sessions = listen_port >= 0 ? 64 : stream_count;
  cfg.batcher.shard_count = std::max<std::size_t>(stream_count, 8);
  cfg.batcher.queue_capacity = 64;
  cfg.parallelism = util::Parallelism{.threads = threads};
  serve::ServeService service{cfg, registry};

  // ---- Live retraining: refit + hot-swap while traffic flows. --------
  // Each cycle refits the forest on the binned path and publishes the
  // result as a new registry version (add bumps the name, activate
  // makes it the default for new resolutions; in-flight sessions
  // re-resolve on the generation tick). Training is deterministic, so
  // every version predicts identically and the bit-identical stream
  // check below still holds across however many swaps landed mid-run.
  std::atomic<bool> stop_retrainer{false};
  std::atomic<std::size_t> retrain_count{0};
  std::atomic<std::uint64_t> retrain_total_us{0};
  std::thread retrainer;
  if (retrain_every_ms > 0) {
    retrainer = std::thread([&] {
      while (!stop_retrainer.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds{retrain_every_ms});
        if (stop_retrainer.load(std::memory_order_acquire)) break;
        const auto t0 = std::chrono::steady_clock::now();
        auto forest = std::make_shared<ml::RandomForest>(forest_cfg);
        forest->fit(train_data->features);
        const std::uint32_t version = registry->add(model_name, forest);
        registry->activate(version);
        const auto dt = std::chrono::steady_clock::now() - t0;
        retrain_total_us.fetch_add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(dt).count()));
        retrain_count.fetch_add(1);
      }
    });
  }
  const auto stop_retraining = [&] {
    stop_retrainer.store(true, std::memory_order_release);
    if (retrainer.joinable()) retrainer.join();
  };
  const auto print_retrain_stats = [&] {
    if (retrain_every_ms == 0) return;
    const std::size_t n = retrain_count.load();
    util::TablePrinter rt{{"retraining", "value"}};
    rt.add_row({"retrains (binned forest fits)", std::to_string(n)});
    rt.add_row({"model versions live",
                std::to_string(registry->list().size())});
    rt.add_row({"registry generation",
                std::to_string(registry->generation())});
    rt.add_row(
        {"mean retrain (ms)",
         n == 0 ? "-" : util::fixed(static_cast<double>(retrain_total_us.load()) /
                                        (1000.0 * static_cast<double>(n)),
                                    1)});
    std::cout << "\nRetrain-and-hot-swap under load:\n" << rt.str();
  };

  if (listen_port >= 0) {
    const int rc = listen_forever(service, static_cast<std::uint16_t>(listen_port));
    stop_retraining();
    print_retrain_stats();
    return rc;
  }

  // Producer per device: push 256-sample chunks over the wire protocol,
  // retrying on overload — the service sheds load instead of queueing
  // unboundedly, so producers see backpressure, not latency cliffs.
  std::atomic<std::size_t> live_producers{stream_count};
  std::vector<std::thread> producers;
  producers.reserve(stream_count);
  for (std::size_t s = 0; s < stream_count; ++s) {
    producers.emplace_back([&, s] {
      const std::vector<double>& accel = recordings[s].accel;
      for (std::size_t i = 0; i < accel.size(); i += kChunk) {
        const std::size_t hi = std::min(i + kChunk, accel.size());
        const serve::ChunkPushMsg msg{
            s, std::vector<double>{accel.begin() + static_cast<std::ptrdiff_t>(i),
                                   accel.begin() + static_cast<std::ptrdiff_t>(hi)}};
        for (;;) {
          const std::string reply = service.handle(serve::encode_one(msg));
          serve::FrameReader reader{reply};
          const auto ack = std::get<serve::AckMsg>(*reader.next());
          if (ack.status == serve::Status::kOk) break;
          std::this_thread::yield();  // overloaded: wait for the pump
        }
      }
      live_producers.fetch_sub(1);
    });
  }

  // Pump: drain batches until every producer is done and queues are dry.
  std::size_t processed = 0;
  while (live_producers.load() > 0) {
    processed += service.drain();
    std::this_thread::yield();
  }
  for (std::thread& t : producers) t.join();
  for (std::size_t s = 0; s < stream_count; ++s) {
    (void)service.handle(
        serve::encode_one(serve::StreamFinishMsg{s}));
  }
  processed += service.drain();
  stop_retraining();

  // ---- Verify: per-stream bit-identical to the standalone attack. ----
  std::vector<std::vector<core::EmotionEvent>> served(stream_count);
  for (auto& event : service.take_events()) {
    served[event.stream_id].push_back(event.event);
  }

  util::TablePrinter table{{"stream", "events", "matches standalone"}};
  bool all_match = true;
  for (std::size_t s = 0; s < stream_count; ++s) {
    const auto reference =
        standalone_events(recordings[s], cfg.session.stream, registry->current());
    const bool match = same_events(served[s], reference);
    all_match = all_match && match;
    table.add_row({std::to_string(s), std::to_string(served[s].size()),
                   match ? "yes (bit-identical)" : "NO"});
  }
  std::cout << "\nServed " << stream_count << " concurrent device streams ("
            << processed << " requests processed):\n"
            << table.str();

  const serve::ServeStats stats = service.stats();
  util::TablePrinter st{{"counter", "value"}};
  st.add_row({"requests", std::to_string(stats.requests)});
  st.add_row({"accepted", std::to_string(stats.accepted)});
  st.add_row({"rejected (overload)", std::to_string(stats.rejected_overload)});
  st.add_row({"events emitted", std::to_string(stats.events_emitted)});
  st.add_row({"drain cycles", std::to_string(stats.drains)});
  st.add_row({"sessions created", std::to_string(stats.sessions_created)});
  st.add_row({"drain p50 (us)", util::fixed(stats.drain_p50_us, 1)});
  st.add_row({"drain p99 (us)", util::fixed(stats.drain_p99_us, 1)});
  st.add_row({"drain samples", std::to_string(stats.drain_count)});
  std::cout << "\nService counters:\n" << st.str();
  print_retrain_stats();

  // Full drain-latency distribution as shipped over the stats wire
  // message: (upper_bound_us, count) pairs for every non-empty bucket.
  if (!stats.drain_hist.empty()) {
    util::TablePrinter hist{{"drain latency <= (us)", "count"}};
    for (const auto& [upper_us, count] : stats.drain_hist) {
      hist.add_row({util::fixed(upper_us, 1), std::to_string(count)});
    }
    std::cout << "\nDrain latency histogram:\n" << hist.str();
  }

  if (!trace_path.empty()) {
    obs::set_trace_enabled(false);
    obs::write_trace_file(trace_path);
    std::cout << "\nWrote trace to " << trace_path << "\n";
  }
  if (metrics) {
    std::cout << "\nMetrics registry:\n"
              << obs::Registry::instance().render_text();
  }

  if (!all_match) {
    std::cerr << "\nFAIL: served events differ from the standalone "
                 "StreamingAttack.\n";
    return EXIT_FAILURE;
  }
  std::cout << "\nEvery stream's event sequence is bit-identical to a "
               "standalone StreamingAttack — batching and sharding change "
               "throughput, never results.\n";
  return EXIT_SUCCESS;
}
