// Example: the emoleak::serve inference service end-to-end.
//
// The deployed threat model (paper §III-A) at fleet scale: an operator
// trains a model offline, ships it as a file, and a service classifies
// exfiltrated accelerometer streams from many devices concurrently.
// This demo
//
//   1. trains a Logistic model on TESS and persists it with
//      ml::save_model_file (the offline-train -> serve handoff),
//   2. warm-loads it into a ModelRegistry,
//   3. drives N synthetic phone recordings through ServeService over
//      the wire protocol — one producer thread per device, pushes
//      retried on overload, a pump loop draining batches —
//   4. cross-checks every stream's event sequence against a standalone
//      core::StreamingAttack fed the same chunks: the sequences must be
//      bit-identical (same regions, same probabilities) at any thread
//      count, and
//   5. prints the service counters (requests, rejections, p50/p99
//      drain latency).
//
// With --listen PORT it instead exposes the trained service on a real
// TCP socket (127.0.0.1:PORT, the emoleak::net epoll transport) and
// serves until SIGINT — the counterpart for examples/loadgen or any
// client speaking the wire protocol.
//
//   serve_demo [--streams N] [--threads N] [--trace PATH] [--metrics]
//   serve_demo --listen PORT [--threads N]
#include <csignal>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/attack.h"
#include "core/streaming.h"
#include "ml/logistic.h"
#include "ml/serialize.h"
#include "net/server.h"
#include "obs/obs.h"
#include "serve/service.h"
#include "util/table.h"

namespace {

using namespace emoleak;

constexpr std::size_t kChunk = 256;

/// Reference implementation: the same chunks through one standalone
/// StreamingAttack.
std::vector<core::EmotionEvent> standalone_events(
    const phone::Recording& recording, const core::StreamingConfig& cfg,
    std::shared_ptr<const ml::Classifier> model) {
  core::StreamingAttack attack{cfg, recording.rate_hz, std::move(model)};
  std::vector<core::EmotionEvent> events;
  for (std::size_t i = 0; i < recording.accel.size(); i += kChunk) {
    const std::size_t hi = std::min(i + kChunk, recording.accel.size());
    auto chunk = attack.push(
        std::span<const double>{recording.accel.data() + i, hi - i});
    events.insert(events.end(), chunk.begin(), chunk.end());
  }
  if (auto last = attack.finish()) events.push_back(*last);
  return events;
}

bool same_events(const std::vector<core::EmotionEvent>& a,
                 const std::vector<core::EmotionEvent>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].start_sample != b[i].start_sample ||
        a[i].end_sample != b[i].end_sample ||
        a[i].predicted_class != b[i].predicted_class ||
        a[i].probabilities != b[i].probabilities) {
      return false;
    }
  }
  return true;
}

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

/// --listen mode: serve over TCP until SIGINT/SIGTERM, then stop
/// gracefully (open sessions flushed, final events delivered).
int listen_forever(serve::ServeService& service, std::uint16_t port) {
  net::NetServerConfig net_cfg;
  net_cfg.port = port;
  net::NetServer server{net_cfg, service};
  server.start();
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::cout << "listening on 127.0.0.1:" << server.port()
            << " — Ctrl-C to stop (open sessions are flushed)" << std::endl;
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds{100});
  }
  std::cout << "\nstopping...\n";
  server.stop();

  const net::NetServerStats ns = server.stats();
  const serve::ServeStats stats = service.stats();
  util::TablePrinter table{{"counter", "value"}};
  table.add_row({"connections accepted", std::to_string(ns.connections_accepted)});
  table.add_row({"frames in", std::to_string(ns.frames_in)});
  table.add_row({"partial reads", std::to_string(ns.partial_reads)});
  table.add_row({"events routed", std::to_string(ns.events_routed)});
  table.add_row({"overload acks", std::to_string(ns.overload_acks)});
  table.add_row({"bytes in/out", std::to_string(ns.bytes_in) + " / " +
                                     std::to_string(ns.bytes_out)});
  table.add_row({"drain p99 (us)", util::fixed(stats.drain_p99_us, 1)});
  std::cout << "\nTransport counters:\n" << table.str();
  return EXIT_SUCCESS;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t stream_count = 8;
  std::size_t threads = 0;  // 0 = all cores
  std::string trace_path;
  bool metrics = false;
  int listen_port = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--streams") == 0 && i + 1 < argc) {
      stream_count = std::stoul(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::stoul(argv[++i]);
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
    } else if (std::strcmp(argv[i], "--listen") == 0 && i + 1 < argc) {
      listen_port = std::stoi(argv[++i]);
    }
  }
  if (stream_count == 0) stream_count = 1;
  // Listen mode needs no synthetic device streams — just one recording
  // to pin the service's sample rate.
  if (listen_port >= 0) stream_count = 1;
  if (!trace_path.empty()) obs::set_trace_enabled(true);

  // ---- Offline: train and persist the operator's model. --------------
  core::ScenarioConfig training = core::loudspeaker_scenario(
      audio::tess_spec(), phone::oneplus_7t(), /*seed=*/21);
  training.corpus_fraction = 0.1;
  training.pipeline.parallelism = util::Parallelism{.threads = threads};
  const core::ExtractedData train_data = core::capture(training);
  ml::LogisticRegression trained;
  trained.fit(train_data.features);
  const std::string model_path = "/tmp/emoleak_serve_demo_model.txt";
  ml::save_model_file(model_path, trained);
  std::cout << "Trained on " << train_data.features.size()
            << " regions; model persisted to " << model_path << "\n";

  // ---- Synthesize one recording per device stream. -------------------
  std::vector<phone::Recording> recordings;
  recordings.reserve(stream_count);
  for (std::size_t s = 0; s < stream_count; ++s) {
    const audio::Corpus corpus{audio::scaled_spec(audio::tess_spec(), 0.01),
                               /*seed=*/100 + s};
    phone::RecorderConfig rc;
    rc.seed = 200 + s;
    recordings.push_back(record_session(corpus, phone::oneplus_7t(), rc));
  }

  // ---- Online: registry + service. -----------------------------------
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->load_file("tess-logistic", model_path);

  serve::ServeConfig cfg;
  cfg.session.stream.detector = core::tabletop_detector_config();
  cfg.session.sample_rate_hz = recordings.front().rate_hz;
  cfg.session.max_sessions = listen_port >= 0 ? 64 : stream_count;
  cfg.batcher.shard_count = std::max<std::size_t>(stream_count, 8);
  cfg.batcher.queue_capacity = 64;
  cfg.parallelism = util::Parallelism{.threads = threads};
  serve::ServeService service{cfg, registry};

  if (listen_port >= 0) {
    return listen_forever(service, static_cast<std::uint16_t>(listen_port));
  }

  // Producer per device: push 256-sample chunks over the wire protocol,
  // retrying on overload — the service sheds load instead of queueing
  // unboundedly, so producers see backpressure, not latency cliffs.
  std::atomic<std::size_t> live_producers{stream_count};
  std::vector<std::thread> producers;
  producers.reserve(stream_count);
  for (std::size_t s = 0; s < stream_count; ++s) {
    producers.emplace_back([&, s] {
      const std::vector<double>& accel = recordings[s].accel;
      for (std::size_t i = 0; i < accel.size(); i += kChunk) {
        const std::size_t hi = std::min(i + kChunk, accel.size());
        const serve::ChunkPushMsg msg{
            s, std::vector<double>{accel.begin() + static_cast<std::ptrdiff_t>(i),
                                   accel.begin() + static_cast<std::ptrdiff_t>(hi)}};
        for (;;) {
          const std::string reply = service.handle(serve::encode_one(msg));
          serve::FrameReader reader{reply};
          const auto ack = std::get<serve::AckMsg>(*reader.next());
          if (ack.status == serve::Status::kOk) break;
          std::this_thread::yield();  // overloaded: wait for the pump
        }
      }
      live_producers.fetch_sub(1);
    });
  }

  // Pump: drain batches until every producer is done and queues are dry.
  std::size_t processed = 0;
  while (live_producers.load() > 0) {
    processed += service.drain();
    std::this_thread::yield();
  }
  for (std::thread& t : producers) t.join();
  for (std::size_t s = 0; s < stream_count; ++s) {
    (void)service.handle(
        serve::encode_one(serve::StreamFinishMsg{s}));
  }
  processed += service.drain();

  // ---- Verify: per-stream bit-identical to the standalone attack. ----
  std::vector<std::vector<core::EmotionEvent>> served(stream_count);
  for (auto& event : service.take_events()) {
    served[event.stream_id].push_back(event.event);
  }

  util::TablePrinter table{{"stream", "events", "matches standalone"}};
  bool all_match = true;
  for (std::size_t s = 0; s < stream_count; ++s) {
    const auto reference =
        standalone_events(recordings[s], cfg.session.stream, registry->current());
    const bool match = same_events(served[s], reference);
    all_match = all_match && match;
    table.add_row({std::to_string(s), std::to_string(served[s].size()),
                   match ? "yes (bit-identical)" : "NO"});
  }
  std::cout << "\nServed " << stream_count << " concurrent device streams ("
            << processed << " requests processed):\n"
            << table.str();

  const serve::ServeStats stats = service.stats();
  util::TablePrinter st{{"counter", "value"}};
  st.add_row({"requests", std::to_string(stats.requests)});
  st.add_row({"accepted", std::to_string(stats.accepted)});
  st.add_row({"rejected (overload)", std::to_string(stats.rejected_overload)});
  st.add_row({"events emitted", std::to_string(stats.events_emitted)});
  st.add_row({"drain cycles", std::to_string(stats.drains)});
  st.add_row({"sessions created", std::to_string(stats.sessions_created)});
  st.add_row({"drain p50 (us)", util::fixed(stats.drain_p50_us, 1)});
  st.add_row({"drain p99 (us)", util::fixed(stats.drain_p99_us, 1)});
  st.add_row({"drain samples", std::to_string(stats.drain_count)});
  std::cout << "\nService counters:\n" << st.str();

  // Full drain-latency distribution as shipped over the stats wire
  // message: (upper_bound_us, count) pairs for every non-empty bucket.
  if (!stats.drain_hist.empty()) {
    util::TablePrinter hist{{"drain latency <= (us)", "count"}};
    for (const auto& [upper_us, count] : stats.drain_hist) {
      hist.add_row({util::fixed(upper_us, 1), std::to_string(count)});
    }
    std::cout << "\nDrain latency histogram:\n" << hist.str();
  }

  if (!trace_path.empty()) {
    obs::set_trace_enabled(false);
    obs::write_trace_file(trace_path);
    std::cout << "\nWrote trace to " << trace_path << "\n";
  }
  if (metrics) {
    std::cout << "\nMetrics registry:\n"
              << obs::Registry::instance().render_text();
  }

  if (!all_match) {
    std::cerr << "\nFAIL: served events differ from the standalone "
                 "StreamingAttack.\n";
    return EXIT_FAILURE;
  }
  std::cout << "\nEvery stream's event sequence is bit-identical to a "
               "standalone StreamingAttack — batching and sharding change "
               "throughput, never results.\n";
  return EXIT_SUCCESS;
}
