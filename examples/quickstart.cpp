// Quickstart: the EmoLeak attack end to end in ~40 lines.
//
// Synthesizes a slice of the TESS corpus, replays it through a
// simulated OnePlus 7T loudspeaker with the phone on a table, captures
// the accelerometer, extracts speech regions + Table-II features, and
// trains the Logistic classifier to recover the speaker's emotion —
// no microphone, no permissions, just the motion sensor.
#include <cstdlib>
#include <iostream>

#include "core/attack.h"
#include "ml/logistic.h"
#include "util/table.h"

int main() {
  using namespace emoleak;

  // 1. Scenario: TESS replayed on a OnePlus 7T loudspeaker (table-top).
  core::ScenarioConfig scenario = core::loudspeaker_scenario(
      audio::tess_spec(), phone::oneplus_7t(), /*seed=*/42);
  scenario.corpus_fraction = 0.15;  // 420 utterances keeps this instant

  // 2. The attacker's capture stage: record accelerometer during
  //    playback, detect speech regions, extract features.
  const core::ExtractedData data = core::capture(scenario);
  std::cout << "Captured " << data.features.size() << " speech regions ("
            << util::percent(data.extraction_rate)
            << " of played utterances detected)\n";

  // 3. Train the emotion classifier on the leaked vibrations.
  const ml::LogisticRegression prototype;
  const core::ClassifierResult result =
      core::evaluate_classical(prototype, data.features, /*seed=*/7);

  std::cout << "Emotion recognition accuracy: "
            << util::percent(result.accuracy) << " (random guess "
            << util::percent(1.0 / data.features.class_count) << ")\n\n";
  std::cout << util::render_confusion(result.confusion.counts(),
                                      data.features.class_names);
  return EXIT_SUCCESS;
}
