// Table-II time- and frequency-domain features.
//
// The paper extracts 12 time-domain and 12 frequency-domain features
// from every detected speech region (raw, unfiltered accelerometer
// samples — §III-B2 shows filtering destroys them) and feeds them to
// Weka classifiers and a 1-D CNN. Frequency features follow the
// standard timbre-toolbox definitions (Krimphoff irregularity-K,
// Jensen irregularity-J, McAdams smoothness, sharpness in acum, ...).
#pragma once

#include <array>
#include <span>
#include <string>
#include <vector>

#include "util/workspace.h"

namespace emoleak::features {

inline constexpr std::size_t kTimeFeatureCount = 12;
inline constexpr std::size_t kFreqFeatureCount = 12;
inline constexpr std::size_t kFeatureCount = kTimeFeatureCount + kFreqFeatureCount;

/// Names in extraction order (time features first).
[[nodiscard]] const std::vector<std::string>& feature_names();

/// Stable signature of the extracted feature schema (dimension count
/// plus the names in extraction order). The dataset cache folds this
/// into its keys so cached datasets invalidate if the Table-II feature
/// set ever changes shape.
[[nodiscard]] std::string schema_signature();

/// 12 time-domain features of a region: Min, Max, Mean, StdDev,
/// Variance, Range, CV, Skewness, Kurtosis, Quantile25, Quantile50,
/// MeanCrossingRate. Requires a non-empty region.
[[nodiscard]] std::array<double, kTimeFeatureCount> time_features(
    std::span<const double> region);

/// 12 frequency-domain features from the magnitude spectrum of the
/// region: Energy, Entropy, FrequencyRatio, IrregularityK,
/// IrregularityJ, Sharpness, Smoothness, SpecCentroid, SpecStdDev,
/// SpecCrest, SpecSkewness, SpecKurt.
/// `split_hz` is the boundary used by FrequencyRatio (energy above vs
/// below; default 50 Hz separates the F0 band from envelope energy).
[[nodiscard]] std::array<double, kFreqFeatureCount> freq_features(
    std::span<const double> region, double sample_rate_hz,
    double split_hz = 50.0);

/// As above with an explicit scratch arena for the DC-removed copy and
/// the magnitude spectrum (zero heap allocations once `ws` is warm).
[[nodiscard]] std::array<double, kFreqFeatureCount> freq_features(
    std::span<const double> region, double sample_rate_hz, double split_hz,
    util::Workspace& ws);

/// Full 24-dimensional feature vector for one region. Spectral scratch
/// comes from the calling thread's workspace.
[[nodiscard]] std::vector<double> extract_features(std::span<const double> region,
                                                   double sample_rate_hz);

/// As above with an explicit scratch arena. Only the returned vector
/// itself is heap-allocated.
[[nodiscard]] std::vector<double> extract_features(std::span<const double> region,
                                                   double sample_rate_hz,
                                                   util::Workspace& ws);

}  // namespace emoleak::features
