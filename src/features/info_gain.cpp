#include "features/info_gain.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.h"

namespace emoleak::features {

double label_entropy(std::span<const int> labels, int class_count) {
  if (labels.empty()) throw util::DataError{"label_entropy: empty labels"};
  if (class_count <= 0) throw util::DataError{"label_entropy: class_count <= 0"};
  std::vector<std::size_t> counts(static_cast<std::size_t>(class_count), 0);
  for (const int y : labels) {
    if (y < 0 || y >= class_count) {
      throw util::DataError{"label_entropy: label out of range"};
    }
    ++counts[static_cast<std::size_t>(y)];
  }
  const double n = static_cast<double>(labels.size());
  double h = 0.0;
  for (const std::size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / n;
    h -= p * std::log2(p);
  }
  return h;
}

double information_gain(std::span<const double> values,
                        std::span<const int> labels, int class_count,
                        std::size_t bins) {
  if (values.size() != labels.size()) {
    throw util::DataError{"information_gain: values/labels size mismatch"};
  }
  if (bins < 2) throw util::DataError{"information_gain: bins must be >= 2"};
  const double h_prior = label_entropy(labels, class_count);

  // Equal-frequency binning via rank order.
  std::vector<std::size_t> order(values.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&values](std::size_t a, std::size_t b) {
    return values[a] < values[b];
  });

  const std::size_t n = values.size();
  double h_cond = 0.0;
  std::size_t start = 0;
  for (std::size_t b = 0; b < bins && start < n; ++b) {
    std::size_t end = (b + 1) * n / bins;
    if (end <= start) end = start + 1;
    // Keep ties in the same bin so the discretization is well-defined.
    while (end < n && values[order[end]] == values[order[end - 1]]) ++end;
    std::vector<int> bin_labels;
    bin_labels.reserve(end - start);
    for (std::size_t i = start; i < end; ++i) {
      bin_labels.push_back(labels[order[i]]);
    }
    const double w = static_cast<double>(bin_labels.size()) / static_cast<double>(n);
    h_cond += w * label_entropy(bin_labels, class_count);
    start = end;
  }
  return std::max(0.0, h_prior - h_cond);
}

std::vector<double> information_gain_all(
    const std::vector<std::vector<double>>& rows, std::span<const int> labels,
    int class_count, std::size_t bins) {
  if (rows.empty()) throw util::DataError{"information_gain_all: no rows"};
  if (rows.size() != labels.size()) {
    throw util::DataError{"information_gain_all: rows/labels size mismatch"};
  }
  const std::size_t cols = rows[0].size();
  std::vector<double> gains(cols, 0.0);
  std::vector<double> column(rows.size());
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (rows[r].size() != cols) {
        throw util::DataError{"information_gain_all: ragged matrix"};
      }
      column[r] = rows[r][c];
    }
    gains[c] = information_gain(column, labels, class_count, bins);
  }
  return gains;
}

}  // namespace emoleak::features
