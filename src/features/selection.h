// Feature selection.
//
// The paper's audio-domain citations ([43]: "Impact of feature
// selection algorithm on speech emotion recognition") motivate pruning
// redundant Table-II features. Provides information-gain ranking with
// an optional correlation-redundancy filter (a light mRMR variant),
// used by bench_ablation_features and available to library users.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ml/dataset.h"

namespace emoleak::features {

struct SelectionConfig {
  std::size_t max_features = 12;     ///< upper bound on selected columns
  double min_gain_bits = 0.01;       ///< drop features below this gain
  /// Skip a candidate whose |Pearson correlation| with an already-
  /// selected feature exceeds this (1.0 disables the redundancy filter).
  double max_redundancy = 0.95;

  void validate() const;
};

/// Ranks columns by information gain and greedily keeps the most
/// informative non-redundant ones. Returns selected column indices in
/// selection order (most informative first).
[[nodiscard]] std::vector<std::size_t> select_features(
    const ml::Dataset& data, const SelectionConfig& config = {});

/// Projects a dataset onto the given columns (names carried over).
[[nodiscard]] ml::Dataset project(const ml::Dataset& data,
                                  std::span<const std::size_t> columns);

}  // namespace emoleak::features
