#include "features/selection.h"

#include <algorithm>
#include <numeric>

#include "dsp/stats.h"
#include "features/info_gain.h"
#include "util/error.h"

namespace emoleak::features {

void SelectionConfig::validate() const {
  if (max_features == 0) {
    throw util::ConfigError{"SelectionConfig: max_features == 0"};
  }
  if (min_gain_bits < 0.0) {
    throw util::ConfigError{"SelectionConfig: negative min_gain_bits"};
  }
  if (max_redundancy <= 0.0 || max_redundancy > 1.0) {
    throw util::ConfigError{"SelectionConfig: max_redundancy in (0,1]"};
  }
}

std::vector<std::size_t> select_features(const ml::Dataset& data,
                                         const SelectionConfig& config) {
  config.validate();
  data.validate();
  if (data.size() == 0) throw util::DataError{"select_features: empty dataset"};

  const std::vector<double> gains =
      information_gain_all(data.x, data.y, data.class_count);
  std::vector<std::size_t> order(gains.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&gains](std::size_t a, std::size_t b) {
    return gains[a] > gains[b];
  });

  // Column extraction helper for the redundancy check.
  const auto column = [&data](std::size_t c) {
    std::vector<double> col(data.size());
    for (std::size_t r = 0; r < data.size(); ++r) col[r] = data.x[r][c];
    return col;
  };

  std::vector<std::size_t> selected;
  std::vector<std::vector<double>> selected_columns;
  for (const std::size_t candidate : order) {
    if (selected.size() >= config.max_features) break;
    if (gains[candidate] < config.min_gain_bits) break;  // sorted: all below
    std::vector<double> col = column(candidate);
    bool redundant = false;
    if (config.max_redundancy < 1.0) {
      for (const auto& kept : selected_columns) {
        if (std::abs(dsp::correlation(col, kept)) > config.max_redundancy) {
          redundant = true;
          break;
        }
      }
    }
    if (redundant) continue;
    selected.push_back(candidate);
    selected_columns.push_back(std::move(col));
  }
  return selected;
}

ml::Dataset project(const ml::Dataset& data,
                    std::span<const std::size_t> columns) {
  data.validate();
  ml::Dataset out;
  out.class_count = data.class_count;
  out.class_names = data.class_names;
  out.y = data.y;
  for (const std::size_t c : columns) {
    if (c >= data.dim()) throw util::DataError{"project: column out of range"};
    if (c < data.feature_names.size()) {
      out.feature_names.push_back(data.feature_names[c]);
    }
  }
  out.x.reserve(data.size());
  for (const auto& row : data.x) {
    std::vector<double> r;
    r.reserve(columns.size());
    for (const std::size_t c : columns) r.push_back(row[c]);
    out.x.push_back(std::move(r));
  }
  return out;
}

}  // namespace emoleak::features
