// Information-gain analysis of features.
//
// Reproduces the paper's feature-efficacy methodology (§III-B2, Table I
// and §III-B4): information gain of each feature with respect to the
// emotion label, computed after discretizing the feature into
// equal-frequency bins (the measure Weka's InfoGainAttributeEval
// reports).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace emoleak::features {

/// Shannon entropy (bits) of a label sample.
[[nodiscard]] double label_entropy(std::span<const int> labels,
                                   int class_count);

/// Information gain of one feature column w.r.t. integer labels in
/// [0, class_count). `bins` equal-frequency bins (default 10).
[[nodiscard]] double information_gain(std::span<const double> values,
                                      std::span<const int> labels,
                                      int class_count, std::size_t bins = 10);

/// Information gain for every column of a row-major feature matrix.
[[nodiscard]] std::vector<double> information_gain_all(
    const std::vector<std::vector<double>>& rows, std::span<const int> labels,
    int class_count, std::size_t bins = 10);

}  // namespace emoleak::features
