#include "features/features.h"

#include <algorithm>
#include <cmath>

#include "dsp/fft.h"
#include "dsp/stats.h"
#include "util/error.h"

namespace emoleak::features {

const std::vector<std::string>& feature_names() {
  static const std::vector<std::string> names = {
      // time domain
      "Min", "Max", "Mean", "StdDev", "Variance", "Range", "CV", "Skewness",
      "Kurtosis", "Quantile25", "Quantile50", "MeanCrossingRate",
      // frequency domain
      "Energy", "Entropy", "FrequencyRatio", "IrregularityK", "IrregularityJ",
      "Sharpness", "Smoothness", "SpecCentroid", "SpecStdDev", "SpecCrest",
      "SpecSkewness", "SpecKurt"};
  return names;
}

std::string schema_signature() {
  std::string sig = "features-v1/" + std::to_string(kFeatureCount);
  for (const std::string& name : feature_names()) {
    sig += '/';
    sig += name;
  }
  return sig;
}

std::array<double, kTimeFeatureCount> time_features(
    std::span<const double> region) {
  if (region.empty()) throw util::DataError{"time_features: empty region"};
  const dsp::Summary s = dsp::summarize(region);
  std::array<double, kTimeFeatureCount> f{};
  f[0] = s.min;
  f[1] = s.max;
  f[2] = s.mean;
  f[3] = s.stddev;
  f[4] = s.variance;
  f[5] = s.max - s.min;
  f[6] = std::abs(s.mean) > 1e-12 ? s.stddev / std::abs(s.mean) : 0.0;
  f[7] = s.skewness;
  f[8] = s.kurtosis;
  f[9] = dsp::quantile(region, 0.25);
  f[10] = dsp::quantile(region, 0.50);
  f[11] = dsp::mean_crossing_rate(region);
  return f;
}

std::array<double, kFreqFeatureCount> freq_features(
    std::span<const double> region, double sample_rate_hz, double split_hz) {
  return freq_features(region, sample_rate_hz, split_hz,
                       util::thread_workspace());
}

std::array<double, kFreqFeatureCount> freq_features(
    std::span<const double> region, double sample_rate_hz, double split_hz,
    util::Workspace& ws) {
  if (region.empty()) throw util::DataError{"freq_features: empty region"};
  if (sample_rate_hz <= 0.0) {
    throw util::ConfigError{"freq_features: sample_rate_hz must be > 0"};
  }

  // Remove DC (gravity) before the spectral analysis; the DC bin would
  // otherwise dominate every spectral moment.
  const util::Workspace::Scope scope{ws};
  std::span<double> x = ws.take<double>(region.size());
  std::copy(region.begin(), region.end(), x.begin());
  const double m = dsp::mean(x);
  for (double& v : x) v -= m;

  std::span<double> mag = ws.take<double>(region.size() / 2 + 1);
  dsp::rfft_magnitude_into(x, mag, ws);
  const std::size_t bins = mag.size();
  std::array<double, kFreqFeatureCount> f{};
  if (bins < 3) return f;

  const double bin_hz = sample_rate_hz / static_cast<double>(x.size());

  double energy = 0.0;
  double total_mag = 0.0;
  double max_mag = 0.0;
  for (std::size_t k = 1; k < bins; ++k) {  // skip residual DC bin
    energy += mag[k] * mag[k];
    total_mag += mag[k];
    max_mag = std::max(max_mag, mag[k]);
  }
  f[0] = energy;

  // Spectral entropy of the normalized power distribution.
  double entropy = 0.0;
  if (energy > 0.0) {
    for (std::size_t k = 1; k < bins; ++k) {
      const double p = mag[k] * mag[k] / energy;
      if (p > 0.0) entropy -= p * std::log2(p);
    }
    entropy /= std::log2(static_cast<double>(bins - 1));  // -> [0,1]
  }
  f[1] = entropy;

  // Frequency ratio: energy above the split vs total.
  double high = 0.0;
  for (std::size_t k = 1; k < bins; ++k) {
    if (static_cast<double>(k) * bin_hz >= split_hz) high += mag[k] * mag[k];
  }
  f[2] = energy > 0.0 ? high / energy : 0.0;

  // Irregularity (Krimphoff): sum |a_k - mean(a_{k-1},a_k,a_{k+1})|,
  // normalized by total magnitude.
  double irr_k = 0.0;
  for (std::size_t k = 2; k + 1 < bins; ++k) {
    irr_k += std::abs(mag[k] - (mag[k - 1] + mag[k] + mag[k + 1]) / 3.0);
  }
  f[3] = total_mag > 0.0 ? irr_k / total_mag : 0.0;

  // Irregularity (Jensen): sum (a_k - a_{k+1})^2 / sum a_k^2.
  double irr_j_num = 0.0;
  for (std::size_t k = 1; k + 1 < bins; ++k) {
    const double d = mag[k] - mag[k + 1];
    irr_j_num += d * d;
  }
  f[4] = energy > 0.0 ? irr_j_num / energy : 0.0;

  // Sharpness: loudness-weighted centroid with a high-frequency weight
  // (Zwicker-style g(z) ~ growing above mid band; here a smooth power
  // weight of normalized frequency).
  double sharp_num = 0.0, sharp_den = 0.0;
  for (std::size_t k = 1; k < bins; ++k) {
    const double z = static_cast<double>(k) / static_cast<double>(bins - 1);
    const double w = z * (1.0 + 3.0 * z * z);  // emphasis on the top octave
    sharp_num += w * mag[k] * mag[k];
    sharp_den += mag[k] * mag[k];
  }
  f[5] = sharp_den > 0.0 ? sharp_num / sharp_den : 0.0;

  // Smoothness (McAdams): sum |20log(a_k) - mean of neighbors in dB|.
  double smooth = 0.0;
  constexpr double kFloor = 1e-12;
  for (std::size_t k = 2; k + 1 < bins; ++k) {
    const double db = 20.0 * std::log10(std::max(mag[k], kFloor));
    const double db_prev = 20.0 * std::log10(std::max(mag[k - 1], kFloor));
    const double db_next = 20.0 * std::log10(std::max(mag[k + 1], kFloor));
    smooth += std::abs(db - (db_prev + db + db_next) / 3.0);
  }
  f[6] = smooth / static_cast<double>(bins - 3);

  // Spectral moments over the power distribution.
  double centroid = 0.0;
  if (energy > 0.0) {
    for (std::size_t k = 1; k < bins; ++k) {
      centroid += static_cast<double>(k) * bin_hz * mag[k] * mag[k];
    }
    centroid /= energy;
  }
  f[7] = centroid;

  double spread2 = 0.0, m3 = 0.0, m4 = 0.0;
  if (energy > 0.0) {
    for (std::size_t k = 1; k < bins; ++k) {
      const double d = static_cast<double>(k) * bin_hz - centroid;
      const double p = mag[k] * mag[k] / energy;
      spread2 += d * d * p;
      m3 += d * d * d * p;
      m4 += d * d * d * d * p;
    }
  }
  const double spread = std::sqrt(spread2);
  f[8] = spread;
  f[9] = total_mag > 0.0 ? max_mag * static_cast<double>(bins - 1) / total_mag : 0.0;
  f[10] = spread > 0.0 ? m3 / (spread2 * spread) : 0.0;
  f[11] = spread2 > 0.0 ? m4 / (spread2 * spread2) - 3.0 : 0.0;
  return f;
}

std::vector<double> extract_features(std::span<const double> region,
                                     double sample_rate_hz) {
  return extract_features(region, sample_rate_hz, util::thread_workspace());
}

std::vector<double> extract_features(std::span<const double> region,
                                     double sample_rate_hz,
                                     util::Workspace& ws) {
  const auto t = time_features(region);
  const auto q = freq_features(region, sample_rate_hz, 50.0, ws);
  std::vector<double> out;
  out.reserve(kFeatureCount);
  out.insert(out.end(), t.begin(), t.end());
  out.insert(out.end(), q.begin(), q.end());
  return out;
}

}  // namespace emoleak::features
