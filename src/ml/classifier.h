// Abstract classifier interface shared by all EmoLeak models.
#pragma once

#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.h"

namespace emoleak::ml {

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on the dataset (implementations handle their own scaling).
  virtual void fit(const Dataset& data) = 0;

  /// Predicted class for one feature row.
  [[nodiscard]] virtual int predict(std::span<const double> row) const = 0;

  /// Class-probability estimates.
  [[nodiscard]] virtual std::vector<double> predict_proba(
      std::span<const double> row) const = 0;

  /// Class probabilities for `count` rows packed row-major in `rows`
  /// (each `dim` wide). Returns count×classes probabilities, row-major.
  /// Every row of the result is bitwise identical to what
  /// predict_proba would return for that row alone — batching is a
  /// layout change, never a numeric one. The default loops per row;
  /// implementations override to share per-batch work.
  [[nodiscard]] virtual std::vector<double> predict_proba_batch(
      std::span<const double> rows, std::size_t dim, std::size_t count) const;

  /// Fresh untrained copy with the same hyperparameters (used by
  /// cross-validation and ensembles).
  [[nodiscard]] virtual std::unique_ptr<Classifier> clone() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Writes the trained state as whitespace-separated tokens (see
  /// ml/serialize.h). Default: unsupported.
  virtual void serialize(std::ostream& out) const;

  /// Restores state written by serialize(). Default: unsupported.
  virtual void deserialize(std::istream& in);

 protected:
  Classifier() = default;
  Classifier(const Classifier&) = default;
  Classifier& operator=(const Classifier&) = default;
};

}  // namespace emoleak::ml
