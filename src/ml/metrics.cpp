#include "ml/metrics.h"

#include <cmath>

#include "util/table.h"

namespace emoleak::ml {

double cohens_kappa(const ConfusionMatrix& cm) {
  const auto& counts = cm.counts();
  const double n = static_cast<double>(cm.total());
  if (n == 0.0) return 0.0;
  const std::size_t k = counts.size();
  double observed = 0.0;
  std::vector<double> row_sum(k, 0.0);
  std::vector<double> col_sum(k, 0.0);
  for (std::size_t r = 0; r < k; ++r) {
    observed += static_cast<double>(counts[r][r]);
    for (std::size_t c = 0; c < k; ++c) {
      row_sum[r] += static_cast<double>(counts[r][c]);
      col_sum[c] += static_cast<double>(counts[r][c]);
    }
  }
  observed /= n;
  double expected = 0.0;
  for (std::size_t i = 0; i < k; ++i) expected += row_sum[i] * col_sum[i];
  expected /= n * n;
  if (expected >= 1.0) return 0.0;
  return (observed - expected) / (1.0 - expected);
}

double micro_f1(const ConfusionMatrix& cm) {
  // For single-label multiclass, micro P = micro R = accuracy.
  return cm.accuracy();
}

double matthews_corrcoef(const ConfusionMatrix& cm) {
  const auto& counts = cm.counts();
  const double n = static_cast<double>(cm.total());
  if (n == 0.0) return 0.0;
  const std::size_t k = counts.size();
  double correct = 0.0;
  std::vector<double> t(k, 0.0);  // true per class
  std::vector<double> p(k, 0.0);  // predicted per class
  for (std::size_t r = 0; r < k; ++r) {
    correct += static_cast<double>(counts[r][r]);
    for (std::size_t c = 0; c < k; ++c) {
      t[r] += static_cast<double>(counts[r][c]);
      p[c] += static_cast<double>(counts[r][c]);
    }
  }
  double tp_sum = 0.0;  // sum t_k * p_k
  double t2 = 0.0;
  double p2 = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    tp_sum += t[i] * p[i];
    t2 += t[i] * t[i];
    p2 += p[i] * p[i];
  }
  const double numerator = correct * n - tp_sum;
  const double denominator =
      std::sqrt((n * n - p2) * (n * n - t2));
  if (denominator <= 0.0) return 0.0;
  return numerator / denominator;
}

std::string classification_report(const ConfusionMatrix& cm,
                                  const std::vector<std::string>& class_names) {
  const auto precision = cm.precision();
  const auto recall = cm.recall();
  util::TablePrinter t{{"class", "precision", "recall", "f1", "support"}};
  const auto& counts = cm.counts();
  for (std::size_t c = 0; c < counts.size(); ++c) {
    std::size_t support = 0;
    for (const std::size_t v : counts[c]) support += v;
    const double f1 =
        precision[c] + recall[c] > 0.0
            ? 2.0 * precision[c] * recall[c] / (precision[c] + recall[c])
            : 0.0;
    t.add_row({c < class_names.size() ? class_names[c] : std::to_string(c),
               util::fixed(precision[c]), util::fixed(recall[c]),
               util::fixed(f1), std::to_string(support)});
  }
  t.add_rule();
  t.add_row({"accuracy", "", "", util::fixed(cm.accuracy()),
             std::to_string(cm.total())});
  t.add_row({"macro F1", "", "", util::fixed(cm.macro_f1()), ""});
  t.add_row({"Cohen's kappa", "", "", util::fixed(cohens_kappa(cm)), ""});
  t.add_row({"Matthews CC", "", "", util::fixed(matthews_corrcoef(cm)), ""});
  return t.str();
}

}  // namespace emoleak::ml
