#include "ml/lmt.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "ml/serialize.h"
#include "util/error.h"

namespace emoleak::ml {

void LogisticModelTree::fit(const Dataset& data) {
  data.validate();
  classes_ = data.class_count;

  TreeConfig tree_cfg;
  tree_cfg.max_depth = config_.tree_depth;
  tree_cfg.min_samples_split = std::max<std::size_t>(2 * config_.min_leaf_samples, 4);
  tree_cfg.min_samples_leaf = config_.min_leaf_samples;
  tree_cfg.seed = config_.seed;
  structure_ = DecisionTree{tree_cfg};
  structure_.fit(data);

  // Route every training row to its leaf and fit one logistic model per
  // leaf that has enough data and more than one class.
  const std::size_t leaves = structure_.leaf_count();
  std::vector<std::vector<std::size_t>> leaf_rows(leaves);
  for (std::size_t i = 0; i < data.size(); ++i) {
    leaf_rows[structure_.leaf_index(data.x[i])].push_back(i);
  }

  leaf_models_.clear();
  leaf_models_.resize(leaves);
  for (std::size_t leaf = 0; leaf < leaves; ++leaf) {
    const std::vector<std::size_t>& rows = leaf_rows[leaf];
    if (rows.size() < config_.min_leaf_samples) continue;
    Dataset leaf_data = data.subset(rows);
    bool multiclass = false;
    for (const int y : leaf_data.y) {
      if (y != leaf_data.y[0]) {
        multiclass = true;
        break;
      }
    }
    if (!multiclass) continue;  // pure leaf: tree distribution suffices
    LogisticConfig cfg = config_.leaf_logistic;
    cfg.seed = config_.seed + leaf + 1;
    auto model = std::make_unique<LogisticRegression>(cfg);
    model->fit(leaf_data);
    leaf_models_[leaf] = std::move(model);
  }
}

int LogisticModelTree::predict(std::span<const double> row) const {
  const std::vector<double> p = predict_proba(row);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

std::vector<double> LogisticModelTree::predict_proba(
    std::span<const double> row) const {
  if (classes_ == 0) throw util::DataError{"LMT: not fitted"};
  const std::size_t leaf = structure_.leaf_index(row);
  if (leaf < leaf_models_.size() && leaf_models_[leaf]) {
    return leaf_models_[leaf]->predict_proba(row);
  }
  return structure_.predict_proba(row);
}

std::unique_ptr<Classifier> LogisticModelTree::clone() const {
  return std::make_unique<LogisticModelTree>(config_);
}

}  // namespace emoleak::ml

namespace emoleak::ml {

void LogisticModelTree::serialize(std::ostream& out) const {
  if (classes_ == 0) throw util::DataError{"LMT::serialize: not fitted"};
  out << classes_ << ' ' << leaf_models_.size() << '\n';
  structure_.serialize(out);
  for (const auto& model : leaf_models_) {
    out << (model ? 1 : 0) << '\n';
    if (model) model->serialize(out);
  }
}

void LogisticModelTree::deserialize(std::istream& in) {
  std::size_t leaves = 0;
  in >> classes_ >> leaves;
  if (!in || classes_ <= 0) {
    throw util::DataError{"LMT::deserialize: bad header"};
  }
  detail::check_count(static_cast<std::size_t>(classes_), detail::kMaxClasses,
                      "LMT::deserialize classes");
  detail::check_count(leaves, detail::kMaxNodes, "LMT::deserialize leaves");
  structure_.deserialize(in);
  if (structure_.classes() != classes_) {
    throw util::DataError{"LMT::deserialize: structure class mismatch"};
  }
  leaf_models_.clear();
  leaf_models_.resize(leaves);
  for (std::size_t leaf = 0; leaf < leaves; ++leaf) {
    int present = 0;
    in >> present;
    if (!in || (present != 0 && present != 1)) {
      throw util::DataError{"LMT::deserialize: bad leaf-model flag"};
    }
    if (present) {
      auto model = std::make_unique<LogisticRegression>();
      model->deserialize(in);
      leaf_models_[leaf] = std::move(model);
    }
  }
  if (!in) throw util::DataError{"LMT::deserialize: truncated"};
}

}  // namespace emoleak::ml
