#include "ml/tree.h"

#include <algorithm>
#include <iomanip>
#include <istream>
#include <ostream>
#include <cmath>
#include <numeric>

#include "ml/serialize.h"
#include "util/error.h"

namespace emoleak::ml {

namespace {

double gini(const std::vector<std::size_t>& counts, std::size_t total) {
  if (total == 0) return 0.0;
  double sum_sq = 0.0;
  for (const std::size_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

}  // namespace

void DecisionTree::fit(const Dataset& data) {
  std::vector<std::size_t> indices(data.size());
  std::iota(indices.begin(), indices.end(), 0);
  fit_indices(data, indices);
}

void DecisionTree::fit_indices(const Dataset& data,
                               std::span<const std::size_t> indices) {
  data.validate();
  if (indices.empty()) throw util::DataError{"DecisionTree: empty index set"};
  classes_ = data.class_count;
  nodes_.clear();
  leaf_count_ = 0;
  std::vector<std::size_t> work{indices.begin(), indices.end()};
  util::Rng rng{config_.seed};
  build(data, work, 0, work.size(), 0, rng);
}

std::int32_t DecisionTree::build(const Dataset& data,
                                 std::vector<std::size_t>& indices,
                                 std::size_t begin, std::size_t end, int depth,
                                 util::Rng& rng) {
  const std::size_t count = end - begin;
  std::vector<std::size_t> class_counts(static_cast<std::size_t>(classes_), 0);
  for (std::size_t i = begin; i < end; ++i) {
    ++class_counts[static_cast<std::size_t>(data.y[indices[i]])];
  }
  const double node_gini = gini(class_counts, count);

  const auto make_leaf = [&]() -> std::int32_t {
    Node leaf;
    leaf.distribution.resize(static_cast<std::size_t>(classes_));
    for (int c = 0; c < classes_; ++c) {
      leaf.distribution[static_cast<std::size_t>(c)] =
          static_cast<double>(class_counts[static_cast<std::size_t>(c)]) /
          static_cast<double>(count);
    }
    leaf.leaf_id = leaf_count_++;
    nodes_.push_back(std::move(leaf));
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  if (depth >= config_.max_depth || count < config_.min_samples_split ||
      node_gini == 0.0) {
    return make_leaf();
  }

  // Candidate features: all, or a random subset (random-forest mode).
  const std::size_t dim = data.dim();
  std::vector<std::size_t> features(dim);
  std::iota(features.begin(), features.end(), 0);
  std::size_t feature_count = dim;
  if (config_.features_per_split > 0 && config_.features_per_split < dim) {
    rng.shuffle(features);
    feature_count = config_.features_per_split;
  }

  double best_score = node_gini;  // must improve on the parent
  std::size_t best_feature = 0;
  double best_threshold = 0.0;
  bool found = false;

  std::vector<std::pair<double, int>> column(count);
  for (std::size_t fi = 0; fi < feature_count; ++fi) {
    const std::size_t f = features[fi];
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t row = indices[begin + i];
      column[i] = {data.x[row][f], data.y[row]};
    }
    std::sort(column.begin(), column.end());

    std::vector<std::size_t> left_counts(static_cast<std::size_t>(classes_), 0);
    std::vector<std::size_t> right_counts = class_counts;
    for (std::size_t i = 0; i + 1 < count; ++i) {
      const auto cls = static_cast<std::size_t>(column[i].second);
      ++left_counts[cls];
      --right_counts[cls];
      if (column[i].first == column[i + 1].first) continue;  // no valid cut
      const std::size_t n_left = i + 1;
      const std::size_t n_right = count - n_left;
      if (n_left < config_.min_samples_leaf || n_right < config_.min_samples_leaf) {
        continue;
      }
      const double score =
          (static_cast<double>(n_left) * gini(left_counts, n_left) +
           static_cast<double>(n_right) * gini(right_counts, n_right)) /
          static_cast<double>(count);
      if (score < best_score - 1e-12) {
        best_score = score;
        best_feature = f;
        best_threshold = 0.5 * (column[i].first + column[i + 1].first);
        found = true;
      }
    }
  }

  if (!found) return make_leaf();

  // Partition indices[begin, end) around the chosen split.
  const auto mid_iter = std::stable_partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t row) { return data.x[row][best_feature] <= best_threshold; });
  const auto mid = static_cast<std::size_t>(mid_iter - indices.begin());
  if (mid == begin || mid == end) return make_leaf();  // degenerate partition

  // Reserve this node's slot before recursing so children line up.
  nodes_.emplace_back();
  const auto self = static_cast<std::int32_t>(nodes_.size() - 1);
  const std::int32_t left = build(data, indices, begin, mid, depth + 1, rng);
  const std::int32_t right = build(data, indices, mid, end, depth + 1, rng);
  nodes_[static_cast<std::size_t>(self)].feature = best_feature;
  nodes_[static_cast<std::size_t>(self)].threshold = best_threshold;
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

const DecisionTree::Node& DecisionTree::route(std::span<const double> row) const {
  if (nodes_.empty()) throw util::DataError{"DecisionTree: not fitted"};
  const Node* node = &nodes_[0];
  // The root is node 0: build() pushes the root's slot first for
  // internal roots; a pure-leaf tree has exactly one node. Child
  // indices were validated at fit/deserialize time; the feature index
  // still has to be checked against this row's width.
  while (!node->is_leaf()) {
    if (node->feature >= row.size()) {
      throw util::DataError{"DecisionTree: row narrower than split feature"};
    }
    const std::int32_t next =
        row[node->feature] <= node->threshold ? node->left : node->right;
    node = &nodes_[static_cast<std::size_t>(next)];
  }
  return *node;
}

int DecisionTree::predict(std::span<const double> row) const {
  const std::vector<double>& dist = route(row).distribution;
  return static_cast<int>(std::max_element(dist.begin(), dist.end()) -
                          dist.begin());
}

std::vector<double> DecisionTree::predict_proba(
    std::span<const double> row) const {
  return route(row).distribution;
}

std::size_t DecisionTree::leaf_index(std::span<const double> row) const {
  return route(row).leaf_id;
}

std::unique_ptr<Classifier> DecisionTree::clone() const {
  return std::make_unique<DecisionTree>(config_);
}

void DecisionTree::serialize(std::ostream& out) const {
  if (nodes_.empty()) throw util::DataError{"DecisionTree::serialize: not fitted"};
  out << std::setprecision(17);
  out << classes_ << ' ' << nodes_.size() << ' ' << leaf_count_ << '\n';
  for (const Node& n : nodes_) {
    out << n.feature << ' ' << n.threshold << ' ' << n.left << ' ' << n.right
        << ' ' << n.leaf_id << ' ' << n.distribution.size();
    for (const double v : n.distribution) out << ' ' << v;
    out << '\n';
  }
}

void DecisionTree::deserialize(std::istream& in) {
  std::size_t node_count = 0;
  in >> classes_ >> node_count >> leaf_count_;
  if (!in || classes_ <= 0) {
    throw util::DataError{"DecisionTree::deserialize: bad header"};
  }
  detail::check_count(static_cast<std::size_t>(classes_), detail::kMaxClasses,
                      "DecisionTree::deserialize classes");
  detail::check_count(node_count, detail::kMaxNodes,
                      "DecisionTree::deserialize nodes");
  if (leaf_count_ == 0 || leaf_count_ > node_count) {
    throw util::DataError{"DecisionTree::deserialize: bad leaf count"};
  }
  nodes_.assign(node_count, Node{});
  for (Node& n : nodes_) {
    std::size_t dist_size = 0;
    in >> n.feature >> n.threshold >> n.left >> n.right >> n.leaf_id >>
        dist_size;
    if (!in || dist_size > detail::kMaxClasses) {
      throw util::DataError{"DecisionTree::deserialize: bad node"};
    }
    n.distribution.assign(dist_size, 0.0);
    for (double& v : n.distribution) in >> v;
    if (!in) throw util::DataError{"DecisionTree::deserialize: truncated"};
  }
  // Structural validation: route() walks child indices unchecked on the
  // hot path, so everything it relies on is proven here. The builder's
  // invariant — children are appended after their parent — doubles as
  // the acyclicity proof: strictly increasing indices must terminate.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.is_leaf()) {
      if (n.distribution.size() != static_cast<std::size_t>(classes_)) {
        throw util::DataError{
            "DecisionTree::deserialize: leaf distribution size mismatch"};
      }
      if (n.leaf_id >= leaf_count_) {
        throw util::DataError{"DecisionTree::deserialize: leaf id out of range"};
      }
    } else {
      const auto lo = static_cast<std::int32_t>(i);
      const auto hi = static_cast<std::int32_t>(node_count);
      if (n.left <= lo || n.left >= hi || n.right <= lo || n.right >= hi) {
        throw util::DataError{
            "DecisionTree::deserialize: child index out of range"};
      }
      if (n.feature > detail::kMaxDim) {
        throw util::DataError{
            "DecisionTree::deserialize: feature index out of range"};
      }
    }
  }
}

int DecisionTree::depth() const noexcept {
  // Iterative depth computation over the node array.
  if (nodes_.empty()) return 0;
  std::vector<std::pair<std::size_t, int>> stack{{0, 1}};
  int max_depth = 0;
  while (!stack.empty()) {
    const auto [idx, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const Node& node = nodes_[idx];
    if (!node.is_leaf()) {
      stack.push_back({static_cast<std::size_t>(node.left), d + 1});
      stack.push_back({static_cast<std::size_t>(node.right), d + 1});
    }
  }
  return max_depth;
}

}  // namespace emoleak::ml
