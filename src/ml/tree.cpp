#include "ml/tree.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <cmath>
#include <numeric>

#include "ml/serialize.h"
#include "util/error.h"
#include "util/workspace.h"

namespace emoleak::ml {

namespace {

// Split scoring works on integer sums of squared class counts, which
// the scan maintains incrementally (moving one sample of class c from
// right to left changes each sum by 2·count±1) instead of re-walking
// the class histogram per candidate cut. From
// gini = 1 - Σ(c/total)² = 1 - (Σc²)/total², the weighted child score
//
//   (n_l·g_l + n_r·g_r) / count = 1 - (S_l/n_l + S_r/n_r) / count
//
// so *minimizing* the score with the 1e-12 improvement epsilon is
// *maximizing* the purity metric S_l/n_l + S_r/n_r against an epsilon
// pre-scaled by count, with the parent seeded at S/count. A node is
// pure exactly when S == count² (exact in integers). Sums of squares
// fit std::uint64_t for totals below 2^31.

std::uint64_t squared_count_sum(std::span<const std::size_t> counts) {
  std::uint64_t s = 0;
  for (const std::size_t c : counts) {
    s += static_cast<std::uint64_t>(c) * static_cast<std::uint64_t>(c);
  }
  return s;
}

double split_metric(std::uint64_t left_sq, std::size_t n_left,
                    std::uint64_t right_sq, std::size_t n_right) {
  return static_cast<double>(left_sq) / static_cast<double>(n_left) +
         static_cast<double>(right_sq) / static_cast<double>(n_right);
}

// Division-free prefilter for `split_metric(...) > threshold`: scale
// both sides by n_left * n_right (all positive) so the test becomes
// S_l*n_r + S_r*n_l > threshold * n_l * n_r, which is three multiplies
// instead of two divides — the divides dominate the split scan since
// nearly every candidate boundary loses to the incumbent. The relative
// rounding error of the multiplied form is a few ulp (~1e-15), so
// widening the right side by 1e-9 makes the filter strictly
// conservative: everything it rejects is a true reject, and the caller
// re-checks survivors with the exact division form, keeping accept
// decisions bit-identical to split_metric.
bool split_metric_may_beat(std::uint64_t left_sq, std::size_t n_left,
                           std::uint64_t right_sq, std::size_t n_right,
                           double threshold) {
  const auto nl = static_cast<double>(n_left);
  const auto nr = static_cast<double>(n_right);
  const double lhs =
      static_cast<double>(left_sq) * nr + static_cast<double>(right_sq) * nl;
  return lhs >= threshold * (nl * nr) * (1.0 - 1e-9);
}

}  // namespace

// All per-fit scratch, taken from the calling thread's Workspace once
// per fit_indices call. The reference path keeps the original
// copy+sort algorithm (minus its per-node allocations); the presort
// path adds per-feature order arrays maintained down the tree.
struct DecisionTree::BuildScratch {
  std::size_t n = 0;    ///< rows in the fitting index set (with repeats)
  std::size_t dim = 0;  ///< feature count

  // Shared per-node buffers (reused; reinitialized at each node).
  std::span<std::size_t> class_counts;
  std::span<std::size_t> left_counts;
  std::span<std::size_t> right_counts;
  std::span<std::size_t> features;  ///< candidate ids, re-iota'd per node

  // Reference path: the node-owned row window + the per-node column.
  std::span<std::size_t> rows;  ///< fitting indices, partitioned in place
  std::span<std::pair<double, int>> column;

  // Presort path. `order` holds dim arrays of n bag positions, each
  // sorted by that feature's value; every node owns the same
  // [begin, end) window in all of them. `values` is the column-major
  // feature matrix (values[f*n + pos]) so sorting and scanning touch
  // contiguous-ish memory instead of re-gathering rows.
  std::span<double> values;          ///< dim * n, column-major
  std::span<int> pos_class;          ///< position -> label
  std::span<std::uint32_t> order;    ///< dim * n sorted positions
  std::span<std::uint32_t> tmp;      ///< partition spill buffer (n)
  std::span<unsigned char> go_left;  ///< split mask by position (n)

  // Binned path: one array of dataset row ids (bag repeats allowed),
  // partitioned in place down the tree — no per-feature order to
  // maintain; node histograms live on the Workspace stack instead.
  // `bin_total`/`touched`/`bin_start`/`scatter` serve the small-node
  // direct scorer (a per-candidate counting sort by code): bin_total
  // stays all-zero between candidates — each scorer re-zeroes exactly
  // the codes it touched, and a 256-bit set yields those codes already
  // sorted — so scoring a candidate in a node of c rows over d distinct
  // codes costs O(c + d) instead of O(max_bins x classes), with the
  // counting pass fused across a block of candidates (`code_buf` holds
  // one gathered code stripe per candidate in the block). Essential
  // because deep CART trees are mostly tiny nodes.
  std::span<std::uint32_t> positions;  ///< n dataset row ids
  std::span<std::uint32_t> spill;      ///< partition spill buffer (n)
  std::span<int> labels;               ///< n labels, partitioned alongside
  std::span<std::uint32_t> bin_total;  ///< 256 counts/cursors, kept zeroed
  std::span<std::uint8_t> touched;     ///< codes seen by current candidate
  std::span<std::uint32_t> bin_start;  ///< 257 prefix sums over touched
  std::span<std::uint16_t> scatter;    ///< n labels in code order
  std::span<std::uint8_t> code_buf;    ///< n gathered codes (node window)
};

namespace {

// Nodes at or above this row count score splits from a full
// all-features histogram and hand their children histograms via the
// subtraction trick (larger child = parent - smaller sibling); smaller
// nodes use the sparse direct scorer, whose cost tracks the node size
// instead of the bin budget. The crossover trades one O(total bins x
// classes) zero+subtract pass against per-candidate re-accumulation.
constexpr std::size_t kHistNodeMin = 4096;

// Candidate features scored per fused counting pass in the direct
// scorer: the per-node row walk gathers codes for up to this many
// candidates at once. Sized so the block's count arrays (kCandBlock x
// 1 KiB) plus its code stripes stay cache-resident.
constexpr std::size_t kCandBlock = 6;

// Nodes at or below this row count skip the counting sort altogether:
// they pack (code, label) into u16 pairs, sort them with a branchless
// compare-exchange network, and scan the sorted run directly. At these
// sizes nearly every bin holds one row, so the per-bin machinery
// (256-entry counts, bitmap, prefix, scatter, re-zero) costs more than
// sorting c two-byte items that then need no bookkeeping at all.
constexpr std::size_t kSortScoreMax = 16;

// Batcher odd-even mergesort network for N a power of two: a fixed
// sequence of compare-exchange pairs, each lowered to min/max (no
// data-dependent branches, deep ILP). Template-unrolled so every
// exchange uses immediate offsets — no index-table loads, no loop.
struct SortCe {
  std::uint8_t a = 0;
  std::uint8_t b = 0;
};

template <std::size_t N>
struct SortNet {
  std::array<SortCe, 6 * N> ce{};
  std::size_t size = 0;
};

template <std::size_t N>
constexpr SortNet<N> make_sortnet() {
  SortNet<N> net{};
  for (std::size_t p = 1; p < N; p <<= 1) {
    for (std::size_t k = p; k >= 1; k >>= 1) {
      for (std::size_t j = k % p; j + k < N; j += 2 * k) {
        const std::size_t lim = std::min(k, N - j - k);
        for (std::size_t i = 0; i < lim; ++i) {
          if ((i + j) / (2 * p) == (i + j + k) / (2 * p)) {
            net.ce[net.size++] = {static_cast<std::uint8_t>(i + j),
                                  static_cast<std::uint8_t>(i + j + k)};
          }
        }
      }
    }
  }
  return net;
}

inline constexpr auto kNet8 = make_sortnet<8>();
inline constexpr auto kNet16 = make_sortnet<16>();

template <const auto& Net, std::size_t... I>
inline void run_sortnet_impl(std::uint16_t* buf, std::index_sequence<I...>) {
  (
      [&] {
        constexpr std::size_t a = Net.ce[I].a;
        constexpr std::size_t b = Net.ce[I].b;
        const std::uint16_t x = buf[a];
        const std::uint16_t y = buf[b];
        buf[a] = std::min(x, y);
        buf[b] = std::max(x, y);
      }(),
      ...);
}

template <const auto& Net>
inline void run_sortnet(std::uint16_t* buf) {
  run_sortnet_impl<Net>(buf, std::make_index_sequence<Net.size>{});
}

// Fixed-point scale for the integer split screen used by the direct
// scorers (2^20). Direct-mode nodes hold fewer than kHistNodeMin rows,
// so every term of the scaled comparison fits comfortably in 64 bits.
constexpr unsigned kScreenShift = 20;

// Flat (bin x class) histogram accumulation for one node: feature-major
// so each pass writes into one feature's contiguous hist stripe (at
// most 256 x classes u32, L1/L2-resident) while streaming the node's
// positions. `hist` must be zeroed by the caller.
void accumulate_histogram(const BinnedColumns& binned,
                          std::span<const std::uint32_t> positions,
                          std::span<const int> labels, std::size_t classes,
                          std::uint32_t* hist) {
  const std::size_t count = positions.size();
  for (std::size_t f = 0; f < binned.dims(); ++f) {
    const std::uint8_t* codes = binned.codes(f);
    std::uint32_t* stripe = hist + binned.offset(f) * classes;
    for (std::size_t j = 0; j < count; ++j) {
      ++stripe[codes[positions[j]] * classes +
               static_cast<std::size_t>(labels[j])];
    }
  }
}

// Order-preserving u64 key for a double: flips the sign bit for
// non-negatives and all bits for negatives, so unsigned key order equals
// double order. -0.0 is normalised to +0.0 first so equal doubles always
// produce equal keys (the binner detects runs by key equality).
std::uint64_t ordered_key(double v) {
  if (v == 0.0) v = 0.0;
  std::uint64_t k;
  std::memcpy(&k, &v, sizeof(k));
  return (k >> 63) != 0 ? ~k : (k | (std::uint64_t{1} << 63));
}

double key_value(std::uint64_t k) {
  k = (k >> 63) != 0 ? (k & ~(std::uint64_t{1} << 63)) : ~k;
  double v;
  std::memcpy(&v, &k, sizeof(v));
  return v;
}

// LSD radix sort of parallel (key, row) arrays, 8-bit digits. One
// pre-scan histograms all eight digit positions so constant digits
// (common in the exponent bytes of real-world features) cost nothing.
// ~3.5x faster than std::sort on (double, row) pairs at the dataset
// sizes the binner sees, and the row payload keeps ties stable.
void radix_sort_keys(std::uint64_t* keys, std::uint32_t* rows, std::size_t n,
                     std::uint64_t* tmp_keys, std::uint32_t* tmp_rows) {
  std::uint32_t counts[8][256];
  std::memset(counts, 0, sizeof(counts));
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = keys[i];
    for (int p = 0; p < 8; ++p) ++counts[p][(k >> (p * 8)) & 0xFF];
  }
  std::uint64_t* a = keys;
  std::uint64_t* b = tmp_keys;
  std::uint32_t* ra = rows;
  std::uint32_t* rb = tmp_rows;
  for (int p = 0; p < 8; ++p) {
    std::uint32_t* c = counts[p];
    bool trivial = false;
    for (int d = 0; d < 256; ++d) {
      if (c[d] == n) {
        trivial = true;
        break;
      }
    }
    if (trivial) continue;
    std::uint32_t acc = 0;
    for (int d = 0; d < 256; ++d) {
      const std::uint32_t cnt = c[d];
      c[d] = acc;
      acc += cnt;
    }
    const int shift = p * 8;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t k = a[i];
      const std::uint32_t dst = c[(k >> shift) & 0xFF]++;
      b[dst] = k;
      rb[dst] = ra[i];
    }
    std::swap(a, b);
    std::swap(ra, rb);
  }
  if (a != keys) {
    std::memcpy(keys, a, n * sizeof(*keys));
    std::memcpy(rows, ra, n * sizeof(*rows));
  }
}

}  // namespace

PresortedColumns PresortedColumns::build(const Dataset& data) {
  data.validate();
  PresortedColumns p;
  p.n_ = data.size();
  p.dim_ = data.dim();
  if (p.n_ > std::numeric_limits<std::uint32_t>::max()) {
    throw util::DataError{"PresortedColumns: dataset too large"};
  }
  p.order_.resize(p.dim_ * p.n_);
  std::vector<double> col(p.n_);
  for (std::size_t f = 0; f < p.dim_; ++f) {
    for (std::size_t i = 0; i < p.n_; ++i) col[i] = data.x[i][f];
    const std::span<std::uint32_t> ord{p.order_.data() + f * p.n_, p.n_};
    std::iota(ord.begin(), ord.end(), std::uint32_t{0});
    std::sort(ord.begin(), ord.end(),
              [&col](std::uint32_t a, std::uint32_t b) {
                return col[a] != col[b] ? col[a] < col[b] : a < b;
              });
  }
  return p;
}

BinnedColumns BinnedColumns::build(const Dataset& data, std::size_t max_bins) {
  data.validate();
  BinnedColumns b;
  b.n_ = data.size();
  b.dim_ = data.dim();
  if (b.n_ > std::numeric_limits<std::uint32_t>::max()) {
    throw util::DataError{"BinnedColumns: dataset too large"};
  }
  max_bins = std::clamp<std::size_t>(max_bins, 2, 256);
  b.codes_.resize(b.dim_ * b.n_);
  b.bin_count_.assign(b.dim_, 0);
  b.bin_offset_.assign(b.dim_ + 1, 0);
  b.lower_.assign(b.dim_ * 256, 0.0);
  b.upper_.assign(b.dim_ * 256, 0.0);

  std::vector<std::uint64_t> keys(b.n_), tmp_keys(b.n_);
  std::vector<std::uint32_t> rows(b.n_), tmp_rows(b.n_);
  for (std::size_t f = 0; f < b.dim_; ++f) {
    for (std::size_t i = 0; i < b.n_; ++i) {
      keys[i] = ordered_key(data.x[i][f]);
      rows[i] = static_cast<std::uint32_t>(i);
    }
    radix_sort_keys(keys.data(), rows.data(), b.n_, tmp_keys.data(),
                    tmp_rows.data());

    std::size_t distinct = b.n_ == 0 ? 0 : 1;
    for (std::size_t i = 1; i < b.n_; ++i) {
      distinct += keys[i] != keys[i - 1] ? 1 : 0;
    }

    // One bin per distinct value when they fit (the parity regime);
    // otherwise greedy equal-frequency: close the open bin once it
    // reaches ceil(remaining rows / remaining bins), re-targeting after
    // oversized runs, never splitting a run of equal values.
    const bool per_value = distinct <= max_bins;
    std::uint8_t* codes = b.codes_.data() + f * b.n_;
    double* lower = b.lower_.data() + f * 256;
    double* upper = b.upper_.data() + f * 256;
    std::size_t bin = 0;
    std::size_t acc = 0;
    std::size_t remaining = b.n_;
    std::size_t i = 0;
    while (i < b.n_) {
      std::size_t j = i;
      while (j < b.n_ && keys[j] == keys[i]) ++j;
      const std::size_t run = j - i;
      const double value = key_value(keys[i]);
      if (acc == 0) lower[bin] = value;
      upper[bin] = value;
      for (std::size_t k = i; k < j; ++k) {
        codes[rows[k]] = static_cast<std::uint8_t>(bin);
      }
      acc += run;
      remaining -= run;
      if (remaining > 0) {
        const std::size_t bins_left = max_bins - bin - 1;
        const std::size_t target =
            bins_left > 0 ? (remaining + acc + bins_left) / (bins_left + 1) : 0;
        if (per_value || (bins_left > 0 && acc >= target)) {
          ++bin;
          acc = 0;
        }
      }
      i = j;
    }
    b.bin_count_[f] = b.n_ == 0 ? 0 : bin + 1;
    b.bin_offset_[f + 1] = b.bin_offset_[f] + b.bin_count_[f];
  }
  return b;
}

void DecisionTree::fit(const Dataset& data) {
  std::vector<std::size_t> indices(data.size());
  std::iota(indices.begin(), indices.end(), 0);
  fit_indices(data, indices);
}

void DecisionTree::fit_indices(const Dataset& data,
                               std::span<const std::size_t> indices,
                               const PresortedColumns* presorted,
                               const BinnedColumns* binned) {
  data.validate();
  if (indices.empty()) throw util::DataError{"DecisionTree: empty index set"};
  classes_ = data.class_count;
  nodes_.clear();
  leaf_count_ = 0;
  util::Rng rng{config_.seed};

  const std::size_t n = indices.size();
  const std::size_t dim = data.dim();
  util::Workspace& ws = util::thread_workspace();
  const util::Workspace::Scope scope{ws};

  BuildScratch scratch;
  scratch.n = n;
  scratch.dim = dim;
  const auto classes = static_cast<std::size_t>(classes_);
  scratch.class_counts = ws.take<std::size_t>(classes);
  scratch.left_counts = ws.take<std::size_t>(classes);
  scratch.right_counts = ws.take<std::size_t>(classes);
  scratch.features = ws.take<std::size_t>(dim);

  const bool can_index_u32 =
      dim > 0 && n <= std::numeric_limits<std::uint32_t>::max() &&
      data.size() <= std::numeric_limits<std::uint32_t>::max();
  if (!config_.exact && can_index_u32 && classes <= 0xFFFF) {
    // Histogram-binned induction. The binner is per-dataset (like the
    // shared presort), so a forest builds it once; a lone tree builds
    // its own.
    std::optional<BinnedColumns> local;
    const bool shared_usable = binned != nullptr &&
                               binned->rows() == data.size() &&
                               binned->dims() == dim;
    if (!shared_usable) {
      local.emplace(BinnedColumns::build(data, config_.max_bins));
      binned = &*local;
    }
    scratch.positions = ws.take<std::uint32_t>(n);
    scratch.spill = ws.take<std::uint32_t>(n);
    scratch.labels = ws.take<int>(n);
    for (std::size_t pos = 0; pos < n; ++pos) {
      scratch.positions[pos] = static_cast<std::uint32_t>(indices[pos]);
      scratch.labels[pos] = data.y[indices[pos]];
    }
    scratch.bin_total = ws.take<std::uint32_t>(kCandBlock * 256);
    scratch.touched = ws.take<std::uint8_t>(256);
    scratch.bin_start = ws.take<std::uint32_t>(257);
    scratch.scatter = ws.take<std::uint16_t>(n);
    scratch.code_buf = ws.take<std::uint8_t>(kCandBlock * n);
    std::fill(scratch.bin_total.begin(), scratch.bin_total.end(),
              std::uint32_t{0});
    std::span<const std::uint32_t> root_hist;
    if (n >= kHistNodeMin) {
      const std::span<std::uint32_t> h =
          ws.take<std::uint32_t>(binned->total_bins() * classes);
      std::fill(h.begin(), h.end(), std::uint32_t{0});
      accumulate_histogram(*binned, scratch.positions, scratch.labels, classes,
                           h.data());
      root_hist = h;
    }
    build_binned(data, *binned, scratch, 0, n, 0, rng, root_hist);
    return;
  }

  const bool presort = config_.presort && can_index_u32;
  if (presort) {
    scratch.values = ws.take<double>(dim * n);
    scratch.pos_class = ws.take<int>(n);
    scratch.order = ws.take<std::uint32_t>(dim * n);
    scratch.tmp = ws.take<std::uint32_t>(n);
    scratch.go_left = ws.take<unsigned char>(n);
    for (std::size_t pos = 0; pos < n; ++pos) {
      const std::size_t row = indices[pos];
      scratch.pos_class[pos] = data.y[row];
      const std::vector<double>& x_row = data.x[row];
      for (std::size_t f = 0; f < dim; ++f) {
        scratch.values[f * n + pos] = x_row[f];
      }
    }
    const bool shared_usable = presorted != nullptr &&
                               presorted->rows() == data.size() &&
                               presorted->dims() == dim;
    if (shared_usable) {
      // Derive each feature's bag order from the shared per-dataset
      // sort: group bag positions by row once (counting sort), then
      // emit them in the shared value order — O(dim * (rows + n)) with
      // zero comparisons. Ties land in (value, row, position) order
      // instead of (value, position); intra-tie order does not affect
      // split choice, so fitted trees are unchanged.
      const std::size_t data_n = data.size();
      const std::span<std::uint32_t> row_start =
          ws.take<std::uint32_t>(data_n + 1);
      std::fill(row_start.begin(), row_start.end(), std::uint32_t{0});
      for (std::size_t pos = 0; pos < n; ++pos) ++row_start[indices[pos] + 1];
      for (std::size_t r = 0; r < data_n; ++r) row_start[r + 1] += row_start[r];
      const std::span<std::uint32_t> pos_by_row = ws.take<std::uint32_t>(n);
      const std::span<std::uint32_t> cursor = ws.take<std::uint32_t>(data_n);
      std::copy(row_start.begin(), row_start.begin() + static_cast<std::ptrdiff_t>(data_n),
                cursor.begin());
      for (std::size_t pos = 0; pos < n; ++pos) {
        pos_by_row[cursor[indices[pos]]++] = static_cast<std::uint32_t>(pos);
      }
      for (std::size_t f = 0; f < dim; ++f) {
        const std::uint32_t* shared_ord = presorted->order(f);
        std::uint32_t* ord = scratch.order.data() + f * n;
        std::size_t out = 0;
        for (std::size_t i = 0; i < data_n; ++i) {
          const std::uint32_t r = shared_ord[i];
          for (std::uint32_t t = row_start[r]; t < row_start[r + 1]; ++t) {
            ord[out++] = pos_by_row[t];
          }
        }
      }
    } else {
      for (std::size_t f = 0; f < dim; ++f) {
        const std::span<std::uint32_t> ord = scratch.order.subspan(f * n, n);
        std::iota(ord.begin(), ord.end(), std::uint32_t{0});
        const double* col = scratch.values.data() + f * n;
        // Ties broken by position: a deterministic total order without
        // stable_sort's hidden heap buffer. Intra-tie order does not
        // affect split choice (cuts only happen between distinct
        // values), so this matches the reference's value-sorted scan
        // exactly.
        std::sort(ord.begin(), ord.end(),
                  [col](std::uint32_t a, std::uint32_t b) {
                    return col[a] != col[b] ? col[a] < col[b] : a < b;
                  });
      }
    }
    build_presort(data, scratch, 0, n, 0, rng);
  } else {
    scratch.rows = ws.take<std::size_t>(n);
    std::copy(indices.begin(), indices.end(), scratch.rows.begin());
    scratch.column = ws.take<std::pair<double, int>>(n);
    build_reference(data, scratch, 0, n, 0, rng);
  }
}

std::int32_t DecisionTree::make_leaf(std::span<const std::size_t> class_counts,
                                     std::size_t count) {
  Node leaf;
  leaf.distribution.resize(static_cast<std::size_t>(classes_));
  for (int c = 0; c < classes_; ++c) {
    leaf.distribution[static_cast<std::size_t>(c)] =
        static_cast<double>(class_counts[static_cast<std::size_t>(c)]) /
        static_cast<double>(count);
  }
  leaf.leaf_id = leaf_count_++;
  nodes_.push_back(std::move(leaf));
  return static_cast<std::int32_t>(nodes_.size() - 1);
}

// The original per-node copy+sort algorithm. Kept as the parity
// reference for the presort rewrite; its per-node scratch now comes
// from BuildScratch so repeated fits stay allocation-free too.
std::int32_t DecisionTree::build_reference(const Dataset& data,
                                           BuildScratch& scratch,
                                           std::size_t begin, std::size_t end,
                                           int depth, util::Rng& rng) {
  const std::size_t count = end - begin;
  const std::span<std::size_t> indices = scratch.rows;
  const std::span<std::size_t> class_counts = scratch.class_counts;
  std::fill(class_counts.begin(), class_counts.end(), std::size_t{0});
  for (std::size_t i = begin; i < end; ++i) {
    ++class_counts[static_cast<std::size_t>(data.y[indices[i]])];
  }
  const std::uint64_t node_sq = squared_count_sum(class_counts);

  if (depth >= config_.max_depth || count < config_.min_samples_split ||
      node_sq == static_cast<std::uint64_t>(count) * count) {
    return make_leaf(class_counts, count);
  }

  // Candidate features: all, or a random subset (random-forest mode).
  const std::size_t dim = data.dim();
  const std::span<std::size_t> features = scratch.features;
  std::iota(features.begin(), features.end(), std::size_t{0});
  std::size_t feature_count = dim;
  if (config_.features_per_split > 0 && config_.features_per_split < dim) {
    rng.shuffle(features);
    feature_count = config_.features_per_split;
  }

  // Must improve on the parent by more than the scaled epsilon.
  const double eps_scaled = 1e-12 * static_cast<double>(count);
  double best_metric =
      static_cast<double>(node_sq) / static_cast<double>(count);
  std::size_t best_feature = 0;
  double best_threshold = 0.0;
  bool found = false;

  const std::span<std::pair<double, int>> column =
      scratch.column.subspan(0, count);
  for (std::size_t fi = 0; fi < feature_count; ++fi) {
    const std::size_t f = features[fi];
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t row = indices[begin + i];
      column[i] = {data.x[row][f], data.y[row]};
    }
    std::sort(column.begin(), column.end());

    const std::span<std::size_t> left_counts = scratch.left_counts;
    const std::span<std::size_t> right_counts = scratch.right_counts;
    std::fill(left_counts.begin(), left_counts.end(), std::size_t{0});
    std::copy(class_counts.begin(), class_counts.end(), right_counts.begin());
    std::uint64_t left_sq = 0;
    std::uint64_t right_sq = node_sq;
    for (std::size_t i = 0; i + 1 < count; ++i) {
      const auto cls = static_cast<std::size_t>(column[i].second);
      left_sq += 2 * static_cast<std::uint64_t>(left_counts[cls]++) + 1;
      right_sq -= 2 * static_cast<std::uint64_t>(--right_counts[cls]) + 1;
      if (column[i].first == column[i + 1].first) continue;  // no valid cut
      const std::size_t n_left = i + 1;
      const std::size_t n_right = count - n_left;
      if (n_left < config_.min_samples_leaf || n_right < config_.min_samples_leaf) {
        continue;
      }
      const double metric = split_metric(left_sq, n_left, right_sq, n_right);
      if (metric > best_metric + eps_scaled) {
        best_metric = metric;
        best_feature = f;
        best_threshold = 0.5 * (column[i].first + column[i + 1].first);
        found = true;
      }
    }
  }

  if (!found) return make_leaf(class_counts, count);

  // Partition indices[begin, end) around the chosen split.
  const auto mid_iter = std::stable_partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t row) { return data.x[row][best_feature] <= best_threshold; });
  const auto mid = static_cast<std::size_t>(mid_iter - indices.begin());
  // The scan only reads class_counts, so it still holds this node's
  // counts for the degenerate-partition leaf.
  if (mid == begin || mid == end) return make_leaf(class_counts, count);

  // Reserve this node's slot before recursing so children line up.
  nodes_.emplace_back();
  const auto self = static_cast<std::int32_t>(nodes_.size() - 1);
  const std::int32_t left =
      build_reference(data, scratch, begin, mid, depth + 1, rng);
  const std::int32_t right =
      build_reference(data, scratch, mid, end, depth + 1, rng);
  nodes_[static_cast<std::size_t>(self)].feature = best_feature;
  nodes_[static_cast<std::size_t>(self)].threshold = best_threshold;
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

// Presorted CART induction. Each feature's positions were sorted once
// in fit_indices; a node scans its [begin, end) window of every
// candidate feature's order array directly (no copy, no sort) and,
// after choosing a split, stable-partitions every feature's window by
// the split mask so both children see sorted windows again. Split
// scores only depend on class counts accumulated over runs of equal
// values, which are invariant to intra-tie ordering, so the chosen
// (feature, threshold) — and hence the serialized tree — is
// byte-identical to the reference algorithm.
std::int32_t DecisionTree::build_presort(const Dataset& data,
                                         BuildScratch& scratch,
                                         std::size_t begin, std::size_t end,
                                         int depth, util::Rng& rng) {
  const std::size_t count = end - begin;
  const std::size_t n = scratch.n;
  const std::span<std::size_t> class_counts = scratch.class_counts;
  std::fill(class_counts.begin(), class_counts.end(), std::size_t{0});
  // Any feature's window holds exactly this node's positions.
  const std::uint32_t* node_pos = scratch.order.data() + begin;
  for (std::size_t j = 0; j < count; ++j) {
    ++class_counts[static_cast<std::size_t>(scratch.pos_class[node_pos[j]])];
  }
  const std::uint64_t node_sq = squared_count_sum(class_counts);

  if (depth >= config_.max_depth || count < config_.min_samples_split ||
      node_sq == static_cast<std::uint64_t>(count) * count) {
    return make_leaf(class_counts, count);
  }

  const std::size_t dim = scratch.dim;
  const std::span<std::size_t> features = scratch.features;
  std::iota(features.begin(), features.end(), std::size_t{0});
  std::size_t feature_count = dim;
  if (config_.features_per_split > 0 && config_.features_per_split < dim) {
    rng.shuffle(features);
    feature_count = config_.features_per_split;
  }

  // Must improve on the parent by more than the scaled epsilon.
  const double eps_scaled = 1e-12 * static_cast<double>(count);
  double best_metric =
      static_cast<double>(node_sq) / static_cast<double>(count);
  std::size_t best_feature = 0;
  double best_threshold = 0.0;
  bool found = false;

  for (std::size_t fi = 0; fi < feature_count; ++fi) {
    const std::size_t f = features[fi];
    const std::uint32_t* ord = scratch.order.data() + f * n + begin;
    const double* col = scratch.values.data() + f * n;

    const std::span<std::size_t> left_counts = scratch.left_counts;
    const std::span<std::size_t> right_counts = scratch.right_counts;
    std::fill(left_counts.begin(), left_counts.end(), std::size_t{0});
    std::copy(class_counts.begin(), class_counts.end(), right_counts.begin());
    std::uint64_t left_sq = 0;
    std::uint64_t right_sq = node_sq;
    // The sorted window makes each iteration's upper value the next
    // iteration's lower one, so only one value gather per position.
    double v = col[ord[0]];
    for (std::size_t i = 0; i + 1 < count; ++i) {
      const auto cls = static_cast<std::size_t>(scratch.pos_class[ord[i]]);
      left_sq += 2 * static_cast<std::uint64_t>(left_counts[cls]++) + 1;
      right_sq -= 2 * static_cast<std::uint64_t>(--right_counts[cls]) + 1;
      const double v_cur = v;
      v = col[ord[i + 1]];
      if (v_cur == v) continue;  // no valid cut
      const std::size_t n_left = i + 1;
      const std::size_t n_right = count - n_left;
      if (n_left < config_.min_samples_leaf || n_right < config_.min_samples_leaf) {
        continue;
      }
      const double metric = split_metric(left_sq, n_left, right_sq, n_right);
      if (metric > best_metric + eps_scaled) {
        best_metric = metric;
        best_feature = f;
        best_threshold = 0.5 * (v_cur + v);
        found = true;
      }
    }
  }

  if (!found) return make_leaf(class_counts, count);

  // Split mask by position, then stable-partition every feature's
  // window so both children keep sorted order. The mask depends only on
  // the row's value, so repeated bag positions of one row always go the
  // same way.
  const double* best_col = scratch.values.data() + best_feature * n;
  std::size_t left_total = 0;
  for (std::size_t j = 0; j < count; ++j) {
    const std::uint32_t pos = node_pos[j];
    const bool goes_left = best_col[pos] <= best_threshold;
    scratch.go_left[pos] = goes_left ? 1 : 0;
    left_total += goes_left ? 1 : 0;
  }
  if (left_total == 0 || left_total == count) {
    return make_leaf(class_counts, count);  // degenerate partition
  }
  for (std::size_t f = 0; f < dim; ++f) {
    std::uint32_t* ord = scratch.order.data() + f * n + begin;
    std::uint32_t* spill = scratch.tmp.data();
    std::size_t write = 0;
    std::size_t spilled = 0;
    for (std::size_t j = 0; j < count; ++j) {
      const std::uint32_t pos = ord[j];
      if (scratch.go_left[pos]) {
        ord[write++] = pos;
      } else {
        spill[spilled++] = pos;
      }
    }
    std::copy(spill, spill + spilled, ord + write);
  }
  const std::size_t mid = begin + left_total;

  // Reserve this node's slot before recursing so children line up.
  nodes_.emplace_back();
  const auto self = static_cast<std::int32_t>(nodes_.size() - 1);
  const std::int32_t left =
      build_presort(data, scratch, begin, mid, depth + 1, rng);
  const std::int32_t right =
      build_presort(data, scratch, mid, end, depth + 1, rng);
  nodes_[static_cast<std::size_t>(self)].feature = best_feature;
  nodes_[static_cast<std::size_t>(self)].threshold = best_threshold;
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

// Histogram-binned CART induction (LightGBM-style). A node receives its
// own flat (bin x class) histogram: the root accumulates it, every
// other node either accumulated it over its rows (smaller child) or got
// it by the subtraction trick (larger child = parent - sibling), so
// each level touches every sample at most once for histogram work. Cuts
// are scored only at boundaries between bins nonempty in the node, with
// the same incremental integer-Gini scan as the exact paths; the stored
// threshold is the midpoint of the adjacent bins' edge values, so when
// the binner gave every distinct value its own bin the chosen
// (feature, threshold) sequence — and the fitted tree — matches the
// exact paths byte for byte. RNG consumption (one shuffle per split
// attempt) is identical to the other paths, so bagging plans and
// thread-count determinism carry over unchanged.
std::int32_t DecisionTree::build_binned(const Dataset& data,
                                        const BinnedColumns& binned,
                                        BuildScratch& scratch,
                                        std::size_t begin, std::size_t end,
                                        int depth, util::Rng& rng,
                                        std::span<const std::uint32_t> hist) {
  const std::size_t count = end - begin;
  const auto classes = static_cast<std::size_t>(classes_);
  // An empty `hist` marks a small node (below kHistNodeMin): no flat
  // histogram exists for it and scoring uses the sparse direct path.
  const bool has_hist = !hist.empty();
  const std::uint32_t* node_pos = scratch.positions.data() + begin;
  const int* node_labels = scratch.labels.data() + begin;
  const std::span<std::size_t> class_counts = scratch.class_counts;
  std::fill(class_counts.begin(), class_counts.end(), std::size_t{0});
  if (has_hist) {
    // Node class counts fall out of any one feature's hist stripe.
    for (std::size_t b = 0; b < binned.bins(0); ++b) {
      const std::uint32_t* cell =
          hist.data() + (binned.offset(0) + b) * classes;
      for (std::size_t c = 0; c < classes; ++c) class_counts[c] += cell[c];
    }
  } else {
    for (std::size_t j = 0; j < count; ++j) {
      ++class_counts[static_cast<std::size_t>(node_labels[j])];
    }
  }
  const std::uint64_t node_sq = squared_count_sum(class_counts);

  if (depth >= config_.max_depth || count < config_.min_samples_split ||
      node_sq == static_cast<std::uint64_t>(count) * count) {
    return make_leaf(class_counts, count);
  }

  const std::size_t dim = scratch.dim;
  const std::span<std::size_t> features = scratch.features;
  std::iota(features.begin(), features.end(), std::size_t{0});
  std::size_t feature_count = dim;
  if (config_.features_per_split > 0 && config_.features_per_split < dim) {
    rng.shuffle(features);
    feature_count = config_.features_per_split;
  }

  // Must improve on the parent by more than the scaled epsilon.
  const double eps_scaled = 1e-12 * static_cast<double>(count);
  double best_metric =
      static_cast<double>(node_sq) / static_cast<double>(count);
  std::size_t best_feature = 0;
  double best_threshold = 0.0;
  std::size_t best_cut_bin = 0;  ///< first bin routed right
  bool found = false;

  // Integer screen for the direct scorers: a boundary failing
  //   (S_l*n_r + S_r*n_l) << kScreenShift  >=  thr_fixed * n_l * n_r
  // cannot beat the current best (thr_fixed rounds the target down, so
  // the screen never rejects a true winner), and survivors are
  // re-checked with the exact division form — accept decisions are
  // identical, but the per-boundary cost drops to a handful of integer
  // multiplies. Only valid where counts stay below kHistNodeMin (any
  // direct-mode node); the hist path keeps the floating-point screen.
  const auto screen_threshold = [](double thr) {
    return static_cast<std::uint64_t>(
        thr * (1.0 - 1e-9) *
        static_cast<double>(std::uint64_t{1} << kScreenShift));
  };
  std::uint64_t thr_fixed = screen_threshold(best_metric + eps_scaled);

  // Both scan modes maintain only the left side incrementally; the
  // right squared sum is derived at each candidate boundary from
  //   sum((total_c - left_c)^2) = node_sq - 2 * dot(total, left) + left_sq
  // so the hot per-sample loop carries one counter update and the dot
  // accumulator instead of two dependent read-modify-write chains.
  const std::span<std::size_t> left_counts = scratch.left_counts;
  const std::size_t min_leaf = config_.min_samples_leaf;
  if (has_hist) {
    for (std::size_t fi = 0; fi < feature_count; ++fi) {
      const std::size_t f = features[fi];
      std::fill(left_counts.begin(), left_counts.end(), std::size_t{0});
      std::uint64_t left_sq = 0;
      std::uint64_t dot = 0;  ///< dot(class_counts, left_counts)
      // Hist mode: walk every bin of this feature's stripe, moving one
      // bin's class counts into the left side per step. Moving cnt
      // samples of class c raises the left squared sum by
      // cnt * (2 * left_count + cnt).
      const std::uint32_t* stripe = hist.data() + binned.offset(f) * classes;
      std::size_t n_left = 0;
      double last_upper = 0.0;
      bool have_left = false;
      for (std::size_t b = 0; b < binned.bins(f); ++b) {
        const std::uint32_t* cell = stripe + b * classes;
        std::size_t bin_n = 0;
        for (std::size_t c = 0; c < classes; ++c) bin_n += cell[c];
        if (bin_n == 0) continue;  // bin empty in this node: no cut here
        // Candidate cut between the previous nonempty bin and this one
        // — the same "value changed" boundaries the exact scan uses.
        if (have_left && n_left >= min_leaf && count - n_left >= min_leaf) {
          const std::uint64_t right_sq = node_sq + left_sq - 2 * dot;
          if (split_metric_may_beat(left_sq, n_left, right_sq, count - n_left,
                                    best_metric + eps_scaled)) {
            const double metric =
                split_metric(left_sq, n_left, right_sq, count - n_left);
            if (metric > best_metric + eps_scaled) {
              best_metric = metric;
              best_feature = f;
              best_threshold = 0.5 * (last_upper + binned.lower_value(f, b));
              best_cut_bin = b;
              found = true;
            }
          }
        }
        for (std::size_t c = 0; c < classes; ++c) {
          const auto cnt = static_cast<std::uint64_t>(cell[c]);
          if (cnt == 0) continue;
          left_sq +=
              cnt * (2 * static_cast<std::uint64_t>(left_counts[c]) + cnt);
          dot += cnt * static_cast<std::uint64_t>(class_counts[c]);
          left_counts[c] += cnt;
        }
        n_left += bin_n;
        last_upper = binned.upper_value(f, b);
        have_left = true;
      }
    }
  } else if (count <= kSortScoreMax && classes <= 0xFF) {
    // Tiny node: per candidate, pack each row's (code, label) into a
    // u16, sort with a branchless network, and scan the sorted pairs
    // with the usual incremental updates — boundaries fall where the
    // code byte changes, which is exactly the touched-bin boundaries of
    // the counting-sort path, so split decisions are identical. The
    // slots above `count` are padded with 0xFFFF (greater than any real
    // pair, since labels stop at 0xFE when classes fit a byte) and sort
    // harmlessly to the tail.
    std::uint16_t pairs[kSortScoreMax];
    const std::size_t padded = count <= 8 ? 8 : 16;
    const std::size_t* __restrict cc = class_counts.data();
    std::size_t* __restrict lc = left_counts.data();
    for (std::size_t fi = 0; fi < feature_count; ++fi) {
      const std::size_t f = features[fi];
      const std::uint8_t* codes = binned.codes(f);
      for (std::size_t j = 0; j < count; ++j) {
        pairs[j] = static_cast<std::uint16_t>(
            (static_cast<std::uint16_t>(codes[node_pos[j]]) << 8) |
            static_cast<std::uint16_t>(node_labels[j]));
      }
      for (std::size_t j = count; j < padded; ++j) pairs[j] = 0xFFFF;
      if (padded == 8) {
        run_sortnet<kNet8>(pairs);
      } else {
        run_sortnet<kNet16>(pairs);
      }
      if ((pairs[0] >> 8) == (pairs[count - 1] >> 8)) {
        continue;  // feature constant within this node: no boundary
      }
      std::fill(left_counts.begin(), left_counts.end(), std::size_t{0});
      std::uint64_t left_sq = 0;
      std::uint64_t dot = 0;  ///< dot(class_counts, left_counts)
      std::size_t prev_code = pairs[0] >> 8;
      for (std::size_t j = 0; j < count; ++j) {
        const std::size_t code = pairs[j] >> 8;
        if (code != prev_code) {
          if (j >= min_leaf && count - j >= min_leaf) {
            const std::uint64_t right_sq = node_sq + left_sq - 2 * dot;
            const auto nl = static_cast<std::uint64_t>(j);
            const auto nr = static_cast<std::uint64_t>(count - j);
            if (((left_sq * nr + right_sq * nl) << kScreenShift) >=
                thr_fixed * (nl * nr)) {
              const double metric =
                  split_metric(left_sq, j, right_sq, count - j);
              if (metric > best_metric + eps_scaled) {
                best_metric = metric;
                thr_fixed = screen_threshold(best_metric + eps_scaled);
                best_feature = f;
                best_threshold = 0.5 * (binned.upper_value(f, prev_code) +
                                        binned.lower_value(f, code));
                best_cut_bin = code;
                found = true;
              }
            }
          }
          prev_code = code;
        }
        const std::size_t cls = pairs[j] & 0xFF;
        left_sq += 2 * static_cast<std::uint64_t>(lc[cls]++) + 1;
        dot += cc[cls];
      }
    }
  } else {
    // Direct mode: counting sort the node's rows by code — count per
    // code and collect touched codes, prefix-sum the (sorted) touched
    // codes, scatter labels into code order — then run the same
    // per-sample incremental scan as the exact paths over the ordered
    // labels. No per-class inner loops, cost O(count + d) per candidate
    // for d distinct codes. The counting pass is fused across a block
    // of candidate features: one walk of the node's rows feeds every
    // candidate's histogram, amortizing the position loads and letting
    // the independent per-candidate count chains overlap.
    std::uint32_t* bin_total = scratch.bin_total.data();
    std::uint8_t* touched = scratch.touched.data();
    std::uint32_t* bin_start = scratch.bin_start.data();
    std::uint16_t* scatter = scratch.scatter.data();
    for (std::size_t fb = 0; fb < feature_count; fb += kCandBlock) {
      const std::size_t block = std::min(kCandBlock, feature_count - fb);
      const std::uint8_t* codesq[kCandBlock];
      std::uint8_t* cbq[kCandBlock];
      std::uint64_t bitsq[kCandBlock][4] = {};
      for (std::size_t q = 0; q < block; ++q) {
        codesq[q] = binned.codes(features[fb + q]);
        cbq[q] = scratch.code_buf.data() + q * count;
      }
      for (std::size_t j = 0; j < count; ++j) {
        const std::uint32_t row = node_pos[j];
        for (std::size_t q = 0; q < block; ++q) {
          const std::size_t code = codesq[q][row];
          cbq[q][j] = static_cast<std::uint8_t>(code);
          ++bin_total[q * 256 + code];
          bitsq[q][code >> 6] |= std::uint64_t{1} << (code & 63);
        }
      }
      for (std::size_t q = 0; q < block; ++q) {
        const std::size_t f = features[fb + q];
        std::uint32_t* bt = bin_total + q * 256;
        const std::uint8_t* code_buf = cbq[q];
        // Touched codes as a 256-bit set: iterating its set bits yields
        // them already sorted, replacing a per-candidate std::sort.
        std::size_t d = 0;
        std::uint32_t acc = 0;
        for (std::size_t w = 0; w < 4; ++w) {
          std::uint64_t m = bitsq[q][w];
          while (m != 0) {
            const std::size_t code =
                (w << 6) + static_cast<std::size_t>(std::countr_zero(m));
            m &= m - 1;
            touched[d] = static_cast<std::uint8_t>(code);
            bin_start[d] = acc;
            const std::uint32_t cnt = bt[code];
            bt[code] = acc;  // becomes the scatter cursor
            acc += cnt;
            ++d;
          }
        }
        bin_start[d] = acc;
        if (d < 2) {
          // Feature constant within this node: no boundary, no candidate.
          bt[touched[0]] = 0;
          continue;
        }
        for (std::size_t j = 0; j < count; ++j) {
          scatter[bt[code_buf[j]]++] =
              static_cast<std::uint16_t>(node_labels[j]);
        }
        std::fill(left_counts.begin(), left_counts.end(), std::size_t{0});
        std::uint64_t left_sq = 0;
        std::uint64_t dot = 0;  ///< dot(class_counts, left_counts)
        const std::size_t* __restrict cc = class_counts.data();
        std::size_t* __restrict lc = left_counts.data();
        for (std::size_t t = 0; t < d; ++t) {
          // Cut between touched bins t-1 and t; boundaries line up with
          // the hist scan's because empty bins are never in `touched`.
          if (t > 0) {
            const std::size_t n_left = bin_start[t];
            if (n_left >= min_leaf && count - n_left >= min_leaf) {
              const std::uint64_t right_sq = node_sq + left_sq - 2 * dot;
              const auto nl = static_cast<std::uint64_t>(n_left);
              const auto nr = static_cast<std::uint64_t>(count - n_left);
              if (((left_sq * nr + right_sq * nl) << kScreenShift) >=
                  thr_fixed * (nl * nr)) {
                const double metric =
                    split_metric(left_sq, n_left, right_sq, count - n_left);
                if (metric > best_metric + eps_scaled) {
                  best_metric = metric;
                  thr_fixed = screen_threshold(best_metric + eps_scaled);
                  best_feature = f;
                  best_threshold =
                      0.5 * (binned.upper_value(f, touched[t - 1]) +
                             binned.lower_value(f, touched[t]));
                  best_cut_bin = touched[t];
                  found = true;
                }
              }
            }
          }
          // Restore the all-zero cursor invariant as each bin is
          // scanned.
          bt[touched[t]] = 0;
          if (t + 1 == d) break;  // the last bin's samples feed no boundary
          for (std::uint32_t k = bin_start[t]; k < bin_start[t + 1]; ++k) {
            const std::size_t cls = scatter[k];
            left_sq += 2 * static_cast<std::uint64_t>(lc[cls]++) + 1;
            dot += cc[cls];
          }
        }
      }
    }
  }

  if (!found) return make_leaf(class_counts, count);

  // Stable partition of the position window by bin code; repeats of one
  // row share a code so they always go the same way. Both sides are
  // nonempty by construction of the cut.
  const std::uint8_t* best_codes = binned.codes(best_feature);
  std::uint32_t* pos = scratch.positions.data() + begin;
  int* labels = scratch.labels.data() + begin;
  std::uint32_t* spill = scratch.spill.data();
  std::size_t write = 0;
  std::size_t spilled = 0;
  for (std::size_t j = 0; j < count; ++j) {
    const std::uint32_t row = pos[j];
    if (best_codes[row] < best_cut_bin) {
      pos[write] = row;
      labels[write] = labels[j];
      ++write;
    } else {
      spill[spilled++] = row;
    }
  }
  for (std::size_t j = 0; j < spilled; ++j) {
    const std::uint32_t row = spill[j];
    pos[write + j] = row;
    labels[write + j] = data.y[row];
  }
  const std::size_t mid = begin + write;
  if (mid == begin || mid == end) return make_leaf(class_counts, count);

  // Child histograms: accumulate the smaller side, subtract for the
  // larger (child = parent - sibling). Only built while a child is
  // still hist-sized; below the crossover children score directly and
  // no flat histogram exists anywhere on their subtree. Buffers live on
  // the Workspace stack for exactly the two child recursions.
  util::Workspace& ws = util::thread_workspace();
  const util::Workspace::Scope scope{ws};
  const std::size_t left_n = write;
  const std::size_t right_n = count - write;
  std::span<const std::uint32_t> left_hist;
  std::span<const std::uint32_t> right_hist;
  if (has_hist && (left_n >= kHistNodeMin || right_n >= kHistNodeMin)) {
    const std::size_t hist_size = binned.total_bins() * classes;
    const std::span<std::uint32_t> small_hist =
        ws.take<std::uint32_t>(hist_size);
    const std::span<std::uint32_t> large_hist =
        ws.take<std::uint32_t>(hist_size);
    const bool left_is_small = left_n <= right_n;
    const std::size_t s_begin = left_is_small ? begin : mid;
    const std::size_t s_count = left_is_small ? left_n : right_n;
    std::fill(small_hist.begin(), small_hist.end(), std::uint32_t{0});
    accumulate_histogram(binned, scratch.positions.subspan(s_begin, s_count),
                         scratch.labels.subspan(s_begin, s_count), classes,
                         small_hist.data());
    for (std::size_t i = 0; i < hist_size; ++i) {
      large_hist[i] = hist[i] - small_hist[i];
    }
    if (left_n >= kHistNodeMin) {
      left_hist = left_is_small ? small_hist : large_hist;
    }
    if (right_n >= kHistNodeMin) {
      right_hist = left_is_small ? large_hist : small_hist;
    }
  }

  // Reserve this node's slot before recursing so children line up.
  nodes_.emplace_back();
  const auto self = static_cast<std::int32_t>(nodes_.size() - 1);
  const std::int32_t left =
      build_binned(data, binned, scratch, begin, mid, depth + 1, rng,
                   left_hist);
  const std::int32_t right =
      build_binned(data, binned, scratch, mid, end, depth + 1, rng,
                   right_hist);
  nodes_[static_cast<std::size_t>(self)].feature = best_feature;
  nodes_[static_cast<std::size_t>(self)].threshold = best_threshold;
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

const DecisionTree::Node& DecisionTree::route(std::span<const double> row) const {
  if (nodes_.empty()) throw util::DataError{"DecisionTree: not fitted"};
  const Node* node = &nodes_[0];
  // The root is node 0: build() pushes the root's slot first for
  // internal roots; a pure-leaf tree has exactly one node. Child
  // indices were validated at fit/deserialize time; the feature index
  // still has to be checked against this row's width.
  while (!node->is_leaf()) {
    if (node->feature >= row.size()) {
      throw util::DataError{"DecisionTree: row narrower than split feature"};
    }
    const std::int32_t next =
        row[node->feature] <= node->threshold ? node->left : node->right;
    node = &nodes_[static_cast<std::size_t>(next)];
  }
  return *node;
}

int DecisionTree::predict(std::span<const double> row) const {
  const std::vector<double>& dist = route(row).distribution;
  return static_cast<int>(std::max_element(dist.begin(), dist.end()) -
                          dist.begin());
}

std::vector<double> DecisionTree::predict_proba(
    std::span<const double> row) const {
  return route(row).distribution;
}

std::size_t DecisionTree::leaf_index(std::span<const double> row) const {
  return route(row).leaf_id;
}

std::unique_ptr<Classifier> DecisionTree::clone() const {
  return std::make_unique<DecisionTree>(config_);
}

void DecisionTree::serialize(std::ostream& out) const {
  if (nodes_.empty()) throw util::DataError{"DecisionTree::serialize: not fitted"};
  out << std::setprecision(17);
  out << classes_ << ' ' << nodes_.size() << ' ' << leaf_count_ << '\n';
  for (const Node& n : nodes_) {
    out << n.feature << ' ' << n.threshold << ' ' << n.left << ' ' << n.right
        << ' ' << n.leaf_id << ' ' << n.distribution.size();
    for (const double v : n.distribution) out << ' ' << v;
    out << '\n';
  }
}

void DecisionTree::deserialize(std::istream& in) {
  std::size_t node_count = 0;
  in >> classes_ >> node_count >> leaf_count_;
  if (!in || classes_ <= 0) {
    throw util::DataError{"DecisionTree::deserialize: bad header"};
  }
  detail::check_count(static_cast<std::size_t>(classes_), detail::kMaxClasses,
                      "DecisionTree::deserialize classes");
  detail::check_count(node_count, detail::kMaxNodes,
                      "DecisionTree::deserialize nodes");
  if (leaf_count_ == 0 || leaf_count_ > node_count) {
    throw util::DataError{"DecisionTree::deserialize: bad leaf count"};
  }
  nodes_.assign(node_count, Node{});
  for (Node& n : nodes_) {
    std::size_t dist_size = 0;
    in >> n.feature >> n.threshold >> n.left >> n.right >> n.leaf_id >>
        dist_size;
    if (!in || dist_size > detail::kMaxClasses) {
      throw util::DataError{"DecisionTree::deserialize: bad node"};
    }
    n.distribution.assign(dist_size, 0.0);
    for (double& v : n.distribution) in >> v;
    if (!in) throw util::DataError{"DecisionTree::deserialize: truncated"};
  }
  // Structural validation: route() walks child indices unchecked on the
  // hot path, so everything it relies on is proven here. The builder's
  // invariant — children are appended after their parent — doubles as
  // the acyclicity proof: strictly increasing indices must terminate.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.is_leaf()) {
      if (n.distribution.size() != static_cast<std::size_t>(classes_)) {
        throw util::DataError{
            "DecisionTree::deserialize: leaf distribution size mismatch"};
      }
      if (n.leaf_id >= leaf_count_) {
        throw util::DataError{"DecisionTree::deserialize: leaf id out of range"};
      }
    } else {
      const auto lo = static_cast<std::int32_t>(i);
      const auto hi = static_cast<std::int32_t>(node_count);
      if (n.left <= lo || n.left >= hi || n.right <= lo || n.right >= hi) {
        throw util::DataError{
            "DecisionTree::deserialize: child index out of range"};
      }
      if (n.feature > detail::kMaxDim) {
        throw util::DataError{
            "DecisionTree::deserialize: feature index out of range"};
      }
    }
  }
}

int DecisionTree::depth() const noexcept {
  // Iterative depth computation over the node array.
  if (nodes_.empty()) return 0;
  std::vector<std::pair<std::size_t, int>> stack{{0, 1}};
  int max_depth = 0;
  while (!stack.empty()) {
    const auto [idx, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const Node& node = nodes_[idx];
    if (!node.is_leaf()) {
      stack.push_back({static_cast<std::size_t>(node.left), d + 1});
      stack.push_back({static_cast<std::size_t>(node.right), d + 1});
    }
  }
  return max_depth;
}

}  // namespace emoleak::ml
