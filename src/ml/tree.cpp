#include "ml/tree.h"

#include <algorithm>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <cmath>
#include <numeric>

#include "ml/serialize.h"
#include "util/error.h"
#include "util/workspace.h"

namespace emoleak::ml {

namespace {

// Split scoring works on integer sums of squared class counts, which
// the scan maintains incrementally (moving one sample of class c from
// right to left changes each sum by 2·count±1) instead of re-walking
// the class histogram per candidate cut. From
// gini = 1 - Σ(c/total)² = 1 - (Σc²)/total², the weighted child score
//
//   (n_l·g_l + n_r·g_r) / count = 1 - (S_l/n_l + S_r/n_r) / count
//
// so *minimizing* the score with the 1e-12 improvement epsilon is
// *maximizing* the purity metric S_l/n_l + S_r/n_r against an epsilon
// pre-scaled by count, with the parent seeded at S/count. A node is
// pure exactly when S == count² (exact in integers). Sums of squares
// fit std::uint64_t for totals below 2^31.

std::uint64_t squared_count_sum(std::span<const std::size_t> counts) {
  std::uint64_t s = 0;
  for (const std::size_t c : counts) {
    s += static_cast<std::uint64_t>(c) * static_cast<std::uint64_t>(c);
  }
  return s;
}

double split_metric(std::uint64_t left_sq, std::size_t n_left,
                    std::uint64_t right_sq, std::size_t n_right) {
  return static_cast<double>(left_sq) / static_cast<double>(n_left) +
         static_cast<double>(right_sq) / static_cast<double>(n_right);
}

}  // namespace

// All per-fit scratch, taken from the calling thread's Workspace once
// per fit_indices call. The reference path keeps the original
// copy+sort algorithm (minus its per-node allocations); the presort
// path adds per-feature order arrays maintained down the tree.
struct DecisionTree::BuildScratch {
  std::size_t n = 0;    ///< rows in the fitting index set (with repeats)
  std::size_t dim = 0;  ///< feature count

  // Shared per-node buffers (reused; reinitialized at each node).
  std::span<std::size_t> class_counts;
  std::span<std::size_t> left_counts;
  std::span<std::size_t> right_counts;
  std::span<std::size_t> features;  ///< candidate ids, re-iota'd per node

  // Reference path: the node-owned row window + the per-node column.
  std::span<std::size_t> rows;  ///< fitting indices, partitioned in place
  std::span<std::pair<double, int>> column;

  // Presort path. `order` holds dim arrays of n bag positions, each
  // sorted by that feature's value; every node owns the same
  // [begin, end) window in all of them. `values` is the column-major
  // feature matrix (values[f*n + pos]) so sorting and scanning touch
  // contiguous-ish memory instead of re-gathering rows.
  std::span<double> values;          ///< dim * n, column-major
  std::span<int> pos_class;          ///< position -> label
  std::span<std::uint32_t> order;    ///< dim * n sorted positions
  std::span<std::uint32_t> tmp;      ///< partition spill buffer (n)
  std::span<unsigned char> go_left;  ///< split mask by position (n)
};

PresortedColumns PresortedColumns::build(const Dataset& data) {
  data.validate();
  PresortedColumns p;
  p.n_ = data.size();
  p.dim_ = data.dim();
  if (p.n_ > std::numeric_limits<std::uint32_t>::max()) {
    throw util::DataError{"PresortedColumns: dataset too large"};
  }
  p.order_.resize(p.dim_ * p.n_);
  std::vector<double> col(p.n_);
  for (std::size_t f = 0; f < p.dim_; ++f) {
    for (std::size_t i = 0; i < p.n_; ++i) col[i] = data.x[i][f];
    const std::span<std::uint32_t> ord{p.order_.data() + f * p.n_, p.n_};
    std::iota(ord.begin(), ord.end(), std::uint32_t{0});
    std::sort(ord.begin(), ord.end(),
              [&col](std::uint32_t a, std::uint32_t b) {
                return col[a] != col[b] ? col[a] < col[b] : a < b;
              });
  }
  return p;
}

void DecisionTree::fit(const Dataset& data) {
  std::vector<std::size_t> indices(data.size());
  std::iota(indices.begin(), indices.end(), 0);
  fit_indices(data, indices);
}

void DecisionTree::fit_indices(const Dataset& data,
                               std::span<const std::size_t> indices,
                               const PresortedColumns* presorted) {
  data.validate();
  if (indices.empty()) throw util::DataError{"DecisionTree: empty index set"};
  classes_ = data.class_count;
  nodes_.clear();
  leaf_count_ = 0;
  util::Rng rng{config_.seed};

  const std::size_t n = indices.size();
  const std::size_t dim = data.dim();
  util::Workspace& ws = util::thread_workspace();
  const util::Workspace::Scope scope{ws};

  BuildScratch scratch;
  scratch.n = n;
  scratch.dim = dim;
  const auto classes = static_cast<std::size_t>(classes_);
  scratch.class_counts = ws.take<std::size_t>(classes);
  scratch.left_counts = ws.take<std::size_t>(classes);
  scratch.right_counts = ws.take<std::size_t>(classes);
  scratch.features = ws.take<std::size_t>(dim);

  const bool presort = config_.presort && dim > 0 &&
                       n <= std::numeric_limits<std::uint32_t>::max();
  if (presort) {
    scratch.values = ws.take<double>(dim * n);
    scratch.pos_class = ws.take<int>(n);
    scratch.order = ws.take<std::uint32_t>(dim * n);
    scratch.tmp = ws.take<std::uint32_t>(n);
    scratch.go_left = ws.take<unsigned char>(n);
    for (std::size_t pos = 0; pos < n; ++pos) {
      const std::size_t row = indices[pos];
      scratch.pos_class[pos] = data.y[row];
      const std::vector<double>& x_row = data.x[row];
      for (std::size_t f = 0; f < dim; ++f) {
        scratch.values[f * n + pos] = x_row[f];
      }
    }
    const bool shared_usable = presorted != nullptr &&
                               presorted->rows() == data.size() &&
                               presorted->dims() == dim;
    if (shared_usable) {
      // Derive each feature's bag order from the shared per-dataset
      // sort: group bag positions by row once (counting sort), then
      // emit them in the shared value order — O(dim * (rows + n)) with
      // zero comparisons. Ties land in (value, row, position) order
      // instead of (value, position); intra-tie order does not affect
      // split choice, so fitted trees are unchanged.
      const std::size_t data_n = data.size();
      const std::span<std::uint32_t> row_start =
          ws.take<std::uint32_t>(data_n + 1);
      std::fill(row_start.begin(), row_start.end(), std::uint32_t{0});
      for (std::size_t pos = 0; pos < n; ++pos) ++row_start[indices[pos] + 1];
      for (std::size_t r = 0; r < data_n; ++r) row_start[r + 1] += row_start[r];
      const std::span<std::uint32_t> pos_by_row = ws.take<std::uint32_t>(n);
      const std::span<std::uint32_t> cursor = ws.take<std::uint32_t>(data_n);
      std::copy(row_start.begin(), row_start.begin() + static_cast<std::ptrdiff_t>(data_n),
                cursor.begin());
      for (std::size_t pos = 0; pos < n; ++pos) {
        pos_by_row[cursor[indices[pos]]++] = static_cast<std::uint32_t>(pos);
      }
      for (std::size_t f = 0; f < dim; ++f) {
        const std::uint32_t* shared_ord = presorted->order(f);
        std::uint32_t* ord = scratch.order.data() + f * n;
        std::size_t out = 0;
        for (std::size_t i = 0; i < data_n; ++i) {
          const std::uint32_t r = shared_ord[i];
          for (std::uint32_t t = row_start[r]; t < row_start[r + 1]; ++t) {
            ord[out++] = pos_by_row[t];
          }
        }
      }
    } else {
      for (std::size_t f = 0; f < dim; ++f) {
        const std::span<std::uint32_t> ord = scratch.order.subspan(f * n, n);
        std::iota(ord.begin(), ord.end(), std::uint32_t{0});
        const double* col = scratch.values.data() + f * n;
        // Ties broken by position: a deterministic total order without
        // stable_sort's hidden heap buffer. Intra-tie order does not
        // affect split choice (cuts only happen between distinct
        // values), so this matches the reference's value-sorted scan
        // exactly.
        std::sort(ord.begin(), ord.end(),
                  [col](std::uint32_t a, std::uint32_t b) {
                    return col[a] != col[b] ? col[a] < col[b] : a < b;
                  });
      }
    }
    build_presort(data, scratch, 0, n, 0, rng);
  } else {
    scratch.rows = ws.take<std::size_t>(n);
    std::copy(indices.begin(), indices.end(), scratch.rows.begin());
    scratch.column = ws.take<std::pair<double, int>>(n);
    build_reference(data, scratch, 0, n, 0, rng);
  }
}

std::int32_t DecisionTree::make_leaf(std::span<const std::size_t> class_counts,
                                     std::size_t count) {
  Node leaf;
  leaf.distribution.resize(static_cast<std::size_t>(classes_));
  for (int c = 0; c < classes_; ++c) {
    leaf.distribution[static_cast<std::size_t>(c)] =
        static_cast<double>(class_counts[static_cast<std::size_t>(c)]) /
        static_cast<double>(count);
  }
  leaf.leaf_id = leaf_count_++;
  nodes_.push_back(std::move(leaf));
  return static_cast<std::int32_t>(nodes_.size() - 1);
}

// The original per-node copy+sort algorithm. Kept as the parity
// reference for the presort rewrite; its per-node scratch now comes
// from BuildScratch so repeated fits stay allocation-free too.
std::int32_t DecisionTree::build_reference(const Dataset& data,
                                           BuildScratch& scratch,
                                           std::size_t begin, std::size_t end,
                                           int depth, util::Rng& rng) {
  const std::size_t count = end - begin;
  const std::span<std::size_t> indices = scratch.rows;
  const std::span<std::size_t> class_counts = scratch.class_counts;
  std::fill(class_counts.begin(), class_counts.end(), std::size_t{0});
  for (std::size_t i = begin; i < end; ++i) {
    ++class_counts[static_cast<std::size_t>(data.y[indices[i]])];
  }
  const std::uint64_t node_sq = squared_count_sum(class_counts);

  if (depth >= config_.max_depth || count < config_.min_samples_split ||
      node_sq == static_cast<std::uint64_t>(count) * count) {
    return make_leaf(class_counts, count);
  }

  // Candidate features: all, or a random subset (random-forest mode).
  const std::size_t dim = data.dim();
  const std::span<std::size_t> features = scratch.features;
  std::iota(features.begin(), features.end(), std::size_t{0});
  std::size_t feature_count = dim;
  if (config_.features_per_split > 0 && config_.features_per_split < dim) {
    rng.shuffle(features);
    feature_count = config_.features_per_split;
  }

  // Must improve on the parent by more than the scaled epsilon.
  const double eps_scaled = 1e-12 * static_cast<double>(count);
  double best_metric =
      static_cast<double>(node_sq) / static_cast<double>(count);
  std::size_t best_feature = 0;
  double best_threshold = 0.0;
  bool found = false;

  const std::span<std::pair<double, int>> column =
      scratch.column.subspan(0, count);
  for (std::size_t fi = 0; fi < feature_count; ++fi) {
    const std::size_t f = features[fi];
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t row = indices[begin + i];
      column[i] = {data.x[row][f], data.y[row]};
    }
    std::sort(column.begin(), column.end());

    const std::span<std::size_t> left_counts = scratch.left_counts;
    const std::span<std::size_t> right_counts = scratch.right_counts;
    std::fill(left_counts.begin(), left_counts.end(), std::size_t{0});
    std::copy(class_counts.begin(), class_counts.end(), right_counts.begin());
    std::uint64_t left_sq = 0;
    std::uint64_t right_sq = node_sq;
    for (std::size_t i = 0; i + 1 < count; ++i) {
      const auto cls = static_cast<std::size_t>(column[i].second);
      left_sq += 2 * static_cast<std::uint64_t>(left_counts[cls]++) + 1;
      right_sq -= 2 * static_cast<std::uint64_t>(--right_counts[cls]) + 1;
      if (column[i].first == column[i + 1].first) continue;  // no valid cut
      const std::size_t n_left = i + 1;
      const std::size_t n_right = count - n_left;
      if (n_left < config_.min_samples_leaf || n_right < config_.min_samples_leaf) {
        continue;
      }
      const double metric = split_metric(left_sq, n_left, right_sq, n_right);
      if (metric > best_metric + eps_scaled) {
        best_metric = metric;
        best_feature = f;
        best_threshold = 0.5 * (column[i].first + column[i + 1].first);
        found = true;
      }
    }
  }

  if (!found) return make_leaf(class_counts, count);

  // Partition indices[begin, end) around the chosen split.
  const auto mid_iter = std::stable_partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t row) { return data.x[row][best_feature] <= best_threshold; });
  const auto mid = static_cast<std::size_t>(mid_iter - indices.begin());
  // The scan only reads class_counts, so it still holds this node's
  // counts for the degenerate-partition leaf.
  if (mid == begin || mid == end) return make_leaf(class_counts, count);

  // Reserve this node's slot before recursing so children line up.
  nodes_.emplace_back();
  const auto self = static_cast<std::int32_t>(nodes_.size() - 1);
  const std::int32_t left =
      build_reference(data, scratch, begin, mid, depth + 1, rng);
  const std::int32_t right =
      build_reference(data, scratch, mid, end, depth + 1, rng);
  nodes_[static_cast<std::size_t>(self)].feature = best_feature;
  nodes_[static_cast<std::size_t>(self)].threshold = best_threshold;
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

// Presorted CART induction. Each feature's positions were sorted once
// in fit_indices; a node scans its [begin, end) window of every
// candidate feature's order array directly (no copy, no sort) and,
// after choosing a split, stable-partitions every feature's window by
// the split mask so both children see sorted windows again. Split
// scores only depend on class counts accumulated over runs of equal
// values, which are invariant to intra-tie ordering, so the chosen
// (feature, threshold) — and hence the serialized tree — is
// byte-identical to the reference algorithm.
std::int32_t DecisionTree::build_presort(const Dataset& data,
                                         BuildScratch& scratch,
                                         std::size_t begin, std::size_t end,
                                         int depth, util::Rng& rng) {
  const std::size_t count = end - begin;
  const std::size_t n = scratch.n;
  const std::span<std::size_t> class_counts = scratch.class_counts;
  std::fill(class_counts.begin(), class_counts.end(), std::size_t{0});
  // Any feature's window holds exactly this node's positions.
  const std::uint32_t* node_pos = scratch.order.data() + begin;
  for (std::size_t j = 0; j < count; ++j) {
    ++class_counts[static_cast<std::size_t>(scratch.pos_class[node_pos[j]])];
  }
  const std::uint64_t node_sq = squared_count_sum(class_counts);

  if (depth >= config_.max_depth || count < config_.min_samples_split ||
      node_sq == static_cast<std::uint64_t>(count) * count) {
    return make_leaf(class_counts, count);
  }

  const std::size_t dim = scratch.dim;
  const std::span<std::size_t> features = scratch.features;
  std::iota(features.begin(), features.end(), std::size_t{0});
  std::size_t feature_count = dim;
  if (config_.features_per_split > 0 && config_.features_per_split < dim) {
    rng.shuffle(features);
    feature_count = config_.features_per_split;
  }

  // Must improve on the parent by more than the scaled epsilon.
  const double eps_scaled = 1e-12 * static_cast<double>(count);
  double best_metric =
      static_cast<double>(node_sq) / static_cast<double>(count);
  std::size_t best_feature = 0;
  double best_threshold = 0.0;
  bool found = false;

  for (std::size_t fi = 0; fi < feature_count; ++fi) {
    const std::size_t f = features[fi];
    const std::uint32_t* ord = scratch.order.data() + f * n + begin;
    const double* col = scratch.values.data() + f * n;

    const std::span<std::size_t> left_counts = scratch.left_counts;
    const std::span<std::size_t> right_counts = scratch.right_counts;
    std::fill(left_counts.begin(), left_counts.end(), std::size_t{0});
    std::copy(class_counts.begin(), class_counts.end(), right_counts.begin());
    std::uint64_t left_sq = 0;
    std::uint64_t right_sq = node_sq;
    // The sorted window makes each iteration's upper value the next
    // iteration's lower one, so only one value gather per position.
    double v = col[ord[0]];
    for (std::size_t i = 0; i + 1 < count; ++i) {
      const auto cls = static_cast<std::size_t>(scratch.pos_class[ord[i]]);
      left_sq += 2 * static_cast<std::uint64_t>(left_counts[cls]++) + 1;
      right_sq -= 2 * static_cast<std::uint64_t>(--right_counts[cls]) + 1;
      const double v_cur = v;
      v = col[ord[i + 1]];
      if (v_cur == v) continue;  // no valid cut
      const std::size_t n_left = i + 1;
      const std::size_t n_right = count - n_left;
      if (n_left < config_.min_samples_leaf || n_right < config_.min_samples_leaf) {
        continue;
      }
      const double metric = split_metric(left_sq, n_left, right_sq, n_right);
      if (metric > best_metric + eps_scaled) {
        best_metric = metric;
        best_feature = f;
        best_threshold = 0.5 * (v_cur + v);
        found = true;
      }
    }
  }

  if (!found) return make_leaf(class_counts, count);

  // Split mask by position, then stable-partition every feature's
  // window so both children keep sorted order. The mask depends only on
  // the row's value, so repeated bag positions of one row always go the
  // same way.
  const double* best_col = scratch.values.data() + best_feature * n;
  std::size_t left_total = 0;
  for (std::size_t j = 0; j < count; ++j) {
    const std::uint32_t pos = node_pos[j];
    const bool goes_left = best_col[pos] <= best_threshold;
    scratch.go_left[pos] = goes_left ? 1 : 0;
    left_total += goes_left ? 1 : 0;
  }
  if (left_total == 0 || left_total == count) {
    return make_leaf(class_counts, count);  // degenerate partition
  }
  for (std::size_t f = 0; f < dim; ++f) {
    std::uint32_t* ord = scratch.order.data() + f * n + begin;
    std::uint32_t* spill = scratch.tmp.data();
    std::size_t write = 0;
    std::size_t spilled = 0;
    for (std::size_t j = 0; j < count; ++j) {
      const std::uint32_t pos = ord[j];
      if (scratch.go_left[pos]) {
        ord[write++] = pos;
      } else {
        spill[spilled++] = pos;
      }
    }
    std::copy(spill, spill + spilled, ord + write);
  }
  const std::size_t mid = begin + left_total;

  // Reserve this node's slot before recursing so children line up.
  nodes_.emplace_back();
  const auto self = static_cast<std::int32_t>(nodes_.size() - 1);
  const std::int32_t left =
      build_presort(data, scratch, begin, mid, depth + 1, rng);
  const std::int32_t right =
      build_presort(data, scratch, mid, end, depth + 1, rng);
  nodes_[static_cast<std::size_t>(self)].feature = best_feature;
  nodes_[static_cast<std::size_t>(self)].threshold = best_threshold;
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

const DecisionTree::Node& DecisionTree::route(std::span<const double> row) const {
  if (nodes_.empty()) throw util::DataError{"DecisionTree: not fitted"};
  const Node* node = &nodes_[0];
  // The root is node 0: build() pushes the root's slot first for
  // internal roots; a pure-leaf tree has exactly one node. Child
  // indices were validated at fit/deserialize time; the feature index
  // still has to be checked against this row's width.
  while (!node->is_leaf()) {
    if (node->feature >= row.size()) {
      throw util::DataError{"DecisionTree: row narrower than split feature"};
    }
    const std::int32_t next =
        row[node->feature] <= node->threshold ? node->left : node->right;
    node = &nodes_[static_cast<std::size_t>(next)];
  }
  return *node;
}

int DecisionTree::predict(std::span<const double> row) const {
  const std::vector<double>& dist = route(row).distribution;
  return static_cast<int>(std::max_element(dist.begin(), dist.end()) -
                          dist.begin());
}

std::vector<double> DecisionTree::predict_proba(
    std::span<const double> row) const {
  return route(row).distribution;
}

std::size_t DecisionTree::leaf_index(std::span<const double> row) const {
  return route(row).leaf_id;
}

std::unique_ptr<Classifier> DecisionTree::clone() const {
  return std::make_unique<DecisionTree>(config_);
}

void DecisionTree::serialize(std::ostream& out) const {
  if (nodes_.empty()) throw util::DataError{"DecisionTree::serialize: not fitted"};
  out << std::setprecision(17);
  out << classes_ << ' ' << nodes_.size() << ' ' << leaf_count_ << '\n';
  for (const Node& n : nodes_) {
    out << n.feature << ' ' << n.threshold << ' ' << n.left << ' ' << n.right
        << ' ' << n.leaf_id << ' ' << n.distribution.size();
    for (const double v : n.distribution) out << ' ' << v;
    out << '\n';
  }
}

void DecisionTree::deserialize(std::istream& in) {
  std::size_t node_count = 0;
  in >> classes_ >> node_count >> leaf_count_;
  if (!in || classes_ <= 0) {
    throw util::DataError{"DecisionTree::deserialize: bad header"};
  }
  detail::check_count(static_cast<std::size_t>(classes_), detail::kMaxClasses,
                      "DecisionTree::deserialize classes");
  detail::check_count(node_count, detail::kMaxNodes,
                      "DecisionTree::deserialize nodes");
  if (leaf_count_ == 0 || leaf_count_ > node_count) {
    throw util::DataError{"DecisionTree::deserialize: bad leaf count"};
  }
  nodes_.assign(node_count, Node{});
  for (Node& n : nodes_) {
    std::size_t dist_size = 0;
    in >> n.feature >> n.threshold >> n.left >> n.right >> n.leaf_id >>
        dist_size;
    if (!in || dist_size > detail::kMaxClasses) {
      throw util::DataError{"DecisionTree::deserialize: bad node"};
    }
    n.distribution.assign(dist_size, 0.0);
    for (double& v : n.distribution) in >> v;
    if (!in) throw util::DataError{"DecisionTree::deserialize: truncated"};
  }
  // Structural validation: route() walks child indices unchecked on the
  // hot path, so everything it relies on is proven here. The builder's
  // invariant — children are appended after their parent — doubles as
  // the acyclicity proof: strictly increasing indices must terminate.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.is_leaf()) {
      if (n.distribution.size() != static_cast<std::size_t>(classes_)) {
        throw util::DataError{
            "DecisionTree::deserialize: leaf distribution size mismatch"};
      }
      if (n.leaf_id >= leaf_count_) {
        throw util::DataError{"DecisionTree::deserialize: leaf id out of range"};
      }
    } else {
      const auto lo = static_cast<std::int32_t>(i);
      const auto hi = static_cast<std::int32_t>(node_count);
      if (n.left <= lo || n.left >= hi || n.right <= lo || n.right >= hi) {
        throw util::DataError{
            "DecisionTree::deserialize: child index out of range"};
      }
      if (n.feature > detail::kMaxDim) {
        throw util::DataError{
            "DecisionTree::deserialize: feature index out of range"};
      }
    }
  }
}

int DecisionTree::depth() const noexcept {
  // Iterative depth computation over the node array.
  if (nodes_.empty()) return 0;
  std::vector<std::pair<std::size_t, int>> stack{{0, 1}};
  int max_depth = 0;
  while (!stack.empty()) {
    const auto [idx, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const Node& node = nodes_[idx];
    if (!node.is_leaf()) {
      stack.push_back({static_cast<std::size_t>(node.left), d + 1});
      stack.push_back({static_cast<std::size_t>(node.right), d + 1});
    }
  }
  return max_depth;
}

}  // namespace emoleak::ml
