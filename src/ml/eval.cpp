#include "ml/eval.h"

#include <numeric>

#include "util/error.h"
#include "util/rng.h"

namespace emoleak::ml {

ConfusionMatrix::ConfusionMatrix(int class_count) : classes_{class_count} {
  if (class_count <= 0) {
    throw util::DataError{"ConfusionMatrix: class_count must be > 0"};
  }
  counts_.assign(static_cast<std::size_t>(class_count),
                 std::vector<std::size_t>(static_cast<std::size_t>(class_count), 0));
}

void ConfusionMatrix::add(int truth, int predicted) {
  if (truth < 0 || truth >= classes_ || predicted < 0 || predicted >= classes_) {
    throw util::DataError{"ConfusionMatrix::add: label out of range"};
  }
  ++counts_[static_cast<std::size_t>(truth)][static_cast<std::size_t>(predicted)];
  ++total_;
}

void ConfusionMatrix::merge(const ConfusionMatrix& other) {
  if (other.classes_ != classes_) {
    throw util::DataError{"ConfusionMatrix::merge: class count mismatch"};
  }
  for (std::size_t r = 0; r < counts_.size(); ++r) {
    for (std::size_t c = 0; c < counts_.size(); ++c) {
      counts_[r][c] += other.counts_[r][c];
    }
  }
  total_ += other.total_;
}

std::size_t ConfusionMatrix::count(int truth, int predicted) const {
  if (truth < 0 || truth >= classes_ || predicted < 0 || predicted >= classes_) {
    throw util::DataError{"ConfusionMatrix::count: label out of range"};
  }
  return counts_[static_cast<std::size_t>(truth)][static_cast<std::size_t>(predicted)];
}

double ConfusionMatrix::accuracy() const noexcept {
  if (total_ == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) correct += counts_[i][i];
  return static_cast<double>(correct) / static_cast<double>(total_);
}

std::vector<double> ConfusionMatrix::recall() const {
  std::vector<double> out(counts_.size(), 0.0);
  for (std::size_t r = 0; r < counts_.size(); ++r) {
    const std::size_t row_sum =
        std::accumulate(counts_[r].begin(), counts_[r].end(), std::size_t{0});
    if (row_sum > 0) {
      out[r] = static_cast<double>(counts_[r][r]) / static_cast<double>(row_sum);
    }
  }
  return out;
}

std::vector<double> ConfusionMatrix::precision() const {
  std::vector<double> out(counts_.size(), 0.0);
  for (std::size_t c = 0; c < counts_.size(); ++c) {
    std::size_t col_sum = 0;
    for (std::size_t r = 0; r < counts_.size(); ++r) col_sum += counts_[r][c];
    if (col_sum > 0) {
      out[c] = static_cast<double>(counts_[c][c]) / static_cast<double>(col_sum);
    }
  }
  return out;
}

double ConfusionMatrix::macro_f1() const {
  const std::vector<double> p = precision();
  const std::vector<double> r = recall();
  double f1_sum = 0.0;
  for (std::size_t c = 0; c < p.size(); ++c) {
    if (p[c] + r[c] > 0.0) f1_sum += 2.0 * p[c] * r[c] / (p[c] + r[c]);
  }
  return f1_sum / static_cast<double>(p.size());
}

EvalResult evaluate_holdout(Classifier& model, const Dataset& train,
                            const Dataset& test) {
  train.validate();
  test.validate();
  if (train.class_count != test.class_count) {
    throw util::DataError{"evaluate_holdout: class count mismatch"};
  }
  model.fit(train);
  ConfusionMatrix cm{test.class_count};
  for (std::size_t i = 0; i < test.size(); ++i) {
    cm.add(test.y[i], model.predict(test.x[i]));
  }
  return EvalResult{cm, cm.accuracy()};
}

EvalResult evaluate_split(const Classifier& prototype, const Dataset& data,
                          double train_fraction, std::uint64_t seed) {
  util::Rng rng{seed};
  const Split split = train_test_split(data, train_fraction, rng);
  const std::unique_ptr<Classifier> model = prototype.clone();
  return evaluate_holdout(*model, split.train, split.test);
}

EvalResult cross_validate(const Classifier& prototype, const Dataset& data,
                          std::size_t folds, std::uint64_t seed,
                          const util::Parallelism& parallelism) {
  data.validate();
  util::Rng rng{seed};
  const std::vector<std::vector<std::size_t>> fold_sets =
      stratified_folds(data, folds, rng);

  // Fold sets are fixed above, and each fold trains a fresh clone, so
  // folds run in parallel; merging in fold order keeps the pooled
  // matrix bit-identical to the serial loop.
  const std::vector<ConfusionMatrix> fold_cms = util::parallel_map(
      parallelism, fold_sets.size(), [&](std::size_t f) {
        const std::vector<std::size_t>& test_idx = fold_sets[f];
        std::vector<char> in_test(data.size(), 0);
        for (const std::size_t i : test_idx) in_test[i] = 1;
        std::vector<std::size_t> train_idx;
        train_idx.reserve(data.size() - test_idx.size());
        for (std::size_t i = 0; i < data.size(); ++i) {
          if (!in_test[i]) train_idx.push_back(i);
        }
        const Dataset train = data.subset(train_idx);
        const Dataset test = data.subset(test_idx);
        const std::unique_ptr<Classifier> model = prototype.clone();
        return evaluate_holdout(*model, train, test).confusion;
      });

  ConfusionMatrix pooled{data.class_count};
  for (const ConfusionMatrix& cm : fold_cms) pooled.merge(cm);
  return EvalResult{pooled, pooled.accuracy()};
}

}  // namespace emoleak::ml
