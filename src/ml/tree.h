// CART-style decision tree.
//
// Base learner for the RandomForest and RandomSubSpace ensembles
// (paper Table VI) and the structural component of the logistic model
// tree. Supports per-split random feature subsets (for forests) and
// sample weights via duplication-free index lists.
#pragma once

#include <cstdint>
#include <optional>

#include "ml/classifier.h"
#include "util/rng.h"

namespace emoleak::ml {

struct TreeConfig {
  int max_depth = 18;
  std::size_t min_samples_split = 4;
  std::size_t min_samples_leaf = 2;
  /// Number of features examined per split; 0 = all (plain CART),
  /// otherwise a random subset of this size (random forest mode).
  std::size_t features_per_split = 0;
  std::uint64_t seed = 11;
};

class DecisionTree final : public Classifier {
 public:
  DecisionTree() = default;
  explicit DecisionTree(TreeConfig config) : config_{config} {}

  void fit(const Dataset& data) override;

  /// Fits on a row subset (for bagging) without copying the matrix.
  void fit_indices(const Dataset& data, std::span<const std::size_t> indices);

  [[nodiscard]] int predict(std::span<const double> row) const override;
  [[nodiscard]] std::vector<double> predict_proba(
      std::span<const double> row) const override;
  [[nodiscard]] std::unique_ptr<Classifier> clone() const override;
  [[nodiscard]] std::string name() const override { return "DecisionTree"; }
  void serialize(std::ostream& out) const override;
  void deserialize(std::istream& in) override;

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] int classes() const noexcept { return classes_; }
  [[nodiscard]] int depth() const noexcept;

  /// Index of the leaf a row lands in (tree must be fitted). Exposed so
  /// the logistic model tree can route rows to leaf models.
  [[nodiscard]] std::size_t leaf_index(std::span<const double> row) const;

  [[nodiscard]] std::size_t leaf_count() const noexcept { return leaf_count_; }

 private:
  struct Node {
    // Internal nodes:
    std::size_t feature = 0;
    double threshold = 0.0;
    std::int32_t left = -1;   ///< child indices; -1 marks a leaf
    std::int32_t right = -1;
    // Leaves:
    std::vector<double> distribution;  ///< class probabilities
    std::size_t leaf_id = 0;

    [[nodiscard]] bool is_leaf() const noexcept { return left < 0; }
  };

  std::int32_t build(const Dataset& data, std::vector<std::size_t>& indices,
                     std::size_t begin, std::size_t end, int depth,
                     util::Rng& rng);
  [[nodiscard]] const Node& route(std::span<const double> row) const;

  TreeConfig config_{};
  int classes_ = 0;
  std::vector<Node> nodes_;
  std::size_t leaf_count_ = 0;
};

}  // namespace emoleak::ml
