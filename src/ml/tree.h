// CART-style decision tree.
//
// Base learner for the RandomForest and RandomSubSpace ensembles
// (paper Table VI) and the structural component of the logistic model
// tree. Supports per-split random feature subsets (for forests) and
// sample weights via duplication-free index lists.
#pragma once

#include <cstdint>
#include <optional>

#include "ml/classifier.h"
#include "util/rng.h"

namespace emoleak::ml {

struct TreeConfig {
  int max_depth = 18;
  std::size_t min_samples_split = 4;
  std::size_t min_samples_leaf = 2;
  /// Number of features examined per split; 0 = all (plain CART),
  /// otherwise a random subset of this size (random forest mode).
  std::size_t features_per_split = 0;
  std::uint64_t seed = 11;
  /// Presorted induction: each feature column is sorted once per tree
  /// and the order is maintained down the tree by stable partitioning,
  /// replacing the per-node copy + sort. Produces byte-identical trees
  /// to the reference algorithm (same tie-breaking, same improvement
  /// epsilon) — `false` selects the reference per-node-sort path the
  /// parity tests compare against.
  bool presort = true;
};

/// Per-dataset presorted feature index: for each feature, the dataset's
/// row ids sorted by that feature's value. Ensembles build it once per
/// fit and share it (read-only, so safe across threads) with every
/// tree, which then derives its bag's sorted order in linear time via a
/// counting pass instead of re-sorting all columns per tree.
class PresortedColumns {
 public:
  [[nodiscard]] static PresortedColumns build(const Dataset& data);

  [[nodiscard]] std::size_t rows() const noexcept { return n_; }
  [[nodiscard]] std::size_t dims() const noexcept { return dim_; }
  /// Row ids sorted by feature `f` (ties by row id); length rows().
  [[nodiscard]] const std::uint32_t* order(std::size_t f) const noexcept {
    return order_.data() + f * n_;
  }

 private:
  std::size_t n_ = 0;
  std::size_t dim_ = 0;
  std::vector<std::uint32_t> order_;  ///< dims() arrays of rows() ids
};

class DecisionTree final : public Classifier {
 public:
  DecisionTree() = default;
  explicit DecisionTree(TreeConfig config) : config_{config} {}

  void fit(const Dataset& data) override;

  /// Fits on a row subset (for bagging) without copying the matrix.
  /// `presorted`, when given, must have been built from `data`; the
  /// presort path then derives each feature's bag order from it in
  /// O(rows + indices) instead of sorting.
  void fit_indices(const Dataset& data, std::span<const std::size_t> indices,
                   const PresortedColumns* presorted = nullptr);

  [[nodiscard]] int predict(std::span<const double> row) const override;
  [[nodiscard]] std::vector<double> predict_proba(
      std::span<const double> row) const override;
  [[nodiscard]] std::unique_ptr<Classifier> clone() const override;
  [[nodiscard]] std::string name() const override { return "DecisionTree"; }
  void serialize(std::ostream& out) const override;
  void deserialize(std::istream& in) override;

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] int classes() const noexcept { return classes_; }
  [[nodiscard]] int depth() const noexcept;

  /// Index of the leaf a row lands in (tree must be fitted). Exposed so
  /// the logistic model tree can route rows to leaf models.
  [[nodiscard]] std::size_t leaf_index(std::span<const double> row) const;

  [[nodiscard]] std::size_t leaf_count() const noexcept { return leaf_count_; }

 private:
  struct Node {
    // Internal nodes:
    std::size_t feature = 0;
    double threshold = 0.0;
    std::int32_t left = -1;   ///< child indices; -1 marks a leaf
    std::int32_t right = -1;
    // Leaves:
    std::vector<double> distribution;  ///< class probabilities
    std::size_t leaf_id = 0;

    [[nodiscard]] bool is_leaf() const noexcept { return left < 0; }
  };

  /// Per-tree scratch shared by every node of one fit (defined in
  /// tree.cpp); all of it lives in the calling thread's Workspace so
  /// repeated fits are allocation-free in steady state.
  struct BuildScratch;

  std::int32_t build_reference(const Dataset& data, BuildScratch& scratch,
                               std::size_t begin, std::size_t end, int depth,
                               util::Rng& rng);
  std::int32_t build_presort(const Dataset& data, BuildScratch& scratch,
                             std::size_t begin, std::size_t end, int depth,
                             util::Rng& rng);
  std::int32_t make_leaf(std::span<const std::size_t> class_counts,
                         std::size_t count);
  [[nodiscard]] const Node& route(std::span<const double> row) const;

  TreeConfig config_{};
  int classes_ = 0;
  std::vector<Node> nodes_;
  std::size_t leaf_count_ = 0;
};

}  // namespace emoleak::ml
