// CART-style decision tree.
//
// Base learner for the RandomForest and RandomSubSpace ensembles
// (paper Table VI) and the structural component of the logistic model
// tree. Supports per-split random feature subsets (for forests) and
// sample weights via duplication-free index lists.
#pragma once

#include <cstdint>
#include <optional>

#include "ml/classifier.h"
#include "util/rng.h"

namespace emoleak::ml {

struct TreeConfig {
  int max_depth = 18;
  std::size_t min_samples_split = 4;
  std::size_t min_samples_leaf = 2;
  /// Number of features examined per split; 0 = all (plain CART),
  /// otherwise a random subset of this size (random forest mode).
  std::size_t features_per_split = 0;
  std::uint64_t seed = 11;
  /// Presorted induction: each feature column is sorted once per tree
  /// and the order is maintained down the tree by stable partitioning,
  /// replacing the per-node copy + sort. Produces byte-identical trees
  /// to the reference algorithm (same tie-breaking, same improvement
  /// epsilon) — `false` selects the reference per-node-sort path the
  /// parity tests compare against. Only consulted when `exact`.
  bool presort = true;
  /// Exact split finding (the default): every distinct feature value is
  /// a candidate cut, and fitted trees are byte-identical to the
  /// serialized models of earlier releases. `false` selects
  /// histogram-binned induction (LightGBM-style): feature values are
  /// quantized once per dataset into <= max_bins quantile bins (u8
  /// codes), nodes accumulate per-bin class histograms (with the
  /// child = parent - sibling subtraction trick) and score cuts only at
  /// bin boundaries. Much faster on forests; splits may differ from the
  /// exact tree when a bin spans multiple distinct values, but training
  /// stays fully deterministic — same seed, same data, same trees at
  /// any thread count.
  bool exact = true;
  /// Bin budget per feature for the binned path. Capped at 256 so codes
  /// fit a byte; when a feature has fewer distinct values than this,
  /// every distinct value gets its own bin and binned splits coincide
  /// with exact ones.
  std::size_t max_bins = 256;
};

/// Per-dataset presorted feature index: for each feature, the dataset's
/// row ids sorted by that feature's value. Ensembles build it once per
/// fit and share it (read-only, so safe across threads) with every
/// tree, which then derives its bag's sorted order in linear time via a
/// counting pass instead of re-sorting all columns per tree.
class PresortedColumns {
 public:
  [[nodiscard]] static PresortedColumns build(const Dataset& data);

  [[nodiscard]] std::size_t rows() const noexcept { return n_; }
  [[nodiscard]] std::size_t dims() const noexcept { return dim_; }
  /// Row ids sorted by feature `f` (ties by row id); length rows().
  [[nodiscard]] const std::uint32_t* order(std::size_t f) const noexcept {
    return order_.data() + f * n_;
  }

 private:
  std::size_t n_ = 0;
  std::size_t dim_ = 0;
  std::vector<std::uint32_t> order_;  ///< dims() arrays of rows() ids
};

/// Per-dataset quantile binner for histogram-binned induction: every
/// feature value is quantized once into a bin code (u8, <= 256 bins per
/// feature), and trees fit on codes instead of doubles. Like
/// PresortedColumns, ensembles build it once per fit and share it
/// read-only across all trees/threads. Bin edges come from equal-
/// frequency quantiles over the *full* dataset, so every bag of the same
/// dataset sees the same candidate cuts — a bagged binned forest is
/// bit-identical at any thread count. When a feature has <= max_bins
/// distinct values each value gets its own bin, making binned splits
/// coincide with exact ones (the parity tests rely on this).
class BinnedColumns {
 public:
  [[nodiscard]] static BinnedColumns build(const Dataset& data,
                                           std::size_t max_bins = 256);

  [[nodiscard]] std::size_t rows() const noexcept { return n_; }
  [[nodiscard]] std::size_t dims() const noexcept { return dim_; }
  /// Number of bins actually used by feature `f` (1..=256).
  [[nodiscard]] std::size_t bins(std::size_t f) const noexcept {
    return bin_count_[f];
  }
  /// Start of feature `f`'s bin range in a flat all-features histogram.
  [[nodiscard]] std::size_t offset(std::size_t f) const noexcept {
    return bin_offset_[f];
  }
  /// Sum of bins(f) over all features (flat histogram width).
  [[nodiscard]] std::size_t total_bins() const noexcept {
    return bin_offset_[dim_];
  }
  /// Bin codes of feature `f` for every dataset row; length rows().
  [[nodiscard]] const std::uint8_t* codes(std::size_t f) const noexcept {
    return codes_.data() + f * n_;
  }
  /// Smallest / largest dataset value landing in bin `b` of feature
  /// `f`. A cut between (nonempty-in-node) bins bl < br stores the
  /// threshold 0.5 * (upper(f, bl) + lower(f, br)) — the same
  /// midpoint-of-adjacent-present-values rule the exact scan uses, so
  /// with one bin per distinct value the two paths emit identical
  /// thresholds.
  [[nodiscard]] double lower_value(std::size_t f, std::size_t b) const noexcept {
    return lower_[f * 256 + b];
  }
  [[nodiscard]] double upper_value(std::size_t f, std::size_t b) const noexcept {
    return upper_[f * 256 + b];
  }

 private:
  std::size_t n_ = 0;
  std::size_t dim_ = 0;
  std::vector<std::uint8_t> codes_;      ///< dims() arrays of rows() codes
  std::vector<std::size_t> bin_count_;   ///< per-feature bins used
  std::vector<std::size_t> bin_offset_;  ///< exclusive prefix sums, dim+1
  std::vector<double> lower_;            ///< dims() x 256 bin min values
  std::vector<double> upper_;            ///< dims() x 256 bin max values
};

class DecisionTree final : public Classifier {
 public:
  DecisionTree() = default;
  explicit DecisionTree(TreeConfig config) : config_{config} {}

  void fit(const Dataset& data) override;

  /// Fits on a row subset (for bagging) without copying the matrix.
  /// `presorted`, when given, must have been built from `data`; the
  /// presort path then derives each feature's bag order from it in
  /// O(rows + indices) instead of sorting. `binned` likewise must have
  /// been built from `data` and is only consulted when
  /// `config.exact == false` (it is built on demand when the binned
  /// path is selected and no shared binner is supplied).
  void fit_indices(const Dataset& data, std::span<const std::size_t> indices,
                   const PresortedColumns* presorted = nullptr,
                   const BinnedColumns* binned = nullptr);

  [[nodiscard]] int predict(std::span<const double> row) const override;
  [[nodiscard]] std::vector<double> predict_proba(
      std::span<const double> row) const override;
  [[nodiscard]] std::unique_ptr<Classifier> clone() const override;
  [[nodiscard]] std::string name() const override { return "DecisionTree"; }
  void serialize(std::ostream& out) const override;
  void deserialize(std::istream& in) override;

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] int classes() const noexcept { return classes_; }
  [[nodiscard]] int depth() const noexcept;

  /// Index of the leaf a row lands in (tree must be fitted). Exposed so
  /// the logistic model tree can route rows to leaf models.
  [[nodiscard]] std::size_t leaf_index(std::span<const double> row) const;

  [[nodiscard]] std::size_t leaf_count() const noexcept { return leaf_count_; }

 private:
  struct Node {
    // Internal nodes:
    std::size_t feature = 0;
    double threshold = 0.0;
    std::int32_t left = -1;   ///< child indices; -1 marks a leaf
    std::int32_t right = -1;
    // Leaves:
    std::vector<double> distribution;  ///< class probabilities
    std::size_t leaf_id = 0;

    [[nodiscard]] bool is_leaf() const noexcept { return left < 0; }
  };

  /// Per-tree scratch shared by every node of one fit (defined in
  /// tree.cpp); all of it lives in the calling thread's Workspace so
  /// repeated fits are allocation-free in steady state.
  struct BuildScratch;

  std::int32_t build_reference(const Dataset& data, BuildScratch& scratch,
                               std::size_t begin, std::size_t end, int depth,
                               util::Rng& rng);
  std::int32_t build_presort(const Dataset& data, BuildScratch& scratch,
                             std::size_t begin, std::size_t end, int depth,
                             util::Rng& rng);
  std::int32_t build_binned(const Dataset& data, const BinnedColumns& binned,
                            BuildScratch& scratch, std::size_t begin,
                            std::size_t end, int depth, util::Rng& rng,
                            std::span<const std::uint32_t> hist);
  std::int32_t make_leaf(std::span<const std::size_t> class_counts,
                         std::size_t count);
  [[nodiscard]] const Node& route(std::span<const double> row) const;

  TreeConfig config_{};
  int classes_ = 0;
  std::vector<Node> nodes_;
  std::size_t leaf_count_ = 0;
};

}  // namespace emoleak::ml
