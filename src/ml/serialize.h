// Model serialization.
//
// The EmoLeak threat model (paper §III-A) separates offline training
// (attacker replays corpora on an identical device) from online
// deployment (the exfiltrated sensor data is classified later). These
// routines persist trained models in a small self-describing text
// format so the two phases can run in different processes.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "ml/classifier.h"

namespace emoleak::ml {

/// Serializes a trained LogisticRegression, OneVsRestLogistic,
/// DecisionTree, RandomForest, RandomSubspace or LogisticModelTree.
/// Throws util::DataError for unsupported classifiers or untrained
/// models.
void save_model(std::ostream& out, const Classifier& model);

/// Reconstructs a model previously written by save_model. The returned
/// classifier predicts identically to the saved one.
[[nodiscard]] std::unique_ptr<Classifier> load_model(std::istream& in);

/// File-path conveniences.
void save_model_file(const std::string& path, const Classifier& model);
[[nodiscard]] std::unique_ptr<Classifier> load_model_file(
    const std::string& path);

}  // namespace emoleak::ml
