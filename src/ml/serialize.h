// Model serialization.
//
// The EmoLeak threat model (paper §III-A) separates offline training
// (attacker replays corpora on an identical device) from online
// deployment (the exfiltrated sensor data is classified later). These
// routines persist trained models in a small self-describing text
// format so the two phases can run in different processes.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>

#include "ml/classifier.h"

namespace emoleak::ml {

/// Serializes a trained LogisticRegression, OneVsRestLogistic,
/// DecisionTree, RandomForest, RandomSubspace or LogisticModelTree.
/// Throws util::DataError for unsupported classifiers or untrained
/// models.
void save_model(std::ostream& out, const Classifier& model);

/// Reconstructs a model previously written by save_model. The returned
/// classifier predicts identically to the saved one.
[[nodiscard]] std::unique_ptr<Classifier> load_model(std::istream& in);

/// File-path conveniences.
void save_model_file(const std::string& path, const Classifier& model);
[[nodiscard]] std::unique_ptr<Classifier> load_model_file(
    const std::string& path);

namespace detail {

// Hard ceilings on counts parsed from model streams. Model files are
// untrusted input in the serving threat model (an implant loads
// whatever the operator ships), so any count beyond these limits is a
// malformed file, and deserialize must reject it with util::DataError
// *before* allocating — never crash on bad_alloc or (worse) mis-load.
inline constexpr std::size_t kMaxClasses = 4096;
inline constexpr std::size_t kMaxDim = std::size_t{1} << 20;
inline constexpr std::size_t kMaxNodes = std::size_t{1} << 22;
inline constexpr std::size_t kMaxEnsemble = std::size_t{1} << 16;

/// Throws util::DataError unless value ∈ [1, max]. Note that reading a
/// negative token into an unsigned via operator>> wraps instead of
/// failing, so the upper bound is the only thing standing between a
/// "-1" in the file and a 2^64-element allocation.
void check_count(std::size_t value, std::size_t max, const char* what);

}  // namespace detail

}  // namespace emoleak::ml
