// Ridge-regularized multinomial logistic regression.
//
// The counterpart of Weka's `functions.Logistic` (the paper's strongest
// classical classifier on TESS, Table V). Trained with full-batch Adam
// on the softmax cross-entropy with L2 penalty; features are z-scored
// internally.
#pragma once

#include <cstdint>

#include "ml/classifier.h"

namespace emoleak::ml {

struct LogisticConfig {
  double ridge = 1e-4;      ///< L2 penalty (Weka default 1e-8; we use a
                            ///< slightly larger value for stability)
  int max_epochs = 400;
  double learning_rate = 0.1;
  double tolerance = 1e-7;  ///< stop when loss improvement falls below
  std::uint64_t seed = 7;
};

class LogisticRegression final : public Classifier {
 public:
  LogisticRegression() = default;
  explicit LogisticRegression(LogisticConfig config) : config_{config} {}

  void fit(const Dataset& data) override;
  [[nodiscard]] int predict(std::span<const double> row) const override;
  [[nodiscard]] std::vector<double> predict_proba(
      std::span<const double> row) const override;
  [[nodiscard]] std::vector<double> predict_proba_batch(
      std::span<const double> rows, std::size_t dim,
      std::size_t count) const override;
  [[nodiscard]] std::unique_ptr<Classifier> clone() const override;
  [[nodiscard]] std::string name() const override { return "Logistic"; }
  void serialize(std::ostream& out) const override;
  void deserialize(std::istream& in) override;

  [[nodiscard]] const LogisticConfig& config() const noexcept { return config_; }

 private:
  /// Logits for a scaled row.
  [[nodiscard]] std::vector<double> logits(std::span<const double> scaled) const;

  LogisticConfig config_{};
  StandardScaler scaler_;
  int classes_ = 0;
  std::size_t dim_ = 0;
  std::vector<double> weights_;  ///< classes x (dim + 1), bias last
};

/// Softmax in place; numerically stable.
void softmax_inplace(std::vector<double>& logits);

}  // namespace emoleak::ml
