#include "ml/multiclass.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "ml/serialize.h"
#include "util/error.h"

namespace emoleak::ml {

void OneVsRestLogistic::fit(const Dataset& data) {
  data.validate();
  classes_ = data.class_count;
  binary_.clear();
  binary_.reserve(static_cast<std::size_t>(classes_));
  for (int c = 0; c < classes_; ++c) {
    Dataset binary_data;
    binary_data.x = data.x;
    binary_data.class_count = 2;
    binary_data.class_names = {"rest", "target"};
    binary_data.feature_names = data.feature_names;
    binary_data.y.reserve(data.y.size());
    for (const int label : data.y) binary_data.y.push_back(label == c ? 1 : 0);
    LogisticConfig cfg = base_config_;
    cfg.seed = base_config_.seed + static_cast<std::uint64_t>(c) + 1;
    LogisticRegression model{cfg};
    model.fit(binary_data);
    binary_.push_back(std::move(model));
  }
}

int OneVsRestLogistic::predict(std::span<const double> row) const {
  const std::vector<double> p = predict_proba(row);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

std::vector<double> OneVsRestLogistic::predict_proba(
    std::span<const double> row) const {
  if (binary_.empty()) throw util::DataError{"OneVsRest: not fitted"};
  std::vector<double> scores(static_cast<std::size_t>(classes_));
  double sum = 0.0;
  for (int c = 0; c < classes_; ++c) {
    const double p = binary_[static_cast<std::size_t>(c)].predict_proba(row)[1];
    scores[static_cast<std::size_t>(c)] = p;
    sum += p;
  }
  if (sum > 0.0) {
    for (double& s : scores) s /= sum;
  } else {
    std::fill(scores.begin(), scores.end(), 1.0 / classes_);
  }
  return scores;
}

std::unique_ptr<Classifier> OneVsRestLogistic::clone() const {
  return std::make_unique<OneVsRestLogistic>(base_config_);
}

}  // namespace emoleak::ml

namespace emoleak::ml {

void OneVsRestLogistic::serialize(std::ostream& out) const {
  if (binary_.empty()) {
    throw util::DataError{"OneVsRest::serialize: not fitted"};
  }
  out << classes_ << '\n';
  for (const LogisticRegression& model : binary_) model.serialize(out);
}

void OneVsRestLogistic::deserialize(std::istream& in) {
  in >> classes_;
  if (!in || classes_ <= 0) {
    throw util::DataError{"OneVsRest::deserialize: bad header"};
  }
  detail::check_count(static_cast<std::size_t>(classes_), detail::kMaxClasses,
                      "OneVsRest::deserialize classes");
  binary_.clear();
  for (int c = 0; c < classes_; ++c) {
    LogisticRegression model;
    model.deserialize(in);
    binary_.push_back(std::move(model));
  }
  if (!in) throw util::DataError{"OneVsRest::deserialize: truncated"};
}

}  // namespace emoleak::ml
