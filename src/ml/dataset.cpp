#include "ml/dataset.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace emoleak::ml {

void Dataset::validate() const {
  if (x.size() != y.size()) {
    throw util::DataError{"Dataset: x/y size mismatch"};
  }
  if (class_count <= 0) throw util::DataError{"Dataset: class_count <= 0"};
  const std::size_t d = dim();
  for (const auto& row : x) {
    if (row.size() != d) throw util::DataError{"Dataset: ragged rows"};
  }
  for (const int label : y) {
    if (label < 0 || label >= class_count) {
      throw util::DataError{"Dataset: label out of range"};
    }
  }
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out;
  out.class_count = class_count;
  out.feature_names = feature_names;
  out.class_names = class_names;
  out.x.reserve(indices.size());
  out.y.reserve(indices.size());
  for (const std::size_t i : indices) {
    if (i >= x.size()) throw util::DataError{"Dataset::subset: index out of range"};
    out.x.push_back(x[i]);
    out.y.push_back(y[i]);
  }
  return out;
}

std::size_t Dataset::drop_invalid() {
  std::size_t removed = 0;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const bool ok = std::all_of(x[i].begin(), x[i].end(),
                                [](double v) { return std::isfinite(v); });
    if (ok) {
      if (keep != i) {
        x[keep] = std::move(x[i]);
        y[keep] = y[i];
      }
      ++keep;
    } else {
      ++removed;
    }
  }
  x.resize(keep);
  y.resize(keep);
  return removed;
}

void StandardScaler::fit(const Dataset& data) {
  data.validate();
  if (data.size() == 0) throw util::DataError{"StandardScaler: empty dataset"};
  const std::size_t d = data.dim();
  mean_.assign(d, 0.0);
  std_.assign(d, 0.0);
  for (const auto& row : data.x) {
    for (std::size_t j = 0; j < d; ++j) mean_[j] += row[j];
  }
  const double n = static_cast<double>(data.size());
  for (double& m : mean_) m /= n;
  for (const auto& row : data.x) {
    for (std::size_t j = 0; j < d; ++j) {
      const double dlt = row[j] - mean_[j];
      std_[j] += dlt * dlt;
    }
  }
  for (double& s : std_) {
    s = std::sqrt(s / n);
    if (s < 1e-12) s = 1.0;  // constant feature: leave centered at zero
  }
}

std::vector<double> StandardScaler::transform_row(
    std::span<const double> row) const {
  if (!fitted()) throw util::DataError{"StandardScaler: not fitted"};
  if (row.size() != mean_.size()) {
    throw util::DataError{"StandardScaler: dimension mismatch"};
  }
  std::vector<double> out(row.size());
  for (std::size_t j = 0; j < row.size(); ++j) {
    out[j] = (row[j] - mean_[j]) / std_[j];
  }
  return out;
}

void StandardScaler::set_state(std::vector<double> mean,
                               std::vector<double> stddev) {
  if (mean.size() != stddev.size()) {
    throw util::DataError{"StandardScaler::set_state: size mismatch"};
  }
  mean_ = std::move(mean);
  std_ = std::move(stddev);
}

Dataset StandardScaler::transform(const Dataset& data) const {
  Dataset out = data;
  for (auto& row : out.x) row = transform_row(row);
  return out;
}

namespace {

/// Indices grouped by class, each group shuffled.
std::vector<std::vector<std::size_t>> class_groups(const Dataset& data,
                                                   util::Rng& rng) {
  std::vector<std::vector<std::size_t>> groups(
      static_cast<std::size_t>(data.class_count));
  for (std::size_t i = 0; i < data.size(); ++i) {
    groups[static_cast<std::size_t>(data.y[i])].push_back(i);
  }
  for (auto& g : groups) rng.shuffle(g);
  return groups;
}

}  // namespace

Split train_test_split(const Dataset& data, double train_fraction,
                       util::Rng& rng) {
  data.validate();
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    throw util::ConfigError{"train_test_split: fraction must be in (0,1)"};
  }
  std::vector<std::size_t> train_idx;
  std::vector<std::size_t> test_idx;
  for (auto& group : class_groups(data, rng)) {
    const auto cut = static_cast<std::size_t>(
        std::round(train_fraction * static_cast<double>(group.size())));
    for (std::size_t i = 0; i < group.size(); ++i) {
      (i < cut ? train_idx : test_idx).push_back(group[i]);
    }
  }
  rng.shuffle(train_idx);
  rng.shuffle(test_idx);
  return Split{data.subset(train_idx), data.subset(test_idx)};
}

std::vector<std::vector<std::size_t>> stratified_folds(const Dataset& data,
                                                       std::size_t k,
                                                       util::Rng& rng) {
  data.validate();
  if (k < 2) throw util::ConfigError{"stratified_folds: k must be >= 2"};
  if (k > data.size()) throw util::ConfigError{"stratified_folds: k > n"};
  std::vector<std::vector<std::size_t>> folds(k);
  std::size_t next = 0;
  for (auto& group : class_groups(data, rng)) {
    for (const std::size_t idx : group) {
      folds[next % k].push_back(idx);
      ++next;
    }
  }
  for (auto& fold : folds) rng.shuffle(fold);
  return folds;
}

}  // namespace emoleak::ml
