// Extended evaluation metrics and reporting.
//
// Beyond raw accuracy (which the paper reports), downstream users need
// per-class breakdowns, chance-corrected agreement and formatted
// reports to judge a side channel whose class priors may be skewed.
#pragma once

#include <string>
#include <vector>

#include "ml/eval.h"

namespace emoleak::ml {

/// Cohen's kappa: agreement corrected for chance. 0 = chance-level,
/// 1 = perfect. More honest than accuracy under class imbalance.
[[nodiscard]] double cohens_kappa(const ConfusionMatrix& cm);

/// Micro-averaged F1 (equals accuracy for single-label classification,
/// included for API completeness and cross-checking).
[[nodiscard]] double micro_f1(const ConfusionMatrix& cm);

/// Matthews correlation coefficient generalized to multiclass
/// (the R_k statistic). In [-1, 1]; 0 = chance.
[[nodiscard]] double matthews_corrcoef(const ConfusionMatrix& cm);

/// Per-class precision/recall/F1/support rows plus summary lines,
/// rendered as a text table (sklearn-style classification report).
[[nodiscard]] std::string classification_report(
    const ConfusionMatrix& cm, const std::vector<std::string>& class_names);

}  // namespace emoleak::ml
