#include "ml/serialize.h"

#include <fstream>
#include <istream>
#include <ostream>

#include "ml/ensemble.h"
#include "ml/lmt.h"
#include "ml/logistic.h"
#include "ml/multiclass.h"
#include "ml/tree.h"
#include "util/error.h"

namespace emoleak::ml {

void Classifier::serialize(std::ostream& /*out*/) const {
  throw util::DataError{"serialize: unsupported for " + name()};
}

void Classifier::deserialize(std::istream& /*in*/) {
  throw util::DataError{"deserialize: unsupported for " + name()};
}

std::vector<double> Classifier::predict_proba_batch(
    std::span<const double> rows, std::size_t dim, std::size_t count) const {
  if (rows.size() != dim * count) {
    throw util::DataError{"predict_proba_batch: rows/dim/count mismatch"};
  }
  std::vector<double> out;
  for (std::size_t i = 0; i < count; ++i) {
    const std::vector<double> p = predict_proba(rows.subspan(i * dim, dim));
    if (i == 0) out.reserve(count * p.size());
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

namespace {

constexpr char kMagic[] = "emoleak-model-v1";

std::unique_ptr<Classifier> make_by_name(const std::string& name) {
  if (name == "Logistic") return std::make_unique<LogisticRegression>();
  if (name == "multiClassClassifier") {
    return std::make_unique<OneVsRestLogistic>();
  }
  if (name == "DecisionTree") return std::make_unique<DecisionTree>();
  if (name == "trees.lmt") return std::make_unique<LogisticModelTree>();
  if (name == "RandomForest") return std::make_unique<RandomForest>();
  if (name == "RandomSubSpace") return std::make_unique<RandomSubspace>();
  throw util::DataError{"load_model: unknown classifier '" + name + "'"};
}

}  // namespace

namespace detail {

void check_count(std::size_t value, std::size_t max, const char* what) {
  if (value == 0 || value > max) {
    throw util::DataError{std::string{what} + ": count " +
                          std::to_string(value) + " out of range [1, " +
                          std::to_string(max) + "]"};
  }
}

}  // namespace detail

void save_model(std::ostream& out, const Classifier& model) {
  out << kMagic << '\n' << model.name() << '\n';
  model.serialize(out);
  if (!out) throw util::DataError{"save_model: stream failure"};
}

std::unique_ptr<Classifier> load_model(std::istream& in) {
  std::string magic;
  std::string name;
  in >> magic >> name;
  if (!in || magic != kMagic) {
    throw util::DataError{"load_model: bad header"};
  }
  std::unique_ptr<Classifier> model = make_by_name(name);
  model->deserialize(in);
  if (!in) throw util::DataError{"load_model: truncated stream"};
  return model;
}

void save_model_file(const std::string& path, const Classifier& model) {
  std::ofstream out{path};
  if (!out) throw util::DataError{"save_model_file: cannot open " + path};
  save_model(out, model);
}

std::unique_ptr<Classifier> load_model_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw util::DataError{"load_model_file: cannot open " + path};
  return load_model(in);
}

}  // namespace emoleak::ml
