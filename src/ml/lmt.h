// Logistic model tree.
//
// Counterpart of Weka's `trees.LMT` (Landwehr, Hall & Frank 2005),
// which the paper uses in Tables III-VI. The full LMT algorithm builds
// the tree with LogitBoost and cost-complexity pruning; this
// implementation keeps its essential structure — a shallow decision
// tree whose leaves hold multinomial logistic models over all features
// — which matches LMT's behaviour on small/medium feature sets.
#pragma once

#include "ml/logistic.h"
#include "ml/tree.h"

namespace emoleak::ml {

struct LmtConfig {
  int tree_depth = 3;              ///< depth of the structural tree
  std::size_t min_leaf_samples = 30;
  LogisticConfig leaf_logistic{};
  std::uint64_t seed = 13;
};

class LogisticModelTree final : public Classifier {
 public:
  LogisticModelTree() = default;
  explicit LogisticModelTree(LmtConfig config) : config_{config} {}

  void fit(const Dataset& data) override;
  [[nodiscard]] int predict(std::span<const double> row) const override;
  [[nodiscard]] std::vector<double> predict_proba(
      std::span<const double> row) const override;
  [[nodiscard]] std::unique_ptr<Classifier> clone() const override;
  [[nodiscard]] std::string name() const override { return "trees.lmt"; }
  void serialize(std::ostream& out) const override;
  void deserialize(std::istream& in) override;

  [[nodiscard]] std::size_t leaf_model_count() const noexcept {
    return leaf_models_.size();
  }

 private:
  LmtConfig config_{};
  DecisionTree structure_;
  /// One logistic model per structural leaf; leaves too small for a
  /// stable logistic fit fall back to the tree's leaf distribution
  /// (empty optional).
  std::vector<std::unique_ptr<LogisticRegression>> leaf_models_;
  int classes_ = 0;
};

}  // namespace emoleak::ml
