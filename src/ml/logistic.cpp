#include "ml/logistic.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>

#include "ml/serialize.h"
#include "util/error.h"

namespace emoleak::ml {

void softmax_inplace(std::vector<double>& logits) {
  if (logits.empty()) return;
  const double max_logit = *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (double& v : logits) {
    v = std::exp(v - max_logit);
    sum += v;
  }
  for (double& v : logits) v /= sum;
}

void LogisticRegression::fit(const Dataset& data) {
  data.validate();
  if (data.size() == 0) throw util::DataError{"Logistic: empty dataset"};
  classes_ = data.class_count;
  dim_ = data.dim();
  scaler_.fit(data);
  const Dataset scaled = scaler_.transform(data);

  const std::size_t w_per_class = dim_ + 1;
  weights_.assign(static_cast<std::size_t>(classes_) * w_per_class, 0.0);

  // Full-batch Adam on softmax cross-entropy + ridge.
  std::vector<double> m(weights_.size(), 0.0);
  std::vector<double> v(weights_.size(), 0.0);
  std::vector<double> grad(weights_.size(), 0.0);
  const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  const double n = static_cast<double>(scaled.size());

  double prev_loss = std::numeric_limits<double>::infinity();
  std::vector<double> probs(static_cast<std::size_t>(classes_));
  for (int epoch = 1; epoch <= config_.max_epochs; ++epoch) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double loss = 0.0;
    for (std::size_t i = 0; i < scaled.size(); ++i) {
      const std::vector<double>& row = scaled.x[i];
      for (int c = 0; c < classes_; ++c) {
        const double* w = &weights_[static_cast<std::size_t>(c) * w_per_class];
        double z = w[dim_];
        for (std::size_t j = 0; j < dim_; ++j) z += w[j] * row[j];
        probs[static_cast<std::size_t>(c)] = z;
      }
      softmax_inplace(probs);
      const auto target = static_cast<std::size_t>(scaled.y[i]);
      loss -= std::log(std::max(probs[target], 1e-300));
      for (int c = 0; c < classes_; ++c) {
        const double delta =
            probs[static_cast<std::size_t>(c)] -
            (static_cast<std::size_t>(c) == target ? 1.0 : 0.0);
        double* g = &grad[static_cast<std::size_t>(c) * w_per_class];
        for (std::size_t j = 0; j < dim_; ++j) g[j] += delta * row[j];
        g[dim_] += delta;
      }
    }
    loss /= n;
    for (std::size_t k = 0; k < weights_.size(); ++k) {
      grad[k] = grad[k] / n + config_.ridge * weights_[k];
      loss += 0.5 * config_.ridge * weights_[k] * weights_[k] / n;
    }
    if (!std::isfinite(loss)) {
      throw util::NumericalError{"Logistic: non-finite training loss"};
    }

    const double bc1 = 1.0 - std::pow(beta1, epoch);
    const double bc2 = 1.0 - std::pow(beta2, epoch);
    for (std::size_t k = 0; k < weights_.size(); ++k) {
      m[k] = beta1 * m[k] + (1.0 - beta1) * grad[k];
      v[k] = beta2 * v[k] + (1.0 - beta2) * grad[k] * grad[k];
      weights_[k] -=
          config_.learning_rate * (m[k] / bc1) / (std::sqrt(v[k] / bc2) + eps);
    }
    if (std::abs(prev_loss - loss) < config_.tolerance) break;
    prev_loss = loss;
  }
}

std::vector<double> LogisticRegression::logits(
    std::span<const double> scaled) const {
  const std::size_t w_per_class = dim_ + 1;
  std::vector<double> out(static_cast<std::size_t>(classes_));
  for (int c = 0; c < classes_; ++c) {
    const double* w = &weights_[static_cast<std::size_t>(c) * w_per_class];
    double z = w[dim_];
    for (std::size_t j = 0; j < dim_; ++j) z += w[j] * scaled[j];
    out[static_cast<std::size_t>(c)] = z;
  }
  return out;
}

int LogisticRegression::predict(std::span<const double> row) const {
  const std::vector<double> p = predict_proba(row);
  return static_cast<int>(
      std::max_element(p.begin(), p.end()) - p.begin());
}

std::vector<double> LogisticRegression::predict_proba(
    std::span<const double> row) const {
  if (classes_ == 0) throw util::DataError{"Logistic: not fitted"};
  const std::vector<double> scaled = scaler_.transform_row(row);
  std::vector<double> p = logits(scaled);
  softmax_inplace(p);
  return p;
}

std::vector<double> LogisticRegression::predict_proba_batch(
    std::span<const double> rows, std::size_t dim, std::size_t count) const {
  if (classes_ == 0) throw util::DataError{"Logistic: not fitted"};
  if (rows.size() != dim * count) {
    throw util::DataError{"Logistic: rows/dim/count mismatch"};
  }
  const auto classes = static_cast<std::size_t>(classes_);
  std::vector<double> out;
  out.reserve(count * classes);
  // Per row: the exact scale → logits → softmax chain of predict_proba,
  // amortizing one output allocation across the batch.
  for (std::size_t i = 0; i < count; ++i) {
    const std::vector<double> scaled =
        scaler_.transform_row(rows.subspan(i * dim, dim));
    std::vector<double> p = logits(scaled);
    softmax_inplace(p);
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

std::unique_ptr<Classifier> LogisticRegression::clone() const {
  return std::make_unique<LogisticRegression>(config_);
}

void LogisticRegression::serialize(std::ostream& out) const {
  if (classes_ == 0) throw util::DataError{"Logistic::serialize: not fitted"};
  out << std::setprecision(17);
  out << classes_ << ' ' << dim_ << '\n';
  for (const double v : scaler_.mean()) out << v << ' ';
  out << '\n';
  for (const double v : scaler_.stddev()) out << v << ' ';
  out << '\n';
  for (const double v : weights_) out << v << ' ';
  out << '\n';
}

void LogisticRegression::deserialize(std::istream& in) {
  in >> classes_ >> dim_;
  if (!in || classes_ <= 0) {
    throw util::DataError{"Logistic::deserialize: bad header"};
  }
  detail::check_count(static_cast<std::size_t>(classes_), detail::kMaxClasses,
                      "Logistic::deserialize classes");
  detail::check_count(dim_, detail::kMaxDim, "Logistic::deserialize dim");
  std::vector<double> mean(dim_);
  std::vector<double> stddev(dim_);
  for (double& v : mean) in >> v;
  for (double& v : stddev) in >> v;
  if (!in) throw util::DataError{"Logistic::deserialize: truncated"};
  for (const double v : stddev) {
    if (!std::isfinite(v) || v <= 0.0) {
      throw util::DataError{"Logistic::deserialize: bad scaler stddev"};
    }
  }
  for (const double v : mean) {
    if (!std::isfinite(v)) {
      throw util::DataError{"Logistic::deserialize: bad scaler mean"};
    }
  }
  scaler_.set_state(std::move(mean), std::move(stddev));
  weights_.assign(static_cast<std::size_t>(classes_) * (dim_ + 1), 0.0);
  for (double& v : weights_) in >> v;
  if (!in) throw util::DataError{"Logistic::deserialize: truncated"};
  for (const double v : weights_) {
    if (!std::isfinite(v)) {
      throw util::DataError{"Logistic::deserialize: non-finite weight"};
    }
  }
}

}  // namespace emoleak::ml
