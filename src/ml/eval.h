// Evaluation: confusion matrices, hold-out and k-fold protocols.
//
// The paper evaluates with an 80/20 split and 10-fold cross-validation
// (§IV-D1) and reports accuracies plus confusion matrices (Fig. 6).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ml/classifier.h"
#include "util/parallel.h"

namespace emoleak::ml {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int class_count);

  void add(int truth, int predicted);
  void merge(const ConfusionMatrix& other);

  [[nodiscard]] int class_count() const noexcept { return classes_; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t count(int truth, int predicted) const;
  [[nodiscard]] double accuracy() const noexcept;
  /// Per-class recall (diagonal / row sum); 0 for empty rows.
  [[nodiscard]] std::vector<double> recall() const;
  /// Per-class precision (diagonal / column sum); 0 for empty columns.
  [[nodiscard]] std::vector<double> precision() const;
  /// Macro-averaged F1.
  [[nodiscard]] double macro_f1() const;
  [[nodiscard]] const std::vector<std::vector<std::size_t>>& counts() const noexcept {
    return counts_;
  }

 private:
  int classes_;
  std::size_t total_ = 0;
  std::vector<std::vector<std::size_t>> counts_;
};

struct EvalResult {
  ConfusionMatrix confusion;
  double accuracy = 0.0;
};

/// Trains `model` on `train` and evaluates on `test`.
[[nodiscard]] EvalResult evaluate_holdout(Classifier& model, const Dataset& train,
                                          const Dataset& test);

/// Stratified 80/20 (or custom) hold-out evaluation with a fresh clone.
[[nodiscard]] EvalResult evaluate_split(const Classifier& prototype,
                                        const Dataset& data,
                                        double train_fraction,
                                        std::uint64_t seed);

/// Stratified k-fold cross-validation; returns the pooled confusion
/// matrix over all folds (Weka's protocol). Folds are independent
/// (fresh clone per fold, fold sets drawn up front), so they train and
/// evaluate in parallel; the pooled matrix merges in fold order and is
/// bit-identical at any thread count.
[[nodiscard]] EvalResult cross_validate(
    const Classifier& prototype, const Dataset& data, std::size_t folds,
    std::uint64_t seed, const util::Parallelism& parallelism = {});

}  // namespace emoleak::ml
