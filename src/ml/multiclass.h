// One-vs-rest meta-classifier.
//
// The counterpart of Weka's `meta.MultiClassClassifier` with its
// default 1-against-all method and Logistic base learner (the paper's
// second classical classifier, Tables III-V). Trains one binary
// logistic model per class and predicts the class whose binary model
// is most confident.
#pragma once

#include "ml/logistic.h"

namespace emoleak::ml {

class OneVsRestLogistic final : public Classifier {
 public:
  OneVsRestLogistic() = default;
  explicit OneVsRestLogistic(LogisticConfig base_config)
      : base_config_{base_config} {}

  void fit(const Dataset& data) override;
  [[nodiscard]] int predict(std::span<const double> row) const override;
  [[nodiscard]] std::vector<double> predict_proba(
      std::span<const double> row) const override;
  [[nodiscard]] std::unique_ptr<Classifier> clone() const override;
  [[nodiscard]] std::string name() const override {
    return "multiClassClassifier";
  }
  void serialize(std::ostream& out) const override;
  void deserialize(std::istream& in) override;

 private:
  LogisticConfig base_config_{};
  int classes_ = 0;
  std::vector<LogisticRegression> binary_;  ///< one 2-class model per class
};

}  // namespace emoleak::ml
