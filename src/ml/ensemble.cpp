#include "ml/ensemble.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <optional>
#include <ostream>

#include "ml/serialize.h"
#include "obs/obs.h"
#include "util/error.h"

namespace emoleak::ml {

void RandomForest::fit(const Dataset& data) {
  data.validate();
  if (config_.tree_count == 0) {
    throw util::ConfigError{"RandomForest: tree_count must be > 0"};
  }
  classes_ = data.class_count;
  trees_.clear();
  util::Rng rng{config_.seed};

  const auto bag_size = static_cast<std::size_t>(
      std::max(1.0, config_.bootstrap_fraction * static_cast<double>(data.size())));

  // All RNG draws happen serially here, in the same order the serial
  // loop made them, so the trained forest is bit-identical at any
  // thread count; the expensive tree fits then fan out below.
  struct TreePlan {
    TreeConfig cfg;
    std::vector<std::size_t> bag;
  };
  std::vector<TreePlan> plans(config_.tree_count);
  for (std::size_t t = 0; t < config_.tree_count; ++t) {
    TreeConfig cfg = config_.tree;
    if (cfg.features_per_split == 0) {
      cfg.features_per_split = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::round(std::sqrt(
                 static_cast<double>(data.dim())))));
    }
    cfg.seed = rng.next();
    std::vector<std::size_t> bag(bag_size);
    for (std::size_t i = 0; i < bag_size; ++i) {
      bag[i] = rng.uniform_int(data.size());
    }
    plans[t] = TreePlan{cfg, std::move(bag)};
  }

  // Per-dataset shared induction index, built once for the whole
  // forest and read-only afterwards so sharing it across the worker
  // threads is safe: sorted columns for the exact/presort path, the
  // quantile binner for the histogram path. Binning uses the *full*
  // dataset (not a bag), so every tree sees the same candidate cuts and
  // the forest stays bit-identical at any thread count.
  std::optional<PresortedColumns> shared;
  std::optional<BinnedColumns> shared_bins;
  if (config_.tree.exact) {
    if (config_.tree.presort) shared.emplace(PresortedColumns::build(data));
  } else {
    shared_bins.emplace(BinnedColumns::build(data, config_.tree.max_bins));
  }

  std::vector<DecisionTree> trees(config_.tree_count);
  util::parallel_for(config_.parallelism, plans.size(), [&](std::size_t t) {
    OBS_SPAN_ARG("ml.tree_fit", "tree", t);
    DecisionTree tree{plans[t].cfg};
    tree.fit_indices(data, plans[t].bag, shared ? &*shared : nullptr,
                     shared_bins ? &*shared_bins : nullptr);
    trees[t] = std::move(tree);
  });
  trees_ = std::move(trees);
}

int RandomForest::predict(std::span<const double> row) const {
  const std::vector<double> p = predict_proba(row);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

std::vector<double> RandomForest::predict_proba(
    std::span<const double> row) const {
  if (trees_.empty()) throw util::DataError{"RandomForest: not fitted"};
  std::vector<double> acc(static_cast<std::size_t>(classes_), 0.0);
  for (const DecisionTree& tree : trees_) {
    const std::vector<double> p = tree.predict_proba(row);
    for (std::size_t c = 0; c < acc.size(); ++c) acc[c] += p[c];
  }
  for (double& v : acc) v /= static_cast<double>(trees_.size());
  return acc;
}

std::vector<double> RandomForest::predict_proba_batch(
    std::span<const double> rows, std::size_t dim, std::size_t count) const {
  if (trees_.empty()) throw util::DataError{"RandomForest: not fitted"};
  if (rows.size() != dim * count) {
    throw util::DataError{"RandomForest: rows/dim/count mismatch"};
  }
  const auto classes = static_cast<std::size_t>(classes_);
  std::vector<double> acc(count * classes, 0.0);
  // Trees outer, rows inner: each tree's node array stays hot across
  // the whole batch. Per row the accumulation still visits trees in
  // index order, so every result row is bitwise identical to the
  // single-row predict_proba for that row.
  for (const DecisionTree& tree : trees_) {
    for (std::size_t i = 0; i < count; ++i) {
      const std::vector<double> p = tree.predict_proba(rows.subspan(i * dim, dim));
      double* a = acc.data() + i * classes;
      for (std::size_t c = 0; c < classes; ++c) a[c] += p[c];
    }
  }
  for (double& v : acc) v /= static_cast<double>(trees_.size());
  return acc;
}

std::unique_ptr<Classifier> RandomForest::clone() const {
  return std::make_unique<RandomForest>(config_);
}

void RandomForest::serialize(std::ostream& out) const {
  if (trees_.empty()) throw util::DataError{"RandomForest::serialize: not fitted"};
  out << classes_ << ' ' << trees_.size() << '\n';
  for (const DecisionTree& tree : trees_) tree.serialize(out);
}

void RandomForest::deserialize(std::istream& in) {
  std::size_t count = 0;
  in >> classes_ >> count;
  if (!in || classes_ <= 0) {
    throw util::DataError{"RandomForest::deserialize: bad header"};
  }
  detail::check_count(static_cast<std::size_t>(classes_), detail::kMaxClasses,
                      "RandomForest::deserialize classes");
  detail::check_count(count, detail::kMaxEnsemble,
                      "RandomForest::deserialize trees");
  trees_.clear();
  for (std::size_t t = 0; t < count; ++t) {
    DecisionTree tree;
    tree.deserialize(in);
    // predict_proba sums tree distributions into a classes_-sized
    // accumulator, so a class-count mismatch would read out of bounds.
    if (tree.classes() != classes_) {
      throw util::DataError{"RandomForest::deserialize: tree class mismatch"};
    }
    trees_.push_back(std::move(tree));
  }
  if (!in) throw util::DataError{"RandomForest::deserialize: truncated"};
}

void RandomSubspace::fit(const Dataset& data) {
  data.validate();
  if (config_.ensemble_size == 0) {
    throw util::ConfigError{"RandomSubspace: ensemble_size must be > 0"};
  }
  if (config_.subspace_fraction <= 0.0 || config_.subspace_fraction > 1.0) {
    throw util::ConfigError{"RandomSubspace: fraction must be in (0,1]"};
  }
  classes_ = data.class_count;
  trees_.clear();
  subspaces_.clear();
  util::Rng rng{config_.seed};

  const std::size_t dim = data.dim();
  const auto sub_dim = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::round(config_.subspace_fraction * static_cast<double>(dim))));

  std::vector<std::size_t> all_features(dim);
  for (std::size_t i = 0; i < dim; ++i) all_features[i] = i;

  // Serial RNG phase (identical draw order to the serial loop): pick
  // each tree's column subset and seed. The projection + fit fan out.
  struct SubspacePlan {
    TreeConfig cfg;
    std::vector<std::size_t> cols;
  };
  std::vector<SubspacePlan> plans(config_.ensemble_size);
  for (std::size_t t = 0; t < config_.ensemble_size; ++t) {
    rng.shuffle(all_features);
    std::vector<std::size_t> cols{all_features.begin(),
                                  all_features.begin() + static_cast<std::ptrdiff_t>(sub_dim)};
    std::sort(cols.begin(), cols.end());
    TreeConfig cfg = config_.tree;
    cfg.seed = rng.next();
    plans[t] = SubspacePlan{cfg, std::move(cols)};
  }

  std::vector<DecisionTree> trees(config_.ensemble_size);
  util::parallel_for(config_.parallelism, plans.size(), [&](std::size_t t) {
    OBS_SPAN_ARG("ml.subspace_fit", "tree", t);
    const std::vector<std::size_t>& cols = plans[t].cols;
    Dataset projected;
    projected.class_count = data.class_count;
    projected.class_names = data.class_names;
    projected.y = data.y;
    projected.x.reserve(data.size());
    for (const auto& row : data.x) {
      std::vector<double> r(sub_dim);
      for (std::size_t j = 0; j < sub_dim; ++j) r[j] = row[cols[j]];
      projected.x.push_back(std::move(r));
    }
    DecisionTree tree{plans[t].cfg};
    tree.fit(projected);
    trees[t] = std::move(tree);
  });
  trees_ = std::move(trees);
  subspaces_.reserve(config_.ensemble_size);
  for (SubspacePlan& plan : plans) subspaces_.push_back(std::move(plan.cols));
}

int RandomSubspace::predict(std::span<const double> row) const {
  const std::vector<double> p = predict_proba(row);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

std::vector<double> RandomSubspace::predict_proba(
    std::span<const double> row) const {
  if (trees_.empty()) throw util::DataError{"RandomSubspace: not fitted"};
  std::vector<double> acc(static_cast<std::size_t>(classes_), 0.0);
  std::vector<double> projected;
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    const std::vector<std::size_t>& cols = subspaces_[t];
    projected.resize(cols.size());
    for (std::size_t j = 0; j < cols.size(); ++j) {
      if (cols[j] >= row.size()) {
        throw util::DataError{"RandomSubspace: row narrower than subspace"};
      }
      projected[j] = row[cols[j]];
    }
    const std::vector<double> p = trees_[t].predict_proba(projected);
    for (std::size_t c = 0; c < acc.size(); ++c) acc[c] += p[c];
  }
  for (double& v : acc) v /= static_cast<double>(trees_.size());
  return acc;
}

std::vector<double> RandomSubspace::predict_proba_batch(
    std::span<const double> rows, std::size_t dim, std::size_t count) const {
  if (trees_.empty()) throw util::DataError{"RandomSubspace: not fitted"};
  if (rows.size() != dim * count) {
    throw util::DataError{"RandomSubspace: rows/dim/count mismatch"};
  }
  const auto classes = static_cast<std::size_t>(classes_);
  std::vector<double> acc(count * classes, 0.0);
  std::vector<double> projected;
  // Trees outer so each subspace projection plan and tree stay hot
  // across the batch; per-row tree order matches the single-row path.
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    const std::vector<std::size_t>& cols = subspaces_[t];
    projected.resize(cols.size());
    for (std::size_t i = 0; i < count; ++i) {
      const std::span<const double> row = rows.subspan(i * dim, dim);
      for (std::size_t j = 0; j < cols.size(); ++j) {
        if (cols[j] >= row.size()) {
          throw util::DataError{"RandomSubspace: row narrower than subspace"};
        }
        projected[j] = row[cols[j]];
      }
      const std::vector<double> p = trees_[t].predict_proba(projected);
      double* a = acc.data() + i * classes;
      for (std::size_t c = 0; c < classes; ++c) a[c] += p[c];
    }
  }
  for (double& v : acc) v /= static_cast<double>(trees_.size());
  return acc;
}

std::unique_ptr<Classifier> RandomSubspace::clone() const {
  return std::make_unique<RandomSubspace>(config_);
}

void RandomSubspace::serialize(std::ostream& out) const {
  if (trees_.empty()) {
    throw util::DataError{"RandomSubspace::serialize: not fitted"};
  }
  out << classes_ << ' ' << trees_.size() << '\n';
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    out << subspaces_[t].size();
    for (const std::size_t c : subspaces_[t]) out << ' ' << c;
    out << '\n';
    trees_[t].serialize(out);
  }
}

void RandomSubspace::deserialize(std::istream& in) {
  std::size_t count = 0;
  in >> classes_ >> count;
  if (!in || classes_ <= 0) {
    throw util::DataError{"RandomSubspace::deserialize: bad header"};
  }
  detail::check_count(static_cast<std::size_t>(classes_), detail::kMaxClasses,
                      "RandomSubspace::deserialize classes");
  detail::check_count(count, detail::kMaxEnsemble,
                      "RandomSubspace::deserialize trees");
  trees_.clear();
  subspaces_.clear();
  for (std::size_t t = 0; t < count; ++t) {
    std::size_t cols = 0;
    in >> cols;
    if (!in) throw util::DataError{"RandomSubspace::deserialize: truncated"};
    detail::check_count(cols, detail::kMaxDim,
                        "RandomSubspace::deserialize subspace");
    std::vector<std::size_t> subspace(cols);
    for (std::size_t& c : subspace) {
      in >> c;
      if (c > detail::kMaxDim) {
        throw util::DataError{
            "RandomSubspace::deserialize: column index out of range"};
      }
    }
    subspaces_.push_back(std::move(subspace));
    DecisionTree tree;
    tree.deserialize(in);
    if (tree.classes() != classes_) {
      throw util::DataError{"RandomSubspace::deserialize: tree class mismatch"};
    }
    trees_.push_back(std::move(tree));
  }
  if (!in) throw util::DataError{"RandomSubspace::deserialize: truncated"};
}

}  // namespace emoleak::ml
