// Feature datasets and preprocessing.
//
// Mirrors the paper's preprocessing: invalid entries (NaN/inf) are
// removed (§IV-D1) and z-score normalization is applied before the CNN
// (§IV-D2). Splitting utilities implement the 80/20 train-test split
// and stratified 10-fold cross-validation the paper evaluates with.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"

namespace emoleak::ml {

struct Dataset {
  std::vector<std::vector<double>> x;  ///< rows of features
  std::vector<int> y;                  ///< labels in [0, class_count)
  int class_count = 0;
  std::vector<std::string> feature_names;
  std::vector<std::string> class_names;

  [[nodiscard]] std::size_t size() const noexcept { return x.size(); }
  [[nodiscard]] std::size_t dim() const noexcept {
    return x.empty() ? 0 : x[0].size();
  }

  /// Throws util::DataError unless rows/labels are consistent.
  void validate() const;

  /// Rows selected by index (metadata copied).
  [[nodiscard]] Dataset subset(std::span<const std::size_t> indices) const;

  /// Removes rows containing NaN or infinity. Returns removed count.
  std::size_t drop_invalid();
};

/// Z-score normalization fitted on training data.
class StandardScaler {
 public:
  void fit(const Dataset& data);
  [[nodiscard]] std::vector<double> transform_row(
      std::span<const double> row) const;
  [[nodiscard]] Dataset transform(const Dataset& data) const;
  [[nodiscard]] bool fitted() const noexcept { return !mean_.empty(); }
  [[nodiscard]] const std::vector<double>& mean() const noexcept { return mean_; }
  [[nodiscard]] const std::vector<double>& stddev() const noexcept { return std_; }

  /// Restores a fitted state directly (model deserialization).
  void set_state(std::vector<double> mean, std::vector<double> stddev);

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

struct Split {
  Dataset train;
  Dataset test;
};

/// Stratified 80/20 (or `train_fraction`) split.
[[nodiscard]] Split train_test_split(const Dataset& data, double train_fraction,
                                     util::Rng& rng);

/// Stratified k-fold index sets: returns k vectors of test indices that
/// partition [0, n).
[[nodiscard]] std::vector<std::vector<std::size_t>> stratified_folds(
    const Dataset& data, std::size_t k, util::Rng& rng);

}  // namespace emoleak::ml
