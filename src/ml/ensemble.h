// Ensemble classifiers: RandomForest and RandomSubSpace.
//
// Counterparts of Weka's `trees.RandomForest` and `meta.RandomSubSpace`
// (with REPTree-like base learners), the paper's strongest classical
// classifiers in the ear-speaker setting (Table VI).
#pragma once

#include "ml/tree.h"
#include "util/parallel.h"

namespace emoleak::ml {

struct RandomForestConfig {
  std::size_t tree_count = 60;
  TreeConfig tree{};            ///< features_per_split 0 => sqrt(dim)
  double bootstrap_fraction = 1.0;
  std::uint64_t seed = 17;
  /// Threads for per-tree training. Per-tree seeds and bootstrap bags
  /// are drawn serially up front, so the fitted forest is bit-identical
  /// at any thread count; 1 forces the serial path.
  util::Parallelism parallelism;
};

/// Bagged CART trees with per-split random feature subsets; predictions
/// average the trees' leaf distributions (soft voting, as Weka does).
class RandomForest final : public Classifier {
 public:
  RandomForest() = default;
  explicit RandomForest(RandomForestConfig config) : config_{config} {}

  void fit(const Dataset& data) override;
  [[nodiscard]] int predict(std::span<const double> row) const override;
  [[nodiscard]] std::vector<double> predict_proba(
      std::span<const double> row) const override;
  [[nodiscard]] std::vector<double> predict_proba_batch(
      std::span<const double> rows, std::size_t dim,
      std::size_t count) const override;
  [[nodiscard]] std::unique_ptr<Classifier> clone() const override;
  [[nodiscard]] std::string name() const override { return "RandomForest"; }
  void serialize(std::ostream& out) const override;
  void deserialize(std::istream& in) override;

  [[nodiscard]] std::size_t tree_count() const noexcept { return trees_.size(); }

 private:
  RandomForestConfig config_{};
  std::vector<DecisionTree> trees_;
  int classes_ = 0;
};

struct RandomSubspaceConfig {
  std::size_t ensemble_size = 30;
  double subspace_fraction = 0.5;  ///< Weka default: half the features
  TreeConfig tree{};
  std::uint64_t seed = 19;
  /// Threads for per-tree training (see RandomForestConfig::parallelism).
  util::Parallelism parallelism;
};

/// Each base tree trains on a random fixed subset of feature columns
/// (a random subspace); predictions soft-vote.
class RandomSubspace final : public Classifier {
 public:
  RandomSubspace() = default;
  explicit RandomSubspace(RandomSubspaceConfig config) : config_{config} {}

  void fit(const Dataset& data) override;
  [[nodiscard]] int predict(std::span<const double> row) const override;
  [[nodiscard]] std::vector<double> predict_proba(
      std::span<const double> row) const override;
  [[nodiscard]] std::vector<double> predict_proba_batch(
      std::span<const double> rows, std::size_t dim,
      std::size_t count) const override;
  [[nodiscard]] std::unique_ptr<Classifier> clone() const override;
  [[nodiscard]] std::string name() const override { return "RandomSubSpace"; }
  void serialize(std::ostream& out) const override;
  void deserialize(std::istream& in) override;

 private:
  RandomSubspaceConfig config_{};
  std::vector<DecisionTree> trees_;
  std::vector<std::vector<std::size_t>> subspaces_;  ///< columns per tree
  int classes_ = 0;
};

}  // namespace emoleak::ml
