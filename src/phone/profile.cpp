#include "phone/profile.h"

#include <algorithm>

#include "util/error.h"

namespace emoleak::phone {

void PhoneProfile::validate() const {
  if (name.empty()) throw util::ConfigError{"PhoneProfile: name empty"};
  if (accel_rate_hz <= 0.0) throw util::ConfigError{"PhoneProfile: accel rate <= 0"};
  if (accel_noise_sigma < 0.0) throw util::ConfigError{"PhoneProfile: noise < 0"};
  if (accel_lsb < 0.0) throw util::ConfigError{"PhoneProfile: lsb < 0"};
  if (loudspeaker_gain <= 0.0 || ear_speaker_gain <= 0.0) {
    throw util::ConfigError{"PhoneProfile: gains must be > 0"};
  }
  for (const Resonance& r : resonances) {
    if (r.frequency_hz <= 0.0 || r.q <= 0.0) {
      throw util::ConfigError{"PhoneProfile: invalid resonance"};
    }
  }
}

PhoneProfile oneplus_7t() {
  PhoneProfile p;
  p.name = "OnePlus 7T";
  p.accel_rate_hz = 420.0;
  p.accel_noise_sigma = 0.0032;
  p.accel_lsb = 0.0012;
  p.internal_lpf_cutoff_factor = 1.6;
  // The 7T's powerful stereo speakers (42-46 dB SPL even from the ear
  // speaker, paper §I) conduct strongly into the board.
  p.loudspeaker_gain = 1.25;
  p.ear_speaker_gain = 1.22;
  p.resonances = {{112.0, 6.0, 1.0}, {168.0, 4.0, 0.6}};
  p.ear_rolloff_hz = 135.0;
  p.ear_rolloff_order = 4;
  p.coupling_jitter = 0.10;
  return p;
}

PhoneProfile oneplus_9() {
  PhoneProfile p;
  p.name = "OnePlus 9";
  p.accel_rate_hz = 400.0;
  p.accel_noise_sigma = 0.0036;
  p.accel_lsb = 0.0012;
  p.internal_lpf_cutoff_factor = 1.5;
  p.loudspeaker_gain = 1.12;
  p.ear_speaker_gain = 1.55;
  p.resonances = {{105.0, 5.5, 1.0}, {155.0, 4.5, 0.7}};
  p.ear_rolloff_hz = 135.0;
  p.ear_rolloff_order = 4;
  p.coupling_jitter = 0.12;
  return p;
}

PhoneProfile pixel_5() {
  PhoneProfile p;
  p.name = "Google Pixel 5";
  p.accel_rate_hz = 417.0;
  p.accel_noise_sigma = 0.0072;
  p.accel_lsb = 0.0015;
  p.internal_lpf_cutoff_factor = 0.64;
  // Under-display earpiece + softer chassis: weakest conduction of the
  // six devices (matches the paper's lowest TESS accuracies).
  p.loudspeaker_gain = 0.78;
  p.ear_speaker_gain = 0.72;
  p.resonances = {{96.0, 4.0, 1.0}};
  p.coupling_jitter = 0.30;
  p.ear_rolloff_hz = 135.0;
  p.ear_rolloff_order = 4;
  return p;
}

PhoneProfile galaxy_s10() {
  PhoneProfile p;
  p.name = "Samsung Galaxy S10";
  p.accel_rate_hz = 500.0;
  p.accel_noise_sigma = 0.0078;
  p.accel_lsb = 0.0024;
  p.internal_lpf_cutoff_factor = 0.555;
  p.loudspeaker_gain = 0.70;
  p.ear_speaker_gain = 0.86;
  p.resonances = {{124.0, 5.0, 1.0}, {188.0, 3.5, 0.5}};
  p.coupling_jitter = 0.40;
  p.ear_rolloff_hz = 135.0;
  p.ear_rolloff_order = 4;
  return p;
}

PhoneProfile galaxy_s21() {
  PhoneProfile p;
  p.name = "Samsung Galaxy S21";
  p.accel_rate_hz = 500.0;
  p.accel_noise_sigma = 0.0070;
  p.accel_lsb = 0.0024;
  p.internal_lpf_cutoff_factor = 0.60;
  p.loudspeaker_gain = 0.74;
  p.ear_speaker_gain = 1.00;
  p.resonances = {{118.0, 5.5, 1.0}, {176.0, 4.0, 0.55}};
  p.coupling_jitter = 0.25;
  p.ear_rolloff_hz = 135.0;
  p.ear_rolloff_order = 4;
  return p;
}

PhoneProfile galaxy_s21_ultra() {
  PhoneProfile p;
  p.name = "Samsung Galaxy S21 Ultra";
  p.accel_rate_hz = 500.0;
  p.accel_noise_sigma = 0.0075;
  p.accel_lsb = 0.0024;
  p.internal_lpf_cutoff_factor = 0.565;
  // Heavier chassis damps conduction slightly relative to the S21.
  p.loudspeaker_gain = 0.70;
  p.ear_speaker_gain = 0.94;
  p.resonances = {{102.0, 6.0, 1.0}, {160.0, 4.5, 0.5}};
  p.coupling_jitter = 0.22;
  p.ear_rolloff_hz = 135.0;
  p.ear_rolloff_order = 4;
  return p;
}

std::vector<PhoneProfile> all_phones() {
  return {oneplus_7t(), oneplus_9(),  pixel_5(),
          galaxy_s10(), galaxy_s21(), galaxy_s21_ultra()};
}

PhoneProfile with_rate_cap(PhoneProfile profile, double cap_hz) {
  if (cap_hz <= 0.0) throw util::ConfigError{"with_rate_cap: cap must be > 0"};
  if (cap_hz < profile.accel_rate_hz) {
    profile.software_cap_hz = cap_hz;
    profile.name += " (rate-capped)";
  }
  return profile;
}

PhoneProfile as_gyroscope(PhoneProfile profile) {
  profile.name += " (gyroscope)";
  profile.loudspeaker_gain *= 0.03;
  profile.ear_speaker_gain *= 0.03;
  profile.accel_noise_sigma *= 2.0;
  return profile;
}

}  // namespace emoleak::phone
