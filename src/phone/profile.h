// Smartphone device profiles.
//
// The paper evaluates six phones (OnePlus 7T, OnePlus 9, Pixel 5,
// Galaxy S10, S21, S21 Ultra), all with stereo speakers (§V-A). A
// PhoneProfile captures what matters to the side channel: accelerometer
// sampling rate and noise floor, speaker->chassis conduction gain for
// the loudspeaker and the ear speaker, and the chassis's mechanical
// resonances. Values are plausible engineering magnitudes chosen so the
// simulated channel reproduces the paper's per-device accuracy ordering
// (OnePlus 7T strongest conduction; see DESIGN.md §2).
#pragma once

#include <string>
#include <vector>

namespace emoleak::phone {

/// One mechanical resonance of the chassis/motherboard assembly.
struct Resonance {
  double frequency_hz = 120.0;
  double q = 5.0;
  double gain = 1.0;  ///< contribution of this mode to the output mix
};

struct PhoneProfile {
  std::string name;
  double accel_rate_hz = 420.0;       ///< default accelerometer ODR
  double accel_noise_sigma = 0.004;   ///< white sensor noise, m/s^2 RMS
  double accel_lsb = 0.0012;          ///< quantization step, m/s^2
  /// The MEMS front end has only a gentle internal low-pass, not a
  /// brick-wall anti-aliasing filter, so above-Nyquist speech content
  /// folds into the sensed band — the effect AccelEve/Spearphone-style
  /// attacks (and EmoLeak) exploit. Order (even) and cutoff as a
  /// fraction of the Nyquist rate.
  int internal_lpf_order = 2;
  double internal_lpf_cutoff_factor = 1.6;
  /// Android 12+ zero-permission rate cap (paper §VI-A). Unlike the
  /// analog front end, the cap is enforced by *software* decimation of
  /// the native stream, i.e. with a clean digital anti-aliasing filter
  /// that removes most of the folded speech band. 0 = uncapped.
  double software_cap_hz = 0.0;
  double loudspeaker_gain = 1.0;      ///< conduction gain, audio -> m/s^2
  double ear_speaker_gain = 0.05;     ///< ear speakers couple far less
  double speaker_rolloff_hz = 550.0;  ///< loudspeaker excursion corner
  /// The earpiece's tiny driver needs large cone excursion to render
  /// low frequencies, so its mechanical reaction force is concentrated
  /// there: low-pitched (male) voices shake the chassis relatively more
  /// than high-pitched ones. Modelled as a lower excursion corner.
  double ear_rolloff_hz = 210.0;
  int ear_rolloff_order = 2;  ///< earpiece excursion filter order (even)
  std::vector<Resonance> resonances;  ///< chassis modes
  double direct_path_gain = 0.55;     ///< broadband (non-resonant) conduction
  /// Log-normal sigma of per-playback conduction-gain variation
  /// (surface coupling, grip, thermal drift). Scrambles absolute-energy
  /// cues without affecting detectability.
  double coupling_jitter = 0.0;

  void validate() const;
};

/// The six evaluation devices (paper §V-A).
[[nodiscard]] PhoneProfile oneplus_7t();
[[nodiscard]] PhoneProfile oneplus_9();
[[nodiscard]] PhoneProfile pixel_5();
[[nodiscard]] PhoneProfile galaxy_s10();
[[nodiscard]] PhoneProfile galaxy_s21();
[[nodiscard]] PhoneProfile galaxy_s21_ultra();

/// All six profiles.
[[nodiscard]] std::vector<PhoneProfile> all_phones();

/// Applies the Android 12+ zero-permission sensor-rate cap of 200 Hz
/// (paper §VI-A).
[[nodiscard]] PhoneProfile with_rate_cap(PhoneProfile profile,
                                         double cap_hz = 200.0);

/// Derives a gyroscope-channel profile from a phone: linear speaker
/// vibration couples into the rotation channel only through small
/// torque arms, so the effective response is ~30 dB weaker with a
/// relatively higher noise floor (Ba et al., cited in the paper's
/// §III-B1 — the reason EmoLeak reads the accelerometer).
[[nodiscard]] PhoneProfile as_gyroscope(PhoneProfile profile);

}  // namespace emoleak::phone
