#include "phone/recorder.h"

#include <algorithm>
#include <cmath>

#include "dsp/resample.h"
#include "util/error.h"

namespace emoleak::phone {

void RecorderConfig::validate() const {
  if (gap_mean_s < 0.0 || gap_jitter_s < 0.0) {
    throw util::ConfigError{"RecorderConfig: gaps must be >= 0"};
  }
  if (gap_jitter_s > gap_mean_s) {
    throw util::ConfigError{"RecorderConfig: gap_jitter_s > gap_mean_s"};
  }
}

Recording record_session(const audio::Corpus& corpus,
                         const PhoneProfile& profile,
                         const RecorderConfig& config) {
  std::vector<std::size_t> indices(corpus.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  return record_session(corpus, std::move(indices), profile, config);
}

Recording record_session(const audio::Corpus& corpus,
                         std::vector<std::size_t> indices,
                         const PhoneProfile& profile,
                         const RecorderConfig& config) {
  config.validate();
  profile.validate();
  util::Rng rng{config.seed};

  if (config.group_by_emotion) {
    // Shuffle, then stable-sort by emotion: utterances of one emotion
    // play consecutively in random order, exactly like the paper's
    // continuous per-emotion playback blocks.
    rng.shuffle(indices);
    std::stable_sort(indices.begin(), indices.end(),
                     [&corpus](std::size_t a, std::size_t b) {
                       return static_cast<int>(corpus.entries()[a].emotion) <
                              static_cast<int>(corpus.entries()[b].emotion);
                     });
  }

  Recording rec;
  rec.rate_hz = effective_accel_rate(profile);
  rec.dataset = corpus.spec();
  rec.schedule.reserve(indices.size());

  util::Rng synth_noise_rng = rng.fork(0x5EED);

  // Build the clean (noise-free) vibration trace at the accel rate,
  // one utterance at a time so the audio-rate buffers stay small.
  std::vector<double>& trace = rec.accel;
  const auto append_gap = [&](double seconds) {
    const auto n =
        static_cast<std::size_t>(seconds * effective_accel_rate(profile));
    trace.insert(trace.end(), n, 0.0);
  };

  std::vector<double> block_offsets;  // per-sample DC from posture shifts
  util::Rng posture_rng = rng.fork(0x906E);
  double current_offset = 0.0;
  audio::Emotion current_block = audio::Emotion::kNeutral;
  bool block_started = false;

  append_gap(config.gap_mean_s);
  for (const std::size_t idx : indices) {
    const audio::Utterance utt = corpus.synthesize(idx);
    if (config.posture == Posture::kHandheld &&
        config.block_posture_sigma > 0.0 &&
        (!block_started || utt.emotion != current_block)) {
      current_offset = posture_rng.normal(0.0, config.block_posture_sigma);
      current_block = utt.emotion;
      block_started = true;
    }
    block_offsets.resize(trace.size(), current_offset);
    std::vector<double> vib =
        conduct(utt.samples, utt.sample_rate_hz, profile, config.speaker);
    const double coupling_sigma =
        config.posture == Posture::kHandheld
            ? std::max(profile.coupling_jitter, config.grip_jitter)
            : profile.coupling_jitter;
    if (coupling_sigma > 0.0) {
      const double coupling = std::exp(rng.normal(0.0, coupling_sigma));
      for (double& v : vib) v *= coupling;
    }
    const std::vector<double> sampled =
        accel_sampling_chain(vib, utt.sample_rate_hz, profile);

    ScheduledUtterance s;
    s.corpus_index = idx;
    s.speaker_id = utt.speaker_id;
    s.emotion = utt.emotion;
    s.start_sample = trace.size();
    trace.insert(trace.end(), sampled.begin(), sampled.end());
    s.end_sample = trace.size();
    rec.schedule.push_back(s);

    append_gap(config.gap_mean_s +
               rng.uniform(-config.gap_jitter_s, config.gap_jitter_s));
  }

  block_offsets.resize(trace.size(), current_offset);
  if (config.posture == Posture::kHandheld && config.block_posture_sigma > 0.0) {
    for (std::size_t i = 0; i < trace.size(); ++i) trace[i] += block_offsets[i];
  }

  if (config.environment_bump_rate_hz > 0.0) {
    // Environmental transients: exponential-decay bumps with random
    // amplitude, the dominant external disturbance on a table surface.
    util::Rng env_rng = rng.fork(0xE417);
    const double rate_hz = effective_accel_rate(profile);
    const double p_bump = config.environment_bump_rate_hz / rate_hz;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      if (env_rng.bernoulli(p_bump)) {
        const double amp = env_rng.uniform(0.02, 0.3);
        const double decay = 0.08 * rate_hz;
        const auto end = std::min(trace.size(),
                                  i + static_cast<std::size_t>(5.0 * decay));
        for (std::size_t j = i; j < end; ++j) {
          trace[j] += amp * std::exp(-static_cast<double>(j - i) / decay);
        }
      }
    }
  }

  // Continuous sensor effects over the whole session.
  if (config.posture == Posture::kHandheld) {
    util::Rng hand_rng = rng.fork(0x4A4D);
    const std::vector<double> motion =
        handheld_noise(trace.size(), effective_accel_rate(profile), hand_rng);
    for (std::size_t i = 0; i < trace.size(); ++i) trace[i] += motion[i];
  }
  for (double& s : trace) {
    s += config.gravity_mps2 + profile.accel_noise_sigma * synth_noise_rng.normal();
    if (profile.accel_lsb > 0.0) {
      s = std::round(s / profile.accel_lsb) * profile.accel_lsb;
    }
  }
  return rec;
}

}  // namespace emoleak::phone
