// Speaker -> chassis -> accelerometer conduction channel.
//
// Models the physics the attack exploits (paper §II-C): the speaker and
// the IMU share the motherboard, so driver reaction forces propagate as
// structure-borne vibration. The channel is: driver-excursion low-pass
// (force tracks cone displacement), a bank of resonant chassis modes
// plus a broadband direct path, a per-speaker conduction gain, then
// anti-aliased decimation to the accelerometer's sampling rate with
// sensor noise and quantization.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "phone/profile.h"
#include "util/rng.h"

namespace emoleak::phone {

enum class SpeakerKind {
  kLoudspeaker,  ///< bottom loudspeaker at max volume (table-top scenario)
  kEarSpeaker,   ///< top earpiece at conversational volume (handheld)
};

enum class Posture {
  kTableTop,  ///< phone resting on a wooden table: only self-vibration
  kHandheld,  ///< held in hand: low-frequency body/hand motion noise
};

/// Continuous vibration at audio rate (before accelerometer sampling).
/// Mostly an implementation detail; exposed for tests and analysis.
[[nodiscard]] std::vector<double> conduct(std::span<const double> audio,
                                          double audio_rate_hz,
                                          const PhoneProfile& profile,
                                          SpeakerKind speaker);

/// Low-frequency handheld motion noise: superposition of slow hand
/// tremor / body sway processes (0.3 - 8 Hz) with occasional transient
/// bumps. Amplitude is in m/s^2 at the accelerometer output rate.
[[nodiscard]] std::vector<double> handheld_noise(std::size_t samples,
                                                 double rate_hz,
                                                 util::Rng& rng);

/// The accelerometer's sampling chain *without* noise/quantization:
/// gentle internal low-pass (not brick-wall — above-Nyquist content
/// folds in, as on real MEMS parts) followed by sample-and-hold
/// decimation to the profile's rate.
[[nodiscard]] std::vector<double> accel_sampling_chain(
    std::span<const double> vibration, double audio_rate_hz,
    const PhoneProfile& profile);

/// The rate the attacker actually receives samples at: the software
/// cap when active, else the native ODR.
[[nodiscard]] double effective_accel_rate(const PhoneProfile& profile) noexcept;

/// Samples a vibration waveform with the profile's accelerometer:
/// the sampling chain above plus additive white sensor noise and LSB
/// quantization.
[[nodiscard]] std::vector<double> sample_accelerometer(
    std::span<const double> vibration, double audio_rate_hz,
    const PhoneProfile& profile, util::Rng& rng);

}  // namespace emoleak::phone
