#include "phone/channel.h"

#include <array>
#include <cmath>

#include "dsp/filter.h"
#include "dsp/resample.h"

namespace emoleak::phone {

std::vector<double> conduct(std::span<const double> audio, double audio_rate_hz,
                            const PhoneProfile& profile, SpeakerKind speaker) {
  profile.validate();
  const double gain = speaker == SpeakerKind::kLoudspeaker
                          ? profile.loudspeaker_gain
                          : profile.ear_speaker_gain;

  // Driver excursion: force follows cone displacement, which rolls off
  // above the excursion corner. Second-order low-pass. The earpiece's
  // corner is much lower (see PhoneProfile::ear_rolloff_hz).
  const bool is_loud = speaker == SpeakerKind::kLoudspeaker;
  const double rolloff =
      is_loud ? profile.speaker_rolloff_hz : profile.ear_rolloff_hz;
  const int rolloff_order = is_loud ? 2 : profile.ear_rolloff_order;
  dsp::BiquadCascade excursion = dsp::BiquadCascade::butterworth_lowpass(
      rolloff_order, std::min(rolloff, 0.45 * audio_rate_hz), audio_rate_hz);
  const std::vector<double> force = excursion.filter(audio);

  // Chassis: broadband direct path + resonant modes.
  std::vector<dsp::Biquad> modes;
  modes.reserve(profile.resonances.size());
  for (const Resonance& r : profile.resonances) {
    if (r.frequency_hz < 0.45 * audio_rate_hz) {
      modes.push_back(dsp::design_bandpass(r.frequency_hz, audio_rate_hz, r.q));
    }
  }
  std::vector<std::array<double, 2>> state(modes.size(), {0.0, 0.0});

  std::vector<double> out(force.size());
  for (std::size_t i = 0; i < force.size(); ++i) {
    const double x = force[i];
    double y = profile.direct_path_gain * x;
    for (std::size_t m = 0; m < modes.size(); ++m) {
      const dsp::Biquad& s = modes[m];
      auto& [z1, z2] = state[m];
      const double ym = s.b0 * x + z1;
      z1 = s.b1 * x - s.a1 * ym + z2;
      z2 = s.b2 * x - s.a2 * ym;
      y += profile.resonances[m].gain * ym;
    }
    out[i] = gain * y;
  }
  return out;
}

std::vector<double> handheld_noise(std::size_t samples, double rate_hz,
                                   util::Rng& rng) {
  std::vector<double> noise(samples, 0.0);
  if (samples == 0) return noise;

  // Three AR(1) processes tuned to tremor (~6 Hz), hand adjustment
  // (~1.5 Hz) and body sway (~0.4 Hz) bands.
  struct Band {
    double corner_hz;
    double sigma;  // m/s^2 RMS
  };
  // The last band is very slow posture drift: the hand/arm pose wanders
  // over tens of seconds, so the DC level the amplitude features see is
  // correlated over whole playback blocks (the effect behind the
  // paper's Table I: min/mean/max carry block-level information that a
  // 1 Hz high-pass filter destroys).
  const Band bands[] = {
      {6.0, 0.003}, {1.5, 0.006}, {0.4, 0.009}, {0.01, 0.05}};
  for (const Band& band : bands) {
    const double alpha = std::exp(-2.0 * 3.141592653589793 * band.corner_hz / rate_hz);
    const double drive = band.sigma * std::sqrt(1.0 - alpha * alpha);
    double v = 0.0;
    for (std::size_t i = 0; i < samples; ++i) {
      v = alpha * v + drive * rng.normal();
      noise[i] += v;
    }
  }

  // Occasional grip-shift transients: exponential-decay bumps at an
  // average rate of one per ~8 seconds.
  const double bump_prob = 1.0 / (8.0 * rate_hz);
  for (std::size_t i = 0; i < samples; ++i) {
    if (rng.bernoulli(bump_prob)) {
      const double amp = rng.uniform(0.05, 0.25);
      const double decay_samples = 0.15 * rate_hz;
      for (std::size_t j = i; j < samples && j < i + static_cast<std::size_t>(5 * decay_samples); ++j) {
        noise[j] += amp * std::exp(-static_cast<double>(j - i) / decay_samples);
      }
    }
  }
  return noise;
}

std::vector<double> accel_sampling_chain(std::span<const double> vibration,
                                         double audio_rate_hz,
                                         const PhoneProfile& profile) {
  profile.validate();
  const double cutoff =
      std::min(profile.internal_lpf_cutoff_factor * 0.5 * profile.accel_rate_hz,
               0.49 * audio_rate_hz);
  dsp::BiquadCascade lpf = dsp::BiquadCascade::butterworth_lowpass(
      profile.internal_lpf_order, cutoff, audio_rate_hz);
  const std::vector<double> filtered = lpf.filter(vibration);
  std::vector<double> native =
      dsp::resample_nearest(filtered, audio_rate_hz, profile.accel_rate_hz);
  if (profile.software_cap_hz > 0.0 &&
      profile.software_cap_hz < profile.accel_rate_hz) {
    // Android's software rate limit decimates the native stream with a
    // proper digital anti-aliasing filter (paper SVI-A).
    return dsp::decimate(native, profile.accel_rate_hz, profile.software_cap_hz,
                         /*filter_order=*/4);
  }
  return native;
}

double effective_accel_rate(const PhoneProfile& profile) noexcept {
  return profile.software_cap_hz > 0.0 &&
                 profile.software_cap_hz < profile.accel_rate_hz
             ? profile.software_cap_hz
             : profile.accel_rate_hz;
}

std::vector<double> sample_accelerometer(std::span<const double> vibration,
                                         double audio_rate_hz,
                                         const PhoneProfile& profile,
                                         util::Rng& rng) {
  profile.validate();
  std::vector<double> sampled =
      accel_sampling_chain(vibration, audio_rate_hz, profile);
  for (double& s : sampled) {
    s += profile.accel_noise_sigma * rng.normal();
    if (profile.accel_lsb > 0.0) {
      s = std::round(s / profile.accel_lsb) * profile.accel_lsb;
    }
  }
  return sampled;
}

}  // namespace emoleak::phone
