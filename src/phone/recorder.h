// Recording sessions: playlist playback + accelerometer capture.
//
// Reproduces the paper's data-collection procedure (§III-B3, §IV-A):
// utterances of the same emotion are grouped and played back-to-back
// through the chosen speaker while the accelerometer logs continuously;
// the playback schedule (who/what/when) provides ground-truth labels
// for every captured region.
#pragma once

#include <cstdint>
#include <vector>

#include "audio/corpus.h"
#include "phone/channel.h"
#include "phone/profile.h"

namespace emoleak::phone {

struct RecorderConfig {
  SpeakerKind speaker = SpeakerKind::kLoudspeaker;
  Posture posture = Posture::kTableTop;
  double gap_mean_s = 0.40;      ///< silence between consecutive playbacks
  double gap_jitter_s = 0.10;
  bool group_by_emotion = true;  ///< paper groups same-emotion segments
  double gravity_mps2 = 9.81;    ///< DC offset on the sensed axis
  /// Handheld only: log-normal sigma of per-utterance conduction
  /// variation from changing grip pressure/damping. Grip strongly
  /// modulates how much speaker vibration reaches the sensor.
  double grip_jitter = 0.30;
  /// Handheld only: standard deviation (m/s^2) of the DC shift when the
  /// posture changes between playback blocks — re-holding the phone
  /// tilts the gravity projection by a fraction of a degree to a few
  /// degrees. Because same-emotion utterances play contiguously, this
  /// offset is block-correlated with the labels (the effect behind the
  /// paper's Table I amplitude-feature information gains).
  double block_posture_sigma = 0.08;
  /// Environmental disturbances on the table (footsteps, doors, bumps)
  /// as transient events per second; 0 = quiet room (paper setting).
  /// Used for the SVI-C robustness ablation.
  double environment_bump_rate_hz = 0.0;
  std::uint64_t seed = 1;

  void validate() const;
};

/// Ground truth for one played utterance, in accelerometer samples.
struct ScheduledUtterance {
  std::size_t corpus_index = 0;
  int speaker_id = 0;
  audio::Emotion emotion = audio::Emotion::kNeutral;
  std::size_t start_sample = 0;
  std::size_t end_sample = 0;  ///< one past the last sample
};

/// One continuous accelerometer capture with its playback schedule.
struct Recording {
  std::vector<double> accel;  ///< sensed axis, m/s^2 (includes gravity)
  double rate_hz = 0.0;
  std::vector<ScheduledUtterance> schedule;
  audio::DatasetSpec dataset;
};

/// Plays every utterance of `corpus` through `profile`'s speaker and
/// returns the captured trace. Deterministic given config.seed.
[[nodiscard]] Recording record_session(const audio::Corpus& corpus,
                                       const PhoneProfile& profile,
                                       const RecorderConfig& config);

/// Convenience: records a subset of corpus indices (in the given order,
/// still grouped by emotion when configured).
[[nodiscard]] Recording record_session(const audio::Corpus& corpus,
                                       std::vector<std::size_t> indices,
                                       const PhoneProfile& profile,
                                       const RecorderConfig& config);

}  // namespace emoleak::phone
