// IIR filtering: biquad sections and Butterworth designs.
//
// The paper applies an 8 Hz high-pass Butterworth filter to handheld
// accelerometer traces for speech-region detection (§III-B2, Fig. 4b)
// and studies a 1 Hz high-pass filter's effect on feature information
// gain (Table I). The chassis conduction model also uses resonant
// biquads.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace emoleak::dsp {

/// One direct-form-II-transposed biquad section:
///   y[n] = b0 x[n] + b1 x[n-1] + b2 x[n-2] - a1 y[n-1] - a2 y[n-2]
/// (a0 normalized to 1).
struct Biquad {
  double b0 = 1.0, b1 = 0.0, b2 = 0.0;
  double a1 = 0.0, a2 = 0.0;

  /// Magnitude response at normalized angular frequency w (rad/sample).
  [[nodiscard]] double magnitude_at(double w) const noexcept;

  /// True if both poles lie strictly inside the unit circle.
  [[nodiscard]] bool is_stable() const noexcept;
};

/// RBJ audio-EQ-cookbook designs for single sections.
[[nodiscard]] Biquad design_lowpass(double cutoff_hz, double sample_rate_hz,
                                    double q = 0.7071067811865476);
[[nodiscard]] Biquad design_highpass(double cutoff_hz, double sample_rate_hz,
                                     double q = 0.7071067811865476);
/// Constant-peak-gain resonator at `center_hz` with the given Q; models
/// a chassis mechanical resonance.
[[nodiscard]] Biquad design_bandpass(double center_hz, double sample_rate_hz,
                                     double q);

/// A cascade of biquad sections with stateful streaming processing.
class BiquadCascade {
 public:
  BiquadCascade() = default;
  explicit BiquadCascade(std::vector<Biquad> sections);

  /// Butterworth high-pass of the given (even) order as cascaded
  /// second-order sections.
  [[nodiscard]] static BiquadCascade butterworth_highpass(
      int order, double cutoff_hz, double sample_rate_hz);

  /// Butterworth low-pass of the given (even) order.
  [[nodiscard]] static BiquadCascade butterworth_lowpass(
      int order, double cutoff_hz, double sample_rate_hz);

  /// Processes one sample, updating internal state.
  double process(double x) noexcept;

  /// Filters a whole signal (stateful; call reset() to reuse).
  [[nodiscard]] std::vector<double> filter(std::span<const double> signal);

  /// Zero-phase filtering (forward + reverse), like MATLAB's filtfilt.
  [[nodiscard]] std::vector<double> filtfilt(std::span<const double> signal);

  /// Clears the delay-line state.
  void reset() noexcept;

  [[nodiscard]] double magnitude_at(double frequency_hz,
                                    double sample_rate_hz) const noexcept;

  [[nodiscard]] const std::vector<Biquad>& sections() const noexcept {
    return sections_;
  }

  [[nodiscard]] bool is_stable() const noexcept;

 private:
  std::vector<Biquad> sections_;
  struct State {
    double z1 = 0.0, z2 = 0.0;
  };
  std::vector<State> state_;
};

}  // namespace emoleak::dsp
