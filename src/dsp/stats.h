// Descriptive statistics used throughout feature extraction.
//
// The Table-II time-domain features (min/max/mean/stddev/variance/
// range/CV/skewness/kurtosis/quantiles/mean-crossing-rate) are built on
// these primitives.
#pragma once

#include <cstddef>
#include <span>

namespace emoleak::dsp {

/// Streaming-friendly summary of a sample (single pass + sorted-copy
/// quantiles on demand).
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double variance = 0.0;   ///< population variance
  double stddev = 0.0;
  double skewness = 0.0;   ///< population skewness (0 if stddev == 0)
  double kurtosis = 0.0;   ///< population excess kurtosis (0 if stddev == 0)
};

/// Computes the full summary in one pass (two for the moments).
/// Throws util::DataError on an empty span.
[[nodiscard]] Summary summarize(std::span<const double> x);

[[nodiscard]] double mean(std::span<const double> x);
[[nodiscard]] double variance(std::span<const double> x);
[[nodiscard]] double stddev(std::span<const double> x);

/// Linear-interpolated quantile, q in [0, 1]. Sorts a copy.
[[nodiscard]] double quantile(std::span<const double> x, double q);

/// Rate at which the signal crosses its own mean, per sample
/// (in [0, 1]); the paper's MeanCrossingRate feature.
[[nodiscard]] double mean_crossing_rate(std::span<const double> x);

/// Sum of squares.
[[nodiscard]] double energy(std::span<const double> x) noexcept;

/// Root mean square.
[[nodiscard]] double rms(std::span<const double> x);

/// Pearson correlation between two equal-length samples.
[[nodiscard]] double correlation(std::span<const double> x,
                                 std::span<const double> y);

}  // namespace emoleak::dsp
