#include "dsp/filter.h"

#include <algorithm>
#include <cmath>
#include <complex>
#include <numbers>

#include "util/error.h"

namespace emoleak::dsp {

namespace {

void check_design_args(double cutoff_hz, double sample_rate_hz) {
  if (sample_rate_hz <= 0.0) {
    throw util::ConfigError{"filter design: sample_rate_hz must be > 0"};
  }
  if (cutoff_hz <= 0.0 || cutoff_hz >= sample_rate_hz / 2.0) {
    throw util::ConfigError{
        "filter design: cutoff must lie in (0, sample_rate/2)"};
  }
}

}  // namespace

double Biquad::magnitude_at(double w) const noexcept {
  const std::complex<double> z{std::cos(w), std::sin(w)};
  const std::complex<double> zinv = 1.0 / z;
  const std::complex<double> num = b0 + b1 * zinv + b2 * zinv * zinv;
  const std::complex<double> den = 1.0 + a1 * zinv + a2 * zinv * zinv;
  return std::abs(num / den);
}

bool Biquad::is_stable() const noexcept {
  // Jury criterion for a monic quadratic z^2 + a1 z + a2.
  return std::abs(a2) < 1.0 && std::abs(a1) < 1.0 + a2;
}

Biquad design_lowpass(double cutoff_hz, double sample_rate_hz, double q) {
  check_design_args(cutoff_hz, sample_rate_hz);
  const double w0 = 2.0 * std::numbers::pi * cutoff_hz / sample_rate_hz;
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cw = std::cos(w0);
  const double a0 = 1.0 + alpha;
  Biquad s;
  s.b0 = (1.0 - cw) / 2.0 / a0;
  s.b1 = (1.0 - cw) / a0;
  s.b2 = (1.0 - cw) / 2.0 / a0;
  s.a1 = -2.0 * cw / a0;
  s.a2 = (1.0 - alpha) / a0;
  return s;
}

Biquad design_highpass(double cutoff_hz, double sample_rate_hz, double q) {
  check_design_args(cutoff_hz, sample_rate_hz);
  const double w0 = 2.0 * std::numbers::pi * cutoff_hz / sample_rate_hz;
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cw = std::cos(w0);
  const double a0 = 1.0 + alpha;
  Biquad s;
  s.b0 = (1.0 + cw) / 2.0 / a0;
  s.b1 = -(1.0 + cw) / a0;
  s.b2 = (1.0 + cw) / 2.0 / a0;
  s.a1 = -2.0 * cw / a0;
  s.a2 = (1.0 - alpha) / a0;
  return s;
}

Biquad design_bandpass(double center_hz, double sample_rate_hz, double q) {
  check_design_args(center_hz, sample_rate_hz);
  if (q <= 0.0) throw util::ConfigError{"design_bandpass: q must be > 0"};
  const double w0 = 2.0 * std::numbers::pi * center_hz / sample_rate_hz;
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cw = std::cos(w0);
  const double a0 = 1.0 + alpha;
  Biquad s;  // constant-peak-gain bandpass (peak gain = 1 at center)
  s.b0 = alpha / a0;
  s.b1 = 0.0;
  s.b2 = -alpha / a0;
  s.a1 = -2.0 * cw / a0;
  s.a2 = (1.0 - alpha) / a0;
  return s;
}

BiquadCascade::BiquadCascade(std::vector<Biquad> sections)
    : sections_{std::move(sections)}, state_(sections_.size()) {}

BiquadCascade BiquadCascade::butterworth_highpass(int order, double cutoff_hz,
                                                  double sample_rate_hz) {
  if (order <= 0 || order % 2 != 0) {
    throw util::ConfigError{"butterworth: order must be positive and even"};
  }
  check_design_args(cutoff_hz, sample_rate_hz);
  // Butterworth pole Q values for cascaded second-order sections:
  // Q_k = 1 / (2 sin((2k+1)pi / (2N))), k = 0..N/2-1.
  std::vector<Biquad> sections;
  const int pairs = order / 2;
  for (int k = 0; k < pairs; ++k) {
    const double theta =
        (2.0 * k + 1.0) * std::numbers::pi / (2.0 * static_cast<double>(order));
    const double q = 1.0 / (2.0 * std::sin(theta));
    sections.push_back(design_highpass(cutoff_hz, sample_rate_hz, q));
  }
  return BiquadCascade{std::move(sections)};
}

BiquadCascade BiquadCascade::butterworth_lowpass(int order, double cutoff_hz,
                                                 double sample_rate_hz) {
  if (order <= 0 || order % 2 != 0) {
    throw util::ConfigError{"butterworth: order must be positive and even"};
  }
  check_design_args(cutoff_hz, sample_rate_hz);
  std::vector<Biquad> sections;
  const int pairs = order / 2;
  for (int k = 0; k < pairs; ++k) {
    const double theta =
        (2.0 * k + 1.0) * std::numbers::pi / (2.0 * static_cast<double>(order));
    const double q = 1.0 / (2.0 * std::sin(theta));
    sections.push_back(design_lowpass(cutoff_hz, sample_rate_hz, q));
  }
  return BiquadCascade{std::move(sections)};
}

double BiquadCascade::process(double x) noexcept {
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const Biquad& s = sections_[i];
    State& st = state_[i];
    const double y = s.b0 * x + st.z1;
    st.z1 = s.b1 * x - s.a1 * y + st.z2;
    st.z2 = s.b2 * x - s.a2 * y;
    x = y;
  }
  return x;
}

std::vector<double> BiquadCascade::filter(std::span<const double> signal) {
  std::vector<double> out(signal.size());
  for (std::size_t i = 0; i < signal.size(); ++i) out[i] = process(signal[i]);
  return out;
}

std::vector<double> BiquadCascade::filtfilt(std::span<const double> signal) {
  reset();
  std::vector<double> forward = filter(signal);
  reset();
  std::reverse(forward.begin(), forward.end());
  std::vector<double> backward = filter(forward);
  reset();
  std::reverse(backward.begin(), backward.end());
  return backward;
}

void BiquadCascade::reset() noexcept {
  for (State& st : state_) st = State{};
}

double BiquadCascade::magnitude_at(double frequency_hz,
                                   double sample_rate_hz) const noexcept {
  const double w = 2.0 * std::numbers::pi * frequency_hz / sample_rate_hz;
  double mag = 1.0;
  for (const Biquad& s : sections_) mag *= s.magnitude_at(w);
  return mag;
}

bool BiquadCascade::is_stable() const noexcept {
  for (const Biquad& s : sections_) {
    if (!s.is_stable()) return false;
  }
  return true;
}

}  // namespace emoleak::dsp
