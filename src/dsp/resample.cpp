#include "dsp/resample.h"

#include <algorithm>
#include <cmath>

#include "dsp/filter.h"
#include "util/error.h"

namespace emoleak::dsp {

std::vector<double> resample_linear(std::span<const double> signal,
                                    double in_rate_hz, double out_rate_hz) {
  if (in_rate_hz <= 0.0 || out_rate_hz <= 0.0) {
    throw util::ConfigError{"resample_linear: rates must be > 0"};
  }
  if (signal.empty()) return {};
  const double ratio = in_rate_hz / out_rate_hz;
  const auto out_len = static_cast<std::size_t>(
      std::floor(static_cast<double>(signal.size() - 1) / ratio)) + 1;
  std::vector<double> out(out_len);
  for (std::size_t i = 0; i < out_len; ++i) {
    const double pos = static_cast<double>(i) * ratio;
    const auto idx = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(idx);
    const double a = signal[idx];
    const double b = idx + 1 < signal.size() ? signal[idx + 1] : a;
    out[i] = a + frac * (b - a);
  }
  return out;
}

std::vector<double> resample_nearest(std::span<const double> signal,
                                     double in_rate_hz, double out_rate_hz) {
  if (in_rate_hz <= 0.0 || out_rate_hz <= 0.0) {
    throw util::ConfigError{"resample_nearest: rates must be > 0"};
  }
  if (signal.empty()) return {};
  const double ratio = in_rate_hz / out_rate_hz;
  const auto out_len = static_cast<std::size_t>(
      std::floor(static_cast<double>(signal.size() - 1) / ratio)) + 1;
  std::vector<double> out(out_len);
  for (std::size_t i = 0; i < out_len; ++i) {
    const auto idx = static_cast<std::size_t>(
        std::llround(static_cast<double>(i) * ratio));
    out[i] = signal[std::min(idx, signal.size() - 1)];
  }
  return out;
}

std::vector<double> decimate(std::span<const double> signal, double in_rate_hz,
                             double out_rate_hz, int filter_order) {
  if (out_rate_hz >= in_rate_hz) {
    throw util::ConfigError{"decimate: out_rate must be < in_rate"};
  }
  BiquadCascade lpf = BiquadCascade::butterworth_lowpass(
      filter_order, 0.45 * out_rate_hz, in_rate_hz);
  const std::vector<double> filtered = lpf.filter(signal);
  return resample_linear(filtered, in_rate_hz, out_rate_hz);
}

}  // namespace emoleak::dsp
