// Short-time Fourier transform and spectrogram computation.
//
// The EmoLeak pipeline renders each detected speech region of the
// accelerometer trace as a spectrogram image (paper §III-B3, Fig. 2/3)
// and derives frequency-domain features from STFT magnitudes.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/window.h"
#include "util/workspace.h"

namespace emoleak::dsp {

struct StftConfig {
  std::size_t window_length = 64;   ///< samples per analysis frame
  std::size_t hop = 16;             ///< samples between frames
  std::size_t fft_size = 0;         ///< 0 => next_pow2(window_length)
  WindowType window = WindowType::kHann;
  bool center = true;               ///< reflect-pad so frames center on samples

  /// Validates invariants; throws util::ConfigError on violation.
  void validate() const;
};

/// A magnitude spectrogram: `frames x bins` row-major, with the sample
/// rate recorded so bins map to physical frequencies.
class Spectrogram {
 public:
  Spectrogram(std::vector<double> magnitudes, std::size_t frames,
              std::size_t bins, double sample_rate_hz, std::size_t hop);

  [[nodiscard]] std::size_t frames() const noexcept { return frames_; }
  [[nodiscard]] std::size_t bins() const noexcept { return bins_; }
  [[nodiscard]] double sample_rate_hz() const noexcept { return sample_rate_hz_; }
  [[nodiscard]] std::size_t hop() const noexcept { return hop_; }

  /// Magnitude at (frame, bin). Bounds-checked.
  [[nodiscard]] double at(std::size_t frame, std::size_t bin) const;

  /// One frame's magnitudes as a contiguous span.
  [[nodiscard]] std::span<const double> frame(std::size_t index) const;

  /// Center frequency of a bin, in Hz.
  [[nodiscard]] double bin_frequency_hz(std::size_t bin) const noexcept;

  /// Time of a frame's center, in seconds.
  [[nodiscard]] double frame_time_s(std::size_t frame) const noexcept;

  /// Converts magnitudes to decibels relative to the max magnitude,
  /// clamped below at `floor_db` (a negative number, e.g. -80).
  [[nodiscard]] std::vector<double> to_db(double floor_db = -80.0) const;

  [[nodiscard]] const std::vector<double>& data() const noexcept { return mags_; }

 private:
  std::vector<double> mags_;
  std::size_t frames_;
  std::size_t bins_;
  double sample_rate_hz_;
  std::size_t hop_;
};

/// Frame/bin geometry of the STFT of a signal of `signal_len` samples.
struct StftShape {
  std::size_t frames = 0;
  std::size_t bins = 0;

  [[nodiscard]] std::size_t cells() const noexcept { return frames * bins; }
};

/// Geometry `stft` will produce for a given signal length and config.
[[nodiscard]] StftShape stft_shape(std::size_t signal_len,
                                   const StftConfig& config);

/// Zero-allocation STFT core: writes `stft_shape(...).cells()` magnitudes
/// (row-major frames x bins) into `mags`. Padding, frame windows, and
/// FFT scratch all come from `ws`, so a warm workspace makes repeated
/// calls allocation-free (asserted in tests via Workspace::grow_count).
void stft_magnitudes(std::span<const double> signal, const StftConfig& config,
                     std::span<double> mags, util::Workspace& ws);

/// Computes the magnitude STFT of `signal`. Scratch comes from the
/// calling thread's workspace (see util::thread_workspace).
[[nodiscard]] Spectrogram stft(std::span<const double> signal,
                               double sample_rate_hz, const StftConfig& config);

/// As above with an explicit scratch arena.
[[nodiscard]] Spectrogram stft(std::span<const double> signal,
                               double sample_rate_hz, const StftConfig& config,
                               util::Workspace& ws);

/// Downsamples a spectrogram to a fixed `width x height` image in
/// [0, 1], matching the paper's 32x32 CNN input (§IV-C1). Uses mean
/// pooling over rectangular cells of the dB-scaled spectrogram.
[[nodiscard]] std::vector<double> spectrogram_image(const Spectrogram& spec,
                                                    std::size_t width,
                                                    std::size_t height,
                                                    double floor_db = -80.0);

}  // namespace emoleak::dsp
