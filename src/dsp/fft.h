// Fast Fourier transforms.
//
// Provides an iterative radix-2 Cooley-Tukey FFT for power-of-two sizes
// and Bluestein's chirp-z algorithm for arbitrary sizes, plus real-input
// helpers. These back the STFT/spectrogram generation and all
// frequency-domain feature extraction in the EmoLeak pipeline.
//
// All transforms execute against an FftPlan: twiddle factors, the
// bit-reversal permutation, and (for Bluestein sizes) the precomputed
// chirp spectrum are built once per size and cached per thread in
// stable storage, so references handed out stay valid no matter how
// many other sizes are planned later. Plan-based real transforms
// (FftPlan::rfft and friends) draw scratch from a util::Workspace and
// perform zero heap allocations in steady state.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/workspace.h"

namespace emoleak::dsp {

using Complex = std::complex<double>;

/// An execution plan for power-of-two FFTs of one size: twiddle tables
/// for both directions, the bit-reversal permutation, and the
/// recombination twiddles that let a length-n real transform run as a
/// length-n/2 complex transform. Plans are immutable after
/// construction; obtain shared cached instances via FftPlan::get().
class FftPlan {
 public:
  /// Builds a plan for size n (must be a power of two; n == 0 or 1 are
  /// accepted as trivial plans). Throws util::DataError otherwise.
  explicit FftPlan(std::size_t n);

  /// The per-thread cached plan for size n. The reference is stable
  /// for the thread's lifetime: later get() calls for other sizes
  /// never invalidate it (plans live in unique_ptr slots).
  [[nodiscard]] static const FftPlan& get(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// In-place forward / unscaled inverse complex FFT of size() points.
  void forward(std::span<Complex> data) const;
  void inverse(std::span<Complex> data) const;

  /// Real-input FFT: size() real samples -> size()/2 + 1 bins, computed
  /// as a size()/2 complex FFT plus a split/recombine pass (half the
  /// butterfly work of the complex transform). Scratch comes from `ws`;
  /// zero heap allocations once the arena is warm.
  void rfft(std::span<const double> in, std::span<Complex> out,
            util::Workspace& ws) const;

  /// Magnitudes of rfft(): writes size()/2 + 1 values into `out`.
  void rfft_magnitude(std::span<const double> in, std::span<double> out,
                      util::Workspace& ws) const;

  /// Inverse of rfft(): size()/2 + 1 bins -> size() real samples
  /// (exact inverse, including the 1/n scale).
  void irfft(std::span<const Complex> half, std::span<double> out,
             util::Workspace& ws) const;

 private:
  void transform(std::span<Complex> data, const std::vector<Complex>& w) const;

  std::size_t n_ = 0;
  std::vector<Complex> fwd_;           ///< e^{-2πik/n}, k in [0, n/2)
  std::vector<Complex> inv_;           ///< e^{+2πik/n}, k in [0, n/2)
  std::vector<std::uint32_t> bitrev_;  ///< bit-reversal permutation
};

/// In-place FFT of a power-of-two-sized buffer.
/// `inverse` computes the unscaled inverse transform; callers divide by
/// the length to invert exactly. Throws util::DataError if the size is
/// not a power of two (use `fft` for arbitrary sizes).
void fft_pow2(std::span<Complex> data, bool inverse = false);

/// FFT of arbitrary size. Power-of-two inputs dispatch to the cached
/// plan; other sizes use Bluestein's algorithm (chirp spectrum cached
/// per size). Returns the transformed sequence; input is unmodified.
[[nodiscard]] std::vector<Complex> fft(std::span<const Complex> input,
                                       bool inverse = false);

/// Forward FFT of a real sequence. Returns the first n/2+1 bins
/// (the remainder is conjugate-symmetric). Power-of-two sizes run the
/// packed real transform; other sizes fall back to the complex path.
[[nodiscard]] std::vector<Complex> rfft(std::span<const double> input);

/// Magnitude of each bin of `rfft(input)`.
[[nodiscard]] std::vector<double> rfft_magnitude(std::span<const double> input);

/// Writes the n/2+1 magnitudes of `rfft(input)` into `out`, drawing all
/// scratch (including the Bluestein convolution for non-power-of-two
/// sizes) from `ws`: zero heap allocations once the arena is warm.
void rfft_magnitude_into(std::span<const double> input, std::span<double> out,
                         util::Workspace& ws);

/// Inverse of rfft: reconstructs a real sequence of length n from
/// n/2+1 half-spectrum bins.
[[nodiscard]] std::vector<double> irfft(std::span<const Complex> half_spectrum,
                                        std::size_t n);

/// Smallest power of two >= n (n must be >= 1).
[[nodiscard]] std::size_t next_pow2(std::size_t n) noexcept;

/// True if n is a nonzero power of two.
[[nodiscard]] constexpr bool is_pow2(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

}  // namespace emoleak::dsp
