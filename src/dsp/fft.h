// Fast Fourier transforms.
//
// Provides an iterative radix-2 Cooley-Tukey FFT for power-of-two sizes
// and Bluestein's chirp-z algorithm for arbitrary sizes, plus real-input
// helpers. These back the STFT/spectrogram generation and all
// frequency-domain feature extraction in the EmoLeak pipeline.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace emoleak::dsp {

using Complex = std::complex<double>;

/// In-place FFT of a power-of-two-sized buffer.
/// `inverse` computes the unscaled inverse transform; callers divide by
/// the length to invert exactly. Throws util::DataError if the size is
/// not a power of two (use `fft` for arbitrary sizes).
void fft_pow2(std::span<Complex> data, bool inverse = false);

/// FFT of arbitrary size. Power-of-two inputs dispatch to fft_pow2;
/// other sizes use Bluestein's algorithm. Returns the transformed
/// sequence; input is unmodified.
[[nodiscard]] std::vector<Complex> fft(std::span<const Complex> input,
                                       bool inverse = false);

/// Forward FFT of a real sequence. Returns the first n/2+1 bins
/// (the remainder is conjugate-symmetric).
[[nodiscard]] std::vector<Complex> rfft(std::span<const double> input);

/// Magnitude of each bin of `rfft(input)`.
[[nodiscard]] std::vector<double> rfft_magnitude(std::span<const double> input);

/// Inverse of rfft: reconstructs a real sequence of length n from
/// n/2+1 half-spectrum bins.
[[nodiscard]] std::vector<double> irfft(std::span<const Complex> half_spectrum,
                                        std::size_t n);

/// Smallest power of two >= n (n must be >= 1).
[[nodiscard]] std::size_t next_pow2(std::size_t n) noexcept;

/// True if n is a nonzero power of two.
[[nodiscard]] constexpr bool is_pow2(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

}  // namespace emoleak::dsp
