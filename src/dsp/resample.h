// Sample-rate conversion.
//
// The vibration channel is simulated at audio rate (several kHz) and
// then sampled by the accelerometer model at a few hundred Hz; this
// module provides the anti-aliased decimation used for that step and a
// generic linear resampler.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace emoleak::dsp {

/// Linear-interpolation resampling from `in_rate_hz` to `out_rate_hz`.
/// No anti-alias filtering — callers downsampling must band-limit first
/// (see `decimate`).
[[nodiscard]] std::vector<double> resample_linear(std::span<const double> signal,
                                                  double in_rate_hz,
                                                  double out_rate_hz);

/// Nearest-sample (sample-and-hold) resampling: out[i] =
/// in[round(i * in_rate / out_rate)]. Downsampling this way aliases —
/// which is the point when modelling ADCs without brick-wall
/// anti-aliasing filters (MEMS accelerometers).
[[nodiscard]] std::vector<double> resample_nearest(std::span<const double> signal,
                                                   double in_rate_hz,
                                                   double out_rate_hz);

/// Anti-aliased downsampling: applies a Butterworth low-pass at
/// 0.45 * out_rate before linear resampling. Requires
/// out_rate_hz < in_rate_hz.
[[nodiscard]] std::vector<double> decimate(std::span<const double> signal,
                                           double in_rate_hz,
                                           double out_rate_hz,
                                           int filter_order = 8);

}  // namespace emoleak::dsp
