// Fundamental-frequency (F0) estimation.
//
// The emotion cues EmoLeak keys on live mostly in the F0 trajectory,
// which survives the accelerometer channel (directly for male voices,
// folded for female voices — see phone/channel.h). This module
// provides an autocorrelation pitch tracker usable on both audio and
// accelerometer streams; bench_ext_pitch uses it to show the F0
// contour is recoverable from the vibration side channel.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace emoleak::dsp {

struct PitchConfig {
  double min_hz = 50.0;        ///< search floor
  double max_hz = 400.0;       ///< search ceiling
  double frame_s = 0.08;       ///< analysis frame length
  double hop_s = 0.02;         ///< frame hop
  double voicing_threshold = 0.35;  ///< min normalized autocorr peak

  void validate() const;
};

/// One frame of the pitch track.
struct PitchFrame {
  double time_s = 0.0;
  std::optional<double> f0_hz;  ///< nullopt = unvoiced / no pitch found
  double confidence = 0.0;      ///< normalized autocorrelation peak
};

/// Estimates F0 on one frame via the normalized autocorrelation method
/// (center-clipped). Returns nullopt when no peak clears the voicing
/// threshold inside [min_hz, max_hz].
[[nodiscard]] std::optional<double> estimate_pitch(
    std::span<const double> frame, double sample_rate_hz,
    const PitchConfig& config = {});

/// Full pitch track over a signal.
[[nodiscard]] std::vector<PitchFrame> track_pitch(
    std::span<const double> signal, double sample_rate_hz,
    const PitchConfig& config = {});

/// Summary statistics of the voiced portion of a track: (mean, stddev)
/// in Hz; returns nullopt when nothing is voiced.
[[nodiscard]] std::optional<std::pair<double, double>> pitch_statistics(
    const std::vector<PitchFrame>& track);

}  // namespace emoleak::dsp
