// Fundamental-frequency (F0) estimation.
//
// The emotion cues EmoLeak keys on live mostly in the F0 trajectory,
// which survives the accelerometer channel (directly for male voices,
// folded for female voices — see phone/channel.h). This module
// provides an autocorrelation pitch tracker usable on both audio and
// accelerometer streams; bench_ext_pitch uses it to show the F0
// contour is recoverable from the vibration side channel.
//
// Three correlator kernels back the tracker, picked per frame by a
// work estimate (detail::correlator_for):
//  - kDirect: the O(lags·N) reference sum. Small frames (the
//    accelerometer rates, where the lag grid is tens of entries) stay
//    here, bitwise-identical to the pre-overhaul implementation, so
//    seed-corpus outputs are unchanged by construction.
//  - kFast: the same direct numerator with the serial accumulation
//    chain broken into independent partial sums (vectorizable) and the
//    per-lag energy denominators taken from prefix sums of x².
//  - kFft: Wiener–Khinchin for very large lag grids — the
//    autocorrelation numerator is one rfft/irfft pair over the power
//    spectrum (O(N log N) per frame), denominators again via prefix
//    sums.
// PitchConfig::exact forces kDirect everywhere as the parity
// reference; all kernels agree to ~1e-9 in normalized correlation and
// make identical voiced/unvoiced decisions (test_pitch).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "util/workspace.h"

namespace emoleak::dsp {

struct PitchConfig {
  double min_hz = 50.0;        ///< search floor
  double max_hz = 400.0;       ///< search ceiling
  double frame_s = 0.08;       ///< analysis frame length
  double hop_s = 0.02;         ///< frame hop
  double voicing_threshold = 0.35;  ///< min normalized autocorr peak
  /// Force the O(lags·N) direct autocorrelation everywhere instead of
  /// letting larger lag grids dispatch to the unrolled or FFT
  /// (Wiener–Khinchin) kernels. Kept as the bitwise reference the
  /// parity tests compare against; the default auto-dispatches on
  /// per-frame work (see detail::correlator_for).
  bool exact = false;

  void validate() const;
};

/// One frame of the pitch track.
struct PitchFrame {
  double time_s = 0.0;
  std::optional<double> f0_hz;  ///< nullopt = unvoiced / no pitch found
  double confidence = 0.0;      ///< normalized autocorrelation peak
};

/// Estimates F0 on one frame via the normalized autocorrelation method
/// (center-clipped). Returns nullopt when no peak clears the voicing
/// threshold inside [min_hz, max_hz].
[[nodiscard]] std::optional<double> estimate_pitch(
    std::span<const double> frame, double sample_rate_hz,
    const PitchConfig& config = {});

/// Full pitch track over a signal. Validates the config once and reuses
/// one scratch arena across frames: after the first frame has warmed
/// the arena, tracking performs zero heap allocations beyond the
/// returned vector itself.
[[nodiscard]] std::vector<PitchFrame> track_pitch(
    std::span<const double> signal, double sample_rate_hz,
    const PitchConfig& config = {});

/// Summary statistics of the voiced portion of a track: (mean, stddev)
/// in Hz; returns nullopt when nothing is voiced.
[[nodiscard]] std::optional<std::pair<double, double>> pitch_statistics(
    const std::vector<PitchFrame>& track);

namespace detail {

/// estimate_pitch with validation hoisted out and scratch drawn from
/// `ws` (scoped internally). track_pitch calls this per frame.
[[nodiscard]] std::optional<double> estimate_pitch_validated(
    std::span<const double> frame, double sample_rate_hz,
    const PitchConfig& config, util::Workspace& ws);

/// Which autocorrelation kernel a frame of `n` samples with lag range
/// [min_lag, max_lag] dispatches to (see the module comment). Exposed
/// so the parity tests can assert each kernel is actually exercised.
enum class Correlator { kDirect, kFast, kFft };
[[nodiscard]] Correlator correlator_for(std::size_t n, std::size_t min_lag,
                                        std::size_t max_lag,
                                        bool exact) noexcept;

}  // namespace detail

}  // namespace emoleak::dsp
