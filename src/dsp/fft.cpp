#include "dsp/fft.h"

#include <cmath>
#include <memory>
#include <numbers>
#include <utility>

#include "obs/metrics.h"
#include "util/error.h"

namespace emoleak::dsp {

namespace {

constexpr double kTau = 2.0 * std::numbers::pi;

/// Complex multiply spelled out in real arithmetic: keeps the hot
/// butterflies free of the library's Annex-G (__muldc3) call.
inline Complex cmul(Complex a, Complex b) noexcept {
  return Complex{a.real() * b.real() - a.imag() * b.imag(),
                 a.real() * b.imag() + a.imag() * b.real()};
}

std::vector<Complex> make_twiddles(std::size_t n, bool inverse) {
  std::vector<Complex> w(n / 2);
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double angle = sign * kTau * static_cast<double>(k) / static_cast<double>(n);
    w[k] = Complex{std::cos(angle), std::sin(angle)};
  }
  return w;
}

}  // namespace

FftPlan::FftPlan(std::size_t n) : n_{n} {
  if (n <= 1) return;
  if (!is_pow2(n)) {
    throw util::DataError{"FftPlan: size must be a power of two"};
  }
  fwd_ = make_twiddles(n, false);
  inv_ = make_twiddles(n, true);
  bitrev_.resize(n);
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    bitrev_[i] = static_cast<std::uint32_t>(j);
  }
}

const FftPlan& FftPlan::get(std::size_t n) {
  // Plans live in unique_ptr slots so the vector can grow without
  // moving any plan: references returned earlier stay valid even when
  // later transforms (e.g. Bluestein's two internal sizes) extend the
  // cache. This replaces the old thread_local TwiddleTable vector whose
  // reallocation dangled previously returned references.
  thread_local std::vector<std::unique_ptr<FftPlan>> cache;
  for (const std::unique_ptr<FftPlan>& p : cache) {
    if (p->size() == n) return *p;
  }
  cache.push_back(std::make_unique<FftPlan>(n));
  return *cache.back();
}

void FftPlan::transform(std::span<Complex> data,
                        const std::vector<Complex>& w) const {
  const std::size_t n = n_;
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    const std::size_t stride = n / len;
    for (std::size_t start = 0; start < n; start += len) {
      const Complex* tw = w.data();
      for (std::size_t k = 0; k < half; ++k, tw += stride) {
        const Complex even = data[start + k];
        const Complex odd = cmul(data[start + k + half], *tw);
        data[start + k] = even + odd;
        data[start + k + half] = even - odd;
      }
    }
  }
}

void FftPlan::forward(std::span<Complex> data) const {
  if (n_ <= 1) return;
  if (data.size() != n_) throw util::DataError{"FftPlan::forward: size mismatch"};
  transform(data, fwd_);
}

void FftPlan::inverse(std::span<Complex> data) const {
  if (n_ <= 1) return;
  if (data.size() != n_) throw util::DataError{"FftPlan::inverse: size mismatch"};
  transform(data, inv_);
}

void FftPlan::rfft(std::span<const double> in, std::span<Complex> out,
                   util::Workspace& ws) const {
  if (in.size() != n_ || out.size() != n_ / 2 + 1) {
    throw util::DataError{"FftPlan::rfft: size mismatch"};
  }
  if (n_ == 0) {
    out[0] = Complex{};
    return;
  }
  if (n_ == 1) {
    out[0] = Complex{in[0], 0.0};
    return;
  }

  // Pack pairs of real samples into a half-length complex signal,
  // transform, then split even/odd spectra and recombine. The
  // recombination twiddles e^{-2πik/n} are exactly this plan's forward
  // table; the sub-transform uses the cached half-size plan.
  const std::size_t m = n_ / 2;
  const util::Workspace::Scope scope{ws};
  std::span<Complex> z = ws.take<Complex>(m);
  for (std::size_t j = 0; j < m; ++j) {
    z[j] = Complex{in[2 * j], in[2 * j + 1]};
  }
  FftPlan::get(m).forward(z);

  out[0] = Complex{z[0].real() + z[0].imag(), 0.0};
  out[m] = Complex{z[0].real() - z[0].imag(), 0.0};
  for (std::size_t k = 1; k < m; ++k) {
    const Complex zk = z[k];
    const Complex zc = std::conj(z[m - k]);
    const Complex even = 0.5 * (zk + zc);
    const Complex diff = zk - zc;
    const Complex odd = Complex{0.5 * diff.imag(), -0.5 * diff.real()};  // -i/2 * diff
    out[k] = even + cmul(fwd_[k], odd);
  }
}

void FftPlan::rfft_magnitude(std::span<const double> in, std::span<double> out,
                             util::Workspace& ws) const {
  if (out.size() != n_ / 2 + 1) {
    throw util::DataError{"FftPlan::rfft_magnitude: size mismatch"};
  }
  const util::Workspace::Scope scope{ws};
  std::span<Complex> half = ws.take<Complex>(n_ / 2 + 1);
  rfft(in, half, ws);
  for (std::size_t k = 0; k < half.size(); ++k) out[k] = std::abs(half[k]);
}

void FftPlan::irfft(std::span<const Complex> half, std::span<double> out,
                    util::Workspace& ws) const {
  if (half.size() != n_ / 2 + 1 || out.size() != n_) {
    throw util::DataError{"FftPlan::irfft: size mismatch"};
  }
  if (n_ == 0) return;
  if (n_ == 1) {
    out[0] = half[0].real();
    return;
  }

  // Invert the split/recombine, run a half-length inverse transform,
  // and unpack interleaved samples.
  const std::size_t m = n_ / 2;
  const util::Workspace::Scope scope{ws};
  std::span<Complex> z = ws.take<Complex>(m);
  for (std::size_t k = 0; k < m; ++k) {
    const Complex xk = half[k];
    const Complex xc = std::conj(half[m - k]);
    const Complex even = 0.5 * (xk + xc);
    const Complex odd = cmul(inv_[k], 0.5 * (xk - xc));
    z[k] = even + Complex{-odd.imag(), odd.real()};  // even + i*odd
  }
  FftPlan::get(m).inverse(z);
  const double scale = 1.0 / static_cast<double>(m);
  for (std::size_t j = 0; j < m; ++j) {
    out[2 * j] = z[j].real() * scale;
    out[2 * j + 1] = z[j].imag() * scale;
  }
}

void fft_pow2(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  if (n <= 1) return;
  if (!is_pow2(n)) {
    throw util::DataError{"fft_pow2: size must be a power of two"};
  }
  const FftPlan& plan = FftPlan::get(n);
  if (inverse) {
    plan.inverse(data);
  } else {
    plan.forward(data);
  }
}

namespace {

/// Bluestein's algorithm expresses a length-n DFT as a circular
/// convolution of length m = next_pow2(2n-1). The chirp sequence and
/// the transformed convolution kernel depend only on n, so both are
/// cached per thread (stable unique_ptr slots, like FftPlan::get).
struct BluesteinPlan {
  std::size_t n = 0;
  std::size_t m = 0;
  std::vector<Complex> chirp;  ///< e^{-iπ k²/n}, forward sign
  std::vector<Complex> fft_b;  ///< forward FFT of the convolution kernel
};

const BluesteinPlan& bluestein_plan(std::size_t n) {
  thread_local std::vector<std::unique_ptr<BluesteinPlan>> cache;
  for (const std::unique_ptr<BluesteinPlan>& p : cache) {
    if (p->n == n) return *p;
  }
  auto plan = std::make_unique<BluesteinPlan>();
  plan->n = n;
  plan->m = next_pow2(2 * n - 1);
  plan->chirp.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    // k^2 mod 2n keeps the angle argument small for numerical accuracy.
    const std::size_t k2 = (k * k) % (2 * n);
    const double angle =
        -std::numbers::pi * static_cast<double>(k2) / static_cast<double>(n);
    plan->chirp[k] = Complex{std::cos(angle), std::sin(angle)};
  }
  plan->fft_b.assign(plan->m, Complex{});
  plan->fft_b[0] = std::conj(plan->chirp[0]);
  for (std::size_t k = 1; k < n; ++k) {
    plan->fft_b[k] = plan->fft_b[plan->m - k] = std::conj(plan->chirp[k]);
  }
  FftPlan::get(plan->m).forward(plan->fft_b);
  cache.push_back(std::move(plan));
  return *cache.back();
}

/// Forward DFT of arbitrary size via Bluestein. Writes in place.
void bluestein_forward(std::span<Complex> x, util::Workspace& ws) {
  const std::size_t n = x.size();
  const BluesteinPlan& plan = bluestein_plan(n);
  const util::Workspace::Scope scope{ws};
  std::span<Complex> a = ws.take<Complex>(plan.m);
  for (std::size_t k = 0; k < n; ++k) a[k] = cmul(x[k], plan.chirp[k]);
  for (std::size_t k = n; k < plan.m; ++k) a[k] = Complex{};
  const FftPlan& big = FftPlan::get(plan.m);
  big.forward(a);
  for (std::size_t k = 0; k < plan.m; ++k) a[k] = cmul(a[k], plan.fft_b[k]);
  big.inverse(a);
  const double scale = 1.0 / static_cast<double>(plan.m);
  for (std::size_t k = 0; k < n; ++k) x[k] = cmul(a[k] * scale, plan.chirp[k]);
}

}  // namespace

std::vector<Complex> fft(std::span<const Complex> input, bool inverse) {
  const std::size_t n = input.size();
  std::vector<Complex> out{input.begin(), input.end()};
  if (n <= 1) return out;
  if (is_pow2(n)) {
    fft_pow2(out, inverse);
    return out;
  }
  util::Workspace& ws = util::thread_workspace();
  if (!inverse) {
    bluestein_forward(out, ws);
    return out;
  }
  // Unscaled inverse via conjugation: IDFT(x) = conj(DFT(conj(x))).
  for (Complex& v : out) v = std::conj(v);
  bluestein_forward(out, ws);
  for (Complex& v : out) v = std::conj(v);
  return out;
}

std::vector<Complex> rfft(std::span<const double> input) {
  const std::size_t n = input.size();
  std::vector<Complex> half(n / 2 + 1);
  if (is_pow2(n)) {
    FftPlan::get(n).rfft(input, half, util::thread_workspace());
    return half;
  }
  if (n == 0) return half;  // single zero bin, matching the legacy shape
  // Odd / non-power-of-two sizes: complex Bluestein path, truncated to
  // the non-redundant half.
  std::vector<Complex> buffer(n);
  for (std::size_t i = 0; i < n; ++i) buffer[i] = Complex{input[i], 0.0};
  std::vector<Complex> full = fft(buffer, false);
  for (std::size_t i = 0; i < half.size(); ++i) half[i] = full[i];
  return half;
}

void rfft_magnitude_into(std::span<const double> input, std::span<double> out,
                         util::Workspace& ws) {
  const std::size_t n = input.size();
  if (out.size() != n / 2 + 1) {
    throw util::DataError{"rfft_magnitude_into: output must have n/2+1 bins"};
  }
  // Dispatch tally (relaxed fetch_add; resolved once per process) —
  // lets a live process report how much real-FFT work it has done.
  static obs::Counter& calls =
      obs::Registry::instance().counter("dsp.rfft.calls");
  calls.add(1);
  if (is_pow2(n)) {
    FftPlan::get(n).rfft_magnitude(input, out, ws);
    return;
  }
  if (n == 0) {
    out[0] = 0.0;
    return;
  }
  const util::Workspace::Scope scope{ws};
  std::span<Complex> z = ws.take<Complex>(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = Complex{input[i], 0.0};
  bluestein_forward(z, ws);
  for (std::size_t k = 0; k < out.size(); ++k) out[k] = std::abs(z[k]);
}

std::vector<double> rfft_magnitude(std::span<const double> input) {
  const std::size_t n = input.size();
  std::vector<double> mags(n / 2 + 1);
  if (is_pow2(n)) {
    FftPlan::get(n).rfft_magnitude(input, mags, util::thread_workspace());
    return mags;
  }
  const std::vector<Complex> half = rfft(input);
  for (std::size_t i = 0; i < half.size(); ++i) mags[i] = std::abs(half[i]);
  return mags;
}

std::vector<double> irfft(std::span<const Complex> half_spectrum, std::size_t n) {
  if (half_spectrum.size() != n / 2 + 1) {
    throw util::DataError{"irfft: half spectrum must have n/2+1 bins"};
  }
  std::vector<double> out(n);
  if (is_pow2(n)) {
    FftPlan::get(n).irfft(half_spectrum, out, util::thread_workspace());
    return out;
  }
  std::vector<Complex> full(n);
  for (std::size_t i = 0; i < half_spectrum.size(); ++i) full[i] = half_spectrum[i];
  for (std::size_t i = half_spectrum.size(); i < n; ++i) {
    full[i] = std::conj(full[n - i]);
  }
  std::vector<Complex> time = fft(full, true);
  const double scale = 1.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = time[i].real() * scale;
  return out;
}

std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace emoleak::dsp
