#include "dsp/fft.h"

#include <cmath>
#include <numbers>

#include "util/error.h"

namespace emoleak::dsp {

namespace {

constexpr double kTau = 2.0 * std::numbers::pi;

// Twiddle-factor cache keyed by (size, direction). FFT sizes in the
// pipeline are few (spectrogram window, Bluestein padding), so a tiny
// linear cache is enough and avoids repeated sin/cos work.
struct TwiddleTable {
  std::size_t n = 0;
  bool inverse = false;
  std::vector<Complex> w;
};

const std::vector<Complex>& twiddles(std::size_t n, bool inverse) {
  thread_local std::vector<TwiddleTable> cache;
  for (const TwiddleTable& t : cache) {
    if (t.n == n && t.inverse == inverse) return t.w;
  }
  TwiddleTable t;
  t.n = n;
  t.inverse = inverse;
  t.w.resize(n / 2);
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double angle = sign * kTau * static_cast<double>(k) / static_cast<double>(n);
    t.w[k] = Complex{std::cos(angle), std::sin(angle)};
  }
  cache.push_back(std::move(t));
  return cache.back().w;
}

}  // namespace

void fft_pow2(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  if (n <= 1) return;
  if (!is_pow2(n)) {
    throw util::DataError{"fft_pow2: size must be a power of two"};
  }

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  const std::vector<Complex>& w = twiddles(n, inverse);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t stride = n / len;
    for (std::size_t start = 0; start < n; start += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex twiddle = w[k * stride];
        const Complex even = data[start + k];
        const Complex odd = data[start + k + len / 2] * twiddle;
        data[start + k] = even + odd;
        data[start + k + len / 2] = even - odd;
      }
    }
  }
}

std::vector<Complex> fft(std::span<const Complex> input, bool inverse) {
  const std::size_t n = input.size();
  std::vector<Complex> out{input.begin(), input.end()};
  if (n <= 1) return out;
  if (is_pow2(n)) {
    fft_pow2(out, inverse);
    return out;
  }

  // Bluestein's algorithm: express the DFT as a convolution and compute
  // the convolution with a padded power-of-two FFT.
  const double sign = inverse ? 1.0 : -1.0;
  std::vector<Complex> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    // k^2 mod 2n keeps the angle argument small for numerical accuracy.
    const std::size_t k2 = (static_cast<std::size_t>(k) * k) % (2 * n);
    const double angle =
        sign * std::numbers::pi * static_cast<double>(k2) / static_cast<double>(n);
    chirp[k] = Complex{std::cos(angle), std::sin(angle)};
  }

  const std::size_t m = next_pow2(2 * n - 1);
  std::vector<Complex> a(m, Complex{});
  std::vector<Complex> b(m, Complex{});
  for (std::size_t k = 0; k < n; ++k) a[k] = out[k] * chirp[k];
  b[0] = std::conj(chirp[0]);
  for (std::size_t k = 1; k < n; ++k) {
    b[k] = b[m - k] = std::conj(chirp[k]);
  }
  fft_pow2(a, false);
  fft_pow2(b, false);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  fft_pow2(a, true);
  const double scale = 1.0 / static_cast<double>(m);
  for (std::size_t k = 0; k < n; ++k) out[k] = a[k] * scale * chirp[k];
  return out;
}

std::vector<Complex> rfft(std::span<const double> input) {
  std::vector<Complex> buffer(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) buffer[i] = Complex{input[i], 0.0};
  std::vector<Complex> full = fft(buffer, false);
  full.resize(input.size() / 2 + 1);
  return full;
}

std::vector<double> rfft_magnitude(std::span<const double> input) {
  const std::vector<Complex> half = rfft(input);
  std::vector<double> mags(half.size());
  for (std::size_t i = 0; i < half.size(); ++i) mags[i] = std::abs(half[i]);
  return mags;
}

std::vector<double> irfft(std::span<const Complex> half_spectrum, std::size_t n) {
  if (half_spectrum.size() != n / 2 + 1) {
    throw util::DataError{"irfft: half spectrum must have n/2+1 bins"};
  }
  std::vector<Complex> full(n);
  for (std::size_t i = 0; i < half_spectrum.size(); ++i) full[i] = half_spectrum[i];
  for (std::size_t i = half_spectrum.size(); i < n; ++i) {
    full[i] = std::conj(full[n - i]);
  }
  std::vector<Complex> time = fft(full, true);
  std::vector<double> out(n);
  const double scale = 1.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = time[i].real() * scale;
  return out;
}

std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace emoleak::dsp
