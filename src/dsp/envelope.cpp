#include "dsp/envelope.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace emoleak::dsp {

std::vector<double> envelope_follower(std::span<const double> signal,
                                      double sample_rate_hz,
                                      double time_constant_s) {
  if (sample_rate_hz <= 0.0 || time_constant_s <= 0.0) {
    throw util::ConfigError{"envelope_follower: rate/time constant must be > 0"};
  }
  const double alpha = std::exp(-1.0 / (sample_rate_hz * time_constant_s));
  std::vector<double> env(signal.size());
  double y = 0.0;
  for (std::size_t i = 0; i < signal.size(); ++i) {
    const double x = std::abs(signal[i]);
    y = alpha * y + (1.0 - alpha) * x;
    env[i] = y;
  }
  return env;
}

std::vector<double> moving_rms(std::span<const double> signal,
                               std::size_t window_samples) {
  if (window_samples == 0) {
    throw util::ConfigError{"moving_rms: window must be >= 1 sample"};
  }
  const std::size_t n = signal.size();
  std::vector<double> out(n);
  if (n == 0) return out;
  // Prefix sums of squares for O(n) evaluation.
  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + signal[i] * signal[i];
  const std::size_t half = window_samples / 2;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i >= half ? i - half : 0;
    const std::size_t hi = std::min(i + window_samples - half, n);
    const double mean_sq = (prefix[hi] - prefix[lo]) / static_cast<double>(hi - lo);
    out[i] = std::sqrt(mean_sq);
  }
  return out;
}

std::vector<double> frame_energy(std::span<const double> signal,
                                 std::size_t frame_samples) {
  if (frame_samples == 0) {
    throw util::ConfigError{"frame_energy: frame must be >= 1 sample"};
  }
  const std::size_t frames = (signal.size() + frame_samples - 1) / frame_samples;
  std::vector<double> out(frames, 0.0);
  for (std::size_t f = 0; f < frames; ++f) {
    const std::size_t lo = f * frame_samples;
    const std::size_t hi = std::min(lo + frame_samples, signal.size());
    double e = 0.0;
    for (std::size_t i = lo; i < hi; ++i) e += signal[i] * signal[i];
    out[f] = e;
  }
  return out;
}

}  // namespace emoleak::dsp
