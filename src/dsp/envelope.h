// Amplitude-envelope estimation for speech-region detection.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace emoleak::dsp {

/// Full-wave rectified signal smoothed by a single-pole low-pass with
/// the given time constant. Produces the amplitude envelope the speech
/// region detector thresholds.
[[nodiscard]] std::vector<double> envelope_follower(std::span<const double> signal,
                                                    double sample_rate_hz,
                                                    double time_constant_s);

/// Moving RMS over a window of `window_samples` (centered; edges use a
/// shrunken window). window_samples must be >= 1.
[[nodiscard]] std::vector<double> moving_rms(std::span<const double> signal,
                                             std::size_t window_samples);

/// Short-time energy over non-overlapping frames.
[[nodiscard]] std::vector<double> frame_energy(std::span<const double> signal,
                                               std::size_t frame_samples);

}  // namespace emoleak::dsp
