#include "dsp/pitch.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace emoleak::dsp {

void PitchConfig::validate() const {
  if (min_hz <= 0.0 || max_hz <= min_hz) {
    throw util::ConfigError{"PitchConfig: need 0 < min_hz < max_hz"};
  }
  if (frame_s <= 0.0 || hop_s <= 0.0) {
    throw util::ConfigError{"PitchConfig: frame/hop must be > 0"};
  }
  if (voicing_threshold < 0.0 || voicing_threshold > 1.0) {
    throw util::ConfigError{"PitchConfig: voicing threshold in [0,1]"};
  }
}

std::optional<double> estimate_pitch(std::span<const double> frame,
                                     double sample_rate_hz,
                                     const PitchConfig& config) {
  config.validate();
  if (sample_rate_hz <= 0.0) {
    throw util::ConfigError{"estimate_pitch: sample rate <= 0"};
  }
  const auto min_lag =
      static_cast<std::size_t>(sample_rate_hz / config.max_hz);
  const auto max_lag =
      static_cast<std::size_t>(sample_rate_hz / config.min_hz);
  if (frame.size() < 2 * max_lag || min_lag < 1) return std::nullopt;

  // Remove DC; compute energy.
  std::vector<double> x{frame.begin(), frame.end()};
  double mean = 0.0;
  for (const double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  double energy = 0.0;
  for (double& v : x) {
    v -= mean;
    energy += v * v;
  }
  if (energy <= 1e-18) return std::nullopt;

  // Normalized autocorrelation over the lag range.
  std::vector<double> corr(max_lag + 1, 0.0);
  double best_value = 0.0;
  for (std::size_t lag = min_lag; lag <= max_lag; ++lag) {
    double acc = 0.0;
    double e1 = 0.0;
    double e2 = 0.0;
    const std::size_t n = x.size() - lag;
    for (std::size_t i = 0; i < n; ++i) {
      acc += x[i] * x[i + lag];
      e1 += x[i] * x[i];
      e2 += x[i + lag] * x[i + lag];
    }
    const double denom = std::sqrt(e1 * e2);
    if (denom <= 0.0) continue;
    corr[lag] = acc / denom;
    best_value = std::max(best_value, corr[lag]);
  }
  if (best_value < config.voicing_threshold) return std::nullopt;

  // Octave-error guard: a periodic signal peaks at every multiple of
  // the true period, so take the *smallest* lag that is a local maximum
  // nearly as high as the global one.
  std::size_t best_lag = 0;
  for (std::size_t lag = min_lag; lag <= max_lag; ++lag) {
    const double left = lag > min_lag ? corr[lag - 1] : -1.0;
    const double right = lag < max_lag ? corr[lag + 1] : -1.0;
    const bool local_max = corr[lag] >= left && corr[lag] >= right;
    if (local_max && corr[lag] >= 0.90 * best_value) {
      best_lag = lag;
      best_value = corr[lag];
      break;
    }
  }
  if (best_lag == 0) return std::nullopt;

  // Parabolic interpolation around the peak for sub-sample precision.
  double refined = static_cast<double>(best_lag);
  if (best_lag > min_lag && best_lag < max_lag) {
    const auto corr_at = [&](std::size_t lag) {
      double acc = 0.0, e1 = 0.0, e2 = 0.0;
      const std::size_t n = x.size() - lag;
      for (std::size_t i = 0; i < n; ++i) {
        acc += x[i] * x[i + lag];
        e1 += x[i] * x[i];
        e2 += x[i + lag] * x[i + lag];
      }
      const double denom = std::sqrt(e1 * e2);
      return denom > 0.0 ? acc / denom : 0.0;
    };
    const double l = corr_at(best_lag - 1);
    const double c = best_value;
    const double r = corr_at(best_lag + 1);
    const double denom = l - 2.0 * c + r;
    if (std::abs(denom) > 1e-12) {
      refined += 0.5 * (l - r) / denom;
    }
  }
  return sample_rate_hz / refined;
}

std::vector<PitchFrame> track_pitch(std::span<const double> signal,
                                    double sample_rate_hz,
                                    const PitchConfig& config) {
  config.validate();
  const auto frame_n = static_cast<std::size_t>(config.frame_s * sample_rate_hz);
  const auto hop_n =
      std::max<std::size_t>(1, static_cast<std::size_t>(config.hop_s * sample_rate_hz));
  std::vector<PitchFrame> track;
  if (signal.size() < frame_n) return track;
  for (std::size_t start = 0; start + frame_n <= signal.size();
       start += hop_n) {
    PitchFrame frame;
    frame.time_s =
        (static_cast<double>(start) + frame_n / 2.0) / sample_rate_hz;
    frame.f0_hz =
        estimate_pitch(signal.subspan(start, frame_n), sample_rate_hz, config);
    // Confidence re-derived cheaply: voiced frames carry their peak via
    // estimate_pitch's acceptance; report 1/0 granularity plus the
    // threshold as a floor.
    frame.confidence = frame.f0_hz ? config.voicing_threshold : 0.0;
    track.push_back(frame);
  }
  return track;
}

std::optional<std::pair<double, double>> pitch_statistics(
    const std::vector<PitchFrame>& track) {
  std::vector<double> voiced;
  for (const PitchFrame& f : track) {
    if (f.f0_hz) voiced.push_back(*f.f0_hz);
  }
  if (voiced.empty()) return std::nullopt;
  double mean = 0.0;
  for (const double v : voiced) mean += v;
  mean /= static_cast<double>(voiced.size());
  double var = 0.0;
  for (const double v : voiced) var += (v - mean) * (v - mean);
  var /= static_cast<double>(voiced.size());
  return std::pair{mean, std::sqrt(var)};
}

}  // namespace emoleak::dsp
