#include "dsp/pitch.h"

#include <algorithm>
#include <cmath>

#include "dsp/fft.h"
#include "obs/metrics.h"
#include "util/error.h"

namespace emoleak::dsp {

void PitchConfig::validate() const {
  if (min_hz <= 0.0 || max_hz <= min_hz) {
    throw util::ConfigError{"PitchConfig: need 0 < min_hz < max_hz"};
  }
  if (frame_s <= 0.0 || hop_s <= 0.0) {
    throw util::ConfigError{"PitchConfig: frame/hop must be > 0"};
  }
  if (voicing_threshold < 0.0 || voicing_threshold > 1.0) {
    throw util::ConfigError{"PitchConfig: voicing threshold in [0,1]"};
  }
}

namespace {

/// Direct O(lags·N) normalized autocorrelation — the parity reference.
/// Writes corr[lag] for lag in [min_lag, max_lag]; returns the peak.
double correlate_direct(std::span<const double> x, std::size_t min_lag,
                        std::size_t max_lag, std::span<double> corr) {
  double best_value = 0.0;
  for (std::size_t lag = min_lag; lag <= max_lag; ++lag) {
    double acc = 0.0;
    double e1 = 0.0;
    double e2 = 0.0;
    const std::size_t n = x.size() - lag;
    for (std::size_t i = 0; i < n; ++i) {
      acc += x[i] * x[i + lag];
      e1 += x[i] * x[i];
      e2 += x[i + lag] * x[i + lag];
    }
    const double denom = std::sqrt(e1 * e2);
    if (denom <= 0.0) continue;
    corr[lag] = acc / denom;
    best_value = std::max(best_value, corr[lag]);
  }
  return best_value;
}

/// The direct numerator with the serial dependence broken: four
/// independent partial sums per lag (reassociated, so the compiler can
/// vectorize and the adds pipeline instead of serializing on the
/// accumulator's latency) and energy denominators from prefix sums of
/// x² instead of two more running sums per lag. Agrees with
/// correlate_direct to ~1e-13 relative — not bitwise.
double correlate_fast(std::span<const double> x, std::size_t min_lag,
                      std::size_t max_lag, std::span<double> corr,
                      util::Workspace& ws) {
  const std::size_t n = x.size();
  // prefix[k] = sum of x[i]² for i < k, so e1(lag) = prefix[n - lag]
  // and e2(lag) = prefix[n] - prefix[lag] exactly as the direct sum
  // windows them.
  const std::span<double> prefix = ws.take<double>(n + 1);
  prefix[0] = 0.0;
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + x[i] * x[i];

  double best_value = 0.0;
  const double* base = x.data();
  for (std::size_t lag = min_lag; lag <= max_lag; ++lag) {
    const std::size_t m = n - lag;
    const double* a = base;
    const double* b = base + lag;
    double s0 = 0.0;
    double s1 = 0.0;
    double s2 = 0.0;
    double s3 = 0.0;
    std::size_t i = 0;
    for (; i + 4 <= m; i += 4) {
      s0 += a[i] * b[i];
      s1 += a[i + 1] * b[i + 1];
      s2 += a[i + 2] * b[i + 2];
      s3 += a[i + 3] * b[i + 3];
    }
    double acc = (s0 + s1) + (s2 + s3);
    for (; i < m; ++i) acc += a[i] * b[i];
    const double denom = std::sqrt(prefix[m] * (prefix[n] - prefix[lag]));
    if (denom <= 0.0) continue;
    corr[lag] = acc / denom;
    best_value = std::max(best_value, corr[lag]);
  }
  return best_value;
}

/// Wiener–Khinchin: the autocorrelation numerator is the inverse
/// transform of the power spectrum of the zero-padded frame; the
/// per-lag energy denominators are exact prefix sums of x². One
/// rfft/irfft pair replaces the O(lags·N) direct sum.
double correlate_fft(std::span<const double> x, std::size_t min_lag,
                     std::size_t max_lag, std::span<double> corr,
                     util::Workspace& ws) {
  const std::size_t n = x.size();
  // Zero padding to at least n + max_lag makes the circular
  // autocorrelation equal the linear one for every lag we read.
  const std::size_t nfft = next_pow2(n + max_lag);
  const FftPlan& plan = FftPlan::get(nfft);

  const std::span<double> padded = ws.take<double>(nfft);
  std::copy(x.begin(), x.end(), padded.begin());
  std::fill(padded.begin() + static_cast<std::ptrdiff_t>(n), padded.end(), 0.0);

  const std::span<Complex> spectrum = ws.take<Complex>(nfft / 2 + 1);
  plan.rfft(padded, spectrum, ws);
  for (Complex& bin : spectrum) bin = Complex{std::norm(bin), 0.0};

  const std::span<double> autocorr = ws.take<double>(nfft);
  plan.irfft(spectrum, autocorr, ws);

  // Prefix sums of squares: prefix[k] = sum of x[i]² for i < k, so
  // e1(lag) = prefix[n-lag] and e2(lag) = prefix[n] - prefix[lag] are
  // the exact windowed energies the direct sum computes.
  const std::span<double> prefix = ws.take<double>(n + 1);
  prefix[0] = 0.0;
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + x[i] * x[i];

  double best_value = 0.0;
  for (std::size_t lag = min_lag; lag <= max_lag; ++lag) {
    const double e1 = prefix[n - lag];
    const double e2 = prefix[n] - prefix[lag];
    const double denom = std::sqrt(e1 * e2);
    if (denom <= 0.0) continue;
    corr[lag] = autocorr[lag] / denom;
    best_value = std::max(best_value, corr[lag]);
  }
  return best_value;
}

}  // namespace

namespace detail {

// Both cutoffs were calibrated against this codebase's kernels. Below
// kDirectCutoff multiply-adds (every accelerometer-rate frame: tens of
// lags over a few hundred samples) the exact sum is fastest and keeps
// bitwise-identical seed-corpus behavior. Above it the unrolled kernel
// retires ~an order of magnitude more multiply-adds per cycle than the
// latency-bound exact sum; one rfft/irfft pair costs roughly
// 24·nfft·log2(nfft) of those equivalent operations, so only lag grids
// past that crossover (very low min_hz at audio rates) go to the FFT.
namespace {
constexpr std::size_t kDirectCutoff = 1u << 14;
}  // namespace

Correlator correlator_for(std::size_t n, std::size_t min_lag,
                          std::size_t max_lag, bool exact) noexcept {
  if (exact) return Correlator::kDirect;
  const std::size_t direct_ops = (max_lag - min_lag + 1) * n;
  if (direct_ops < kDirectCutoff) return Correlator::kDirect;
  const std::size_t nfft = next_pow2(n + max_lag);
  std::size_t log2_nfft = 0;
  while ((std::size_t{1} << log2_nfft) < nfft) ++log2_nfft;
  return direct_ops > 24 * nfft * log2_nfft ? Correlator::kFft
                                            : Correlator::kFast;
}

std::optional<double> estimate_pitch_validated(std::span<const double> frame,
                                               double sample_rate_hz,
                                               const PitchConfig& config,
                                               util::Workspace& ws) {
  if (sample_rate_hz <= 0.0) {
    throw util::ConfigError{"estimate_pitch: sample rate <= 0"};
  }
  const auto min_lag =
      static_cast<std::size_t>(sample_rate_hz / config.max_hz);
  const auto max_lag =
      static_cast<std::size_t>(sample_rate_hz / config.min_hz);
  if (frame.size() < 2 * max_lag || min_lag < 1) return std::nullopt;

  const util::Workspace::Scope scope{ws};

  // Remove DC; compute energy.
  const std::span<double> x = ws.take<double>(frame.size());
  std::copy(frame.begin(), frame.end(), x.begin());
  double mean = 0.0;
  for (const double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  double energy = 0.0;
  for (double& v : x) {
    v -= mean;
    energy += v * v;
  }
  if (energy <= 1e-18) return std::nullopt;

  // Normalized autocorrelation over the lag range.
  const std::span<double> corr = ws.take<double>(max_lag + 1);
  std::fill(corr.begin(), corr.end(), 0.0);
  const Correlator kind =
      correlator_for(x.size(), min_lag, max_lag, config.exact);
  // Per-frame dispatch tallies: which correlator the crossover picked.
  // Answers "is the FFT path actually winning frames?" from a live
  // process instead of an offline benchmark.
  {
    static obs::Counter& direct =
        obs::Registry::instance().counter("dsp.pitch.direct");
    static obs::Counter& fast =
        obs::Registry::instance().counter("dsp.pitch.fast");
    static obs::Counter& fft =
        obs::Registry::instance().counter("dsp.pitch.fft");
    (kind == Correlator::kFft    ? fft
     : kind == Correlator::kFast ? fast
                                 : direct)
        .add(1);
  }
  double best_value =
      kind == Correlator::kFft    ? correlate_fft(x, min_lag, max_lag, corr, ws)
      : kind == Correlator::kFast ? correlate_fast(x, min_lag, max_lag, corr, ws)
                                  : correlate_direct(x, min_lag, max_lag, corr);
  if (best_value < config.voicing_threshold) return std::nullopt;

  // Octave-error guard: a periodic signal peaks at every multiple of
  // the true period, so take the *smallest* lag that is a local maximum
  // nearly as high as the global one.
  std::size_t best_lag = 0;
  for (std::size_t lag = min_lag; lag <= max_lag; ++lag) {
    const double left = lag > min_lag ? corr[lag - 1] : -1.0;
    const double right = lag < max_lag ? corr[lag + 1] : -1.0;
    const bool local_max = corr[lag] >= left && corr[lag] >= right;
    if (local_max && corr[lag] >= 0.90 * best_value) {
      best_lag = lag;
      best_value = corr[lag];
      break;
    }
  }
  if (best_lag == 0) return std::nullopt;

  // Parabolic interpolation around the peak for sub-sample precision.
  // The neighbours are inside [min_lag, max_lag], so corr[] already
  // holds them — no recomputation.
  double refined = static_cast<double>(best_lag);
  if (best_lag > min_lag && best_lag < max_lag) {
    const double l = corr[best_lag - 1];
    const double c = best_value;
    const double r = corr[best_lag + 1];
    const double denom = l - 2.0 * c + r;
    if (std::abs(denom) > 1e-12) {
      refined += 0.5 * (l - r) / denom;
    }
  }
  return sample_rate_hz / refined;
}

}  // namespace detail

std::optional<double> estimate_pitch(std::span<const double> frame,
                                     double sample_rate_hz,
                                     const PitchConfig& config) {
  config.validate();
  return detail::estimate_pitch_validated(frame, sample_rate_hz, config,
                                          util::thread_workspace());
}

std::vector<PitchFrame> track_pitch(std::span<const double> signal,
                                    double sample_rate_hz,
                                    const PitchConfig& config) {
  config.validate();
  const auto frame_n = static_cast<std::size_t>(config.frame_s * sample_rate_hz);
  const auto hop_n =
      std::max<std::size_t>(1, static_cast<std::size_t>(config.hop_s * sample_rate_hz));
  std::vector<PitchFrame> track;
  if (signal.size() < frame_n) return track;
  // One arena for the whole track: the first frame sizes it, every
  // later frame's scratch is pure pointer arithmetic.
  util::Workspace& ws = util::thread_workspace();
  for (std::size_t start = 0; start + frame_n <= signal.size();
       start += hop_n) {
    PitchFrame frame;
    frame.time_s =
        (static_cast<double>(start) + frame_n / 2.0) / sample_rate_hz;
    frame.f0_hz = detail::estimate_pitch_validated(
        signal.subspan(start, frame_n), sample_rate_hz, config, ws);
    // Confidence re-derived cheaply: voiced frames carry their peak via
    // estimate_pitch's acceptance; report 1/0 granularity plus the
    // threshold as a floor.
    frame.confidence = frame.f0_hz ? config.voicing_threshold : 0.0;
    track.push_back(frame);
  }
  return track;
}

std::optional<std::pair<double, double>> pitch_statistics(
    const std::vector<PitchFrame>& track) {
  std::vector<double> voiced;
  for (const PitchFrame& f : track) {
    if (f.f0_hz) voiced.push_back(*f.f0_hz);
  }
  if (voiced.empty()) return std::nullopt;
  double mean = 0.0;
  for (const double v : voiced) mean += v;
  mean /= static_cast<double>(voiced.size());
  double var = 0.0;
  for (const double v : voiced) var += (v - mean) * (v - mean);
  var /= static_cast<double>(voiced.size());
  return std::pair{mean, std::sqrt(var)};
}

}  // namespace emoleak::dsp
