#include "dsp/stft.h"

#include <algorithm>
#include <cmath>

#include "dsp/fft.h"
#include "obs/metrics.h"
#include "util/error.h"

namespace emoleak::dsp {

void StftConfig::validate() const {
  if (window_length == 0) throw util::ConfigError{"StftConfig: window_length == 0"};
  if (hop == 0) throw util::ConfigError{"StftConfig: hop == 0"};
  if (fft_size != 0 && fft_size < window_length) {
    throw util::ConfigError{"StftConfig: fft_size < window_length"};
  }
}

Spectrogram::Spectrogram(std::vector<double> magnitudes, std::size_t frames,
                         std::size_t bins, double sample_rate_hz, std::size_t hop)
    : mags_{std::move(magnitudes)},
      frames_{frames},
      bins_{bins},
      sample_rate_hz_{sample_rate_hz},
      hop_{hop} {
  if (mags_.size() != frames_ * bins_) {
    throw util::DataError{"Spectrogram: data size != frames * bins"};
  }
}

double Spectrogram::at(std::size_t frame, std::size_t bin) const {
  if (frame >= frames_ || bin >= bins_) {
    throw util::DataError{"Spectrogram::at: index out of range"};
  }
  return mags_[frame * bins_ + bin];
}

std::span<const double> Spectrogram::frame(std::size_t index) const {
  if (index >= frames_) throw util::DataError{"Spectrogram::frame: out of range"};
  return std::span<const double>{mags_}.subspan(index * bins_, bins_);
}

double Spectrogram::bin_frequency_hz(std::size_t bin) const noexcept {
  // bins_ = fft_size/2 + 1, so fft_size = 2*(bins_-1).
  const double fft_size = 2.0 * static_cast<double>(bins_ - 1);
  return sample_rate_hz_ * static_cast<double>(bin) / fft_size;
}

double Spectrogram::frame_time_s(std::size_t frame) const noexcept {
  return static_cast<double>(frame * hop_) / sample_rate_hz_;
}

std::vector<double> Spectrogram::to_db(double floor_db) const {
  double max_mag = 0.0;
  for (const double m : mags_) max_mag = std::max(max_mag, m);
  if (max_mag <= 0.0) max_mag = 1e-300;
  std::vector<double> db(mags_.size());
  for (std::size_t i = 0; i < mags_.size(); ++i) {
    const double rel = mags_[i] / max_mag;
    const double v = rel > 0.0 ? 20.0 * std::log10(rel) : floor_db;
    db[i] = std::max(v, floor_db);
  }
  return db;
}

namespace {

/// Maps a virtual index from the padded axis onto [0, n) by reflecting
/// around the first and last samples (librosa's `reflect`, no edge
/// repeat): ..., s[2], s[1], | s[0..n-1] |, s[n-2], s[n-3], ...
std::size_t reflect_index(std::size_t k, std::size_t n) {
  if (n <= 1) return 0;
  const std::size_t period = 2 * (n - 1);
  k %= period;
  return k < n ? k : period - k;
}

}  // namespace

StftShape stft_shape(std::size_t signal_len, const StftConfig& config) {
  config.validate();
  const std::size_t win_len = config.window_length;
  const std::size_t fft_size =
      config.fft_size == 0 ? next_pow2(win_len) : config.fft_size;
  const std::size_t padded_len =
      config.center ? signal_len + 2 * (win_len / 2) : signal_len;
  StftShape shape;
  shape.bins = fft_size / 2 + 1;
  shape.frames =
      padded_len >= win_len ? (padded_len - win_len) / config.hop + 1 : 0;
  if (shape.frames == 0) shape.frames = 1;  // always >= one (zero-padded) frame
  return shape;
}

void stft_magnitudes(std::span<const double> signal, const StftConfig& config,
                     std::span<double> mags, util::Workspace& ws) {
  config.validate();
  const std::size_t win_len = config.window_length;
  const std::size_t fft_size =
      config.fft_size == 0 ? next_pow2(win_len) : config.fft_size;
  const StftShape shape = stft_shape(signal.size(), config);
  if (mags.size() != shape.cells()) {
    throw util::DataError{"stft_magnitudes: output size != frames * bins"};
  }
  // Kernel tallies: STFT invocations and the frames they decompose to.
  static obs::Counter& stft_calls =
      obs::Registry::instance().counter("dsp.stft.calls");
  static obs::Counter& stft_frames =
      obs::Registry::instance().counter("dsp.stft.frames");
  stft_calls.add(1);
  stft_frames.add(shape.frames);

  const util::Workspace::Scope scope{ws};
  std::span<double> window = ws.take<double>(win_len);
  fill_window(config.window, window);

  // Optionally reflect-pad by half a window on both ends so frame
  // centers align with signal samples (librosa-style `center=True`).
  std::span<const double> x = signal;
  if (config.center) {
    // Front and back pads mirror symmetrically around the first / last
    // sample; reflect_index keeps folding for signals shorter than half
    // a window instead of clamping to an edge sample.
    const std::size_t pad = win_len / 2;
    std::span<double> padded = ws.take<double>(signal.size() + 2 * pad);
    for (std::size_t i = 0; i < pad; ++i) {
      padded[i] = signal.empty()
                      ? 0.0
                      : signal[reflect_index(pad - i, signal.size())];
    }
    std::copy(signal.begin(), signal.end(), padded.begin() + static_cast<std::ptrdiff_t>(pad));
    for (std::size_t i = 0; i < pad; ++i) {
      padded[pad + signal.size() + i] =
          signal.empty() ? 0.0
                         : signal[reflect_index(signal.size() + i, signal.size())];
    }
    x = padded;
  }

  const bool pow2 = is_pow2(fft_size);
  const FftPlan* plan = pow2 ? &FftPlan::get(fft_size) : nullptr;
  std::span<double> frame_buf = ws.take<double>(fft_size);
  for (std::size_t f = 0; f < shape.frames; ++f) {
    const std::size_t start = f * config.hop;
    for (std::size_t i = 0; i < win_len; ++i) {
      const std::size_t idx = start + i;
      frame_buf[i] = idx < x.size() ? x[idx] * window[i] : 0.0;
    }
    std::fill(frame_buf.begin() + static_cast<std::ptrdiff_t>(win_len),
              frame_buf.end(), 0.0);
    std::span<double> row = mags.subspan(f * shape.bins, shape.bins);
    if (plan != nullptr) {
      plan->rfft_magnitude(frame_buf, row, ws);
    } else {
      const std::vector<double> mag = rfft_magnitude(frame_buf);
      std::copy(mag.begin(), mag.end(), row.begin());
    }
  }
}

Spectrogram stft(std::span<const double> signal, double sample_rate_hz,
                 const StftConfig& config, util::Workspace& ws) {
  if (sample_rate_hz <= 0.0) throw util::ConfigError{"stft: sample_rate_hz <= 0"};
  const StftShape shape = stft_shape(signal.size(), config);
  std::vector<double> mags(shape.cells());
  stft_magnitudes(signal, config, mags, ws);
  return Spectrogram{std::move(mags), shape.frames, shape.bins, sample_rate_hz,
                     config.hop};
}

Spectrogram stft(std::span<const double> signal, double sample_rate_hz,
                 const StftConfig& config) {
  return stft(signal, sample_rate_hz, config, util::thread_workspace());
}

std::vector<double> spectrogram_image(const Spectrogram& spec, std::size_t width,
                                      std::size_t height, double floor_db) {
  if (width == 0 || height == 0) {
    throw util::ConfigError{"spectrogram_image: width/height must be > 0"};
  }
  const std::vector<double> db = spec.to_db(floor_db);
  const std::size_t frames = spec.frames();
  const std::size_t bins = spec.bins();
  std::vector<double> image(width * height, 0.0);
  // Cell (r, c) of the image mean-pools a rectangle of the spectrogram:
  // image columns span time (frames), rows span frequency (bins), with
  // row 0 = highest frequency so the image reads like the paper's plots.
  for (std::size_t r = 0; r < height; ++r) {
    const std::size_t b0 = (height - 1 - r) * bins / height;
    const std::size_t b1 = std::max<std::size_t>((height - r) * bins / height, b0 + 1);
    for (std::size_t c = 0; c < width; ++c) {
      const std::size_t f0 = c * frames / width;
      const std::size_t f1 = std::max<std::size_t>((c + 1) * frames / width, f0 + 1);
      double sum = 0.0;
      std::size_t count = 0;
      for (std::size_t f = f0; f < f1 && f < frames; ++f) {
        for (std::size_t b = b0; b < b1 && b < bins; ++b) {
          sum += db[f * bins + b];
          ++count;
        }
      }
      const double mean_db = count ? sum / static_cast<double>(count) : floor_db;
      image[r * width + c] = (mean_db - floor_db) / -floor_db;  // -> [0, 1]
    }
  }
  return image;
}

}  // namespace emoleak::dsp
