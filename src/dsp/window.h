// Analysis window functions for the STFT / spectrogram front end.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace emoleak::dsp {

enum class WindowType {
  kRectangular,
  kHann,
  kHamming,
  kBlackman,
};

/// Generates a periodic window of the given length (periodic, i.e. DFT-
/// even, which is the convention for spectrogram analysis).
[[nodiscard]] std::vector<double> make_window(WindowType type, std::size_t length);

/// Writes the same window into caller-provided storage (no allocation;
/// used by the zero-allocation STFT path).
void fill_window(WindowType type, std::span<double> out);

/// Multiplies `frame` by `window` element-wise into a new vector.
/// Sizes must match.
[[nodiscard]] std::vector<double> apply_window(std::span<const double> frame,
                                               std::span<const double> window);

/// Sum of squared window samples (used for power normalization).
[[nodiscard]] double window_energy(std::span<const double> window) noexcept;

[[nodiscard]] std::string to_string(WindowType type);

}  // namespace emoleak::dsp
