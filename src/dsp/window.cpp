#include "dsp/window.h"

#include <cmath>
#include <numbers>

#include "util/error.h"

namespace emoleak::dsp {

std::vector<double> make_window(WindowType type, std::size_t length) {
  std::vector<double> w(length);
  fill_window(type, w);
  return w;
}

void fill_window(WindowType type, std::span<double> out) {
  const std::size_t length = out.size();
  if (length == 0) throw util::DataError{"make_window: length must be > 0"};
  for (double& v : out) v = 1.0;
  if (length == 1 || type == WindowType::kRectangular) return;
  const double n = static_cast<double>(length);  // periodic convention
  constexpr double tau = 2.0 * std::numbers::pi;
  for (std::size_t i = 0; i < length; ++i) {
    const double x = static_cast<double>(i) / n;
    switch (type) {
      case WindowType::kHann:
        out[i] = 0.5 - 0.5 * std::cos(tau * x);
        break;
      case WindowType::kHamming:
        out[i] = 0.54 - 0.46 * std::cos(tau * x);
        break;
      case WindowType::kBlackman:
        out[i] = 0.42 - 0.5 * std::cos(tau * x) + 0.08 * std::cos(2.0 * tau * x);
        break;
      case WindowType::kRectangular:
        break;
    }
  }
}

std::vector<double> apply_window(std::span<const double> frame,
                                 std::span<const double> window) {
  if (frame.size() != window.size()) {
    throw util::DataError{"apply_window: frame/window size mismatch"};
  }
  std::vector<double> out(frame.size());
  for (std::size_t i = 0; i < frame.size(); ++i) out[i] = frame[i] * window[i];
  return out;
}

double window_energy(std::span<const double> window) noexcept {
  double e = 0.0;
  for (const double w : window) e += w * w;
  return e;
}

std::string to_string(WindowType type) {
  switch (type) {
    case WindowType::kRectangular: return "rectangular";
    case WindowType::kHann: return "hann";
    case WindowType::kHamming: return "hamming";
    case WindowType::kBlackman: return "blackman";
  }
  return "unknown";
}

}  // namespace emoleak::dsp
