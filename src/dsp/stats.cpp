#include "dsp/stats.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.h"

namespace emoleak::dsp {

Summary summarize(std::span<const double> x) {
  if (x.empty()) throw util::DataError{"summarize: empty sample"};
  Summary s;
  s.count = x.size();
  s.min = x[0];
  s.max = x[0];
  double sum = 0.0;
  for (const double v : x) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
  }
  const double n = static_cast<double>(x.size());
  s.mean = sum / n;
  double m2 = 0.0, m3 = 0.0, m4 = 0.0;
  for (const double v : x) {
    const double d = v - s.mean;
    const double d2 = d * d;
    m2 += d2;
    m3 += d2 * d;
    m4 += d2 * d2;
  }
  m2 /= n;
  m3 /= n;
  m4 /= n;
  s.variance = m2;
  s.stddev = std::sqrt(m2);
  if (s.stddev > 0.0) {
    s.skewness = m3 / (m2 * s.stddev);
    s.kurtosis = m4 / (m2 * m2) - 3.0;
  }
  return s;
}

double mean(std::span<const double> x) {
  if (x.empty()) throw util::DataError{"mean: empty sample"};
  double sum = 0.0;
  for (const double v : x) sum += v;
  return sum / static_cast<double>(x.size());
}

double variance(std::span<const double> x) { return summarize(x).variance; }

double stddev(std::span<const double> x) { return summarize(x).stddev; }

double quantile(std::span<const double> x, double q) {
  if (x.empty()) throw util::DataError{"quantile: empty sample"};
  if (q < 0.0 || q > 1.0) throw util::DataError{"quantile: q must be in [0,1]"};
  std::vector<double> sorted{x.begin(), x.end()};
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= sorted.size()) return sorted.back();
  return sorted[idx] + frac * (sorted[idx + 1] - sorted[idx]);
}

double mean_crossing_rate(std::span<const double> x) {
  if (x.size() < 2) return 0.0;
  const double m = mean(x);
  std::size_t crossings = 0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    const bool above_prev = x[i - 1] > m;
    const bool above_now = x[i] > m;
    if (above_prev != above_now) ++crossings;
  }
  return static_cast<double>(crossings) / static_cast<double>(x.size() - 1);
}

double energy(std::span<const double> x) noexcept {
  double e = 0.0;
  for (const double v : x) e += v * v;
  return e;
}

double rms(std::span<const double> x) {
  if (x.empty()) throw util::DataError{"rms: empty sample"};
  return std::sqrt(energy(x) / static_cast<double>(x.size()));
}

double correlation(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.empty()) {
    throw util::DataError{"correlation: samples must be equal-length, non-empty"};
  }
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace emoleak::dsp
