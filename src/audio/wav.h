// Minimal RIFF/WAVE I/O (PCM16 + float32).
//
// Lets users export synthesized utterances or import their own audio
// to play through the vibration channel — the natural interchange
// format at the corpus boundary.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace emoleak::audio {

struct WavData {
  std::vector<double> samples;  ///< mono, in [-1, 1]
  double sample_rate_hz = 0.0;
};

/// Writes mono PCM16 WAV. Samples are clipped to [-1, 1].
void write_wav(std::ostream& out, const std::vector<double>& samples,
               double sample_rate_hz);

/// Convenience: writes to a file path. Throws util::DataError on I/O
/// failure.
void write_wav_file(const std::string& path, const std::vector<double>& samples,
                    double sample_rate_hz);

/// Reads a mono or multi-channel RIFF/WAVE stream (PCM16 or float32);
/// multi-channel input is mixed down to mono. Throws util::DataError
/// on malformed input.
[[nodiscard]] WavData read_wav(std::istream& in);

[[nodiscard]] WavData read_wav_file(const std::string& path);

}  // namespace emoleak::audio
