// Playback protocol bookkeeping.
//
// The paper's data collection (§III-B3, §IV-B) groups same-emotion
// utterances into contiguous blocks, plays them in one continuous
// session, and records each block's start/end times so spectrograms and
// features can be labelled later ("angry speeches played from the 11th
// to the 180th second"). Playlist reproduces that artifact: it orders a
// corpus into emotion blocks, renders the concatenated audio (e.g. for
// WAV export or replay through the channel), and reports the per-block
// and per-utterance timeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "audio/corpus.h"

namespace emoleak::audio {

struct PlaylistConfig {
  double gap_s = 0.4;            ///< silence between consecutive utterances
  bool group_by_emotion = true;  ///< contiguous same-emotion blocks
  std::uint64_t shuffle_seed = 1;

  void validate() const;
};

/// One utterance's slot in the rendered session.
struct PlaylistEntry {
  std::size_t corpus_index = 0;
  Emotion emotion = Emotion::kNeutral;
  int speaker_id = 0;
  double start_s = 0.0;
  double end_s = 0.0;
};

/// One contiguous same-emotion block ("angry from 11 s to 180 s").
struct EmotionBlock {
  Emotion emotion = Emotion::kNeutral;
  double start_s = 0.0;
  double end_s = 0.0;
  std::size_t utterance_count = 0;
};

class Playlist {
 public:
  /// Plans the playback order and timeline for all corpus utterances
  /// (audio is synthesized lazily, once, during planning to obtain
  /// exact durations).
  Playlist(const Corpus& corpus, const PlaylistConfig& config);

  [[nodiscard]] const std::vector<PlaylistEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] const std::vector<EmotionBlock>& blocks() const noexcept {
    return blocks_;
  }
  [[nodiscard]] double total_duration_s() const noexcept { return duration_s_; }
  [[nodiscard]] double sample_rate_hz() const noexcept { return rate_; }

  /// Renders the full session as one audio stream (silence in gaps),
  /// suitable for write_wav or for conduction through a phone channel.
  [[nodiscard]] std::vector<double> render(const Corpus& corpus) const;

  /// The emotion block covering `time_s`, or nullptr between blocks /
  /// out of range — the lookup the paper's labelling program performs.
  [[nodiscard]] const EmotionBlock* block_at(double time_s) const;

  /// Human-readable timeline like the paper's §IV-B1 example.
  [[nodiscard]] std::string timeline() const;

 private:
  std::vector<PlaylistEntry> entries_;
  std::vector<EmotionBlock> blocks_;
  double duration_s_ = 0.0;
  double rate_ = 0.0;
  PlaylistConfig config_;
};

}  // namespace emoleak::audio
