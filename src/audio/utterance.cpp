#include "audio/utterance.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "dsp/filter.h"
#include "util/error.h"

namespace emoleak::audio {

void SynthConfig::validate() const {
  if (sample_rate_hz <= 0.0) throw util::ConfigError{"SynthConfig: sample_rate_hz <= 0"};
  if (target_duration_s <= 0.0) throw util::ConfigError{"SynthConfig: duration <= 0"};
  if (duration_jitter < 0.0 || duration_jitter >= 1.0) {
    throw util::ConfigError{"SynthConfig: duration_jitter must be in [0,1)"};
  }
  if (max_harmonics < 1) throw util::ConfigError{"SynthConfig: max_harmonics < 1"};
}

namespace {

constexpr double kTau = 2.0 * std::numbers::pi;

/// First-order autoregressive perturbation process whose stationary
/// standard deviation is `sigma` and whose correlation time is
/// `tau_samples`; models cycle-to-cycle jitter/shimmer as a smooth
/// random walk rather than white noise.
class OuProcess {
 public:
  OuProcess(double sigma, double tau_samples, util::Rng& rng)
      : rng_{rng},
        alpha_{tau_samples > 0.0 ? std::exp(-1.0 / tau_samples) : 0.0},
        drive_{sigma * std::sqrt(std::max(0.0, 1.0 - alpha_ * alpha_))} {}

  double next() noexcept {
    value_ = alpha_ * value_ + drive_ * rng_.normal();
    return value_;
  }

 private:
  util::Rng& rng_;
  double alpha_;
  double drive_;
  double value_ = 0.0;
};

}  // namespace

Utterance synthesize_utterance(const SpeakerVoice& voice,
                               const EmotionProfile& profile,
                               const SynthConfig& config, util::Rng& rng) {
  config.validate();
  const double fs = config.sample_rate_hz;
  const double duration =
      config.target_duration_s *
      (1.0 + rng.uniform(-config.duration_jitter, config.duration_jitter));

  // Syllable timing from the speaker rate and the emotion's rate scale.
  // One syllable cycle (voiced + gap) spans 1/rate seconds.
  const double rate = voice.rate_base * profile.rate_scale;
  const int n_syllables =
      std::max(1, static_cast<int>(std::round(duration * rate)));
  const double voiced_s = 0.62 / rate;  // voiced portion per syllable cycle
  const double gap_s = 0.38 / rate;

  const double f0_center = voice.f0_base_hz * profile.f0_scale;
  const double f0_sd_oct = voice.f0_sd_octaves * profile.f0_range_scale;
  const double jitter = std::max(voice.jitter_base, profile.jitter);
  const double shimmer = std::max(voice.shimmer_base, profile.shimmer);
  const double tilt_db =
      profile.tilt_db_per_oct + voice.tilt_offset_db;
  const double noise_level = profile.noise_level + voice.breathiness;

  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(duration * fs) + 64);

  // Leading silence.
  const auto lead = static_cast<std::size_t>(rng.uniform(0.02, 0.06) * fs);
  out.insert(out.end(), lead, 0.0);

  double f0_sum = 0.0;
  double energy_sum = 0.0;
  std::size_t voiced_samples = 0;

  for (int syl = 0; syl < n_syllables; ++syl) {
    const double syl_pos =
        n_syllables > 1 ? static_cast<double>(syl) / (n_syllables - 1) : 0.5;
    // Per-syllable F0 target: utterance-level slope plus random accent.
    const double accent_oct = rng.normal(0.0, f0_sd_oct);
    const double slope_oct = profile.f0_slope * (syl_pos - 0.5);
    const double f0_syl = f0_center * std::exp2(accent_oct + slope_oct);

    // Per-syllable loudness.
    const double energy_sigma = 0.10 * profile.energy_var_scale;
    const double amp_syl = voice.energy_base * profile.energy_scale *
                           std::exp(rng.normal(0.0, energy_sigma));

    const auto n_voiced = static_cast<std::size_t>(
        voiced_s * fs * std::exp(rng.normal(0.0, 0.08)));
    const double attack_s = std::clamp(0.035 / profile.attack_scale, 0.004, 0.12);
    const double release_s = std::clamp(0.05 / profile.attack_scale, 0.008, 0.2);

    OuProcess jitter_proc{jitter, fs / std::max(f0_syl, 1.0), rng};
    OuProcess shimmer_proc{shimmer, fs / std::max(f0_syl, 1.0), rng};

    // Harmonic amplitudes from the spectral tilt, capped at Nyquist.
    const int max_k = std::min(
        config.max_harmonics,
        static_cast<int>(0.47 * fs / std::max(f0_syl, 1.0)));
    std::vector<double> harmonic_amp(static_cast<std::size_t>(std::max(max_k, 1)));
    for (int k = 1; k <= std::max(max_k, 1); ++k) {
      harmonic_amp[static_cast<std::size_t>(k - 1)] =
          std::pow(10.0, tilt_db * std::log2(static_cast<double>(k)) / 20.0);
    }

    // Vowel-dependent formant for this syllable.
    const double formant_hz = rng.normal_clamped(
        voice.formant1_hz, 90.0, 320.0, std::min(0.45 * fs, 950.0));
    dsp::Biquad formant =
        dsp::design_bandpass(formant_hz, fs, formant_hz / voice.formant_bw_hz);
    // Mix of direct harmonics and formant-shaped harmonics keeps energy
    // at both F0 and the formant region.
    double fz1 = 0.0, fz2 = 0.0;  // direct-form-II-transposed state

    double phase = rng.uniform(0.0, kTau);
    const double tremor_phase0 = rng.uniform(0.0, kTau);

    for (std::size_t i = 0; i < n_voiced; ++i) {
      const double t = static_cast<double>(i) / fs;
      const double t_frac =
          n_voiced > 1 ? static_cast<double>(i) / (n_voiced - 1) : 0.0;

      double f0 = f0_syl * (1.0 + jitter_proc.next());
      if (profile.tremor_hz > 0.0) {
        f0 *= 1.0 + profile.tremor_depth *
                        std::sin(kTau * profile.tremor_hz * t + tremor_phase0);
      }
      // Within-syllable micro-declination.
      f0 *= std::exp2(-0.04 * t_frac);
      phase += kTau * f0 / fs;
      if (phase > kTau) phase -= kTau;

      double src = 0.0;
      for (int k = 1; k <= max_k; ++k) {
        src += harmonic_amp[static_cast<std::size_t>(k - 1)] *
               std::sin(static_cast<double>(k) * phase);
      }

      // Formant resonance (applied to the source inline).
      const double fy = formant.b0 * src + fz1;
      fz1 = formant.b1 * src - formant.a1 * fy + fz2;
      fz2 = formant.b2 * src - formant.a2 * fy;
      double sample = 0.65 * src + 0.35 * fy;

      // Amplitude envelope: attack, sustain, release.
      double env = 1.0;
      const double elapsed = t;
      const double remaining = static_cast<double>(n_voiced - i) / fs;
      if (elapsed < attack_s) env *= elapsed / attack_s;
      if (remaining < release_s) env *= remaining / release_s;
      env *= 1.0 + shimmer_proc.next();
      env = std::max(env, 0.0);

      sample *= 0.22 * amp_syl * env;
      sample += noise_level * amp_syl * env * rng.normal();

      out.push_back(sample);
      f0_sum += f0;
      energy_sum += sample * sample;
      ++voiced_samples;
    }

    // Inter-syllable gap.
    const auto n_gap = static_cast<std::size_t>(
        gap_s * fs * std::exp(rng.normal(0.0, 0.15)));
    out.insert(out.end(), n_gap, 0.0);
  }

  // Trailing silence.
  const auto trail = static_cast<std::size_t>(rng.uniform(0.02, 0.06) * fs);
  out.insert(out.end(), trail, 0.0);

  Utterance u;
  u.samples = std::move(out);
  u.sample_rate_hz = fs;
  if (voiced_samples > 0) {
    u.mean_f0_hz = f0_sum / static_cast<double>(voiced_samples);
    u.mean_energy = std::sqrt(energy_sum / static_cast<double>(voiced_samples));
  }
  return u;
}

}  // namespace emoleak::audio
