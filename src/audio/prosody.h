// Emotion -> prosody parameter mapping.
//
// The speech-emotion literature (and the paper's §II-B) identifies the
// acoustic carriers of emotion: fundamental frequency (level, range,
// contour), jitter and shimmer, intensity, speaking rate, spectral
// tilt, and harmonic-to-noise ratio. EmotionProfile captures each as a
// multiplicative deviation from a speaker's neutral baseline; the
// utterance synthesizer realizes them. Values follow the standard
// qualitative findings (e.g. Scherer's prosody-of-emotion tables):
// anger/fear/surprise raise F0 and rate, sadness lowers F0, energy and
// rate, etc.
#pragma once

#include "audio/emotion.h"

namespace emoleak::audio {

/// Multiplicative prosody deviations from a neutral baseline (1.0 = no
/// change), plus additive contour terms.
struct EmotionProfile {
  double f0_scale = 1.0;         ///< mean F0 multiplier
  double f0_range_scale = 1.0;   ///< F0 standard-deviation multiplier
  double f0_slope = 0.0;         ///< octaves drifted over the utterance
  double jitter = 0.01;          ///< cycle-to-cycle F0 perturbation (fraction)
  double shimmer = 0.04;         ///< cycle-to-cycle amplitude perturbation
  double tremor_hz = 0.0;        ///< slow F0 modulation (fear voice tremor)
  double tremor_depth = 0.0;     ///< tremor depth as F0 fraction
  double energy_scale = 1.0;     ///< loudness multiplier
  double energy_var_scale = 1.0; ///< syllable-to-syllable loudness variation
  double rate_scale = 1.0;       ///< syllables-per-second multiplier
  double attack_scale = 1.0;     ///< >1 = sharper syllable onsets
  double tilt_db_per_oct = -12.0;///< harmonic spectral tilt
  double noise_level = 0.015;    ///< aspiration-noise level (breathy voices)
};

/// The canonical profile for each emotion at full expressiveness.
[[nodiscard]] EmotionProfile emotion_profile(Emotion e);

/// Interpolates a profile toward neutral: expressiveness 1 returns the
/// canonical profile, 0 returns neutral. Datasets differ in how acted /
/// exaggerated their portrayals are (TESS is highly expressive; CREMA-D
/// crowdsourced actors are more varied and subdued).
[[nodiscard]] EmotionProfile scaled_profile(Emotion e, double expressiveness);

}  // namespace emoleak::audio
