#include "audio/emotion.h"

namespace emoleak::audio {

std::string to_string(Emotion e) {
  switch (e) {
    case Emotion::kAngry: return "Angry";
    case Emotion::kDisgust: return "Disgust";
    case Emotion::kFear: return "Fear";
    case Emotion::kHappy: return "Happy";
    case Emotion::kNeutral: return "Neutral";
    case Emotion::kSurprise: return "PleasantSurprise";
    case Emotion::kSad: return "Sad";
  }
  return "Unknown";
}

std::vector<Emotion> seven_emotions() {
  return {Emotion::kAngry, Emotion::kDisgust, Emotion::kFear,
          Emotion::kHappy, Emotion::kNeutral, Emotion::kSurprise,
          Emotion::kSad};
}

std::vector<Emotion> six_emotions() {
  return {Emotion::kAngry,   Emotion::kDisgust, Emotion::kFear,
          Emotion::kHappy,   Emotion::kNeutral, Emotion::kSad};
}

std::vector<std::string> emotion_names(const std::vector<Emotion>& emotions) {
  std::vector<std::string> names;
  names.reserve(emotions.size());
  for (const Emotion e : emotions) names.push_back(to_string(e));
  return names;
}

}  // namespace emoleak::audio
