#include "audio/corpus.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace emoleak::audio {

void DatasetSpec::validate() const {
  if (name.empty()) throw util::ConfigError{"DatasetSpec: name is empty"};
  if (emotions.empty()) throw util::ConfigError{"DatasetSpec: no emotions"};
  if (speaker_count < 1) throw util::ConfigError{"DatasetSpec: speaker_count < 1"};
  if (utterances_per_speaker_emotion < 1) {
    throw util::ConfigError{"DatasetSpec: utterances_per_speaker_emotion < 1"};
  }
  if (male_fraction < 0.0 || male_fraction > 1.0) {
    throw util::ConfigError{"DatasetSpec: male_fraction must be in [0,1]"};
  }
  if (expressiveness < 0.0) {
    throw util::ConfigError{"DatasetSpec: expressiveness must be >= 0"};
  }
  if (speaker_variability < 0.0) {
    throw util::ConfigError{"DatasetSpec: speaker_variability must be >= 0"};
  }
  synth.validate();
}

DatasetSpec savee_spec() {
  DatasetSpec s;
  s.name = "SAVEE";
  s.emotions = seven_emotions();
  s.speaker_count = 4;
  // 120 utterances per speaker over 7 emotions: SAVEE actually has 30
  // neutral + 15 of each other emotion; we use ~17 per emotion so the
  // total matches 480.
  s.utterances_per_speaker_emotion = 17;
  s.male_fraction = 1.0;  // 4 native English male speakers
  // Moderately acted portrayals + real inter-speaker diversity makes
  // SAVEE markedly harder than TESS (paper: ~53% vs ~95%).
  s.expressiveness = 0.60;
  s.speaker_variability = 0.95;
  s.expressiveness_jitter = 0.22;
  s.synth.target_duration_s = 2.4;  // full sentences
  return s;
}

DatasetSpec tess_spec() {
  DatasetSpec s;
  s.name = "TESS";
  s.emotions = seven_emotions();
  s.speaker_count = 2;
  s.utterances_per_speaker_emotion = 200;  // 2 x 7 x 200 = 2800
  s.male_fraction = 0.0;                   // two female actors
  // Highly expressive, studio-consistent portrayals.
  s.expressiveness = 1.0;
  s.speaker_variability = 0.30;
  s.expressiveness_jitter = 0.03;
  s.synth.target_duration_s = 1.5;  // "Say the word ..." carrier phrase
  return s;
}

DatasetSpec cremad_spec() {
  DatasetSpec s;
  s.name = "CREMA-D";
  s.emotions = six_emotions();
  s.speaker_count = 91;
  s.utterances_per_speaker_emotion = 13;  // 91 x 6 x 13 = 7098 (~7442)
  s.male_fraction = 0.53;                 // 48 male / 43 female
  // Crowd-sourced actors: varied, often subdued portrayals with high
  // speaker diversity.
  s.expressiveness = 1.0;
  s.speaker_variability = 0.75;
  s.expressiveness_jitter = 0.18;
  s.synth.target_duration_s = 2.0;
  return s;
}

DatasetSpec scaled_spec(DatasetSpec spec, double fraction) {
  if (fraction <= 0.0 || fraction > 1.0) {
    throw util::ConfigError{"scaled_spec: fraction must be in (0,1]"};
  }
  spec.utterances_per_speaker_emotion = std::max(
      1, static_cast<int>(std::round(spec.utterances_per_speaker_emotion * fraction)));
  return spec;
}

Corpus::Corpus(DatasetSpec spec, std::uint64_t seed)
    : spec_{std::move(spec)}, seed_{seed} {
  spec_.validate();
  util::Rng rng{seed_};
  util::Rng speaker_rng = rng.fork(0xA11CE);
  speakers_.reserve(static_cast<std::size_t>(spec_.speaker_count));
  const int male_count = static_cast<int>(
      std::round(spec_.male_fraction * spec_.speaker_count));
  for (int s = 0; s < spec_.speaker_count; ++s) {
    const Gender g = s < male_count ? Gender::kMale : Gender::kFemale;
    speakers_.push_back(
        SpeakerVoice::sample(g, spec_.speaker_variability, speaker_rng));
  }
  entries_.reserve(spec_.total_utterances());
  std::size_t index = 0;
  for (int s = 0; s < spec_.speaker_count; ++s) {
    for (const Emotion e : spec_.emotions) {
      for (int u = 0; u < spec_.utterances_per_speaker_emotion; ++u) {
        entries_.push_back(UtteranceInfo{index++, s, e});
      }
    }
  }
}

Utterance Corpus::synthesize(std::size_t index) const {
  if (index >= entries_.size()) {
    throw util::DataError{"Corpus::synthesize: index out of range"};
  }
  const UtteranceInfo& info = entries_[index];
  util::Rng base{seed_};
  util::Rng rng = base.fork(0xBEEF0000ULL + index);
  // Acting inconsistency: expressiveness varies per utterance.
  const double expr = std::max(
      0.0, spec_.expressiveness *
               (1.0 + rng.normal(0.0, spec_.expressiveness_jitter)));
  const EmotionProfile profile = scaled_profile(info.emotion, expr);
  Utterance u = synthesize_utterance(
      speakers_[static_cast<std::size_t>(info.speaker_id)], profile,
      spec_.synth, rng);
  u.emotion = info.emotion;
  u.speaker_id = info.speaker_id;
  return u;
}

int Corpus::emotion_class(Emotion e) const {
  for (std::size_t i = 0; i < spec_.emotions.size(); ++i) {
    if (spec_.emotions[i] == e) return static_cast<int>(i);
  }
  throw util::DataError{"Corpus::emotion_class: emotion not in this corpus"};
}

std::vector<std::string> Corpus::class_names() const {
  return emotion_names(spec_.emotions);
}

}  // namespace emoleak::audio
