#include "audio/voice.h"

#include <cmath>

#include "util/error.h"

namespace emoleak::audio {

SpeakerVoice SpeakerVoice::sample(Gender gender, double variability,
                                  util::Rng& rng) {
  if (variability < 0.0) {
    throw util::ConfigError{"SpeakerVoice::sample: variability must be >= 0"};
  }
  SpeakerVoice v;
  v.gender = gender;
  const double f0_mean = gender == Gender::kMale ? 115.0 : 205.0;
  // F0 varies log-normally across speakers; +-1 sd is about +-18% at
  // full variability.
  v.f0_base_hz = f0_mean * std::exp2(rng.normal(0.0, 0.24 * variability));
  v.f0_sd_octaves = 0.09 * std::exp(rng.normal(0.0, 0.25 * variability));
  v.energy_base = std::exp(rng.normal(0.0, 0.30 * variability));
  v.rate_base =
      rng.normal_clamped(3.6, 0.55 * variability, 2.2, 5.4);
  v.formant1_hz =
      rng.normal_clamped(gender == Gender::kMale ? 580.0 : 640.0,
                         70.0 * variability, 380.0, 900.0);
  v.formant_bw_hz = rng.normal_clamped(110.0, 20.0 * variability, 60.0, 200.0);
  v.jitter_base = rng.normal_clamped(0.010, 0.004 * variability, 0.003, 0.03);
  v.shimmer_base = rng.normal_clamped(0.045, 0.015 * variability, 0.01, 0.12);
  v.tilt_offset_db = rng.normal(0.0, 1.5 * variability);
  v.breathiness = rng.normal_clamped(0.0, 0.01 * variability, 0.0, 0.05);
  return v;
}

}  // namespace emoleak::audio
