// Per-speaker voice characteristics.
//
// A dataset's difficulty comes largely from inter-speaker variability:
// TESS has two consistent actresses, SAVEE four male speakers, CREMA-D
// 91 diverse actors. SpeakerVoice captures the speaker-specific
// baseline (F0, energy, rate, formants, voice quality); the corpus
// factory samples one per actor with a dataset-specific variance.
#pragma once

#include <cstdint>

#include "util/rng.h"

namespace emoleak::audio {

enum class Gender { kMale, kFemale };

struct SpeakerVoice {
  Gender gender = Gender::kMale;
  double f0_base_hz = 115.0;     ///< neutral mean fundamental frequency
  double f0_sd_octaves = 0.09;   ///< neutral F0 spread (octave space)
  double energy_base = 1.0;      ///< neutral loudness multiplier
  double rate_base = 3.6;        ///< neutral syllables per second
  double formant1_hz = 600.0;    ///< first formant center
  double formant_bw_hz = 110.0;  ///< formant bandwidth
  double jitter_base = 0.010;    ///< habitual jitter floor
  double shimmer_base = 0.045;   ///< habitual shimmer floor
  double tilt_offset_db = 0.0;   ///< habitual spectral-tilt offset
  double breathiness = 0.0;      ///< habitual extra aspiration noise

  /// Samples a speaker. `variability` scales how far the speaker's
  /// baselines deviate from the gender-typical means: ~0.3 for the
  /// consistent TESS actresses up to ~1.0 for CREMA-D's 91 actors.
  [[nodiscard]] static SpeakerVoice sample(Gender gender, double variability,
                                           util::Rng& rng);
};

}  // namespace emoleak::audio
