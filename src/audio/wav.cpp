#include "audio/wav.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/error.h"

namespace emoleak::audio {

namespace {

void put_u32(std::ostream& out, std::uint32_t v) {
  char b[4] = {static_cast<char>(v & 0xFF), static_cast<char>((v >> 8) & 0xFF),
               static_cast<char>((v >> 16) & 0xFF),
               static_cast<char>((v >> 24) & 0xFF)};
  out.write(b, 4);
}

void put_u16(std::ostream& out, std::uint16_t v) {
  char b[2] = {static_cast<char>(v & 0xFF), static_cast<char>((v >> 8) & 0xFF)};
  out.write(b, 2);
}

std::uint32_t get_u32(std::istream& in) {
  unsigned char b[4];
  in.read(reinterpret_cast<char*>(b), 4);
  if (!in) throw util::DataError{"read_wav: truncated stream"};
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint16_t get_u16(std::istream& in) {
  unsigned char b[2];
  in.read(reinterpret_cast<char*>(b), 2);
  if (!in) throw util::DataError{"read_wav: truncated stream"};
  return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
}

}  // namespace

void write_wav(std::ostream& out, const std::vector<double>& samples,
               double sample_rate_hz) {
  if (sample_rate_hz <= 0.0) {
    throw util::DataError{"write_wav: sample rate must be > 0"};
  }
  const auto rate = static_cast<std::uint32_t>(std::lround(sample_rate_hz));
  const auto data_bytes = static_cast<std::uint32_t>(samples.size() * 2);

  out.write("RIFF", 4);
  put_u32(out, 36 + data_bytes);
  out.write("WAVE", 4);
  out.write("fmt ", 4);
  put_u32(out, 16);          // fmt chunk size
  put_u16(out, 1);           // PCM
  put_u16(out, 1);           // mono
  put_u32(out, rate);
  put_u32(out, rate * 2);    // byte rate
  put_u16(out, 2);           // block align
  put_u16(out, 16);          // bits per sample
  out.write("data", 4);
  put_u32(out, data_bytes);
  for (const double s : samples) {
    const double clipped = std::clamp(s, -1.0, 1.0);
    const auto v = static_cast<std::int16_t>(std::lround(clipped * 32767.0));
    put_u16(out, static_cast<std::uint16_t>(v));
  }
}

void write_wav_file(const std::string& path, const std::vector<double>& samples,
                    double sample_rate_hz) {
  std::ofstream out{path, std::ios::binary};
  if (!out) throw util::DataError{"write_wav_file: cannot open " + path};
  write_wav(out, samples, sample_rate_hz);
  if (!out) throw util::DataError{"write_wav_file: write failed for " + path};
}

WavData read_wav(std::istream& in) {
  char tag[4];
  in.read(tag, 4);
  if (!in || std::memcmp(tag, "RIFF", 4) != 0) {
    throw util::DataError{"read_wav: not a RIFF stream"};
  }
  (void)get_u32(in);  // total size
  in.read(tag, 4);
  if (!in || std::memcmp(tag, "WAVE", 4) != 0) {
    throw util::DataError{"read_wav: not a WAVE stream"};
  }

  std::uint16_t format = 0;
  std::uint16_t channels = 0;
  std::uint16_t bits = 0;
  std::uint32_t rate = 0;
  WavData out;
  bool got_fmt = false;
  bool got_data = false;

  while (in.read(tag, 4)) {
    const std::uint32_t chunk_size = get_u32(in);
    if (std::memcmp(tag, "fmt ", 4) == 0) {
      format = get_u16(in);
      channels = get_u16(in);
      rate = get_u32(in);
      (void)get_u32(in);  // byte rate
      (void)get_u16(in);  // block align
      bits = get_u16(in);
      if (chunk_size > 16) in.ignore(chunk_size - 16);
      got_fmt = true;
    } else if (std::memcmp(tag, "data", 4) == 0) {
      if (!got_fmt) throw util::DataError{"read_wav: data before fmt"};
      if (channels == 0) throw util::DataError{"read_wav: zero channels"};
      const bool pcm16 = format == 1 && bits == 16;
      const bool float32 = format == 3 && bits == 32;
      if (!pcm16 && !float32) {
        throw util::DataError{"read_wav: only PCM16 / float32 supported"};
      }
      const std::uint32_t bytes_per_sample = bits / 8;
      const std::uint32_t frames =
          chunk_size / (bytes_per_sample * channels);
      out.samples.reserve(frames);
      for (std::uint32_t f = 0; f < frames; ++f) {
        double mix = 0.0;
        for (std::uint16_t c = 0; c < channels; ++c) {
          if (pcm16) {
            const auto raw = static_cast<std::int16_t>(get_u16(in));
            mix += static_cast<double>(raw) / 32768.0;
          } else {
            const std::uint32_t raw = get_u32(in);
            float value = 0.0f;
            std::memcpy(&value, &raw, sizeof value);
            mix += static_cast<double>(value);
          }
        }
        out.samples.push_back(mix / channels);
      }
      got_data = true;
      break;
    } else {
      in.ignore(chunk_size + (chunk_size % 2));  // chunks are 2-aligned
      if (!in) break;
    }
  }
  if (!got_data) throw util::DataError{"read_wav: no data chunk"};
  out.sample_rate_hz = static_cast<double>(rate);
  return out;
}

WavData read_wav_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw util::DataError{"read_wav_file: cannot open " + path};
  return read_wav(in);
}

}  // namespace emoleak::audio
