// Emotion taxonomy shared across datasets.
//
// SAVEE and TESS label seven emotions; CREMA-D labels six (no
// surprise). See paper §V-A.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace emoleak::audio {

enum class Emotion : int {
  kAngry = 0,
  kDisgust = 1,
  kFear = 2,
  kHappy = 3,
  kNeutral = 4,
  kSurprise = 5,  // "pleasant surprise" in TESS
  kSad = 6,
};

inline constexpr int kEmotionCount = 7;

[[nodiscard]] std::string to_string(Emotion e);

/// The seven-emotion set used by SAVEE and TESS.
[[nodiscard]] std::vector<Emotion> seven_emotions();

/// The six-emotion set used by CREMA-D (no surprise).
[[nodiscard]] std::vector<Emotion> six_emotions();

/// Display names in the order the paper's Figure 6 lists them.
[[nodiscard]] std::vector<std::string> emotion_names(
    const std::vector<Emotion>& emotions);

}  // namespace emoleak::audio
