#include "audio/prosody.h"

#include "util/error.h"

namespace emoleak::audio {

EmotionProfile emotion_profile(Emotion e) {
  EmotionProfile p;  // defaults are the neutral voice
  switch (e) {
    case Emotion::kAngry:
      p.f0_scale = 1.28;
      p.f0_range_scale = 1.70;
      p.f0_slope = -0.05;
      p.jitter = 0.022;
      p.shimmer = 0.09;
      p.energy_scale = 1.85;
      p.energy_var_scale = 1.6;
      p.rate_scale = 1.18;
      p.attack_scale = 1.9;
      p.tilt_db_per_oct = -8.0;  // tense voice: flatter tilt, bright
      p.noise_level = 0.012;
      break;
    case Emotion::kDisgust:
      p.f0_scale = 0.90;
      p.f0_range_scale = 0.85;
      p.f0_slope = -0.10;
      p.jitter = 0.020;
      p.shimmer = 0.09;
      p.energy_scale = 0.85;
      p.energy_var_scale = 1.15;
      p.rate_scale = 0.78;
      p.attack_scale = 0.8;
      p.tilt_db_per_oct = -13.5;
      p.noise_level = 0.028;  // creaky/lax phonation
      break;
    case Emotion::kFear:
      p.f0_scale = 1.38;
      p.f0_range_scale = 1.25;
      p.f0_slope = 0.05;
      p.jitter = 0.03;
      p.shimmer = 0.08;
      p.tremor_hz = 6.2;     // characteristic voice tremor
      p.tremor_depth = 0.05;
      p.energy_scale = 1.05;
      p.energy_var_scale = 1.4;
      p.rate_scale = 1.28;
      p.attack_scale = 1.3;
      p.tilt_db_per_oct = -10.0;
      p.noise_level = 0.03;
      break;
    case Emotion::kHappy:
      p.f0_scale = 1.22;
      p.f0_range_scale = 1.55;
      p.f0_slope = 0.12;  // lively rising contours
      p.jitter = 0.015;
      p.shimmer = 0.06;
      p.energy_scale = 1.40;
      p.energy_var_scale = 1.3;
      p.rate_scale = 1.10;
      p.attack_scale = 1.25;
      p.tilt_db_per_oct = -10.5;
      p.noise_level = 0.012;
      break;
    case Emotion::kNeutral:
      break;  // all defaults
    case Emotion::kSurprise:
      p.f0_scale = 1.48;
      p.f0_range_scale = 1.95;
      p.f0_slope = 0.30;  // strong terminal rise
      p.jitter = 0.018;
      p.shimmer = 0.06;
      p.energy_scale = 1.25;
      p.energy_var_scale = 1.5;
      p.rate_scale = 1.02;
      p.attack_scale = 1.5;
      p.tilt_db_per_oct = -9.5;
      p.noise_level = 0.014;
      break;
    case Emotion::kSad:
      p.f0_scale = 0.84;
      p.f0_range_scale = 0.55;
      p.f0_slope = -0.12;  // falling, resigned contour
      p.jitter = 0.012;
      p.shimmer = 0.05;
      p.energy_scale = 0.58;
      p.energy_var_scale = 0.7;
      p.rate_scale = 0.78;
      p.attack_scale = 0.6;
      p.tilt_db_per_oct = -15.0;  // lax voice, steep tilt
      p.noise_level = 0.035;      // breathy
      break;
  }
  return p;
}

namespace {

double lerp(double neutral, double full, double t) {
  return neutral + t * (full - neutral);
}

}  // namespace

EmotionProfile scaled_profile(Emotion e, double expressiveness) {
  if (expressiveness < 0.0) {
    throw util::ConfigError{"scaled_profile: expressiveness must be >= 0"};
  }
  const EmotionProfile neutral = emotion_profile(Emotion::kNeutral);
  const EmotionProfile full = emotion_profile(e);
  const double t = expressiveness;
  EmotionProfile p;
  p.f0_scale = lerp(neutral.f0_scale, full.f0_scale, t);
  p.f0_range_scale = lerp(neutral.f0_range_scale, full.f0_range_scale, t);
  p.f0_slope = lerp(neutral.f0_slope, full.f0_slope, t);
  p.jitter = lerp(neutral.jitter, full.jitter, t);
  p.shimmer = lerp(neutral.shimmer, full.shimmer, t);
  p.tremor_hz = full.tremor_hz;  // frequency is intrinsic; depth scales
  p.tremor_depth = lerp(neutral.tremor_depth, full.tremor_depth, t);
  p.energy_scale = lerp(neutral.energy_scale, full.energy_scale, t);
  p.energy_var_scale = lerp(neutral.energy_var_scale, full.energy_var_scale, t);
  p.rate_scale = lerp(neutral.rate_scale, full.rate_scale, t);
  p.attack_scale = lerp(neutral.attack_scale, full.attack_scale, t);
  p.tilt_db_per_oct = lerp(neutral.tilt_db_per_oct, full.tilt_db_per_oct, t);
  p.noise_level = lerp(neutral.noise_level, full.noise_level, t);
  return p;
}

}  // namespace emoleak::audio
