#include "audio/playlist.h"

#include <algorithm>
#include <sstream>

#include "util/error.h"
#include "util/rng.h"
#include "util/table.h"

namespace emoleak::audio {

void PlaylistConfig::validate() const {
  if (gap_s < 0.0) throw util::ConfigError{"PlaylistConfig: negative gap"};
}

Playlist::Playlist(const Corpus& corpus, const PlaylistConfig& config)
    : config_{config} {
  config_.validate();
  rate_ = corpus.spec().synth.sample_rate_hz;

  std::vector<std::size_t> order(corpus.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  util::Rng rng{config_.shuffle_seed};
  rng.shuffle(order);
  if (config_.group_by_emotion) {
    std::stable_sort(order.begin(), order.end(),
                     [&corpus](std::size_t a, std::size_t b) {
                       return static_cast<int>(corpus.entries()[a].emotion) <
                              static_cast<int>(corpus.entries()[b].emotion);
                     });
  }

  double cursor = config_.gap_s;
  for (const std::size_t idx : order) {
    const UtteranceInfo& info = corpus.entries()[idx];
    const Utterance utt = corpus.synthesize(idx);
    const double duration =
        static_cast<double>(utt.samples.size()) / utt.sample_rate_hz;
    PlaylistEntry entry;
    entry.corpus_index = idx;
    entry.emotion = info.emotion;
    entry.speaker_id = info.speaker_id;
    entry.start_s = cursor;
    entry.end_s = cursor + duration;
    entries_.push_back(entry);
    cursor = entry.end_s + config_.gap_s;
  }
  duration_s_ = cursor;

  // Derive the per-emotion blocks from the ordered entries.
  for (const PlaylistEntry& entry : entries_) {
    if (blocks_.empty() || blocks_.back().emotion != entry.emotion) {
      blocks_.push_back(EmotionBlock{entry.emotion, entry.start_s,
                                     entry.end_s, 1});
    } else {
      blocks_.back().end_s = entry.end_s;
      ++blocks_.back().utterance_count;
    }
  }
}

std::vector<double> Playlist::render(const Corpus& corpus) const {
  std::vector<double> out(static_cast<std::size_t>(duration_s_ * rate_), 0.0);
  for (const PlaylistEntry& entry : entries_) {
    const Utterance utt = corpus.synthesize(entry.corpus_index);
    const auto start = static_cast<std::size_t>(entry.start_s * rate_);
    for (std::size_t i = 0;
         i < utt.samples.size() && start + i < out.size(); ++i) {
      out[start + i] += utt.samples[i];
    }
  }
  return out;
}

const EmotionBlock* Playlist::block_at(double time_s) const {
  for (const EmotionBlock& block : blocks_) {
    if (time_s >= block.start_s && time_s < block.end_s) return &block;
  }
  return nullptr;
}

std::string Playlist::timeline() const {
  util::TablePrinter t{{"emotion", "from (s)", "to (s)", "utterances"}};
  for (const EmotionBlock& block : blocks_) {
    t.add_row({to_string(block.emotion), util::fixed(block.start_s, 1),
               util::fixed(block.end_s, 1),
               std::to_string(block.utterance_count)});
  }
  return t.str();
}

}  // namespace emoleak::audio
