// Emotional-speech corpus factories modelled on the paper's datasets.
//
// We cannot ship SAVEE / TESS / CREMA-D audio; instead each corpus is
// regenerated deterministically from a seed with the same population
// statistics (speaker count, utterances per emotion, emotion set,
// gender mix) and a dataset-specific expressiveness / inter-speaker
// variability that reproduces the relative difficulty the paper
// observes (TESS >> SAVEE ~ CREMA-D). See DESIGN.md §2.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "audio/utterance.h"

namespace emoleak::audio {

struct DatasetSpec {
  std::string name;
  std::vector<Emotion> emotions;
  int speaker_count = 1;
  /// Utterances per (speaker, emotion).
  int utterances_per_speaker_emotion = 1;
  double male_fraction = 0.5;
  /// How exaggerated the acted portrayals are (scales prosody deviation
  /// from neutral).
  double expressiveness = 1.0;
  /// Within-dataset inter-speaker variability (see SpeakerVoice).
  double speaker_variability = 0.5;
  /// Per-utterance expressiveness spread (acting inconsistency).
  double expressiveness_jitter = 0.10;
  SynthConfig synth;

  void validate() const;

  [[nodiscard]] std::size_t total_utterances() const noexcept {
    return static_cast<std::size_t>(speaker_count) *
           static_cast<std::size_t>(utterances_per_speaker_emotion) *
           emotions.size();
  }
};

/// SAVEE: 480 utterances, 4 native English male speakers, 7 emotions
/// (120 per speaker). Paper §V-A.
[[nodiscard]] DatasetSpec savee_spec();

/// TESS: 2800 utterances, 2 female actors, 7 emotions ("Say the word
/// ..." carrier phrases; highly expressive, consistent recordings).
[[nodiscard]] DatasetSpec tess_spec();

/// CREMA-D: 7442 clips from 91 diverse actors, 6 emotions. We round to
/// 91 actors x 6 emotions x 13 utterances ~ 7098 clips.
[[nodiscard]] DatasetSpec cremad_spec();

/// Scales a spec's per-speaker utterance count by `fraction` (at least
/// one per speaker-emotion); used to keep benchmark wall-clock bounded
/// while preserving the dataset's structure.
[[nodiscard]] DatasetSpec scaled_spec(DatasetSpec spec, double fraction);

/// Metadata for one corpus entry; audio is synthesized on demand.
struct UtteranceInfo {
  std::size_t index = 0;
  int speaker_id = 0;
  Emotion emotion = Emotion::kNeutral;
};

/// A deterministic virtual corpus: stores only speakers + metadata and
/// synthesizes any utterance's audio on demand from (seed, index), so
/// even CREMA-D-sized corpora need no bulk storage.
class Corpus {
 public:
  Corpus(DatasetSpec spec, std::uint64_t seed);

  [[nodiscard]] const DatasetSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const std::vector<UtteranceInfo>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] const std::vector<SpeakerVoice>& speakers() const noexcept {
    return speakers_;
  }

  /// Synthesizes utterance `index`. Deterministic: the same (spec, seed,
  /// index) always yields identical samples.
  [[nodiscard]] Utterance synthesize(std::size_t index) const;

  /// Class index of an emotion within this corpus's emotion list.
  [[nodiscard]] int emotion_class(Emotion e) const;

  [[nodiscard]] std::vector<std::string> class_names() const;

 private:
  DatasetSpec spec_;
  std::uint64_t seed_;
  std::vector<SpeakerVoice> speakers_;
  std::vector<UtteranceInfo> entries_;
};

}  // namespace emoleak::audio
