// Parametric emotional-speech synthesis (source-filter model).
//
// Each utterance is a sequence of syllables. A syllable's voiced source
// is a harmonic series at a time-varying fundamental (speaker baseline
// x emotion profile, with jitter, shimmer and tremor perturbations and
// a spectral tilt), shaped by an attack/decay amplitude envelope,
// passed through a formant resonator, and mixed with aspiration noise.
// The emotional carriers (F0 statistics, energy dynamics, rate) all lie
// below the accelerometer Nyquist, which is exactly why the EmoLeak
// side channel works (paper §III-B1).
#pragma once

#include <vector>

#include "audio/prosody.h"
#include "audio/voice.h"
#include "util/rng.h"

namespace emoleak::audio {

struct SynthConfig {
  double sample_rate_hz = 2000.0;  ///< synthesis rate (well above accel band)
  double target_duration_s = 1.6;  ///< nominal utterance length
  double duration_jitter = 0.15;   ///< relative duration variation
  int max_harmonics = 12;          ///< harmonic series length cap

  void validate() const;
};

/// A synthesized utterance plus the ground-truth parameters that
/// produced it (useful for tests and analysis).
struct Utterance {
  std::vector<double> samples;
  double sample_rate_hz = 0.0;
  Emotion emotion = Emotion::kNeutral;
  int speaker_id = 0;
  double mean_f0_hz = 0.0;   ///< realized mean F0 over voiced samples
  double mean_energy = 0.0;  ///< realized RMS over voiced samples
};

/// Synthesizes one utterance for (voice, emotion profile). Deterministic
/// given the RNG state.
[[nodiscard]] Utterance synthesize_utterance(const SpeakerVoice& voice,
                                             const EmotionProfile& profile,
                                             const SynthConfig& config,
                                             util::Rng& rng);

}  // namespace emoleak::audio
