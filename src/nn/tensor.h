// Minimal dense tensor for the from-scratch CNN stack.
//
// Row-major, float storage, NHWC layout for images. Only what the
// EmoLeak classifiers need: shape bookkeeping, element access, and a
// few arithmetic helpers. Gradient correctness of everything built on
// top is verified by finite-difference tests.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace emoleak::nn {

/// Process-wide count of tensor storage growths (heap allocations for
/// tensor data). Steady-state hot loops reuse capacity via resize() and
/// copy-assignment, so the counter stabilizing after warm-up is the
/// zero-allocation contract the layer tests assert.
[[nodiscard]] std::size_t tensor_alloc_count() noexcept;

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::vector<std::size_t> shape, std::vector<float> data);
  Tensor(const Tensor& other);
  Tensor(Tensor&& other) noexcept = default;
  Tensor& operator=(const Tensor& other);
  Tensor& operator=(Tensor&& other) noexcept = default;

  [[nodiscard]] const std::vector<std::size_t>& shape() const noexcept {
    return shape_;
  }
  [[nodiscard]] std::size_t rank() const noexcept { return shape_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] std::size_t dim(std::size_t axis) const;

  [[nodiscard]] float* data() noexcept { return data_.data(); }
  [[nodiscard]] const float* data() const noexcept { return data_.data(); }
  [[nodiscard]] std::vector<float>& storage() noexcept { return data_; }
  [[nodiscard]] const std::vector<float>& storage() const noexcept {
    return data_;
  }

  [[nodiscard]] float& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] float operator[](std::size_t i) const { return data_[i]; }

  /// 4-D accessor for NHWC tensors (bounds unchecked in release).
  [[nodiscard]] float& at4(std::size_t n, std::size_t h, std::size_t w,
                           std::size_t c) noexcept {
    return data_[((n * shape_[1] + h) * shape_[2] + w) * shape_[3] + c];
  }
  [[nodiscard]] const float& at4(std::size_t n, std::size_t h, std::size_t w,
                                 std::size_t c) const noexcept {
    return data_[((n * shape_[1] + h) * shape_[2] + w) * shape_[3] + c];
  }

  /// 2-D accessor for (N, D) tensors.
  [[nodiscard]] float& at2(std::size_t n, std::size_t d) noexcept {
    return data_[n * shape_[1] + d];
  }
  [[nodiscard]] const float& at2(std::size_t n, std::size_t d) const noexcept {
    return data_[n * shape_[1] + d];
  }

  void fill(float value) noexcept;

  /// Reshapes in place, reusing existing capacity when possible (no
  /// heap traffic once a layer's buffers are warm). When the element
  /// count is unchanged this is a pure reshape (data preserved);
  /// otherwise contents are unspecified — callers overwrite or fill().
  void resize(std::span<const std::size_t> dims);
  void resize(std::initializer_list<std::size_t> dims) {
    resize(std::span<const std::size_t>{dims.begin(), dims.size()});
  }

  /// Reinterprets the tensor with a new shape of equal element count.
  [[nodiscard]] Tensor reshaped(std::vector<std::size_t> new_shape) const;

  /// True if shapes match exactly.
  [[nodiscard]] bool same_shape(const Tensor& other) const noexcept {
    return shape_ == other.shape_;
  }

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

[[nodiscard]] std::size_t shape_size(const std::vector<std::size_t>& shape) noexcept;

}  // namespace emoleak::nn
