#include "nn/tensor.h"

#include <algorithm>
#include <atomic>

#include "obs/metrics.h"
#include "util/error.h"

namespace emoleak::nn {

namespace {
std::atomic<std::size_t> g_tensor_allocs{0};

void count_alloc(std::size_t elements) noexcept {
  if (elements > 0) {
    g_tensor_allocs.fetch_add(1, std::memory_order_relaxed);
    // Mirrored into the process-wide metrics registry so the layer
    // workspace's zero-allocation contract is monitorable alongside
    // workspace.grows (see tests: steady-state drains keep both flat).
    static obs::Counter& allocs =
        obs::Registry::instance().counter("nn.tensor_allocs");
    allocs.add(1);
  }
}
}  // namespace

std::size_t tensor_alloc_count() noexcept {
  return g_tensor_allocs.load(std::memory_order_relaxed);
}

std::size_t shape_size(const std::vector<std::size_t>& shape) noexcept {
  std::size_t n = 1;
  for (const std::size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_{std::move(shape)}, data_(shape_size(shape_), 0.0f) {
  count_alloc(data_.size());
}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<float> data)
    : shape_{std::move(shape)}, data_{std::move(data)} {
  if (data_.size() != shape_size(shape_)) {
    throw util::DataError{"Tensor: data size does not match shape"};
  }
  count_alloc(data_.size());
}

Tensor::Tensor(const Tensor& other)
    : shape_{other.shape_}, data_{other.data_} {
  count_alloc(data_.size());
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  if (data_.capacity() < other.data_.size()) count_alloc(other.data_.size());
  // assign() reuses existing capacity; plain vector copy-assignment is
  // allowed to reallocate even when capacity suffices.
  shape_.assign(other.shape_.begin(), other.shape_.end());
  data_.assign(other.data_.begin(), other.data_.end());
  return *this;
}

void Tensor::resize(std::span<const std::size_t> dims) {
  std::size_t n = dims.empty() ? 0 : 1;
  for (const std::size_t d : dims) n *= d;
  if (data_.capacity() < n) count_alloc(n);
  shape_.assign(dims.begin(), dims.end());
  data_.resize(n);
}

std::size_t Tensor::dim(std::size_t axis) const {
  if (axis >= shape_.size()) throw util::DataError{"Tensor::dim: axis out of range"};
  return shape_[axis];
}

void Tensor::fill(float value) noexcept {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor Tensor::reshaped(std::vector<std::size_t> new_shape) const {
  if (shape_size(new_shape) != data_.size()) {
    throw util::DataError{"Tensor::reshaped: element count mismatch"};
  }
  return Tensor{std::move(new_shape), data_};
}

}  // namespace emoleak::nn
