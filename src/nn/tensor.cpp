#include "nn/tensor.h"

#include <algorithm>

#include "util/error.h"

namespace emoleak::nn {

std::size_t shape_size(const std::vector<std::size_t>& shape) noexcept {
  std::size_t n = 1;
  for (const std::size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_{std::move(shape)}, data_(shape_size(shape_), 0.0f) {}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<float> data)
    : shape_{std::move(shape)}, data_{std::move(data)} {
  if (data_.size() != shape_size(shape_)) {
    throw util::DataError{"Tensor: data size does not match shape"};
  }
}

std::size_t Tensor::dim(std::size_t axis) const {
  if (axis >= shape_.size()) throw util::DataError{"Tensor::dim: axis out of range"};
  return shape_[axis];
}

void Tensor::fill(float value) noexcept {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor Tensor::reshaped(std::vector<std::size_t> new_shape) const {
  if (shape_size(new_shape) != data_.size()) {
    throw util::DataError{"Tensor::reshaped: element count mismatch"};
  }
  return Tensor{std::move(new_shape), data_};
}

}  // namespace emoleak::nn
