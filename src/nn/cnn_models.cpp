#include "nn/cnn_models.h"

#include <algorithm>

#include "util/error.h"

namespace emoleak::nn {

CnnConfig CnnConfig::paper_exact() {
  CnnConfig c;
  c.spec_conv1 = 128;
  c.spec_conv2 = 128;
  c.spec_conv3 = 64;
  c.spec_dense = 32;
  c.tf_conv1 = 256;
  c.tf_conv2 = 256;
  c.tf_conv3 = 128;
  c.tf_conv4 = 64;
  c.tf_conv5 = 64;
  return c;
}

CnnConfig CnnConfig::fast() { return CnnConfig{}; }

Sequential build_spectrogram_cnn(std::size_t height, std::size_t width,
                                 int class_count, const CnnConfig& config) {
  if (class_count < 2) throw util::ConfigError{"spectrogram_cnn: classes < 2"};
  Sequential model;
  std::uint64_t seed = config.seed;

  // Conv block 1: the paper's first layer uses a 1x1 kernel.
  model.add(std::make_unique<Conv2D>(1, config.spec_conv1, 1, 1, true, seed++));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<Dropout>(0.2, seed++));
  model.add(std::make_unique<MaxPool2D>(2, 2));
  // Conv block 2.
  model.add(std::make_unique<Conv2D>(config.spec_conv1, config.spec_conv2, 3, 3,
                                     true, seed++));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<Dropout>(0.2, seed++));
  model.add(std::make_unique<MaxPool2D>(2, 2));
  // Conv block 3.
  model.add(std::make_unique<Conv2D>(config.spec_conv2, config.spec_conv3, 3, 3,
                                     true, seed++));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<Dropout>(0.2, seed++));
  model.add(std::make_unique<MaxPool2D>(2, 2));

  model.add(std::make_unique<Flatten>());
  const std::size_t flat = (height / 8) * (width / 8) * config.spec_conv3;
  model.add(std::make_unique<Dense>(flat, config.spec_dense, seed++));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<Dense>(config.spec_dense, config.spec_dense, seed++));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<Dropout>(0.25, seed++));
  model.add(std::make_unique<Dense>(config.spec_dense,
                                    static_cast<std::size_t>(class_count),
                                    seed++));
  return model;
}

Sequential build_timefreq_cnn(std::size_t feature_count, int class_count,
                              const CnnConfig& config) {
  if (class_count < 2) throw util::ConfigError{"timefreq_cnn: classes < 2"};
  if (feature_count < 16) {
    throw util::ConfigError{"timefreq_cnn: needs >= 16 features"};
  }
  Sequential model;
  std::uint64_t seed = config.seed + 1000;

  // Five 1-D convolutions expressed as (1 x 3) Conv2D on (N,1,D,C).
  model.add(std::make_unique<Conv2D>(1, config.tf_conv1, 1, 3, true, seed++));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<Conv2D>(config.tf_conv1, config.tf_conv2, 1, 3,
                                     true, seed++));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<Dropout>(0.25, seed++));
  model.add(std::make_unique<MaxPool2D>(1, 2));

  model.add(std::make_unique<Conv2D>(config.tf_conv2, config.tf_conv3, 1, 3,
                                     true, seed++));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<BatchNorm>(config.tf_conv3));
  model.add(std::make_unique<Dropout>(0.25, seed++));
  model.add(std::make_unique<MaxPool2D>(1, 8));

  model.add(std::make_unique<Conv2D>(config.tf_conv3, config.tf_conv4, 1, 3,
                                     true, seed++));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<Conv2D>(config.tf_conv4, config.tf_conv5, 1, 3,
                                     true, seed++));
  model.add(std::make_unique<ReLU>());

  model.add(std::make_unique<Flatten>());
  const std::size_t pooled = (feature_count / 2) / 8;
  const std::size_t flat = std::max<std::size_t>(pooled, 1) * config.tf_conv5;
  model.add(std::make_unique<Dense>(flat, static_cast<std::size_t>(class_count),
                                    seed++));
  return model;
}

}  // namespace emoleak::nn
