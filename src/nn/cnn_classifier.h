// Adapts the paper's CNN architectures to the ml::Classifier interface
// so they can be registered in the serve ModelRegistry and driven by
// the streaming attack like any classical head. Inference is batched:
// predict_proba_batch stages N rows into one tensor and runs a single
// forward, which the nn layer contract guarantees is bitwise identical
// per row to N separate batch-1 forwards (DESIGN.md §13).
#pragma once

#include <mutex>

#include "ml/classifier.h"
#include "nn/cnn_models.h"
#include "util/parallel.h"

namespace emoleak::nn {

class CnnClassifier final : public ml::Classifier {
 public:
  enum class Arch {
    kTimefreq,     ///< (N, 1, D, 1) z-scored feature vectors
    kSpectrogram,  ///< (N, H, W, 1) spectrogram images
  };

  /// `dim` is the feature count (timefreq) or height*width of a square
  /// image (spectrogram). The network is built lazily at fit() when
  /// the class count is known.
  CnnClassifier(Arch arch, std::size_t dim, CnnConfig config = CnnConfig::fast(),
                TrainConfig train = {});

  void fit(const ml::Dataset& data) override;
  [[nodiscard]] int predict(std::span<const double> row) const override;
  [[nodiscard]] std::vector<double> predict_proba(
      std::span<const double> row) const override;
  [[nodiscard]] std::vector<double> predict_proba_batch(
      std::span<const double> rows, std::size_t dim,
      std::size_t count) const override;
  [[nodiscard]] std::unique_ptr<ml::Classifier> clone() const override;
  [[nodiscard]] std::string name() const override {
    return arch_ == Arch::kTimefreq ? "CnnTimefreq" : "CnnSpectrogram";
  }

  /// Thread fan-out for multi-row predict_proba_batch calls (defaults
  /// to the hardware count; single-row predicts and training always
  /// run serial). Bit-identical results at any setting — see
  /// Layer::set_parallelism.
  void set_parallelism(util::Parallelism par);

 private:
  /// Stages `count` rows into input_ (scaling timefreq rows), runs one
  /// forward, softmaxes each logit row in double. Caller holds mu_.
  [[nodiscard]] std::vector<double> forward_batch(std::span<const double> rows,
                                                  std::size_t dim,
                                                  std::size_t count) const;

  Arch arch_;
  std::size_t dim_ = 0;       ///< flattened input width
  std::size_t side_ = 0;      ///< image side for kSpectrogram
  int classes_ = 0;
  CnnConfig config_{};
  TrainConfig train_{};
  util::Parallelism par_{};  ///< batched-inference fan-out (0 = hardware)
  ml::StandardScaler scaler_;  ///< timefreq z-scoring (paper §IV-D2)
  // Sequential reuses per-layer buffers across forwards, so inference
  // mutates state; the registry shares one const model across shards.
  mutable Sequential net_;
  mutable Tensor input_;
  mutable std::mutex mu_;
};

}  // namespace emoleak::nn
