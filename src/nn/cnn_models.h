// The paper's two CNN architectures.
//
// Spectrogram classifier (§IV-C2): three conv blocks (128/128/64
// filters, first kernel 1x1, dropout 0.2, max-pool 2x2 each) then two
// 32-unit dense layers (dropout 0.25 on the second) and a softmax
// output, on 32x32 single-channel spectrogram images.
//
// Time-frequency classifier (§IV-D2): five conv layers
// (256/256/128/64/64, "same" zero padding) with dropout 0.25 +
// max-pool 2 after the second, batch-norm after the third, dropout
// 0.25 + max-pool 8 after it, then flatten and a softmax dense layer,
// on the z-scored 24-dimensional feature vector treated as a 1-D
// sequence.
//
// Filter widths are configurable: `paper_exact()` uses the published
// widths; `fast()` (the benchmark default) scales them down ~4x, which
// leaves accuracy within noise on these inputs but keeps the full
// harness within minutes of wall-clock (DESIGN.md §5).
#pragma once

#include <cstdint>

#include "nn/model.h"

namespace emoleak::nn {

struct CnnConfig {
  // Spectrogram model widths.
  std::size_t spec_conv1 = 32;
  std::size_t spec_conv2 = 32;
  std::size_t spec_conv3 = 16;
  std::size_t spec_dense = 32;
  // Time-frequency model widths.
  std::size_t tf_conv1 = 64;
  std::size_t tf_conv2 = 64;
  std::size_t tf_conv3 = 32;
  std::size_t tf_conv4 = 16;
  std::size_t tf_conv5 = 16;
  std::uint64_t seed = 29;

  /// The published architecture (paper §IV-C2 / §IV-D2).
  [[nodiscard]] static CnnConfig paper_exact();
  /// Benchmark-default reduced widths.
  [[nodiscard]] static CnnConfig fast();
};

/// Builds the spectrogram image classifier for `image` (HxW) inputs
/// with one channel; input tensors are (N, H, W, 1).
[[nodiscard]] Sequential build_spectrogram_cnn(std::size_t height,
                                               std::size_t width,
                                               int class_count,
                                               const CnnConfig& config);

/// Builds the time-frequency feature classifier; input tensors are
/// (N, 1, D, 1) where D is the feature count (24).
[[nodiscard]] Sequential build_timefreq_cnn(std::size_t feature_count,
                                            int class_count,
                                            const CnnConfig& config);

}  // namespace emoleak::nn
