#include "nn/model.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.h"
#include "util/rng.h"

namespace emoleak::nn {

double softmax_cross_entropy(const Tensor& logits, const std::vector<int>& labels,
                             Tensor& grad) {
  if (logits.rank() != 2) {
    throw util::DataError{"softmax_cross_entropy: logits must be (N, C)"};
  }
  const std::size_t n = logits.dim(0);
  const std::size_t c = logits.dim(1);
  if (labels.size() != n) {
    throw util::DataError{"softmax_cross_entropy: label count mismatch"};
  }
  grad.resize(logits.shape());
  double loss = 0.0;
  for (std::size_t b = 0; b < n; ++b) {
    const float* row = &logits.at2(b, 0);
    float max_logit = row[0];
    for (std::size_t j = 1; j < c; ++j) max_logit = std::max(max_logit, row[j]);
    double sum = 0.0;
    for (std::size_t j = 0; j < c; ++j) {
      sum += std::exp(static_cast<double>(row[j] - max_logit));
    }
    const auto target = static_cast<std::size_t>(labels[b]);
    if (target >= c) throw util::DataError{"softmax_cross_entropy: bad label"};
    const double log_sum = std::log(sum);
    loss -= static_cast<double>(row[target] - max_logit) - log_sum;
    for (std::size_t j = 0; j < c; ++j) {
      const double p = std::exp(static_cast<double>(row[j] - max_logit)) / sum;
      grad.at2(b, j) = static_cast<float>(
          (p - (j == target ? 1.0 : 0.0)) / static_cast<double>(n));
    }
  }
  return loss / static_cast<double>(n);
}

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& x, bool training) {
  // Layers hand back references to their own reused buffers, so the
  // chain is pointer-passing; only the final result is copied out.
  return forward_ref(x, training);
}

const Tensor& Sequential::forward_ref(const Tensor& x, bool training) {
  const Tensor* current = &x;
  for (const std::unique_ptr<Layer>& layer : layers_) {
    current = &layer->forward(*current, training);
  }
  return *current;
}

void Sequential::set_parallelism(const util::Parallelism& par) {
  for (const std::unique_ptr<Layer>& layer : layers_) {
    layer->set_parallelism(par);
  }
}

Tensor Sequential::backward(const Tensor& grad) {
  const Tensor* current = &grad;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    current = &(*it)->backward(*current);
  }
  return *current;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> out;
  for (const std::unique_ptr<Layer>& layer : layers_) {
    for (Parameter* p : layer->parameters()) out.push_back(p);
  }
  return out;
}

void Sequential::gather(const Tensor& x, std::span<const std::size_t> indices,
                        Tensor& out) {
  const std::size_t row_size = x.size() / x.dim(0);
  std::vector<std::size_t> shape = x.shape();
  shape[0] = indices.size();
  out.resize(shape);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const float* src = x.data() + indices[i] * row_size;
    std::copy(src, src + row_size, out.data() + i * row_size);
  }
}

History Sequential::train(const Tensor& x, const std::vector<int>& labels,
                          int class_count, const TrainConfig& config) {
  if (x.dim(0) != labels.size()) {
    throw util::DataError{"Sequential::train: size mismatch"};
  }
  if (config.epochs < 1 || config.batch_size < 1) {
    throw util::ConfigError{"Sequential::train: bad epochs/batch size"};
  }
  for (const int y : labels) {
    if (y < 0 || y >= class_count) {
      throw util::DataError{"Sequential::train: label out of range"};
    }
  }

  util::Rng rng{config.seed};
  const std::size_t n = x.dim(0);

  // Stratified validation carve-out.
  std::vector<std::vector<std::size_t>> by_class(
      static_cast<std::size_t>(class_count));
  for (std::size_t i = 0; i < n; ++i) {
    by_class[static_cast<std::size_t>(labels[i])].push_back(i);
  }
  std::vector<std::size_t> train_idx, val_idx;
  for (auto& group : by_class) {
    rng.shuffle(group);
    const auto val_n = static_cast<std::size_t>(
        config.validation_fraction * static_cast<double>(group.size()));
    for (std::size_t i = 0; i < group.size(); ++i) {
      (i < val_n ? val_idx : train_idx).push_back(group[i]);
    }
  }

  Tensor val_x;
  std::vector<int> val_y;
  if (!val_idx.empty()) {
    gather(x, val_idx, val_x);
    val_y.reserve(val_idx.size());
    for (const std::size_t i : val_idx) val_y.push_back(labels[i]);
  }

  Adam optimizer{parameters(), config.learning_rate};
  History history;
  Tensor grad;
  Tensor bx;  // batch buffers live across iterations to reuse capacity
  std::vector<int> by;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.shuffle(train_idx);
    double epoch_loss = 0.0;
    std::size_t correct = 0;
    std::size_t seen = 0;
    for (std::size_t start = 0; start < train_idx.size();
         start += config.batch_size) {
      const std::size_t end = std::min(start + config.batch_size, train_idx.size());
      const std::span<const std::size_t> batch_idx{train_idx.data() + start,
                                                   end - start};
      gather(x, batch_idx, bx);
      by.clear();
      by.reserve(batch_idx.size());
      for (const std::size_t i : batch_idx) by.push_back(labels[i]);

      const Tensor logits = forward(bx, /*training=*/true);
      const double loss = softmax_cross_entropy(logits, by, grad);
      if (!std::isfinite(loss)) {
        throw util::NumericalError{"Sequential::train: non-finite loss"};
      }
      backward(grad);
      optimizer.step();

      epoch_loss += loss * static_cast<double>(by.size());
      for (std::size_t i = 0; i < by.size(); ++i) {
        const float* row = &logits.at2(i, 0);
        const std::size_t c = logits.dim(1);
        const auto pred = static_cast<int>(
            std::max_element(row, row + c) - row);
        if (pred == by[i]) ++correct;
      }
      seen += by.size();
    }
    history.train_loss.push_back(epoch_loss / static_cast<double>(seen));
    history.train_accuracy.push_back(static_cast<double>(correct) /
                                     static_cast<double>(seen));
    if (!val_idx.empty()) {
      const auto [vloss, vacc] = evaluate(val_x, val_y);
      history.val_loss.push_back(vloss);
      history.val_accuracy.push_back(vacc);
    }
  }
  return history;
}

std::vector<int> Sequential::predict(const Tensor& x) {
  const Tensor logits = forward(x, /*training=*/false);
  const std::size_t n = logits.dim(0);
  const std::size_t c = logits.dim(1);
  std::vector<int> out(n);
  for (std::size_t b = 0; b < n; ++b) {
    const float* row = &logits.at2(b, 0);
    out[b] = static_cast<int>(std::max_element(row, row + c) - row);
  }
  return out;
}

std::pair<double, double> Sequential::evaluate(const Tensor& x,
                                               const std::vector<int>& labels) {
  const Tensor logits = forward(x, /*training=*/false);
  Tensor grad;
  const double loss = softmax_cross_entropy(logits, labels, grad);
  const std::size_t n = logits.dim(0);
  const std::size_t c = logits.dim(1);
  std::size_t correct = 0;
  for (std::size_t b = 0; b < n; ++b) {
    const float* row = &logits.at2(b, 0);
    const auto pred = static_cast<int>(std::max_element(row, row + c) - row);
    if (pred == labels[b]) ++correct;
  }
  return {loss, static_cast<double>(correct) / static_cast<double>(n)};
}

Sgd::Sgd(std::vector<Parameter*> params, double learning_rate, double momentum,
         long total_steps)
    : params_{std::move(params)},
      lr_{learning_rate},
      momentum_{momentum},
      total_steps_{total_steps} {
  velocity_.reserve(params_.size());
  for (const Parameter* p : params_) {
    velocity_.emplace_back(p->value.size(), 0.0f);
  }
}

double Sgd::current_learning_rate() const noexcept {
  if (total_steps_ <= 0) return lr_;
  const double progress =
      std::min(1.0, static_cast<double>(t_) / static_cast<double>(total_steps_));
  return 0.5 * lr_ * (1.0 + std::cos(3.14159265358979323846 * progress));
}

void Sgd::step() {
  const double lr = current_learning_rate();
  ++t_;
  for (std::size_t p = 0; p < params_.size(); ++p) {
    Parameter& param = *params_[p];
    for (std::size_t i = 0; i < param.value.size(); ++i) {
      velocity_[p][i] = static_cast<float>(momentum_ * velocity_[p][i] -
                                           lr * param.grad[i]);
      param.value[i] += velocity_[p][i];
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, double learning_rate)
    : params_{std::move(params)}, lr_{learning_rate} {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Parameter* p : params_) {
    m_.emplace_back(p->value.size(), 0.0f);
    v_.emplace_back(p->value.size(), 0.0f);
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, t_);
  const double bc2 = 1.0 - std::pow(beta2_, t_);
  for (std::size_t p = 0; p < params_.size(); ++p) {
    Parameter& param = *params_[p];
    for (std::size_t i = 0; i < param.value.size(); ++i) {
      const double g = param.grad[i];
      m_[p][i] = static_cast<float>(beta1_ * m_[p][i] + (1.0 - beta1_) * g);
      v_[p][i] = static_cast<float>(beta2_ * v_[p][i] + (1.0 - beta2_) * g * g);
      const double mh = m_[p][i] / bc1;
      const double vh = v_[p][i] / bc2;
      param.value[i] -= static_cast<float>(lr_ * mh / (std::sqrt(vh) + eps_));
    }
  }
}

}  // namespace emoleak::nn
