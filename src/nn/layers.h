// Neural-network layers (forward + backward).
//
// Implements exactly what the paper's two Keras models need (§IV-C2,
// §IV-D2): Conv2D with zero padding, ReLU, MaxPool2D, Dropout,
// BatchNorm, Flatten and Dense. All layers operate on batched NHWC
// tensors; (N, D) tensors are treated by Dense/Dropout/BatchNorm as
// 2-D. Backward passes are verified against finite differences in the
// test suite.
//
// Memory discipline: forward/backward return references to buffers the
// layer owns and reuses (resize() keeps capacity), and Conv2D draws its
// im2col scratch from a private util::Workspace — after the first pass
// at a given shape, the hot loop performs zero heap allocations
// (asserted via tensor_alloc_count() in the layer tests). The returned
// reference stays valid until the layer's next forward/backward call.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/workspace.h"

namespace emoleak::nn {

/// A learnable parameter with its gradient accumulator.
struct Parameter {
  Tensor value;
  Tensor grad;
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass. `training` enables dropout / batch-stat collection.
  /// Returns a reference to layer-owned storage, valid until the next
  /// call on this layer (identity layers may return `x` itself).
  [[nodiscard]] virtual const Tensor& forward(const Tensor& x,
                                              bool training) = 0;

  /// Backward pass for the most recent forward; returns dLoss/dInput
  /// (same lifetime rules as forward()).
  [[nodiscard]] virtual const Tensor& backward(const Tensor& grad_out) = 0;

  /// Learnable parameters (empty for stateless layers).
  [[nodiscard]] virtual std::vector<Parameter*> parameters() { return {}; }

  /// Opts the layer into data-parallel *inference*: layers whose batch
  /// rows are independent (Conv2D) may fan a multi-image forward out
  /// over the shared pool. Bit-exactness is unconditional — each output
  /// element is produced by exactly one task with the same k-ascending
  /// accumulation — so this only changes speed, never results.
  /// Training passes and single-image batches always run serial.
  virtual void set_parallelism(const util::Parallelism& /*par*/) {}

  [[nodiscard]] virtual std::string name() const = 0;

 protected:
  Layer() = default;
};

/// 2-D convolution, NHWC, stride 1, 'same' zero padding (Keras
/// padding="same", which the paper's time-frequency CNN uses) or
/// 'valid'. Lowered to im2col + blocked GEMM (see nn/gemm.h); the
/// naive direct loop survives in gemm.h as the parity-test reference.
class Conv2D final : public Layer {
 public:
  Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel_h,
         std::size_t kernel_w, bool same_padding, std::uint64_t seed);

  [[nodiscard]] const Tensor& forward(const Tensor& x, bool training) override;
  [[nodiscard]] const Tensor& backward(const Tensor& grad_out) override;
  [[nodiscard]] std::vector<Parameter*> parameters() override;
  void set_parallelism(const util::Parallelism& par) override { par_ = par; }
  [[nodiscard]] std::string name() const override { return "Conv2D"; }

  /// The layer's scratch arena (exposed so tests can assert that the
  /// steady state performs no workspace growth).
  [[nodiscard]] const util::Workspace& workspace() const noexcept {
    return ws_;
  }

 private:
  std::size_t in_c_, out_c_, kh_, kw_;
  bool same_;
  util::Parallelism par_ = util::Parallelism::serial_only();
  Parameter weight_;  ///< [KH, KW, Cin, Cout]
  Parameter bias_;    ///< [Cout]
  Tensor input_;      ///< cached for backward
  Tensor out_, gin_;
  util::Workspace ws_;  ///< im2col patch matrices
};

class ReLU final : public Layer {
 public:
  [[nodiscard]] const Tensor& forward(const Tensor& x, bool training) override;
  [[nodiscard]] const Tensor& backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "ReLU"; }

 private:
  Tensor out_, gin_;  ///< out_ doubles as the mask: gin = g * (out > 0)
};

/// Max pooling over (pool x pool) windows with matching stride
/// ('valid': trailing rows/cols that do not fill a window are dropped,
/// Keras default).
class MaxPool2D final : public Layer {
 public:
  explicit MaxPool2D(std::size_t pool_h, std::size_t pool_w);

  [[nodiscard]] const Tensor& forward(const Tensor& x, bool training) override;
  [[nodiscard]] const Tensor& backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "MaxPool2D"; }

 private:
  std::size_t ph_, pw_;
  Tensor in_;  ///< retained input; backward re-derives the argmax from it
  Tensor out_, gin_;
};

/// Inverted dropout: scales kept activations by 1/(1-rate) in training,
/// identity at inference (Keras semantics).
class Dropout final : public Layer {
 public:
  Dropout(double rate, std::uint64_t seed);

  [[nodiscard]] const Tensor& forward(const Tensor& x, bool training) override;
  [[nodiscard]] const Tensor& backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "Dropout"; }

 private:
  double rate_;
  util::Rng rng_;
  Tensor mask_;  ///< empty (size 0) when the last forward was identity
  Tensor out_, gin_;
};

/// Batch normalization over all axes except the last (channel) axis,
/// with learnable scale/shift and running statistics for inference.
class BatchNorm final : public Layer {
 public:
  BatchNorm(std::size_t channels, double momentum = 0.9, double epsilon = 1e-5);

  [[nodiscard]] const Tensor& forward(const Tensor& x, bool training) override;
  [[nodiscard]] const Tensor& backward(const Tensor& grad_out) override;
  [[nodiscard]] std::vector<Parameter*> parameters() override;
  [[nodiscard]] std::string name() const override { return "BatchNorm"; }

 private:
  std::size_t channels_;
  double momentum_, eps_;
  Parameter gamma_, beta_;
  std::vector<float> running_mean_, running_var_;
  // Per-call scratch lives in the layer so forward() allocates nothing
  // once warm (mean_/var_ used to be stack vectors rebuilt every call).
  std::vector<float> mean_, var_;
  std::vector<float> sum_g_, sum_gx_;
  // Backward caches:
  Tensor x_hat_;
  std::vector<float> batch_mean_, batch_inv_std_;
  Tensor out_, gin_;
};

/// Flattens (N, ...) to (N, D).
class Flatten final : public Layer {
 public:
  [[nodiscard]] const Tensor& forward(const Tensor& x, bool training) override;
  [[nodiscard]] const Tensor& backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "Flatten"; }

 private:
  std::vector<std::size_t> in_shape_;
  Tensor out_, gin_;
};

/// Fully connected layer on (N, D) tensors, lowered to GEMM.
class Dense final : public Layer {
 public:
  Dense(std::size_t in_dim, std::size_t out_dim, std::uint64_t seed);

  [[nodiscard]] const Tensor& forward(const Tensor& x, bool training) override;
  [[nodiscard]] const Tensor& backward(const Tensor& grad_out) override;
  [[nodiscard]] std::vector<Parameter*> parameters() override;
  [[nodiscard]] std::string name() const override { return "Dense"; }

 private:
  std::size_t in_d_, out_d_;
  Parameter weight_;  ///< [D_in, D_out]
  Parameter bias_;    ///< [D_out]
  Tensor input_;
  Tensor out_, gin_;
};

}  // namespace emoleak::nn
