// Dense float kernels backing the CNN layers: a cache-blocked GEMM
// (three storage variants), im2col/col2im lowering for convolution, and
// a retained naive convolution used as the reference in parity tests.
//
// Determinism contract: every kernel sums the contraction axis in
// strictly ascending order for each output element, independent of the
// blocking parameters. Results are therefore bit-identical across runs
// and thread counts: when a layer fans a batch out over the pool
// (Conv2D inference, see Layer::set_parallelism), each output element
// is still produced by exactly one task with the same k order, so the
// split only changes speed, never numerics.
#pragma once

#include <cstddef>

namespace emoleak::nn {

/// C (m x n) = A (m x k) · B (k x n), all row-major.
/// With `accumulate`, adds into C instead of overwriting it.
void gemm(std::size_t m, std::size_t n, std::size_t k, const float* a,
          const float* b, float* c, bool accumulate = false);

/// C (m x n) = Aᵀ · B where A is stored (k x m) row-major.
/// Used for weight gradients: dW = colᵀ · dOut.
void gemm_at(std::size_t m, std::size_t n, std::size_t k, const float* a,
             const float* b, float* c, bool accumulate = false);

/// C (m x n) = A · Bᵀ where B is stored (n x k) row-major.
/// Used for input gradients: dCol = dOut · Wᵀ.
void gemm_bt(std::size_t m, std::size_t n, std::size_t k, const float* a,
             const float* b, float* c, bool accumulate = false);

/// Output extent of a convolution axis: floor((in + 2*pad - k)/stride)+1.
/// Returns 0 when the (padded) input is smaller than the kernel.
[[nodiscard]] std::size_t conv_out_dim(std::size_t in, std::size_t kernel,
                                       std::size_t stride,
                                       std::size_t pad) noexcept;

/// Lowers one NHWC image (h x w x c) to a patch matrix: row r = output
/// position (r / ow, r % ow), columns ordered (kh, kw, c) — matching the
/// [KH, KW, Cin, Cout] weight layout, so convolution is col · W.
/// Out-of-bounds taps (zero padding) produce zeros. `col` must hold
/// (oh*ow) x (kh*kw*c) floats.
void im2col(const float* in, std::size_t h, std::size_t w, std::size_t c,
            std::size_t kh, std::size_t kw, std::size_t stride_h,
            std::size_t stride_w, std::size_t pad_h, std::size_t pad_w,
            std::size_t oh, std::size_t ow, float* col);

/// Adjoint of im2col: scatter-adds the patch matrix back into the image
/// (which the caller must have zeroed). Overlapping taps accumulate.
void col2im(const float* col, std::size_t h, std::size_t w, std::size_t c,
            std::size_t kh, std::size_t kw, std::size_t stride_h,
            std::size_t stride_w, std::size_t pad_h, std::size_t pad_w,
            std::size_t oh, std::size_t ow, float* in);

/// Naive direct convolution over an NHWC batch, retained as the
/// reference implementation for the im2col+GEMM path. Weight layout
/// [KH, KW, Cin, Cout]; `y` must hold n*oh*ow*cout floats.
void conv2d_naive_forward(const float* x, std::size_t n, std::size_t h,
                          std::size_t w, std::size_t cin, const float* weight,
                          const float* bias, std::size_t kh, std::size_t kw,
                          std::size_t stride_h, std::size_t stride_w,
                          std::size_t pad_h, std::size_t pad_w, std::size_t oh,
                          std::size_t ow, std::size_t cout, float* y);

/// Naive convolution backward: writes dX into `gx` (n*h*w*cin, zeroed
/// here), accumulates dW into `gw` and db into `gb` (caller zeroes).
void conv2d_naive_backward(const float* x, const float* gout, std::size_t n,
                           std::size_t h, std::size_t w, std::size_t cin,
                           const float* weight, std::size_t kh, std::size_t kw,
                           std::size_t stride_h, std::size_t stride_w,
                           std::size_t pad_h, std::size_t pad_w, std::size_t oh,
                           std::size_t ow, std::size_t cout, float* gx,
                           float* gw, float* gb);

}  // namespace emoleak::nn
