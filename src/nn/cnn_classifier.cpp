#include "nn/cnn_classifier.h"

#include <algorithm>
#include <cmath>

#include "ml/logistic.h"  // softmax_inplace
#include "util/error.h"

namespace emoleak::nn {

CnnClassifier::CnnClassifier(Arch arch, std::size_t dim, CnnConfig config,
                             TrainConfig train)
    : arch_{arch}, dim_{dim}, config_{config}, train_{train} {
  if (dim_ == 0) throw util::ConfigError{"CnnClassifier: zero input dim"};
  if (arch_ == Arch::kSpectrogram) {
    side_ = static_cast<std::size_t>(std::lround(std::sqrt(
        static_cast<double>(dim_))));
    if (side_ * side_ != dim_) {
      throw util::ConfigError{"CnnClassifier: spectrogram dim not square"};
    }
  }
}

void CnnClassifier::fit(const ml::Dataset& data) {
  data.validate();
  if (data.size() == 0) throw util::DataError{"CnnClassifier: empty dataset"};
  if (data.dim() != dim_) {
    throw util::DataError{"CnnClassifier: dataset dim mismatch"};
  }
  const std::lock_guard<std::mutex> lock{mu_};
  classes_ = data.class_count;
  const std::size_t n = data.size();
  Tensor x = arch_ == Arch::kTimefreq ? Tensor{{n, 1, dim_, 1}}
                                      : Tensor{{n, side_, side_, 1}};
  if (arch_ == Arch::kTimefreq) scaler_.fit(data);
  for (std::size_t i = 0; i < n; ++i) {
    float* dst = x.data() + i * dim_;
    if (arch_ == Arch::kTimefreq) {
      const std::vector<double> scaled = scaler_.transform_row(data.x[i]);
      for (std::size_t j = 0; j < dim_; ++j) {
        dst[j] = static_cast<float>(scaled[j]);
      }
    } else {
      for (std::size_t j = 0; j < dim_; ++j) {
        dst[j] = static_cast<float>(data.x[i][j]);
      }
    }
  }
  net_ = arch_ == Arch::kTimefreq
             ? build_timefreq_cnn(dim_, classes_, config_)
             : build_spectrogram_cnn(side_, side_, classes_, config_);
  net_.set_parallelism(par_);
  net_.train(x, data.y, classes_, train_);
}

void CnnClassifier::set_parallelism(util::Parallelism par) {
  const std::lock_guard<std::mutex> lock{mu_};
  par_ = par;
  net_.set_parallelism(par_);
}

std::vector<double> CnnClassifier::forward_batch(std::span<const double> rows,
                                                 std::size_t dim,
                                                 std::size_t count) const {
  if (classes_ == 0) throw util::DataError{"CnnClassifier: not fitted"};
  if (dim != dim_ || rows.size() != dim * count) {
    throw util::DataError{"CnnClassifier: rows/dim/count mismatch"};
  }
  if (arch_ == Arch::kTimefreq) {
    input_.resize({count, 1, dim_, 1});
  } else {
    input_.resize({count, side_, side_, 1});
  }
  for (std::size_t i = 0; i < count; ++i) {
    float* dst = input_.data() + i * dim_;
    if (arch_ == Arch::kTimefreq) {
      const std::vector<double> scaled =
          scaler_.transform_row(rows.subspan(i * dim_, dim_));
      for (std::size_t j = 0; j < dim_; ++j) {
        dst[j] = static_cast<float>(scaled[j]);
      }
    } else {
      for (std::size_t j = 0; j < dim_; ++j) {
        dst[j] = static_cast<float>(rows[i * dim_ + j]);
      }
    }
  }
  // One forward over all rows. Every layer treats rows independently
  // at inference and the GEMM kernels sum k in ascending order per
  // output element regardless of M, so row i of the logits is bitwise
  // identical to a batch-1 forward of that row.
  const Tensor& logits = net_.forward_ref(input_, /*training=*/false);
  const auto classes = static_cast<std::size_t>(classes_);
  std::vector<double> out(count * classes);
  std::vector<double> p(classes);
  for (std::size_t i = 0; i < count; ++i) {
    const float* row = &logits.at2(i, 0);
    for (std::size_t c = 0; c < classes; ++c) p[c] = row[c];
    ml::softmax_inplace(p);
    std::copy(p.begin(), p.end(), out.begin() + i * classes);
  }
  return out;
}

int CnnClassifier::predict(std::span<const double> row) const {
  const std::vector<double> p = predict_proba(row);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

std::vector<double> CnnClassifier::predict_proba(
    std::span<const double> row) const {
  const std::lock_guard<std::mutex> lock{mu_};
  return forward_batch(row, row.size(), 1);
}

std::vector<double> CnnClassifier::predict_proba_batch(
    std::span<const double> rows, std::size_t dim, std::size_t count) const {
  const std::lock_guard<std::mutex> lock{mu_};
  return forward_batch(rows, dim, count);
}

std::unique_ptr<ml::Classifier> CnnClassifier::clone() const {
  return std::make_unique<CnnClassifier>(arch_, dim_, config_, train_);
}

}  // namespace emoleak::nn
