// Sequential model, softmax cross-entropy loss, Adam optimizer, and a
// training loop that records per-epoch history (used to regenerate the
// paper's Figure 7 loss/accuracy curves).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "nn/layers.h"

namespace emoleak::nn {

/// A labelled batch: `x` has leading batch axis, labels in [0, classes).
struct Batch {
  Tensor x;
  std::vector<int> y;
};

struct TrainConfig {
  int epochs = 30;
  std::size_t batch_size = 32;
  double learning_rate = 1e-3;
  double validation_fraction = 0.2;  ///< carved from the training set
  std::uint64_t seed = 23;
  bool verbose = false;
};

/// Per-epoch training curves (paper Fig. 7).
struct History {
  std::vector<double> train_loss;
  std::vector<double> train_accuracy;
  std::vector<double> val_loss;
  std::vector<double> val_accuracy;
};

/// Softmax cross-entropy on logits. Returns mean loss; writes
/// dLoss/dLogits (already divided by batch size) into `grad`.
[[nodiscard]] double softmax_cross_entropy(const Tensor& logits,
                                           const std::vector<int>& labels,
                                           Tensor& grad);

class Sequential {
 public:
  Sequential() = default;

  Sequential& add(std::unique_ptr<Layer> layer);

  /// Forward through all layers.
  [[nodiscard]] Tensor forward(const Tensor& x, bool training);

  /// Forward returning a reference into the last layer's reused output
  /// buffer — no copy, so steady-state inference stays allocation-free.
  /// The reference is invalidated by the next forward/backward call.
  [[nodiscard]] const Tensor& forward_ref(const Tensor& x, bool training);

  /// Backward through all layers (after a forward).
  Tensor backward(const Tensor& grad);

  /// Propagates a parallelism knob to every layer that supports
  /// data-parallel inference (see Layer::set_parallelism). Results are
  /// bit-identical at any thread count; training stays serial.
  void set_parallelism(const util::Parallelism& par);

  [[nodiscard]] std::vector<Parameter*> parameters();

  /// Trains with Adam on mini-batches; returns the epoch history.
  /// `x` is the full training tensor (leading batch axis).
  History train(const Tensor& x, const std::vector<int>& labels,
                int class_count, const TrainConfig& config);

  /// Argmax class predictions for a batch tensor.
  [[nodiscard]] std::vector<int> predict(const Tensor& x);

  /// Mean loss + accuracy of the model on a labelled set (inference mode).
  [[nodiscard]] std::pair<double, double> evaluate(const Tensor& x,
                                                   const std::vector<int>& labels);

  [[nodiscard]] std::size_t layer_count() const noexcept { return layers_.size(); }

 private:
  /// Rows `indices` of `x` gathered into `out` (resized in place so a
  /// buffer reused across batches stops allocating once warm).
  static void gather(const Tensor& x, std::span<const std::size_t> indices,
                     Tensor& out);

  std::vector<std::unique_ptr<Layer>> layers_;
};

/// SGD with classical momentum and optional cosine learning-rate decay.
class Sgd {
 public:
  /// `total_steps` > 0 enables cosine decay from learning_rate to ~0
  /// across that many step() calls.
  Sgd(std::vector<Parameter*> params, double learning_rate,
      double momentum = 0.9, long total_steps = 0);

  void step();

  [[nodiscard]] double current_learning_rate() const noexcept;

 private:
  std::vector<Parameter*> params_;
  double lr_;
  double momentum_;
  long total_steps_;
  long t_ = 0;
  std::vector<std::vector<float>> velocity_;
};

/// Adam optimizer over a parameter set.
class Adam {
 public:
  Adam(std::vector<Parameter*> params, double learning_rate);

  void step();

 private:
  std::vector<Parameter*> params_;
  double lr_;
  double beta1_ = 0.9, beta2_ = 0.999, eps_ = 1e-8;
  long t_ = 0;
  std::vector<std::vector<float>> m_, v_;
};

}  // namespace emoleak::nn
