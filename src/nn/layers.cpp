#include "nn/layers.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "nn/gemm.h"
#include "util/error.h"

namespace emoleak::nn {

namespace {

/// He-uniform initialization (Keras default for ReLU stacks is Glorot;
/// He works marginally better for the shallow nets here and both are
/// acceptable — the distribution is documented so runs reproduce).
void he_uniform_init(Tensor& w, std::size_t fan_in, util::Rng& rng) {
  const double limit = std::sqrt(6.0 / static_cast<double>(fan_in));
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = static_cast<float>(rng.uniform(-limit, limit));
  }
}

void check_rank4(const Tensor& x, const char* who) {
  if (x.rank() != 4) throw util::DataError{std::string{who} + ": expected NHWC tensor"};
}

}  // namespace

// ---------------------------------------------------------------- Conv2D

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel_h, std::size_t kernel_w, bool same_padding,
               std::uint64_t seed)
    : in_c_{in_channels},
      out_c_{out_channels},
      kh_{kernel_h},
      kw_{kernel_w},
      same_{same_padding} {
  if (in_c_ == 0 || out_c_ == 0 || kh_ == 0 || kw_ == 0) {
    throw util::ConfigError{"Conv2D: zero-sized configuration"};
  }
  weight_.value = Tensor{{kh_, kw_, in_c_, out_c_}};
  weight_.grad = Tensor{{kh_, kw_, in_c_, out_c_}};
  bias_.value = Tensor{{out_c_}};
  bias_.grad = Tensor{{out_c_}};
  util::Rng rng{seed};
  he_uniform_init(weight_.value, kh_ * kw_ * in_c_, rng);
}

const Tensor& Conv2D::forward(const Tensor& x, bool training) {
  check_rank4(x, "Conv2D");
  if (x.dim(3) != in_c_) throw util::DataError{"Conv2D: channel mismatch"};
  input_ = x;

  const std::size_t n = x.dim(0), h = x.dim(1), w = x.dim(2);
  const std::size_t pad_h = same_ ? (kh_ - 1) / 2 : 0;
  const std::size_t pad_w = same_ ? (kw_ - 1) / 2 : 0;
  const std::size_t oh = same_ ? h : h - std::min(h, kh_ - 1);
  const std::size_t ow = same_ ? w : w - std::min(w, kw_ - 1);
  if (oh == 0 || ow == 0) throw util::DataError{"Conv2D: input smaller than kernel"};

  out_.resize({n, oh, ow, out_c_});
  const std::size_t rows = oh * ow;
  const std::size_t kcols = kh_ * kw_ * in_c_;
  // A 1x1 unpadded kernel's patch matrix is the input itself — GEMM
  // straight off the NHWC data and skip the im2col copy.
  const bool pointwise = kh_ == 1 && kw_ == 1 && pad_h == 0 && pad_w == 0;
  const float* bias = bias_.value.data();
  const float* wt = weight_.value.data();
  // Multi-image inference fans contiguous image blocks out over the
  // shared pool (set_parallelism). Bit-exact at any task/thread count:
  // every output element is produced by exactly one task, and the GEMM
  // kernels accumulate k in ascending order regardless of the M split.
  // Training and single-image batches always take the serial path.
  const util::Parallelism par =
      (training || n < 2) ? util::Parallelism::serial_only() : par_;
  if (pointwise) {
    // The batch is one contiguous (n*rows)×kcols patch matrix already.
    const std::size_t tasks = par.serial() ? 1 : std::min(n, par.resolved());
    util::parallel_for(par, tasks, [&](std::size_t t) {
      const std::size_t r0 = (n * t / tasks) * rows;
      const std::size_t r1 = (n * (t + 1) / tasks) * rows;
      for (std::size_t r = r0; r < r1; ++r) {
        std::memcpy(out_.data() + r * out_c_, bias, out_c_ * sizeof(float));
      }
      gemm(r1 - r0, out_c_, kcols, x.data() + r0 * kcols, wt,
           out_.data() + r0 * out_c_, /*accumulate=*/true);
    });
    return out_;
  }
  // Each image lowers to a patch matrix (one output position per row,
  // taps ordered like the [KH, KW, Cin, Cout] weights); stacking the
  // patch matrices of several images gives one GEMM a real M dimension
  // instead of n matrix–vector-ish calls. The col workspace is capped
  // (~16 MiB) and the batch processed in slabs; per-element results are
  // independent of the slab split because every GEMM kernel sums k in
  // strictly ascending order per output element regardless of M.
  constexpr std::size_t kColCapFloats = (16u << 20) / sizeof(float);
  const std::size_t per_image = rows * kcols;
  const std::size_t slab_images =
      std::max<std::size_t>(1, std::min(n, kColCapFloats / per_image));
  const util::Workspace::Scope scope{ws_};
  const std::span<float> col = ws_.take<float>(slab_images * per_image);
  for (std::size_t b0 = 0; b0 < n; b0 += slab_images) {
    const std::size_t count = std::min(slab_images, n - b0);
    const std::size_t tasks =
        par.serial() ? 1 : std::min(count, par.resolved());
    util::parallel_for(par, tasks, [&](std::size_t t) {
      const std::size_t i0 = count * t / tasks;
      const std::size_t i1 = count * (t + 1) / tasks;
      for (std::size_t i = i0; i < i1; ++i) {
        im2col(&x.at4(b0 + i, 0, 0, 0), h, w, in_c_, kh_, kw_, 1, 1, pad_h,
               pad_w, oh, ow, col.data() + i * per_image);
      }
      float* out0 = out_.data() + (b0 + i0) * rows * out_c_;
      for (std::size_t r = 0; r < (i1 - i0) * rows; ++r) {
        std::memcpy(out0 + r * out_c_, bias, out_c_ * sizeof(float));
      }
      gemm((i1 - i0) * rows, out_c_, kcols, col.data() + i0 * per_image, wt,
           out0, /*accumulate=*/true);
    });
  }
  return out_;
}

const Tensor& Conv2D::backward(const Tensor& grad_out) {
  check_rank4(grad_out, "Conv2D::backward");
  const Tensor& x = input_;
  const std::size_t n = x.dim(0), h = x.dim(1), w = x.dim(2);
  const std::size_t oh = grad_out.dim(1), ow = grad_out.dim(2);
  const std::size_t pad_h = same_ ? (kh_ - 1) / 2 : 0;
  const std::size_t pad_w = same_ ? (kw_ - 1) / 2 : 0;

  gin_.resize({n, h, w, in_c_});
  gin_.fill(0.0f);
  weight_.grad.fill(0.0f);
  bias_.grad.fill(0.0f);

  const std::size_t rows = oh * ow;
  const std::size_t kcols = kh_ * kw_ * in_c_;
  const util::Workspace::Scope scope{ws_};
  const std::span<float> col = ws_.take<float>(rows * kcols);
  const std::span<float> dcol = ws_.take<float>(rows * kcols);
  for (std::size_t b = 0; b < n; ++b) {
    const float* g = grad_out.data() + b * rows * out_c_;
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t oc = 0; oc < out_c_; ++oc) {
        bias_.grad[oc] += g[r * out_c_ + oc];
      }
    }
    // dW += colᵀ · dOut ; dCol = dOut · Wᵀ, scattered back to dX.
    im2col(&x.at4(b, 0, 0, 0), h, w, in_c_, kh_, kw_, 1, 1, pad_h, pad_w, oh,
           ow, col.data());
    gemm_at(kcols, out_c_, rows, col.data(), g, weight_.grad.data(),
            /*accumulate=*/true);
    gemm_bt(rows, kcols, out_c_, g, weight_.value.data(), dcol.data(),
            /*accumulate=*/false);
    col2im(dcol.data(), h, w, in_c_, kh_, kw_, 1, 1, pad_h, pad_w, oh, ow,
           &gin_.at4(b, 0, 0, 0));
  }
  return gin_;
}

std::vector<Parameter*> Conv2D::parameters() { return {&weight_, &bias_}; }

// ------------------------------------------------------------------ ReLU

const Tensor& ReLU::forward(const Tensor& x, bool /*training*/) {
  out_.resize(x.shape());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out_[i] = x[i] > 0.0f ? x[i] : 0.0f;
  }
  return out_;
}

const Tensor& ReLU::backward(const Tensor& grad_out) {
  if (!grad_out.same_shape(out_)) {
    throw util::DataError{"ReLU::backward: shape mismatch"};
  }
  gin_.resize(grad_out.shape());
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    gin_[i] = out_[i] > 0.0f ? grad_out[i] : 0.0f;
  }
  return gin_;
}

// ------------------------------------------------------------- MaxPool2D

MaxPool2D::MaxPool2D(std::size_t pool_h, std::size_t pool_w)
    : ph_{pool_h}, pw_{pool_w} {
  if (ph_ == 0 || pw_ == 0) throw util::ConfigError{"MaxPool2D: zero pool size"};
}

const Tensor& MaxPool2D::forward(const Tensor& x, bool /*training*/) {
  check_rank4(x, "MaxPool2D");
  const std::size_t n = x.dim(0), h = x.dim(1), w = x.dim(2), c = x.dim(3);
  const std::size_t oh = std::max<std::size_t>(1, h / ph_);
  const std::size_t ow = std::max<std::size_t>(1, w / pw_);
  // When the input is smaller than the pool, pool over what exists
  // (Keras would error; clamping keeps tiny feature maps usable and is
  // covered by tests).
  in_ = x;  // retained so backward can re-derive the winning taps
  out_.resize({n, oh, ow, c});
  const float* src = x.data();
  float* dst = out_.data();
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t i = 0; i < oh; ++i) {
      const std::size_t i0 = i * ph_;
      const std::size_t i1 = std::min(h, i0 + ph_);
      for (std::size_t j = 0; j < ow; ++j) {
        const std::size_t j0 = j * pw_;
        const std::size_t j1 = std::min(w, j0 + pw_);
        float* orow = dst + ((b * oh + i) * ow + j) * c;
        std::memcpy(orow, src + ((b * h + i0) * w + j0) * c,
                    c * sizeof(float));
        for (std::size_t ii = i0; ii < i1; ++ii) {
          for (std::size_t jj = j0; jj < j1; ++jj) {
            if (ii == i0 && jj == j0) continue;
            const float* tap = src + ((b * h + ii) * w + jj) * c;
            for (std::size_t ch = 0; ch < c; ++ch) {
              orow[ch] = std::max(orow[ch], tap[ch]);
            }
          }
        }
      }
    }
  }
  return out_;
}

const Tensor& MaxPool2D::backward(const Tensor& grad_out) {
  if (!grad_out.same_shape(out_)) {
    throw util::DataError{"MaxPool2D::backward: grad shape mismatch"};
  }
  const std::size_t n = in_.dim(0), h = in_.dim(1), w = in_.dim(2),
                    c = in_.dim(3);
  const std::size_t oh = out_.dim(1), ow = out_.dim(2);
  gin_.resize(in_.shape());
  gin_.fill(0.0f);
  const float* src = in_.data();
  float* gi = gin_.data();
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t i = 0; i < oh; ++i) {
      const std::size_t i0 = i * ph_;
      const std::size_t i1 = std::min(h, i0 + ph_);
      for (std::size_t j = 0; j < ow; ++j) {
        const std::size_t j0 = j * pw_;
        const std::size_t j1 = std::min(w, j0 + pw_);
        const std::size_t oidx = ((b * oh + i) * ow + j) * c;
        for (std::size_t ch = 0; ch < c; ++ch) {
          const float best = out_[oidx + ch];
          // Route to the first tap that achieved the max, matching the
          // strict-greater argmax scan order (ii-major, then jj).
          for (std::size_t ii = i0; ii < i1; ++ii) {
            bool routed = false;
            for (std::size_t jj = j0; jj < j1; ++jj) {
              const std::size_t idx = ((b * h + ii) * w + jj) * c + ch;
              if (src[idx] == best) {
                gi[idx] += grad_out[oidx + ch];
                routed = true;
                break;
              }
            }
            if (routed) break;
          }
        }
      }
    }
  }
  return gin_;
}

// --------------------------------------------------------------- Dropout

Dropout::Dropout(double rate, std::uint64_t seed) : rate_{rate}, rng_{seed} {
  if (rate_ < 0.0 || rate_ >= 1.0) {
    throw util::ConfigError{"Dropout: rate must be in [0,1)"};
  }
}

const Tensor& Dropout::forward(const Tensor& x, bool training) {
  if (!training || rate_ == 0.0) {
    mask_.resize({});  // marks the identity pass for backward
    return x;
  }
  mask_.resize(x.shape());
  out_.resize(x.shape());
  const float scale = static_cast<float>(1.0 / (1.0 - rate_));
  for (std::size_t i = 0; i < x.size(); ++i) {
    const bool keep = !rng_.bernoulli(rate_);
    mask_[i] = keep ? scale : 0.0f;
    out_[i] = x[i] * mask_[i];
  }
  return out_;
}

const Tensor& Dropout::backward(const Tensor& grad_out) {
  if (mask_.size() == 0) return grad_out;  // was inference / rate 0
  gin_.resize(grad_out.shape());
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    gin_[i] = grad_out[i] * mask_[i];
  }
  return gin_;
}

// -------------------------------------------------------------- BatchNorm

BatchNorm::BatchNorm(std::size_t channels, double momentum, double epsilon)
    : channels_{channels}, momentum_{momentum}, eps_{epsilon} {
  if (channels_ == 0) throw util::ConfigError{"BatchNorm: channels == 0"};
  gamma_.value = Tensor{{channels_}};
  gamma_.grad = Tensor{{channels_}};
  beta_.value = Tensor{{channels_}};
  beta_.grad = Tensor{{channels_}};
  gamma_.value.fill(1.0f);
  running_mean_.assign(channels_, 0.0f);
  running_var_.assign(channels_, 1.0f);
}

const Tensor& BatchNorm::forward(const Tensor& x, bool training) {
  if (x.dim(x.rank() - 1) != channels_) {
    throw util::DataError{"BatchNorm: channel mismatch"};
  }
  const std::size_t groups = x.size() / channels_;
  out_.resize(x.shape());
  x_hat_.resize(x.shape());
  batch_mean_.assign(channels_, 0.0f);
  batch_inv_std_.assign(channels_, 0.0f);

  if (training) {
    mean_.assign(channels_, 0.0f);
    var_.assign(channels_, 0.0f);
    for (std::size_t g = 0; g < groups; ++g) {
      for (std::size_t c = 0; c < channels_; ++c) {
        mean_[c] += x[g * channels_ + c];
      }
    }
    for (float& m : mean_) m /= static_cast<float>(groups);
    for (std::size_t g = 0; g < groups; ++g) {
      for (std::size_t c = 0; c < channels_; ++c) {
        const float d = x[g * channels_ + c] - mean_[c];
        var_[c] += d * d;
      }
    }
    for (float& v : var_) v /= static_cast<float>(groups);
    for (std::size_t c = 0; c < channels_; ++c) {
      running_mean_[c] = static_cast<float>(momentum_) * running_mean_[c] +
                         static_cast<float>(1.0 - momentum_) * mean_[c];
      running_var_[c] = static_cast<float>(momentum_) * running_var_[c] +
                        static_cast<float>(1.0 - momentum_) * var_[c];
    }
  } else {
    mean_.assign(running_mean_.begin(), running_mean_.end());
    var_.assign(running_var_.begin(), running_var_.end());
  }

  for (std::size_t c = 0; c < channels_; ++c) {
    batch_mean_[c] = mean_[c];
    batch_inv_std_[c] =
        1.0f / std::sqrt(var_[c] + static_cast<float>(eps_));
  }
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t c = 0; c < channels_; ++c) {
      const std::size_t i = g * channels_ + c;
      x_hat_[i] = (x[i] - batch_mean_[c]) * batch_inv_std_[c];
      out_[i] = gamma_.value[c] * x_hat_[i] + beta_.value[c];
    }
  }
  return out_;
}

const Tensor& BatchNorm::backward(const Tensor& grad_out) {
  const std::size_t groups = grad_out.size() / channels_;
  const float n = static_cast<float>(groups);
  gamma_.grad.fill(0.0f);
  beta_.grad.fill(0.0f);

  sum_g_.assign(channels_, 0.0f);
  sum_gx_.assign(channels_, 0.0f);
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t c = 0; c < channels_; ++c) {
      const std::size_t i = g * channels_ + c;
      sum_g_[c] += grad_out[i];
      sum_gx_[c] += grad_out[i] * x_hat_[i];
    }
  }
  for (std::size_t c = 0; c < channels_; ++c) {
    gamma_.grad[c] = sum_gx_[c];
    beta_.grad[c] = sum_g_[c];
  }

  gin_.resize(grad_out.shape());
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t c = 0; c < channels_; ++c) {
      const std::size_t i = g * channels_ + c;
      gin_[i] = gamma_.value[c] * batch_inv_std_[c] / n *
                (n * grad_out[i] - sum_g_[c] - x_hat_[i] * sum_gx_[c]);
    }
  }
  return gin_;
}

std::vector<Parameter*> BatchNorm::parameters() { return {&gamma_, &beta_}; }

// ---------------------------------------------------------------- Flatten

const Tensor& Flatten::forward(const Tensor& x, bool /*training*/) {
  in_shape_.assign(x.shape().begin(), x.shape().end());
  const std::size_t n = x.dim(0);
  out_ = x;  // copy-assign reuses capacity
  out_.resize({n, x.size() / n});  // same element count: pure reshape
  return out_;
}

const Tensor& Flatten::backward(const Tensor& grad_out) {
  gin_ = grad_out;
  gin_.resize(in_shape_);
  return gin_;
}

// ------------------------------------------------------------------ Dense

Dense::Dense(std::size_t in_dim, std::size_t out_dim, std::uint64_t seed)
    : in_d_{in_dim}, out_d_{out_dim} {
  if (in_d_ == 0 || out_d_ == 0) throw util::ConfigError{"Dense: zero dims"};
  weight_.value = Tensor{{in_d_, out_d_}};
  weight_.grad = Tensor{{in_d_, out_d_}};
  bias_.value = Tensor{{out_d_}};
  bias_.grad = Tensor{{out_d_}};
  util::Rng rng{seed};
  he_uniform_init(weight_.value, in_d_, rng);
}

const Tensor& Dense::forward(const Tensor& x, bool /*training*/) {
  if (x.rank() != 2 || x.dim(1) != in_d_) {
    throw util::DataError{"Dense: expected (N, in_dim) input"};
  }
  input_ = x;
  const std::size_t n = x.dim(0);
  out_.resize({n, out_d_});
  const float* bias = bias_.value.data();
  for (std::size_t b = 0; b < n; ++b) {
    std::memcpy(out_.data() + b * out_d_, bias, out_d_ * sizeof(float));
  }
  gemm(n, out_d_, in_d_, x.data(), weight_.value.data(), out_.data(),
       /*accumulate=*/true);
  return out_;
}

const Tensor& Dense::backward(const Tensor& grad_out) {
  const std::size_t n = input_.dim(0);
  bias_.grad.fill(0.0f);
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t o = 0; o < out_d_; ++o) {
      bias_.grad[o] += grad_out.at2(b, o);
    }
  }
  // dW = Xᵀ · dOut ; dX = dOut · Wᵀ.
  gemm_at(in_d_, out_d_, n, input_.data(), grad_out.data(),
          weight_.grad.data(), /*accumulate=*/false);
  gin_.resize({n, in_d_});
  gemm_bt(n, in_d_, out_d_, grad_out.data(), weight_.value.data(), gin_.data(),
          /*accumulate=*/false);
  return gin_;
}

std::vector<Parameter*> Dense::parameters() { return {&weight_, &bias_}; }

}  // namespace emoleak::nn
