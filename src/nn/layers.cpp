#include "nn/layers.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace emoleak::nn {

namespace {

/// He-uniform initialization (Keras default for ReLU stacks is Glorot;
/// He works marginally better for the shallow nets here and both are
/// acceptable — the distribution is documented so runs reproduce).
void he_uniform_init(Tensor& w, std::size_t fan_in, util::Rng& rng) {
  const double limit = std::sqrt(6.0 / static_cast<double>(fan_in));
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = static_cast<float>(rng.uniform(-limit, limit));
  }
}

void check_rank4(const Tensor& x, const char* who) {
  if (x.rank() != 4) throw util::DataError{std::string{who} + ": expected NHWC tensor"};
}

}  // namespace

// ---------------------------------------------------------------- Conv2D

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel_h, std::size_t kernel_w, bool same_padding,
               std::uint64_t seed)
    : in_c_{in_channels},
      out_c_{out_channels},
      kh_{kernel_h},
      kw_{kernel_w},
      same_{same_padding} {
  if (in_c_ == 0 || out_c_ == 0 || kh_ == 0 || kw_ == 0) {
    throw util::ConfigError{"Conv2D: zero-sized configuration"};
  }
  weight_.value = Tensor{{kh_, kw_, in_c_, out_c_}};
  weight_.grad = Tensor{{kh_, kw_, in_c_, out_c_}};
  bias_.value = Tensor{{out_c_}};
  bias_.grad = Tensor{{out_c_}};
  util::Rng rng{seed};
  he_uniform_init(weight_.value, kh_ * kw_ * in_c_, rng);
}

Tensor Conv2D::forward(const Tensor& x, bool /*training*/) {
  check_rank4(x, "Conv2D");
  if (x.dim(3) != in_c_) throw util::DataError{"Conv2D: channel mismatch"};
  input_ = x;

  const std::size_t n = x.dim(0), h = x.dim(1), w = x.dim(2);
  const std::size_t pad_h = same_ ? (kh_ - 1) / 2 : 0;
  const std::size_t pad_w = same_ ? (kw_ - 1) / 2 : 0;
  const std::size_t oh = same_ ? h : h - std::min(h, kh_ - 1);
  const std::size_t ow = same_ ? w : w - std::min(w, kw_ - 1);
  if (oh == 0 || ow == 0) throw util::DataError{"Conv2D: input smaller than kernel"};

  Tensor y{{n, oh, ow, out_c_}};
  const float* wt = weight_.value.data();
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t i = 0; i < oh; ++i) {
      for (std::size_t j = 0; j < ow; ++j) {
        float* out = &y.at4(b, i, j, 0);
        for (std::size_t oc = 0; oc < out_c_; ++oc) out[oc] = bias_.value[oc];
        for (std::size_t ki = 0; ki < kh_; ++ki) {
          const std::ptrdiff_t ii =
              static_cast<std::ptrdiff_t>(i + ki) - static_cast<std::ptrdiff_t>(pad_h);
          if (ii < 0 || ii >= static_cast<std::ptrdiff_t>(h)) continue;
          for (std::size_t kj = 0; kj < kw_; ++kj) {
            const std::ptrdiff_t jj =
                static_cast<std::ptrdiff_t>(j + kj) - static_cast<std::ptrdiff_t>(pad_w);
            if (jj < 0 || jj >= static_cast<std::ptrdiff_t>(w)) continue;
            const float* in = &x.at4(b, static_cast<std::size_t>(ii),
                                     static_cast<std::size_t>(jj), 0);
            const float* wk = &wt[((ki * kw_) + kj) * in_c_ * out_c_];
            for (std::size_t ic = 0; ic < in_c_; ++ic) {
              const float xv = in[ic];
              const float* wrow = &wk[ic * out_c_];
              for (std::size_t oc = 0; oc < out_c_; ++oc) {
                out[oc] += xv * wrow[oc];
              }
            }
          }
        }
      }
    }
  }
  return y;
}

Tensor Conv2D::backward(const Tensor& grad_out) {
  check_rank4(grad_out, "Conv2D::backward");
  const Tensor& x = input_;
  const std::size_t n = x.dim(0), h = x.dim(1), w = x.dim(2);
  const std::size_t oh = grad_out.dim(1), ow = grad_out.dim(2);
  const std::size_t pad_h = same_ ? (kh_ - 1) / 2 : 0;
  const std::size_t pad_w = same_ ? (kw_ - 1) / 2 : 0;

  Tensor grad_in{{n, h, w, in_c_}};
  weight_.grad.fill(0.0f);
  bias_.grad.fill(0.0f);
  float* wg = weight_.grad.data();
  const float* wt = weight_.value.data();

  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t i = 0; i < oh; ++i) {
      for (std::size_t j = 0; j < ow; ++j) {
        const float* gout = &grad_out.at4(b, i, j, 0);
        for (std::size_t oc = 0; oc < out_c_; ++oc) bias_.grad[oc] += gout[oc];
        for (std::size_t ki = 0; ki < kh_; ++ki) {
          const std::ptrdiff_t ii =
              static_cast<std::ptrdiff_t>(i + ki) - static_cast<std::ptrdiff_t>(pad_h);
          if (ii < 0 || ii >= static_cast<std::ptrdiff_t>(h)) continue;
          for (std::size_t kj = 0; kj < kw_; ++kj) {
            const std::ptrdiff_t jj =
                static_cast<std::ptrdiff_t>(j + kj) - static_cast<std::ptrdiff_t>(pad_w);
            if (jj < 0 || jj >= static_cast<std::ptrdiff_t>(w)) continue;
            const float* in = &x.at4(b, static_cast<std::size_t>(ii),
                                     static_cast<std::size_t>(jj), 0);
            float* gin = &grad_in.at4(b, static_cast<std::size_t>(ii),
                                      static_cast<std::size_t>(jj), 0);
            const std::size_t base = ((ki * kw_) + kj) * in_c_ * out_c_;
            for (std::size_t ic = 0; ic < in_c_; ++ic) {
              const float xv = in[ic];
              const float* wrow = &wt[base + ic * out_c_];
              float* wgrow = &wg[base + ic * out_c_];
              float acc = 0.0f;
              for (std::size_t oc = 0; oc < out_c_; ++oc) {
                const float g = gout[oc];
                wgrow[oc] += xv * g;
                acc += wrow[oc] * g;
              }
              gin[ic] += acc;
            }
          }
        }
      }
    }
  }
  return grad_in;
}

std::vector<Parameter*> Conv2D::parameters() { return {&weight_, &bias_}; }

// ------------------------------------------------------------------ ReLU

Tensor ReLU::forward(const Tensor& x, bool /*training*/) {
  mask_ = Tensor{x.shape()};
  Tensor y{x.shape()};
  for (std::size_t i = 0; i < x.size(); ++i) {
    const bool pos = x[i] > 0.0f;
    mask_[i] = pos ? 1.0f : 0.0f;
    y[i] = pos ? x[i] : 0.0f;
  }
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  if (!grad_out.same_shape(mask_)) {
    throw util::DataError{"ReLU::backward: shape mismatch"};
  }
  Tensor grad_in{grad_out.shape()};
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    grad_in[i] = grad_out[i] * mask_[i];
  }
  return grad_in;
}

// ------------------------------------------------------------- MaxPool2D

MaxPool2D::MaxPool2D(std::size_t pool_h, std::size_t pool_w)
    : ph_{pool_h}, pw_{pool_w} {
  if (ph_ == 0 || pw_ == 0) throw util::ConfigError{"MaxPool2D: zero pool size"};
}

Tensor MaxPool2D::forward(const Tensor& x, bool /*training*/) {
  check_rank4(x, "MaxPool2D");
  const std::size_t n = x.dim(0), h = x.dim(1), w = x.dim(2), c = x.dim(3);
  const std::size_t oh = std::max<std::size_t>(1, h / ph_);
  const std::size_t ow = std::max<std::size_t>(1, w / pw_);
  // When the input is smaller than the pool, pool over what exists
  // (Keras would error; clamping keeps tiny feature maps usable and is
  // covered by tests).
  in_shape_ = x.shape();
  Tensor y{{n, oh, ow, c}};
  argmax_.assign(y.size(), 0);
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t i = 0; i < oh; ++i) {
      for (std::size_t j = 0; j < ow; ++j) {
        for (std::size_t ch = 0; ch < c; ++ch) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t pi = 0; pi < ph_; ++pi) {
            const std::size_t ii = i * ph_ + pi;
            if (ii >= h) break;
            for (std::size_t pj = 0; pj < pw_; ++pj) {
              const std::size_t jj = j * pw_ + pj;
              if (jj >= w) break;
              const float v = x.at4(b, ii, jj, ch);
              if (v > best) {
                best = v;
                best_idx = ((b * h + ii) * w + jj) * c + ch;
              }
            }
          }
          const std::size_t out_idx = ((b * oh + i) * ow + j) * c + ch;
          y[out_idx] = best;
          argmax_[out_idx] = best_idx;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2D::backward(const Tensor& grad_out) {
  Tensor grad_in{in_shape_};
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    grad_in[argmax_[i]] += grad_out[i];
  }
  return grad_in;
}

// --------------------------------------------------------------- Dropout

Dropout::Dropout(double rate, std::uint64_t seed) : rate_{rate}, rng_{seed} {
  if (rate_ < 0.0 || rate_ >= 1.0) {
    throw util::ConfigError{"Dropout: rate must be in [0,1)"};
  }
}

Tensor Dropout::forward(const Tensor& x, bool training) {
  if (!training || rate_ == 0.0) {
    mask_ = Tensor{};
    return x;
  }
  mask_ = Tensor{x.shape()};
  Tensor y{x.shape()};
  const float scale = static_cast<float>(1.0 / (1.0 - rate_));
  for (std::size_t i = 0; i < x.size(); ++i) {
    const bool keep = !rng_.bernoulli(rate_);
    mask_[i] = keep ? scale : 0.0f;
    y[i] = x[i] * mask_[i];
  }
  return y;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (mask_.size() == 0) return grad_out;  // was inference / rate 0
  Tensor grad_in{grad_out.shape()};
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    grad_in[i] = grad_out[i] * mask_[i];
  }
  return grad_in;
}

// -------------------------------------------------------------- BatchNorm

BatchNorm::BatchNorm(std::size_t channels, double momentum, double epsilon)
    : channels_{channels}, momentum_{momentum}, eps_{epsilon} {
  if (channels_ == 0) throw util::ConfigError{"BatchNorm: channels == 0"};
  gamma_.value = Tensor{{channels_}};
  gamma_.grad = Tensor{{channels_}};
  beta_.value = Tensor{{channels_}};
  beta_.grad = Tensor{{channels_}};
  gamma_.value.fill(1.0f);
  running_mean_.assign(channels_, 0.0f);
  running_var_.assign(channels_, 1.0f);
}

Tensor BatchNorm::forward(const Tensor& x, bool training) {
  if (x.dim(x.rank() - 1) != channels_) {
    throw util::DataError{"BatchNorm: channel mismatch"};
  }
  const std::size_t groups = x.size() / channels_;
  Tensor y{x.shape()};
  x_hat_ = Tensor{x.shape()};
  batch_mean_.assign(channels_, 0.0f);
  batch_inv_std_.assign(channels_, 0.0f);

  std::vector<float> mean(channels_, 0.0f);
  std::vector<float> var(channels_, 0.0f);
  if (training) {
    for (std::size_t g = 0; g < groups; ++g) {
      for (std::size_t c = 0; c < channels_; ++c) {
        mean[c] += x[g * channels_ + c];
      }
    }
    for (float& m : mean) m /= static_cast<float>(groups);
    for (std::size_t g = 0; g < groups; ++g) {
      for (std::size_t c = 0; c < channels_; ++c) {
        const float d = x[g * channels_ + c] - mean[c];
        var[c] += d * d;
      }
    }
    for (float& v : var) v /= static_cast<float>(groups);
    for (std::size_t c = 0; c < channels_; ++c) {
      running_mean_[c] = static_cast<float>(momentum_) * running_mean_[c] +
                         static_cast<float>(1.0 - momentum_) * mean[c];
      running_var_[c] = static_cast<float>(momentum_) * running_var_[c] +
                        static_cast<float>(1.0 - momentum_) * var[c];
    }
  } else {
    mean = running_mean_;
    var = running_var_;
  }

  for (std::size_t c = 0; c < channels_; ++c) {
    batch_mean_[c] = mean[c];
    batch_inv_std_[c] =
        1.0f / std::sqrt(var[c] + static_cast<float>(eps_));
  }
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t c = 0; c < channels_; ++c) {
      const std::size_t i = g * channels_ + c;
      x_hat_[i] = (x[i] - batch_mean_[c]) * batch_inv_std_[c];
      y[i] = gamma_.value[c] * x_hat_[i] + beta_.value[c];
    }
  }
  return y;
}

Tensor BatchNorm::backward(const Tensor& grad_out) {
  const std::size_t groups = grad_out.size() / channels_;
  const float n = static_cast<float>(groups);
  gamma_.grad.fill(0.0f);
  beta_.grad.fill(0.0f);

  std::vector<float> sum_g(channels_, 0.0f);
  std::vector<float> sum_gx(channels_, 0.0f);
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t c = 0; c < channels_; ++c) {
      const std::size_t i = g * channels_ + c;
      sum_g[c] += grad_out[i];
      sum_gx[c] += grad_out[i] * x_hat_[i];
    }
  }
  for (std::size_t c = 0; c < channels_; ++c) {
    gamma_.grad[c] = sum_gx[c];
    beta_.grad[c] = sum_g[c];
  }

  Tensor grad_in{grad_out.shape()};
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t c = 0; c < channels_; ++c) {
      const std::size_t i = g * channels_ + c;
      grad_in[i] = gamma_.value[c] * batch_inv_std_[c] / n *
                   (n * grad_out[i] - sum_g[c] - x_hat_[i] * sum_gx[c]);
    }
  }
  return grad_in;
}

std::vector<Parameter*> BatchNorm::parameters() { return {&gamma_, &beta_}; }

// ---------------------------------------------------------------- Flatten

Tensor Flatten::forward(const Tensor& x, bool /*training*/) {
  in_shape_ = x.shape();
  const std::size_t n = x.dim(0);
  return x.reshaped({n, x.size() / n});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(in_shape_);
}

// ------------------------------------------------------------------ Dense

Dense::Dense(std::size_t in_dim, std::size_t out_dim, std::uint64_t seed)
    : in_d_{in_dim}, out_d_{out_dim} {
  if (in_d_ == 0 || out_d_ == 0) throw util::ConfigError{"Dense: zero dims"};
  weight_.value = Tensor{{in_d_, out_d_}};
  weight_.grad = Tensor{{in_d_, out_d_}};
  bias_.value = Tensor{{out_d_}};
  bias_.grad = Tensor{{out_d_}};
  util::Rng rng{seed};
  he_uniform_init(weight_.value, in_d_, rng);
}

Tensor Dense::forward(const Tensor& x, bool /*training*/) {
  if (x.rank() != 2 || x.dim(1) != in_d_) {
    throw util::DataError{"Dense: expected (N, in_dim) input"};
  }
  input_ = x;
  const std::size_t n = x.dim(0);
  Tensor y{{n, out_d_}};
  const float* w = weight_.value.data();
  for (std::size_t b = 0; b < n; ++b) {
    float* out = &y.at2(b, 0);
    for (std::size_t o = 0; o < out_d_; ++o) out[o] = bias_.value[o];
    const float* in = &x.at2(b, 0);
    for (std::size_t i = 0; i < in_d_; ++i) {
      const float xv = in[i];
      const float* wrow = &w[i * out_d_];
      for (std::size_t o = 0; o < out_d_; ++o) out[o] += xv * wrow[o];
    }
  }
  return y;
}

Tensor Dense::backward(const Tensor& grad_out) {
  const std::size_t n = input_.dim(0);
  weight_.grad.fill(0.0f);
  bias_.grad.fill(0.0f);
  Tensor grad_in{{n, in_d_}};
  const float* w = weight_.value.data();
  float* wg = weight_.grad.data();
  for (std::size_t b = 0; b < n; ++b) {
    const float* gout = &grad_out.at2(b, 0);
    const float* in = &input_.at2(b, 0);
    float* gin = &grad_in.at2(b, 0);
    for (std::size_t o = 0; o < out_d_; ++o) bias_.grad[o] += gout[o];
    for (std::size_t i = 0; i < in_d_; ++i) {
      const float xv = in[i];
      const float* wrow = &w[i * out_d_];
      float* wgrow = &wg[i * out_d_];
      float acc = 0.0f;
      for (std::size_t o = 0; o < out_d_; ++o) {
        wgrow[o] += xv * gout[o];
        acc += wrow[o] * gout[o];
      }
      gin[i] = acc;
    }
  }
  return grad_in;
}

std::vector<Parameter*> Dense::parameters() { return {&weight_, &bias_}; }

}  // namespace emoleak::nn
