#include "nn/gemm.h"

#include <algorithm>
#include <cstring>

// The GEMM entry points are cloned for wider vector ISAs and resolved
// once at load time (glibc ifunc). AVX2 is enabled without FMA, so
// multiplies and adds stay separate IEEE operations and every clone
// produces bit-identical results — the dispatch only changes speed,
// never numerics. TSan builds skip the clones: the ifunc resolver runs
// during relocation, before the TSan runtime is initialized, and
// crashes at startup. Since all clones are bit-identical, the TSan
// build still validates the exact same math.
#if defined(__GNUC__) && !defined(__clang__) && defined(__x86_64__) && \
    defined(__gnu_linux__) && !defined(__SANITIZE_THREAD__)
#define EMOLEAK_GEMM_CLONES __attribute__((target_clones("default", "avx2")))
#else
#define EMOLEAK_GEMM_CLONES
#endif

namespace emoleak::nn {

namespace {

// Block sizes tuned for the layer shapes in this repo (patch matrices
// of a few thousand rows, tens-to-hundreds of columns). kKc keeps a
// panel of B in L1; kNc keeps the active C tile in L2. Correctness and
// bitwise results do not depend on these values: the k loop always
// advances in ascending order for every output element.
constexpr std::size_t kNc = 256;
constexpr std::size_t kKc = 64;
constexpr std::size_t kMr = 4;
}  // namespace

EMOLEAK_GEMM_CLONES void gemm(std::size_t m, std::size_t n, std::size_t k, const float* a,
          const float* b, float* c, bool accumulate) {
  if (!accumulate) std::fill(c, c + m * n, 0.0f);
  if (m == 0 || n == 0 || k == 0) return;
  for (std::size_t jc = 0; jc < n; jc += kNc) {
    const std::size_t nc = std::min(kNc, n - jc);
    for (std::size_t pc = 0; pc < k; pc += kKc) {
      const std::size_t kc = std::min(kKc, k - pc);
      std::size_t i = 0;
      for (; i + kMr <= m; i += kMr) {
        const float* __restrict a0 = a + (i + 0) * k + pc;
        const float* __restrict a1 = a + (i + 1) * k + pc;
        const float* __restrict a2 = a + (i + 2) * k + pc;
        const float* __restrict a3 = a + (i + 3) * k + pc;
        float* __restrict c0 = c + (i + 0) * n + jc;
        float* __restrict c1 = c + (i + 1) * n + jc;
        float* __restrict c2 = c + (i + 2) * n + jc;
        float* __restrict c3 = c + (i + 3) * n + jc;
        for (std::size_t p = 0; p < kc; ++p) {
          const float* __restrict brow = b + (pc + p) * n + jc;
          const float v0 = a0[p], v1 = a1[p], v2 = a2[p], v3 = a3[p];
          for (std::size_t j = 0; j < nc; ++j) {
            const float bv = brow[j];
            c0[j] += v0 * bv;
            c1[j] += v1 * bv;
            c2[j] += v2 * bv;
            c3[j] += v3 * bv;
          }
        }
      }
      for (; i < m; ++i) {
        const float* __restrict arow = a + i * k + pc;
        float* __restrict crow = c + i * n + jc;
        for (std::size_t p = 0; p < kc; ++p) {
          const float* __restrict brow = b + (pc + p) * n + jc;
          const float v = arow[p];
          for (std::size_t j = 0; j < nc; ++j) crow[j] += v * brow[j];
        }
      }
    }
  }
}

EMOLEAK_GEMM_CLONES void gemm_at(std::size_t m, std::size_t n, std::size_t k, const float* a,
             const float* b, float* c, bool accumulate) {
  // c[i][j] = sum_p a[p][i] * b[p][j]; p ascends in the outer loop so
  // each output element accumulates in contraction order.
  if (!accumulate) std::fill(c, c + m * n, 0.0f);
  if (m == 0 || n == 0 || k == 0) return;
  for (std::size_t pc = 0; pc < k; pc += kKc) {
    const std::size_t kc = std::min(kKc, k - pc);
    for (std::size_t i = 0; i < m; ++i) {
      float* crow = c + i * n;
      for (std::size_t p = 0; p < kc; ++p) {
        const float v = a[(pc + p) * m + i];
        const float* brow = b + (pc + p) * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += v * brow[j];
      }
    }
  }
}

EMOLEAK_GEMM_CLONES void gemm_bt(std::size_t m, std::size_t n, std::size_t k, const float* a,
             const float* b, float* c, bool accumulate) {
  // c[i][j] = dot(a_row_i, b_row_j): both operands are read along
  // contiguous rows, so no packing is needed at these sizes.
  if (m == 0 || n == 0) return;
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = accumulate ? crow[j] + acc : acc;
    }
  }
}

std::size_t conv_out_dim(std::size_t in, std::size_t kernel, std::size_t stride,
                         std::size_t pad) noexcept {
  const std::size_t padded = in + 2 * pad;
  if (padded < kernel || stride == 0) return 0;
  return (padded - kernel) / stride + 1;
}

void im2col(const float* in, std::size_t h, std::size_t w, std::size_t c,
            std::size_t kh, std::size_t kw, std::size_t stride_h,
            std::size_t stride_w, std::size_t pad_h, std::size_t pad_w,
            std::size_t oh, std::size_t ow, float* col) {
  const std::size_t row_len = kh * kw * c;
  for (std::size_t i = 0; i < oh; ++i) {
    for (std::size_t j = 0; j < ow; ++j) {
      float* dst = col + (i * ow + j) * row_len;
      for (std::size_t ki = 0; ki < kh; ++ki) {
        const std::ptrdiff_t ii = static_cast<std::ptrdiff_t>(i * stride_h + ki) -
                                  static_cast<std::ptrdiff_t>(pad_h);
        if (ii < 0 || ii >= static_cast<std::ptrdiff_t>(h)) {
          std::memset(dst, 0, kw * c * sizeof(float));
          dst += kw * c;
          continue;
        }
        const std::ptrdiff_t j0 = static_cast<std::ptrdiff_t>(j * stride_w) -
                                  static_cast<std::ptrdiff_t>(pad_w);
        if (stride_w == 1 && j0 >= 0 &&
            j0 + static_cast<std::ptrdiff_t>(kw) <=
                static_cast<std::ptrdiff_t>(w)) {
          // Fully in-bounds row of taps: one contiguous copy.
          std::memcpy(dst,
                      in + (static_cast<std::size_t>(ii) * w +
                            static_cast<std::size_t>(j0)) *
                               c,
                      kw * c * sizeof(float));
          dst += kw * c;
          continue;
        }
        for (std::size_t kj = 0; kj < kw; ++kj) {
          const std::ptrdiff_t jj =
              static_cast<std::ptrdiff_t>(j * stride_w + kj) -
              static_cast<std::ptrdiff_t>(pad_w);
          if (jj < 0 || jj >= static_cast<std::ptrdiff_t>(w)) {
            std::memset(dst, 0, c * sizeof(float));
          } else {
            std::memcpy(dst,
                        in + (static_cast<std::size_t>(ii) * w +
                              static_cast<std::size_t>(jj)) *
                                 c,
                        c * sizeof(float));
          }
          dst += c;
        }
      }
    }
  }
}

void col2im(const float* col, std::size_t h, std::size_t w, std::size_t c,
            std::size_t kh, std::size_t kw, std::size_t stride_h,
            std::size_t stride_w, std::size_t pad_h, std::size_t pad_w,
            std::size_t oh, std::size_t ow, float* in) {
  const std::size_t row_len = kh * kw * c;
  for (std::size_t i = 0; i < oh; ++i) {
    for (std::size_t j = 0; j < ow; ++j) {
      const float* src = col + (i * ow + j) * row_len;
      for (std::size_t ki = 0; ki < kh; ++ki) {
        const std::ptrdiff_t ii = static_cast<std::ptrdiff_t>(i * stride_h + ki) -
                                  static_cast<std::ptrdiff_t>(pad_h);
        if (ii < 0 || ii >= static_cast<std::ptrdiff_t>(h)) {
          src += kw * c;
          continue;
        }
        for (std::size_t kj = 0; kj < kw; ++kj) {
          const std::ptrdiff_t jj =
              static_cast<std::ptrdiff_t>(j * stride_w + kj) -
              static_cast<std::ptrdiff_t>(pad_w);
          if (jj >= 0 && jj < static_cast<std::ptrdiff_t>(w)) {
            float* dst = in + (static_cast<std::size_t>(ii) * w +
                               static_cast<std::size_t>(jj)) *
                                  c;
            for (std::size_t ch = 0; ch < c; ++ch) dst[ch] += src[ch];
          }
          src += c;
        }
      }
    }
  }
}

void conv2d_naive_forward(const float* x, std::size_t n, std::size_t h,
                          std::size_t w, std::size_t cin, const float* weight,
                          const float* bias, std::size_t kh, std::size_t kw,
                          std::size_t stride_h, std::size_t stride_w,
                          std::size_t pad_h, std::size_t pad_w, std::size_t oh,
                          std::size_t ow, std::size_t cout, float* y) {
  for (std::size_t b = 0; b < n; ++b) {
    const float* xb = x + b * h * w * cin;
    for (std::size_t i = 0; i < oh; ++i) {
      for (std::size_t j = 0; j < ow; ++j) {
        float* out = y + ((b * oh + i) * ow + j) * cout;
        for (std::size_t oc = 0; oc < cout; ++oc) {
          out[oc] = bias != nullptr ? bias[oc] : 0.0f;
        }
        for (std::size_t ki = 0; ki < kh; ++ki) {
          const std::ptrdiff_t ii =
              static_cast<std::ptrdiff_t>(i * stride_h + ki) -
              static_cast<std::ptrdiff_t>(pad_h);
          if (ii < 0 || ii >= static_cast<std::ptrdiff_t>(h)) continue;
          for (std::size_t kj = 0; kj < kw; ++kj) {
            const std::ptrdiff_t jj =
                static_cast<std::ptrdiff_t>(j * stride_w + kj) -
                static_cast<std::ptrdiff_t>(pad_w);
            if (jj < 0 || jj >= static_cast<std::ptrdiff_t>(w)) continue;
            const float* in = xb + (static_cast<std::size_t>(ii) * w +
                                    static_cast<std::size_t>(jj)) *
                                       cin;
            const float* wk = weight + (ki * kw + kj) * cin * cout;
            for (std::size_t ic = 0; ic < cin; ++ic) {
              const float xv = in[ic];
              const float* wrow = wk + ic * cout;
              for (std::size_t oc = 0; oc < cout; ++oc) out[oc] += xv * wrow[oc];
            }
          }
        }
      }
    }
  }
}

void conv2d_naive_backward(const float* x, const float* gout, std::size_t n,
                           std::size_t h, std::size_t w, std::size_t cin,
                           const float* weight, std::size_t kh, std::size_t kw,
                           std::size_t stride_h, std::size_t stride_w,
                           std::size_t pad_h, std::size_t pad_w, std::size_t oh,
                           std::size_t ow, std::size_t cout, float* gx,
                           float* gw, float* gb) {
  std::fill(gx, gx + n * h * w * cin, 0.0f);
  for (std::size_t b = 0; b < n; ++b) {
    const float* xb = x + b * h * w * cin;
    float* gxb = gx + b * h * w * cin;
    for (std::size_t i = 0; i < oh; ++i) {
      for (std::size_t j = 0; j < ow; ++j) {
        const float* g = gout + ((b * oh + i) * ow + j) * cout;
        for (std::size_t oc = 0; oc < cout; ++oc) gb[oc] += g[oc];
        for (std::size_t ki = 0; ki < kh; ++ki) {
          const std::ptrdiff_t ii =
              static_cast<std::ptrdiff_t>(i * stride_h + ki) -
              static_cast<std::ptrdiff_t>(pad_h);
          if (ii < 0 || ii >= static_cast<std::ptrdiff_t>(h)) continue;
          for (std::size_t kj = 0; kj < kw; ++kj) {
            const std::ptrdiff_t jj =
                static_cast<std::ptrdiff_t>(j * stride_w + kj) -
                static_cast<std::ptrdiff_t>(pad_w);
            if (jj < 0 || jj >= static_cast<std::ptrdiff_t>(w)) continue;
            const std::size_t off = (static_cast<std::size_t>(ii) * w +
                                     static_cast<std::size_t>(jj)) *
                                    cin;
            const float* in = xb + off;
            float* gin = gxb + off;
            const std::size_t base = (ki * kw + kj) * cin * cout;
            for (std::size_t ic = 0; ic < cin; ++ic) {
              const float xv = in[ic];
              const float* wrow = weight + base + ic * cout;
              float* gwrow = gw + base + ic * cout;
              float acc = 0.0f;
              for (std::size_t oc = 0; oc < cout; ++oc) {
                const float gv = g[oc];
                gwrow[oc] += xv * gv;
                acc += wrow[oc] * gv;
              }
              gin[ic] += acc;
            }
          }
        }
      }
    }
  }
}

}  // namespace emoleak::nn
