#include "tasks/task_spec.h"

#include <algorithm>

#include "audio/voice.h"
#include "util/error.h"

namespace emoleak::tasks {

TaskSpec emotion_task() {
  return TaskSpec{TaskKind::kEmotion, "emotion",
                  core::FeatureRoute::kTableFeatures, 0};
}

TaskSpec speaker_task(std::size_t max_speakers) {
  return TaskSpec{TaskKind::kSpeaker, "speaker",
                  core::FeatureRoute::kTableFeatures, max_speakers};
}

TaskSpec gender_task() {
  return TaskSpec{TaskKind::kGender, "gender",
                  core::FeatureRoute::kTableFeatures, 0};
}

TaskSpec media_task() {
  return TaskSpec{TaskKind::kMedia, "media",
                  core::FeatureRoute::kSpectrogramImage, 0};
}

std::vector<TaskSpec> builtin_tasks() {
  return {emotion_task(), speaker_task(), gender_task(), media_task()};
}

ml::Dataset build_dataset(const TaskSpec& spec,
                          const core::ExtractedData& data,
                          const audio::Corpus& corpus) {
  if (data.features.x.size() != data.speaker_ids.size()) {
    throw util::DataError{
        "tasks::build_dataset: speaker ids misaligned with feature rows"};
  }
  switch (spec.kind) {
    case TaskKind::kEmotion:
      return data.features;
    case TaskKind::kSpeaker: {
      // Class = corpus speaker id; when capped, keep the first
      // max_classes speakers (the Spearphone-style 10-actor subset) so
      // the label space stays dense in [0, cap).
      const std::size_t cap =
          spec.max_classes == 0
              ? static_cast<std::size_t>(corpus.spec().speaker_count)
              : std::min<std::size_t>(
                    spec.max_classes,
                    static_cast<std::size_t>(corpus.spec().speaker_count));
      ml::Dataset out;
      out.class_count = static_cast<int>(cap);
      out.feature_names = data.features.feature_names;
      for (std::size_t c = 0; c < cap; ++c) {
        out.class_names.push_back("speaker_" + std::to_string(c));
      }
      for (std::size_t i = 0; i < data.features.x.size(); ++i) {
        const int speaker = data.speaker_ids[i];
        if (speaker < 0 || static_cast<std::size_t>(speaker) >= cap) continue;
        out.x.push_back(data.features.x[i]);
        out.y.push_back(speaker);
      }
      return out;
    }
    case TaskKind::kGender: {
      ml::Dataset out;
      out.class_count = 2;
      out.feature_names = data.features.feature_names;
      out.class_names = {"female", "male"};
      const std::vector<audio::SpeakerVoice>& speakers = corpus.speakers();
      for (std::size_t i = 0; i < data.features.x.size(); ++i) {
        const int speaker = data.speaker_ids[i];
        if (speaker < 0 ||
            static_cast<std::size_t>(speaker) >= speakers.size()) {
          continue;
        }
        out.x.push_back(data.features.x[i]);
        out.y.push_back(
            speakers[static_cast<std::size_t>(speaker)].gender ==
                    audio::Gender::kMale
                ? 1
                : 0);
      }
      return out;
    }
    case TaskKind::kMedia:
      throw util::ConfigError{
          "tasks::build_dataset: media fingerprints train from clip "
          "replays — use tasks::media_dataset"};
  }
  throw util::ConfigError{"tasks::build_dataset: unknown task kind"};
}

}  // namespace emoleak::tasks
