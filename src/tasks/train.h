// Per-task training entry points.
//
// One call turns a TaskSpec into a trained, held-out-evaluated model
// ready to register in serve::ModelRegistry under the spec's name —
// the bridge between the offline attack pipeline (core::capture) and
// the serving layer. All four built-in tasks train from the *same
// simulated capture posture* (one scenario), which is the point: one
// exfiltrated trace, N attack heads.
//
// A MitigationConfig hooks in between recording and extraction, so the
// accuracy-vs-mitigation study (bench_tasks) measures exactly what a
// capture-side defense would have removed from the attacker's input.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/attack.h"
#include "ml/logistic.h"
#include "serve/model_registry.h"
#include "tasks/fingerprint.h"
#include "tasks/mitigation.h"
#include "tasks/task_spec.h"

namespace emoleak::tasks {

struct TaskTrainConfig {
  /// Capture posture for the schedule-labelled tasks (emotion, speaker,
  /// gender); also supplies phone/pipeline defaults for media.
  core::ScenarioConfig scenario;
  /// Media fingerprint: library size and how many times the library is
  /// replayed (each replay is a fresh recording with its own gaps and
  /// channel noise, giving per-clip training diversity).
  std::size_t media_clips = 8;
  std::size_t media_repetitions = 6;
  /// Train/test protocol for the held-out accuracy every task reports.
  double train_fraction = 0.8;
  std::uint64_t split_seed = 17;
  ml::LogisticConfig logistic;        ///< head for Table-II-route tasks
  FingerprintConfig fingerprint;      ///< head for the media task
  MitigationConfig mitigation;        ///< capture-side defense (noop = off)
};

struct TrainedTask {
  TaskSpec spec;
  std::shared_ptr<const ml::Classifier> model;
  double accuracy = 0.0;  ///< held-out (stratified split) accuracy
  std::size_t train_rows = 0;
  std::size_t test_rows = 0;
};

/// Captures the scenario once (recording -> optional mitigation ->
/// extraction). Exposed so callers training several schedule-labelled
/// tasks can share one capture instead of re-simulating per task.
[[nodiscard]] core::ExtractedData capture_mitigated(
    const TaskTrainConfig& config);

/// Builds the media-fingerprint training set: `media_clips` clips drawn
/// evenly from the scenario's corpus, replayed `media_repetitions`
/// times (distinct recorder seeds), regions labelled with clip identity
/// via core::label_regions, each region rendered as the spectrogram
/// image the serving route (FeatureRoute::kSpectrogramImage) computes.
[[nodiscard]] ml::Dataset media_dataset(const TaskTrainConfig& config);

/// Trains one task end to end and reports its held-out accuracy. The
/// returned model is fitted on the training split only, so the
/// accuracy is honest for exactly the model being served.
[[nodiscard]] TrainedTask train_task(const TaskSpec& spec,
                                     const TaskTrainConfig& config);

/// Trains all four built-in tasks. The schedule-labelled tasks share
/// one capture; media replays its clip library separately.
[[nodiscard]] std::vector<TrainedTask> train_builtin_tasks(
    const TaskTrainConfig& config);

/// Registers a trained task under its spec name (with its feature
/// route); returns the registry version. Registering `emotion` first
/// makes it the serving default.
std::uint32_t register_task(serve::ModelRegistry& registry,
                            const TrainedTask& task);
std::vector<std::uint32_t> register_tasks(serve::ModelRegistry& registry,
                                          std::span<const TrainedTask> trained);

}  // namespace emoleak::tasks
