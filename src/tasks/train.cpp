#include "tasks/train.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "core/speech_region.h"
#include "dsp/stft.h"
#include "obs/obs.h"
#include "util/error.h"
#include "util/rng.h"

namespace emoleak::tasks {

namespace {

/// The corpus a scenario captures from — must match core::capture's
/// construction exactly so build_dataset's speaker metadata lines up
/// with the capture's speaker ids.
audio::Corpus scenario_corpus(const core::ScenarioConfig& config) {
  audio::DatasetSpec spec = config.dataset;
  if (config.corpus_fraction != 1.0) {
    spec = audio::scaled_spec(spec, config.corpus_fraction);
  }
  return audio::Corpus{spec, config.seed};
}

/// Held-out evaluation: fits a fresh clone on the training split and
/// scores the test split. Returns the fitted model (exactly what gets
/// served) plus its honest accuracy.
TrainedTask fit_and_score(TaskSpec spec, const ml::Classifier& prototype,
                          ml::Dataset data, const TaskTrainConfig& config) {
  TrainedTask out;
  out.spec = std::move(spec);
  data.drop_invalid();
  if (data.size() < 4) {
    // A harsh mitigation can erase every detectable region; report
    // zero accuracy and no model rather than throwing mid-sweep.
    return out;
  }
  util::Rng rng{config.split_seed};
  ml::Split split = ml::train_test_split(data, config.train_fraction, rng);
  if (split.train.size() == 0 || split.test.size() == 0) return out;

  std::unique_ptr<ml::Classifier> model = prototype.clone();
  model->fit(split.train);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < split.test.size(); ++i) {
    if (model->predict(split.test.x[i]) == split.test.y[i]) ++correct;
  }
  out.accuracy =
      static_cast<double>(correct) / static_cast<double>(split.test.size());
  out.train_rows = split.train.size();
  out.test_rows = split.test.size();
  out.model = std::shared_ptr<const ml::Classifier>{std::move(model)};
  return out;
}

}  // namespace

core::ExtractedData capture_mitigated(const TaskTrainConfig& config) {
  OBS_SPAN("tasks.capture");
  const audio::Corpus corpus = scenario_corpus(config.scenario);
  phone::RecorderConfig rec_cfg;
  rec_cfg.speaker = config.scenario.speaker;
  rec_cfg.posture = config.scenario.posture;
  rec_cfg.seed = config.scenario.seed ^ 0x5E5510ULL;
  phone::Recording recording =
      record_session(corpus, config.scenario.phone, rec_cfg);
  if (!config.mitigation.is_noop()) {
    recording = apply_mitigation(recording, config.mitigation);
  }
  return core::extract(recording, config.scenario.pipeline);
}

ml::Dataset media_dataset(const TaskTrainConfig& config) {
  OBS_SPAN("tasks.media_dataset");
  if (config.media_clips < 2) {
    throw util::ConfigError{"media_dataset: need at least 2 clips"};
  }
  if (config.media_repetitions == 0) {
    throw util::ConfigError{"media_dataset: need at least 1 repetition"};
  }
  const audio::Corpus corpus = scenario_corpus(config.scenario);
  if (corpus.size() < config.media_clips) {
    throw util::ConfigError{"media_dataset: corpus smaller than library"};
  }

  // Library: clips drawn evenly across the corpus, so the fingerprints
  // span speakers and emotions instead of one speaker's block.
  std::vector<std::size_t> library;
  std::unordered_map<std::size_t, int> clip_class;
  for (std::size_t j = 0; j < config.media_clips; ++j) {
    const std::size_t index = j * corpus.size() / config.media_clips;
    library.push_back(index);
    clip_class.emplace(index, static_cast<int>(j));
  }

  const core::PipelineConfig& pipeline = config.scenario.pipeline;
  const core::SpeechRegionDetector detector{pipeline.detector};

  ml::Dataset out;
  out.class_count = static_cast<int>(config.media_clips);
  for (const std::size_t index : library) {
    out.class_names.push_back("clip_" + std::to_string(index));
  }

  for (std::size_t rep = 0; rep < config.media_repetitions; ++rep) {
    phone::RecorderConfig rec_cfg;
    rec_cfg.speaker = config.scenario.speaker;
    rec_cfg.posture = config.scenario.posture;
    // Same-emotion grouping is a prosody-task aid; media replays keep
    // library order so every repetition covers every clip.
    rec_cfg.group_by_emotion = false;
    rec_cfg.seed = (config.scenario.seed ^ 0x5E5510ULL) + 7919 * (rep + 1);
    phone::Recording recording = record_session(
        corpus, library, config.scenario.phone, rec_cfg);
    if (!config.mitigation.is_noop()) {
      recording = apply_mitigation(recording, config.mitigation);
    }

    const std::vector<core::Region> regions =
        detector.detect(recording.accel, recording.rate_hz);
    for (const core::LabelledRegion& labelled :
         core::label_regions(regions, recording)) {
      const core::Region& region = labelled.region;
      if (region.end > recording.accel.size() || region.length() < 8) {
        continue;
      }
      const auto it = clip_class.find(
          recording.schedule[labelled.schedule_index].corpus_index);
      if (it == clip_class.end()) continue;

      // Same rendering as the serving route (StreamingAttack's
      // kSpectrogramImage branch): DC-center over the region, STFT,
      // fixed-size image — trained fingerprints and served regions
      // live in the same input space.
      std::vector<double> slice(
          recording.accel.begin() + static_cast<std::ptrdiff_t>(region.start),
          recording.accel.begin() + static_cast<std::ptrdiff_t>(region.end));
      double mean = 0.0;
      for (const double v : slice) mean += v;
      mean /= static_cast<double>(slice.size());
      for (double& v : slice) v -= mean;
      const dsp::Spectrogram spec =
          dsp::stft(slice, recording.rate_hz, pipeline.stft);
      out.x.push_back(dsp::spectrogram_image(spec, pipeline.image_size,
                                             pipeline.image_size));
      out.y.push_back(it->second);
    }
  }
  return out;
}

TrainedTask train_task(const TaskSpec& spec, const TaskTrainConfig& config) {
  OBS_SPAN_ARG("tasks.train", "task", spec.name.size());
  if (spec.kind == TaskKind::kMedia) {
    return fit_and_score(spec, FingerprintClassifier{config.fingerprint},
                         media_dataset(config), config);
  }
  const audio::Corpus corpus = scenario_corpus(config.scenario);
  const core::ExtractedData data = capture_mitigated(config);
  return fit_and_score(spec, ml::LogisticRegression{config.logistic},
                       build_dataset(spec, data, corpus), config);
}

std::vector<TrainedTask> train_builtin_tasks(const TaskTrainConfig& config) {
  // The schedule-labelled tasks share one capture: the attacker gets
  // one trace and derives every label view from the same schedule.
  const audio::Corpus corpus = scenario_corpus(config.scenario);
  const core::ExtractedData data = capture_mitigated(config);

  std::vector<TrainedTask> out;
  for (const TaskSpec& spec : builtin_tasks()) {
    if (spec.kind == TaskKind::kMedia) {
      out.push_back(fit_and_score(spec,
                                  FingerprintClassifier{config.fingerprint},
                                  media_dataset(config), config));
    } else {
      out.push_back(fit_and_score(spec,
                                  ml::LogisticRegression{config.logistic},
                                  build_dataset(spec, data, corpus), config));
    }
  }
  return out;
}

std::uint32_t register_task(serve::ModelRegistry& registry,
                            const TrainedTask& task) {
  if (!task.model) return 0;  // nothing trainable (mitigated to silence)
  return registry.add(task.spec.name, task.model, task.spec.route);
}

std::vector<std::uint32_t> register_tasks(
    serve::ModelRegistry& registry, std::span<const TrainedTask> trained) {
  std::vector<std::uint32_t> versions;
  versions.reserve(trained.size());
  for (const TrainedTask& task : trained) {
    versions.push_back(register_task(registry, task));
  }
  return versions;
}

}  // namespace emoleak::tasks
