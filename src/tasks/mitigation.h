// Touchtone-style capture-side mitigations.
//
// The defenses the paper's discussion section (and Touchtone/OS
// vendors) propose against motion-sensor eavesdropping act at the
// *capture* point, before any app sees samples: cap the sensor's
// sample rate, and/or low-pass the signal below the speech band. This
// module models both as a streaming filter so the mitigation study can
// sweep their strength and measure per-task accuracy loss:
//
//   raw 420 Hz samples -> Butterworth low-pass -> nearest-sample
//   decimation to target_rate_hz -> what the "attacker app" receives
//
// MitigationFilter is stateful and *chunk-invariant*: feeding a signal
// in any chunking yields bit-identical output (the determinism contract
// the serving layer is built on, and what test_tasks pins down). The
// decimator reproduces dsp::resample_nearest's sample selection —
// out[k] = in[round(k * in_rate / out_rate)] — incrementally, so the
// offline and streaming paths agree exactly.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/filter.h"
#include "phone/recorder.h"

namespace emoleak::tasks {

struct MitigationConfig {
  /// Low-pass cutoff in Hz; 0 disables filtering. Touchtone-style
  /// defenses cut around 20-50 Hz, well below the speech band the
  /// attack feeds on.
  double lowpass_hz = 0.0;
  int lowpass_order = 4;  ///< Butterworth order (even)
  /// Output sample rate; 0 keeps the input rate. OS rate caps are the
  /// most deployable mitigation (Android caps ungranted sensors at
  /// 200 Hz; stronger caps go lower).
  double target_rate_hz = 0.0;

  /// True when the config changes nothing (no filter, no rate change).
  [[nodiscard]] bool is_noop() const noexcept {
    return lowpass_hz <= 0.0 && target_rate_hz <= 0.0;
  }

  void validate(double input_rate_hz) const;
};

class MitigationFilter {
 public:
  MitigationFilter(MitigationConfig config, double input_rate_hz);

  /// Filters + decimates one chunk; returns the mitigated samples that
  /// fall within it (possibly none when decimating). Chunk-invariant:
  /// concatenating the outputs over any chunking of a signal equals
  /// one whole-signal call.
  [[nodiscard]] std::vector<double> push(std::span<const double> samples);

  /// Rewinds filter state and sample counters for reuse.
  void reset();

  [[nodiscard]] double output_rate_hz() const noexcept { return out_rate_; }

 private:
  MitigationConfig config_;
  double in_rate_ = 0.0;
  double out_rate_ = 0.0;
  dsp::BiquadCascade lowpass_;
  bool use_lowpass_ = false;
  bool decimate_ = false;
  std::size_t in_index_ = 0;   ///< absolute input sample counter
  std::size_t out_index_ = 0;  ///< next output sample to emit
};

/// Applies the mitigation to a whole recording: accel is filtered +
/// resampled, rate_hz becomes the mitigated rate, and the playback
/// schedule's sample indices are rescaled so core::label_regions still
/// aligns regions with ground truth. A no-op config returns the input
/// unchanged.
[[nodiscard]] phone::Recording apply_mitigation(const phone::Recording& recording,
                                                const MitigationConfig& config);

}  // namespace emoleak::tasks
