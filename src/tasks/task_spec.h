// Task definitions: what one motion trace leaks, beyond emotion.
//
// The paper's channel carries more than emotional prosody: the same
// accelerometer trace identifies the speaker and their gender (EarSpy,
// Spearphone) and fingerprints the media being played (Kinetic Song
// Comprehension). A TaskSpec names one such attack task and pins down
// everything the rest of the stack needs to treat tasks uniformly:
//
//   - the *label space* (emotion classes, speaker ids, gender, clip
//     ids) and how labels derive from the playback schedule that
//     core::label_regions already aligns with detected regions;
//   - the *feature route* a region takes before classification
//     (core::FeatureRoute): Table-II features for the prosody-shaped
//     tasks, the 32x32 spectrogram image for fingerprint matching;
//   - the *registry name* the trained model serves under, so one
//     serve::ModelRegistry holds all tasks concurrently and a stream
//     picks its task with a StreamStart frame.
//
// build_dataset() is the single labelling point: it turns one capture
// (core::ExtractedData, whose rows are aligned with speaker_ids and
// spectrograms) into the task's training set. The media-fingerprint
// task needs clip identities that ExtractedData does not carry, so it
// trains through tasks::media_dataset (train.h) instead.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "audio/corpus.h"
#include "core/pipeline.h"
#include "core/streaming.h"
#include "ml/dataset.h"

namespace emoleak::tasks {

enum class TaskKind {
  kEmotion,   ///< the paper's core task (7-way prosody classes)
  kSpeaker,   ///< which corpus speaker produced the region
  kGender,    ///< binary, from the corpus speaker metadata
  kMedia,     ///< which library clip was playing (fingerprint match)
};

struct TaskSpec {
  TaskKind kind = TaskKind::kEmotion;
  /// Registry/model name; what StreamStartMsg::model_name selects.
  std::string name;
  core::FeatureRoute route = core::FeatureRoute::kTableFeatures;
  /// Speaker task only: cap on distinct speakers (the Spearphone-style
  /// 10-actor protocol keeps the label space comparable across
  /// datasets). 0 = no cap.
  std::size_t max_classes = 0;
};

/// The four built-in tasks, in registration order. `emotion` serves as
/// the registry default (it registers first).
[[nodiscard]] TaskSpec emotion_task();
[[nodiscard]] TaskSpec speaker_task(std::size_t max_speakers = 10);
[[nodiscard]] TaskSpec gender_task();
[[nodiscard]] TaskSpec media_task();
[[nodiscard]] std::vector<TaskSpec> builtin_tasks();

/// Derives the task's labelled training set from one capture. Rows come
/// from `data.features` (Table-II route) with labels re-derived from
/// the schedule-aligned speaker ids:
///   - kEmotion: passthrough of the emotion labels;
///   - kSpeaker: class = speaker id, rows from speakers >= max_classes
///     dropped (when capped);
///   - kGender: class = 0 female / 1 male via corpus.speakers().
/// Throws util::ConfigError for kMedia — media needs clip replays (see
/// tasks::media_dataset).
[[nodiscard]] ml::Dataset build_dataset(const TaskSpec& spec,
                                        const core::ExtractedData& data,
                                        const audio::Corpus& corpus);

}  // namespace emoleak::tasks
