#include "tasks/fingerprint.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <istream>
#include <ostream>

#include "ml/logistic.h"   // softmax_inplace
#include "ml/serialize.h"  // detail::check_count limits
#include "util/error.h"

namespace emoleak::tasks {

void FingerprintClassifier::fit(const ml::Dataset& data) {
  data.validate();
  if (data.size() == 0) {
    throw util::DataError{"FingerprintClassifier::fit: empty dataset"};
  }
  classes_ = data.class_count;
  dim_ = data.dim();
  templates_.assign(static_cast<std::size_t>(classes_) * dim_, 0.0);
  std::vector<std::size_t> counts(static_cast<std::size_t>(classes_), 0);

  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto c = static_cast<std::size_t>(data.y[i]);
    double* t = templates_.data() + c * dim_;
    for (std::size_t j = 0; j < dim_; ++j) t[j] += data.x[i][j];
    ++counts[c];
  }
  for (std::size_t c = 0; c < static_cast<std::size_t>(classes_); ++c) {
    if (counts[c] == 0) continue;  // zero template: never matches
    double* t = templates_.data() + c * dim_;
    double norm = 0.0;
    for (std::size_t j = 0; j < dim_; ++j) norm += t[j] * t[j];
    norm = std::sqrt(norm);
    if (norm <= 0.0) continue;
    for (std::size_t j = 0; j < dim_; ++j) t[j] /= norm;
  }
}

std::vector<double> FingerprintClassifier::similarities(
    std::span<const double> row) const {
  if (classes_ == 0) {
    throw util::DataError{"FingerprintClassifier: not fitted"};
  }
  if (row.size() != dim_) {
    throw util::DataError{"FingerprintClassifier: row dimension mismatch"};
  }
  double row_norm = 0.0;
  for (const double v : row) row_norm += v * v;
  row_norm = std::sqrt(row_norm);
  const double inv = row_norm > 0.0 ? 1.0 / row_norm : 0.0;

  std::vector<double> sims(static_cast<std::size_t>(classes_), 0.0);
  for (std::size_t c = 0; c < sims.size(); ++c) {
    const double* t = templates_.data() + c * dim_;
    double dot = 0.0;
    for (std::size_t j = 0; j < dim_; ++j) dot += t[j] * row[j];
    sims[c] = dot * inv;  // templates are unit-norm already
  }
  return sims;
}

int FingerprintClassifier::predict(std::span<const double> row) const {
  const std::vector<double> sims = similarities(row);
  return static_cast<int>(
      std::max_element(sims.begin(), sims.end()) - sims.begin());
}

std::vector<double> FingerprintClassifier::predict_proba(
    std::span<const double> row) const {
  std::vector<double> sims = similarities(row);
  for (double& s : sims) s *= config_.sharpness;
  ml::softmax_inplace(sims);
  return sims;
}

std::vector<double> FingerprintClassifier::predict_proba_batch(
    std::span<const double> rows, std::size_t dim, std::size_t count) const {
  if (classes_ == 0) {
    throw util::DataError{"FingerprintClassifier: not fitted"};
  }
  if (rows.size() != dim * count) {
    throw util::DataError{"FingerprintClassifier: rows/dim/count mismatch"};
  }
  const auto classes = static_cast<std::size_t>(classes_);
  std::vector<double> out(count * classes, 0.0);
  // Templates stay hot across the batch; per row this is exactly the
  // similarities → sharpness → softmax chain of predict_proba.
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<double> sims = similarities(rows.subspan(i * dim, dim));
    for (double& s : sims) s *= config_.sharpness;
    ml::softmax_inplace(sims);
    std::copy(sims.begin(), sims.end(), out.begin() + i * classes);
  }
  return out;
}

std::unique_ptr<ml::Classifier> FingerprintClassifier::clone() const {
  return std::make_unique<FingerprintClassifier>(*this);
}

void FingerprintClassifier::serialize(std::ostream& out) const {
  if (classes_ == 0) {
    throw util::DataError{"FingerprintClassifier::serialize: not fitted"};
  }
  out << std::setprecision(17);
  out << "fingerprint " << config_.sharpness << ' ' << classes_ << ' '
      << dim_ << '\n';
  for (const double v : templates_) out << v << ' ';
  out << '\n';
}

void FingerprintClassifier::deserialize(std::istream& in) {
  std::string tag;
  double sharpness = 0.0;
  std::size_t classes = 0;
  std::size_t dim = 0;
  if (!(in >> tag >> sharpness >> classes >> dim) || tag != "fingerprint") {
    throw util::DataError{"FingerprintClassifier: malformed header"};
  }
  ml::detail::check_count(classes, ml::detail::kMaxClasses,
                          "fingerprint classes");
  ml::detail::check_count(dim, ml::detail::kMaxDim, "fingerprint dim");
  std::vector<double> templates(classes * dim);
  for (double& v : templates) {
    if (!(in >> v)) {
      throw util::DataError{"FingerprintClassifier: truncated templates"};
    }
  }
  config_.sharpness = sharpness;
  classes_ = static_cast<int>(classes);
  dim_ = dim;
  templates_ = std::move(templates);
}

}  // namespace emoleak::tasks
