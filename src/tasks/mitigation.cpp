#include "tasks/mitigation.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace emoleak::tasks {

void MitigationConfig::validate(double input_rate_hz) const {
  if (input_rate_hz <= 0.0) {
    throw util::ConfigError{"MitigationConfig: input rate <= 0"};
  }
  if (lowpass_hz < 0.0) {
    throw util::ConfigError{"MitigationConfig: lowpass_hz < 0"};
  }
  if (lowpass_hz > 0.0) {
    if (lowpass_hz >= 0.5 * input_rate_hz) {
      throw util::ConfigError{
          "MitigationConfig: lowpass_hz at or above Nyquist"};
    }
    if (lowpass_order <= 0 || lowpass_order % 2 != 0) {
      throw util::ConfigError{
          "MitigationConfig: lowpass_order must be even and > 0"};
    }
  }
  if (target_rate_hz < 0.0) {
    throw util::ConfigError{"MitigationConfig: target_rate_hz < 0"};
  }
  if (target_rate_hz > 0.0 && target_rate_hz > input_rate_hz) {
    // A capture-side cap can only reduce the rate; "mitigating" upward
    // would fabricate samples.
    throw util::ConfigError{
        "MitigationConfig: target_rate_hz above the input rate"};
  }
}

MitigationFilter::MitigationFilter(MitigationConfig config,
                                   double input_rate_hz)
    : config_{config}, in_rate_{input_rate_hz} {
  config_.validate(in_rate_);
  if (config_.lowpass_hz > 0.0) {
    lowpass_ = dsp::BiquadCascade::butterworth_lowpass(
        config_.lowpass_order, config_.lowpass_hz, in_rate_);
    use_lowpass_ = true;
  }
  out_rate_ =
      config_.target_rate_hz > 0.0 ? config_.target_rate_hz : in_rate_;
  decimate_ = out_rate_ < in_rate_;
}

std::vector<double> MitigationFilter::push(std::span<const double> samples) {
  std::vector<double> out;
  if (!decimate_) out.reserve(samples.size());
  const double ratio = in_rate_ / out_rate_;  // >= 1 by validation
  for (const double v : samples) {
    const double y = use_lowpass_ ? lowpass_.process(v) : v;
    if (!decimate_) {
      out.push_back(y);
      ++in_index_;
      continue;
    }
    // Nearest-sample decimation, incrementally: emit output k exactly
    // when its source index round(k * in/out) — the same selection as
    // dsp::resample_nearest — is the sample being consumed now. Only
    // absolute indices matter, so chunk boundaries cannot shift which
    // samples are kept (the chunk-invariance contract).
    for (;;) {
      const auto src = static_cast<std::size_t>(
          std::llround(static_cast<double>(out_index_) * ratio));
      if (src != in_index_) break;
      out.push_back(y);
      ++out_index_;
    }
    ++in_index_;
  }
  return out;
}

void MitigationFilter::reset() {
  lowpass_.reset();
  in_index_ = 0;
  out_index_ = 0;
}

phone::Recording apply_mitigation(const phone::Recording& recording,
                                  const MitigationConfig& config) {
  if (config.is_noop()) return recording;
  MitigationFilter filter{config, recording.rate_hz};

  phone::Recording out;
  out.accel = filter.push(std::span<const double>{recording.accel.data(),
                                                  recording.accel.size()});
  out.rate_hz = filter.output_rate_hz();
  out.dataset = recording.dataset;

  // Rescale the playback schedule into the mitigated timebase so
  // core::label_regions still aligns detected regions with ground
  // truth (the labels describe wall-clock playback, not sample counts).
  const double scale = out.rate_hz / recording.rate_hz;
  out.schedule = recording.schedule;
  const std::size_t n = out.accel.size();
  for (phone::ScheduledUtterance& u : out.schedule) {
    u.start_sample = std::min<std::size_t>(
        n, static_cast<std::size_t>(
               std::llround(static_cast<double>(u.start_sample) * scale)));
    u.end_sample = std::min<std::size_t>(
        n, static_cast<std::size_t>(
               std::llround(static_cast<double>(u.end_sample) * scale)));
  }
  return out;
}

}  // namespace emoleak::tasks
