// Media fingerprinting over the spectrogram route.
//
// Kinetic-Song-Comprehension-style matching: each library clip's
// motion-side signature is the mean of its training regions' 32x32
// spectrogram images, and a query region is assigned to the template
// with the highest cosine similarity. Implemented as an ml::Classifier
// so the whole existing stack — core::evaluate_classical, model
// serialization, serve::ModelRegistry, StreamingAttack — treats a
// fingerprint matcher exactly like any other model; only the feature
// route differs (core::FeatureRoute::kSpectrogramImage).
#pragma once

#include <cstddef>
#include <vector>

#include "ml/classifier.h"

namespace emoleak::tasks {

struct FingerprintConfig {
  /// Softmax temperature turning cosine similarities into the
  /// probability vector predict_proba reports. Similarities live in
  /// [-1, 1], so a sharpness of ~16 separates a 0.1 cosine margin into
  /// a confident posterior without saturating to one-hot.
  double sharpness = 16.0;
};

class FingerprintClassifier final : public ml::Classifier {
 public:
  FingerprintClassifier() = default;
  explicit FingerprintClassifier(FingerprintConfig config)
      : config_{config} {}

  /// Fits one template per class: the per-class mean of the training
  /// rows (flattened spectrogram images), L2-normalized. A class with
  /// no rows gets a zero template (never wins a match).
  void fit(const ml::Dataset& data) override;

  [[nodiscard]] int predict(std::span<const double> row) const override;
  [[nodiscard]] std::vector<double> predict_proba(
      std::span<const double> row) const override;
  [[nodiscard]] std::vector<double> predict_proba_batch(
      std::span<const double> rows, std::size_t dim,
      std::size_t count) const override;
  [[nodiscard]] std::unique_ptr<ml::Classifier> clone() const override;
  [[nodiscard]] std::string name() const override { return "Fingerprint"; }
  void serialize(std::ostream& out) const override;
  void deserialize(std::istream& in) override;

  [[nodiscard]] const FingerprintConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] int classes() const noexcept { return classes_; }

 private:
  /// Cosine similarity of `row` against each class template.
  [[nodiscard]] std::vector<double> similarities(
      std::span<const double> row) const;

  FingerprintConfig config_{};
  int classes_ = 0;
  std::size_t dim_ = 0;
  std::vector<double> templates_;  ///< classes x dim, L2-normalized rows
};

}  // namespace emoleak::tasks
