#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace emoleak::net {

NetError errno_error(const std::string& what) {
  return NetError{what + ": " + std::strerror(errno)};
}

void Fd::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener make_listener(std::uint16_t port, int backlog) {
  Fd fd{::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0)};
  if (!fd.valid()) throw errno_error("net: socket");

  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) != 0) {
    throw errno_error("net: setsockopt(SO_REUSEADDR)");
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    throw errno_error("net: bind");
  }
  if (::listen(fd.get(), backlog) != 0) throw errno_error("net: listen");

  // Resolve the ephemeral port the kernel picked for port 0.
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    throw errno_error("net: getsockname");
  }
  return Listener{std::move(fd), ntohs(bound.sin_port)};
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    throw errno_error("net: fcntl(O_NONBLOCK)");
  }
}

void set_nodelay(int fd) noexcept {
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

Fd connect_loopback(std::uint16_t port) {
  Fd fd{::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0)};
  if (!fd.valid()) throw errno_error("net: socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    throw errno_error("net: connect");
  }
  set_nodelay(fd.get());
  return fd;
}

Fd connect_loopback_nonblocking(std::uint16_t port) {
  Fd fd{::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0)};
  if (!fd.valid()) throw errno_error("net: socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0 &&
      errno != EINPROGRESS) {
    throw errno_error("net: connect");
  }
  set_nodelay(fd.get());
  return fd;
}

}  // namespace emoleak::net
