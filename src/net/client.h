// Minimal blocking client for the emoleak::serve TCP transport — the
// counterpart tests and tools speak to NetServer with. One socket, one
// receive buffer, frames reassembled through the same resumable
// FrameReader the server uses (so a frame split across TCP segments is
// exercised on both sides of the wire).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "net/socket.h"
#include "serve/protocol.h"

namespace emoleak::net {

class BlockingClient {
 public:
  /// Connects to 127.0.0.1:`port`. Throws NetError on failure.
  explicit BlockingClient(std::uint16_t port);

  /// Encodes and writes one frame (fully — loops over short writes).
  void send(const serve::Message& msg);

  /// Writes raw bytes as-is: lets tests send deliberately split,
  /// coalesced, or corrupt frames.
  void send_bytes(std::string_view bytes);

  /// Blocks until one complete frame arrives and returns it. nullopt on
  /// orderly close with an empty reassembly buffer; throws
  /// util::DataError if the peer closes mid-frame or sends garbage.
  [[nodiscard]] std::optional<serve::Message> recv();

  /// Bounds recv() waits: after `ms` without bytes it throws NetError
  /// instead of blocking forever (0 restores indefinite blocking).
  void set_recv_timeout(std::uint32_t ms);

  /// Half-close: tells the server this client is done writing.
  void shutdown_send() noexcept;

  /// Hard-closes the socket (a mid-stream disconnect, from the
  /// server's point of view).
  void close() noexcept { fd_.reset(); }

  [[nodiscard]] bool connected() const noexcept { return fd_.valid(); }

 private:
  Fd fd_;
  std::string inbuf_;
};

}  // namespace emoleak::net
