#include "net/client.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "util/error.h"

namespace emoleak::net {

BlockingClient::BlockingClient(std::uint16_t port)
    : fd_{connect_loopback(port)} {}

void BlockingClient::send(const serve::Message& msg) {
  send_bytes(serve::encode_one(msg));
}

void BlockingClient::send_bytes(std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t sent = ::send(fd_.get(), bytes.data() + off,
                                bytes.size() - off, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      throw errno_error("net: client send");
    }
    off += static_cast<std::size_t>(sent);
  }
}

std::optional<serve::Message> BlockingClient::recv() {
  for (;;) {
    {
      serve::FrameReader reader{inbuf_};
      std::optional<serve::Message> msg = reader.next();
      if (msg) {
        inbuf_.erase(0, reader.offset());
        return msg;
      }
    }
    char chunk[16 * 1024];
    const ssize_t got = ::recv(fd_.get(), chunk, sizeof chunk, 0);
    if (got > 0) {
      inbuf_.append(chunk, static_cast<std::size_t>(got));
      continue;
    }
    if (got == 0) {
      if (inbuf_.empty()) return std::nullopt;  // orderly end-of-stream
      throw util::DataError{"net: peer closed mid-frame"};
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw NetError{"net: client recv timed out"};
    }
    throw errno_error("net: client recv");
  }
}

void BlockingClient::set_recv_timeout(std::uint32_t ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<long>(ms % 1000) * 1000;
  if (::setsockopt(fd_.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) != 0) {
    throw errno_error("net: setsockopt(SO_RCVTIMEO)");
  }
}

void BlockingClient::shutdown_send() noexcept {
  if (fd_.valid()) (void)::shutdown(fd_.get(), SHUT_WR);
}

}  // namespace emoleak::net
