#include "net/server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <utility>

#include "obs/obs.h"
#include "util/error.h"

namespace emoleak::net {

namespace {

/// One overloaded ack, pre-encoded: what a peer beyond max_connections
/// receives (best-effort) before its socket closes.
std::string reject_ack(std::uint32_t retry_after_ms) {
  return serve::encode_one(
      serve::AckMsg{serve::Status::kOverloaded, retry_after_ms});
}

}  // namespace

void NetServerConfig::validate() const {
  if (backlog < 1) throw util::ConfigError{"net: backlog must be >= 1"};
  if (max_connections == 0) {
    throw util::ConfigError{"net: max_connections must be >= 1"};
  }
  if (drain_interval_ms == 0) {
    throw util::ConfigError{"net: drain_interval_ms must be >= 1"};
  }
  if (read_chunk == 0) throw util::ConfigError{"net: read_chunk must be >= 1"};
  if (max_write_buffer < 4096) {
    throw util::ConfigError{"net: max_write_buffer must be >= 4096"};
  }
}

NetServer::Counters::Counters(obs::Registry& registry)
    : connections_accepted{registry.counter("net.connections_accepted")},
      connections_active{registry.gauge("net.connections_active")},
      connections_rejected{registry.counter("net.connections_rejected")},
      connections_closed_corrupt{
          registry.counter("net.connections_closed_corrupt")},
      disconnects{registry.counter("net.disconnects")},
      frames_in{registry.counter("net.frames_in")},
      partial_reads{registry.counter("net.partial_reads")},
      overload_acks{registry.counter("net.overload_acks")},
      events_routed{registry.counter("net.events_routed")},
      events_orphaned{registry.counter("net.events_orphaned")},
      bytes_in{registry.counter("net.bytes_in")},
      bytes_out{registry.counter("net.bytes_out")},
      drain_ticks{registry.counter("net.drain_ticks")},
      reads_paused{registry.counter("net.reads_paused")},
      reads_resumed{registry.counter("net.reads_resumed")} {}

NetServer::NetServer(NetServerConfig config, serve::ServeService& service)
    : config_{std::move(config)},
      service_{service},
      stats_{service.metrics_registry()} {
  config_.validate();
  listener_ = make_listener(config_.port, config_.backlog);
  port_ = listener_.port;
}

NetServer::~NetServer() { stop(); }

void NetServer::start() {
  if (running_.load(std::memory_order_acquire) || loop_.joinable()) {
    throw NetError{"net: server already started"};
  }
  if (!listener_.fd.valid()) {
    throw NetError{"net: server cannot restart after stop()"};
  }

  epoll_ = Fd{::epoll_create1(EPOLL_CLOEXEC)};
  if (!epoll_.valid()) throw errno_error("net: epoll_create1");
  wake_ = Fd{::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)};
  if (!wake_.valid()) throw errno_error("net: eventfd");
  timer_ = Fd{::timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC | TFD_NONBLOCK)};
  if (!timer_.valid()) throw errno_error("net: timerfd_create");

  const auto arm = [this](int fd, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
      throw errno_error("net: epoll_ctl(ADD)");
    }
  };
  arm(listener_.fd.get(), EPOLLIN);
  arm(wake_.get(), EPOLLIN);
  arm(timer_.get(), EPOLLIN);

  itimerspec spec{};
  spec.it_interval.tv_sec = config_.drain_interval_ms / 1000;
  spec.it_interval.tv_nsec =
      static_cast<long>(config_.drain_interval_ms % 1000) * 1000000L;
  spec.it_value = spec.it_interval;
  if (::timerfd_settime(timer_.get(), 0, &spec, nullptr) != 0) {
    throw errno_error("net: timerfd_settime");
  }

  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  loop_ = std::thread{[this] { run(); }};
}

void NetServer::stop() {
  if (!loop_.joinable()) return;
  stop_requested_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  (void)::write(wake_.get(), &one, sizeof one);
  loop_.join();
  // Only after the join: the loop thread is gone, so closing the fds
  // it polled cannot race its epoll_wait (or our own wake write).
  timer_.reset();
  wake_.reset();
  epoll_.reset();
  running_.store(false, std::memory_order_release);
}

NetServerStats NetServer::stats() const {
  NetServerStats s;
  s.connections_accepted = stats_.connections_accepted.value();
  // Single writer keeps the gauge non-negative; the cast is safe.
  s.connections_active =
      static_cast<std::uint64_t>(stats_.connections_active.value());
  s.connections_rejected = stats_.connections_rejected.value();
  s.connections_closed_corrupt = stats_.connections_closed_corrupt.value();
  s.disconnects = stats_.disconnects.value();
  s.frames_in = stats_.frames_in.value();
  s.partial_reads = stats_.partial_reads.value();
  s.overload_acks = stats_.overload_acks.value();
  s.events_routed = stats_.events_routed.value();
  s.events_orphaned = stats_.events_orphaned.value();
  s.bytes_in = stats_.bytes_in.value();
  s.bytes_out = stats_.bytes_out.value();
  s.drain_ticks = stats_.drain_ticks.value();
  s.reads_paused = stats_.reads_paused.value();
  s.reads_resumed = stats_.reads_resumed.value();
  return s;
}

void NetServer::run() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];

  while (!stop_requested_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_.get(), events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable epoll failure: shut down below
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_.get()) {
        std::uint64_t drained = 0;
        (void)::read(wake_.get(), &drained, sizeof drained);
        continue;  // stop flag re-checked by the while condition
      }
      if (fd == listener_.fd.get()) {
        accept_ready();
        continue;
      }
      if (fd == timer_.get()) {
        std::uint64_t expirations = 0;
        (void)::read(timer_.get(), &expirations, sizeof expirations);
        drain_and_route();
        continue;
      }
      const auto it = connections_.find(fd);
      if (it == connections_.end()) continue;  // closed earlier this batch
      Connection& conn = *it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        close_connection(conn, /*peer_gone=*/true);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        connection_writable(conn);
        // connection_writable may close; re-find before reading.
        if (connections_.find(fd) == connections_.end()) continue;
      }
      if ((events[i].events & EPOLLIN) != 0) connection_readable(conn);
    }
  }
  graceful_shutdown();
}

void NetServer::accept_ready() {
  for (;;) {
    Fd peer{::accept4(listener_.fd.get(), nullptr, nullptr,
                      SOCK_NONBLOCK | SOCK_CLOEXEC)};
    if (!peer.valid()) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure: retry on the next EPOLLIN
    }
    if (connections_.size() >= config_.max_connections) {
      // Admission control at the transport layer, same shape as the
      // shard queues: one overloaded ack (best-effort), then close.
      const std::string ack = reject_ack(service_.retry_after_ms());
      (void)::send(peer.get(), ack.data(), ack.size(), MSG_NOSIGNAL);
      stats_.connections_rejected.add(1);
      continue;  // Fd destructor closes
    }
    set_nodelay(peer.get());
    auto conn = std::make_unique<Connection>();
    const int fd = peer.get();
    conn->fd = std::move(peer);

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
      continue;  // conn destructor closes the socket
    }
    conn->armed = EPOLLIN;
    connections_.emplace(fd, std::move(conn));
    stats_.connections_accepted.add(1);
    stats_.connections_active.add(1);
  }
}

void NetServer::connection_readable(Connection& conn) {
  // Bounded reads per wake-up: level-triggered epoll re-notifies, so a
  // firehose peer cannot starve the drain timer or other connections.
  OBS_SPAN("net.read");
  for (int round = 0; round < 4; ++round) {
    const std::size_t old_size = conn.inbuf.size();
    conn.inbuf.resize(old_size + config_.read_chunk);
    const ssize_t got =
        ::read(conn.fd.get(), conn.inbuf.data() + old_size, config_.read_chunk);
    if (got > 0) {
      conn.inbuf.resize(old_size + static_cast<std::size_t>(got));
      stats_.bytes_in.add(static_cast<std::uint64_t>(got));
      if (static_cast<std::size_t>(got) < config_.read_chunk) break;
      continue;
    }
    conn.inbuf.resize(old_size);
    if (got == 0) {  // orderly EOF: flush the peer's sessions
      close_connection(conn, /*peer_gone=*/true);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_connection(conn, /*peer_gone=*/true);  // ECONNRESET and kin
    return;
  }
  dispatch(conn);
}

void NetServer::dispatch(Connection& conn) {
  if (conn.inbuf.empty()) return;
  OBS_SPAN("net.dispatch");
  serve::HandleResult result = service_.handle_frames(conn.inbuf);
  stats_.frames_in.add(result.frames);
  stats_.overload_acks.add(result.overloaded);

  // Connection -> stream affinity: events for a stream route back to
  // the last connection that wrote it.
  for (const std::uint64_t id : result.streams_touched) {
    const auto [it, inserted] = stream_owner_.try_emplace(id, &conn);
    if (!inserted) it->second = &conn;
    bool known = false;
    for (const std::uint64_t seen : conn.streams) known = known || seen == id;
    if (!known) conn.streams.push_back(id);
  }

  conn.outbuf.append(result.reply);
  conn.inbuf.erase(0, result.consumed);
  if (result.corrupt) {
    // The frame layer found garbage: answer (kError ack already in the
    // reply), stop reading, and close once the reply is flushed. Only
    // this connection dies — everyone else's batch is untouched.
    conn.closing = true;
    conn.inbuf.clear();
  } else if (!conn.inbuf.empty()) {
    stats_.partial_reads.add(1);
  }
  flush(conn);
}

void NetServer::connection_writable(Connection& conn) { flush(conn); }

void NetServer::flush(Connection& conn) {
  while (conn.out_off < conn.outbuf.size()) {
    const ssize_t sent =
        ::send(conn.fd.get(), conn.outbuf.data() + conn.out_off,
               conn.outbuf.size() - conn.out_off, MSG_NOSIGNAL);
    if (sent > 0) {
      conn.out_off += static_cast<std::size_t>(sent);
      stats_.bytes_out.add(static_cast<std::uint64_t>(sent));
      continue;
    }
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (sent < 0 && errno == EINTR) continue;
    close_connection(conn, /*peer_gone=*/true);  // EPIPE/ECONNRESET
    return;
  }
  if (conn.out_off == conn.outbuf.size()) {
    conn.outbuf.clear();
    conn.out_off = 0;
    if (conn.closing) {
      close_connection(conn, /*peer_gone=*/false);
      return;
    }
  }
  update_interest(conn);
}

void NetServer::update_interest(Connection& conn) {
  const std::size_t backlog = conn.outbuf.size() - conn.out_off;
  // Write-buffer backpressure: a peer that writes requests but never
  // reads replies gets paused, not buffered without bound.
  if (!conn.paused && backlog > config_.max_write_buffer) {
    conn.paused = true;
    stats_.reads_paused.add(1);
  } else if (conn.paused && backlog < config_.max_write_buffer / 2) {
    conn.paused = false;
    stats_.reads_resumed.add(1);
  }
  const std::uint32_t want = ((!conn.closing && !conn.paused) ? EPOLLIN : 0u) |
                             (backlog > 0 ? EPOLLOUT : 0u);
  if (want == conn.armed) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.fd = conn.fd.get();
  (void)::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, conn.fd.get(), &ev);
  conn.armed = want;
}

void NetServer::drain_and_route() {
  OBS_SPAN("net.tick");
  stats_.drain_ticks.add(1);
  // Finishes deferred by overload (disconnect storms) retry every tick
  // until the shard queue admits them — bounded by drain progress, not
  // by extra queueing. A stream adopted by a new connection in the
  // meantime is no longer ours to finish.
  if (!pending_finishes_.empty()) {
    std::vector<std::uint64_t> still_pending;
    for (const std::uint64_t id : pending_finishes_) {
      if (stream_owner_.find(id) != stream_owner_.end()) continue;
      if (service_.finish_stream(id) == serve::Status::kOverloaded) {
        still_pending.push_back(id);
      }
    }
    pending_finishes_ = std::move(still_pending);
  }
  (void)service_.drain();
  route_events();
}

void NetServer::route_events() {
  for (serve::EventMsg& event : service_.take_events()) {
    const auto it = stream_owner_.find(event.stream_id);
    if (it == stream_owner_.end()) {
      // Owner disconnected between push and drain: the session was
      // flushed, but nobody is left to tell.
      stats_.events_orphaned.add(1);
      continue;
    }
    Connection& conn = *it->second;
    serve::encode(conn.outbuf, event);
    stats_.events_routed.add(1);
  }
  // Flush whoever got events (and anyone EPOLLOUT hasn't caught yet).
  for (auto it = connections_.begin(); it != connections_.end();) {
    Connection& conn = *it->second;
    ++it;  // flush may erase this connection
    if (conn.out_off < conn.outbuf.size()) flush(conn);
  }
}

void NetServer::close_connection(Connection& conn, bool peer_gone) {
  if (peer_gone) {
    stats_.disconnects.add(1);
  } else if (conn.closing) {
    stats_.connections_closed_corrupt.add(1);
  }
  // A mid-stream disconnect must not leak sessions until idle timeout:
  // finish every stream this peer owned so its open region flushes and
  // the session retires into the pool at the next drain tick.
  for (const std::uint64_t id : conn.streams) {
    const auto it = stream_owner_.find(id);
    if (it == stream_owner_.end() || it->second != &conn) continue;
    stream_owner_.erase(it);
    if (service_.finish_stream(id) == serve::Status::kOverloaded) {
      pending_finishes_.push_back(id);
    }
  }
  stats_.connections_active.add(-1);
  connections_.erase(conn.fd.get());  // destroys conn; closing the fd
                                      // also deregisters it from epoll
}

void NetServer::graceful_shutdown() {
  // 1. Stop accepting.
  (void)::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, listener_.fd.get(), nullptr);
  listener_.fd.reset();

  // 2. Flush every open session: finish all live streams, then drain
  //    until the batcher is dry (retrying finishes the shard queues
  //    rejected), routing events as they complete. Ownership stays
  //    intact so the final events still reach their connections.
  for (const auto& [id, owner] : stream_owner_) pending_finishes_.push_back(id);
  for (;;) {
    std::vector<std::uint64_t> still_pending;
    for (const std::uint64_t id : pending_finishes_) {
      if (service_.finish_stream(id) == serve::Status::kOverloaded) {
        still_pending.push_back(id);
      }
    }
    pending_finishes_ = std::move(still_pending);
    const std::size_t processed = service_.drain();
    route_events();
    if (pending_finishes_.empty() && processed == 0) break;
  }

  // 3. Drain the write buffers within the configured budget, driven by
  //    EPOLLOUT — peers reading slowly get shutdown_flush_ms, not forever.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds{config_.shutdown_flush_ms};
  for (;;) {
    bool backlog = false;
    for (const auto& [fd, conn] : connections_) {
      backlog = backlog || conn->out_off < conn->outbuf.size();
    }
    if (!backlog || connections_.empty()) break;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    const auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - now);
    constexpr int kMaxEvents = 64;
    epoll_event events[kMaxEvents];
    const int n = ::epoll_wait(epoll_.get(), events, kMaxEvents,
                               static_cast<int>(std::max<long>(1, wait.count())));
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < n; ++i) {
      const auto it = connections_.find(events[i].data.fd);
      if (it == connections_.end()) continue;
      if ((events[i].events & (EPOLLOUT | EPOLLHUP | EPOLLERR)) != 0) {
        flush(*it->second);
      }
    }
  }

  // 4. Close every connection. The epoll/wake/timer fds stay open:
  //    stop() may still be writing the wake eventfd from another
  //    thread, so they are closed there, after the join.
  connections_.clear();
  stream_owner_.clear();
  pending_finishes_.clear();
}

}  // namespace emoleak::net
