// Socket primitives for the emoleak::net transport: an RAII file
// descriptor and the few loopback TCP helpers the epoll server and the
// test/loadgen clients need. Everything binds/connects 127.0.0.1 only —
// this is a research service; exposing the attack pipeline on a real
// interface is a deployment decision, not a library default.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace emoleak::net {

/// Thrown on unexpected syscall failure (socket/bind/epoll_ctl, ...).
/// Expected conditions — EAGAIN, peer resets, orderly shutdown — are
/// handled in-line by the transport, never via this exception.
class NetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Builds a NetError carrying the errno text for `what`.
[[nodiscard]] NetError errno_error(const std::string& what);

/// RAII file descriptor: closes on destruction, move-only.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_{fd} {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_{other.release()} {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// A bound, listening, non-blocking TCP socket plus the port it landed
/// on (`port` resolves 0 -> the kernel-assigned ephemeral port).
struct Listener {
  Fd fd;
  std::uint16_t port = 0;
};

/// Non-blocking listener on 127.0.0.1:`port` (0 = ephemeral) with
/// SO_REUSEADDR. Throws NetError on failure.
[[nodiscard]] Listener make_listener(std::uint16_t port, int backlog = 128);

/// Sets O_NONBLOCK. Throws NetError on failure.
void set_nonblocking(int fd);

/// Disables Nagle (TCP_NODELAY): the protocol is small request/ack
/// frames, where coalescing delay dwarfs the classify latency being
/// measured. Best-effort — failure is ignored.
void set_nodelay(int fd) noexcept;

/// Blocking connect to 127.0.0.1:`port`. Throws NetError on failure.
[[nodiscard]] Fd connect_loopback(std::uint16_t port);

/// Non-blocking connect to 127.0.0.1:`port`: returns immediately with
/// the connect in flight (EINPROGRESS). The caller waits for EPOLLOUT
/// and checks SO_ERROR — the shape an epoll client engine (loadgen)
/// needs to open hundreds of connections without serializing on
/// handshakes. Throws NetError only on immediate failure.
[[nodiscard]] Fd connect_loopback_nonblocking(std::uint16_t port);

}  // namespace emoleak::net
