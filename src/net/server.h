// Epoll TCP front end for emoleak::serve — the step from "serving
// library" to "service". The deployed attack shape (paper §III-A) is a
// central collector classifying exfiltrated accelerometer streams from
// many devices; NetServer is that collector's transport:
//
//   accept loop     non-blocking listener on 127.0.0.1, capped at
//                   max_connections (excess peers get one overloaded
//                   ack, then close — backpressure, not backlog)
//   per connection  read buffer with incremental frame reassembly (the
//                   resumable FrameReader: frames split at arbitrary
//                   TCP boundaries are retained, corrupt frames close
//                   only the offending connection) and a write buffer
//                   flushed by EPOLLOUT; a connection whose peer stops
//                   reading is paused (EPOLLIN off) above
//                   max_write_buffer instead of buffering unboundedly
//   affinity        stream id -> connection, recorded from the frames a
//                   connection writes; drained events route back to the
//                   last writer. A mid-stream disconnect finishes the
//                   peer's streams so their sessions flush and retire
//                   into the pool instead of leaking until idle timeout
//   drain tick      a timerfd fires every drain_interval_ms; each tick
//                   runs one ServeService::drain() (the existing
//                   sharded batcher — per-stream sequential, shards
//                   parallel, bit-identical events) and routes the
//                   completed events
//   backpressure    ServeService maps a full shard queue to
//                   Status::kOverloaded; the ack carries retry_after_ms
//                   so clients back off instead of the server queueing
//   shutdown        stop() finishes every live stream, drains until the
//                   batcher is dry, routes the final events, flushes
//                   write buffers within shutdown_flush_ms, then closes
//
// Single event-loop thread; drains fan out internally over the service
// thread pool. start()/stop()/stats() are safe from any thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/socket.h"
#include "obs/metrics.h"
#include "serve/service.h"

namespace emoleak::net {

struct NetServerConfig {
  std::uint16_t port = 0;        ///< 0 = ephemeral; read back via port()
  int backlog = 128;
  std::size_t max_connections = 1024;
  std::uint32_t drain_interval_ms = 1;   ///< batch cadence (timerfd)
  std::size_t read_chunk = 64 * 1024;    ///< bytes per read() call
  /// Pause reading from a connection whose un-flushed replies exceed
  /// this; resume below half. Caps per-connection memory against a
  /// peer that writes but never reads.
  std::size_t max_write_buffer = 8u << 20;
  std::uint32_t shutdown_flush_ms = 1000;  ///< graceful-stop write budget

  void validate() const;
};

/// Transport-level counters (the service keeps its own ServeStats).
/// Backed by net.* metrics in the service's registry, so a remote
/// kMetricsRequest scrape sees the transport alongside serve.*.
struct NetServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t connections_rejected = 0;  ///< over max_connections
  std::uint64_t connections_closed_corrupt = 0;
  std::uint64_t disconnects = 0;        ///< peer EOF/reset
  std::uint64_t frames_in = 0;          ///< complete frames decoded
  std::uint64_t partial_reads = 0;      ///< reads leaving a frame tail
  std::uint64_t overload_acks = 0;
  std::uint64_t events_routed = 0;
  std::uint64_t events_orphaned = 0;    ///< owner disconnected first
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t drain_ticks = 0;
  std::uint64_t reads_paused = 0;       ///< write-buffer backpressure hits
  std::uint64_t reads_resumed = 0;      ///< pauses lifted (backlog drained)
};

class NetServer {
 public:
  /// Binds the listener immediately (so port() is valid before
  /// start()); the event loop runs only between start() and stop().
  /// `service` must outlive the server.
  NetServer(NetServerConfig config, serve::ServeService& service);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Spawns the event-loop thread. Throws NetError if already running.
  void start();

  /// Graceful shutdown: flush open sessions, deliver pending events,
  /// drain write buffers (bounded by shutdown_flush_ms), close
  /// everything, join the loop thread. Idempotent.
  void stop();

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  [[nodiscard]] NetServerStats stats() const;
  [[nodiscard]] const NetServerConfig& config() const noexcept {
    return config_;
  }

 private:
  struct Connection {
    Fd fd;
    std::string inbuf;            ///< unparsed bytes (partial frame tail)
    std::string outbuf;           ///< un-flushed reply/event frames
    std::size_t out_off = 0;      ///< flushed prefix of outbuf
    std::vector<std::uint64_t> streams;  ///< stream ids this peer wrote
    std::uint32_t armed = 0;      ///< epoll event mask currently registered
    bool paused = false;          ///< EPOLLIN off (write-buffer cap)
    bool closing = false;         ///< corrupt peer: close once flushed
  };

  void run();
  void accept_ready();
  void connection_readable(Connection& conn);
  void connection_writable(Connection& conn);
  void dispatch(Connection& conn);
  void flush(Connection& conn);
  void update_interest(Connection& conn);
  void drain_and_route();
  void route_events();
  void close_connection(Connection& conn, bool peer_gone);
  void graceful_shutdown();

  NetServerConfig config_;
  serve::ServeService& service_;
  Listener listener_;
  std::uint16_t port_ = 0;

  Fd epoll_;
  Fd wake_;   ///< eventfd: stop() -> loop wake-up
  Fd timer_;  ///< timerfd: drain tick

  std::thread loop_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  // Event-loop-thread state (no locking: only run() touches these).
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;
  std::unordered_map<std::uint64_t, Connection*> stream_owner_;
  std::vector<std::uint64_t> pending_finishes_;  ///< retried each tick

  // Stats are written by the loop thread, read from anywhere — backed
  // by net.* counters in the service's metrics registry so one scrape
  // covers transport and service. The references resolve once at
  // construction; recording stays a relaxed fetch_add.
  struct Counters {
    obs::Counter& connections_accepted;
    obs::Gauge& connections_active;
    obs::Counter& connections_rejected;
    obs::Counter& connections_closed_corrupt;
    obs::Counter& disconnects;
    obs::Counter& frames_in;
    obs::Counter& partial_reads;
    obs::Counter& overload_acks;
    obs::Counter& events_routed;
    obs::Counter& events_orphaned;
    obs::Counter& bytes_in;
    obs::Counter& bytes_out;
    obs::Counter& drain_ticks;
    obs::Counter& reads_paused;
    obs::Counter& reads_resumed;
    explicit Counters(obs::Registry& registry);
  } stats_;
};

}  // namespace emoleak::net
