// Shared worker-thread pool for the parallel execution engine.
//
// One lazily-created pool (hardware_concurrency - 1 workers) backs every
// parallel region in the library. Work is submitted as an indexed batch:
// run(count, fn) executes fn(0..count-1) across the workers *and* the
// calling thread, returning when every index has finished. Indices are
// claimed from an atomic counter, so scheduling is dynamic, but callers
// that write results into per-index slots get a deterministic, ordered
// reduction regardless of thread count (see util/parallel.h).
//
// Nested parallel regions are intentionally not fanned out: a worker
// thread that reaches another parallel region runs it inline
// (on_worker_thread() lets helpers detect this), which keeps the pool
// deadlock-free without a work-stealing scheduler.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace emoleak::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 is allowed: run() then executes
  /// everything on the calling thread).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Executes fn(i) for every i in [0, count), using at most
  /// `max_threads` threads including the caller (0 = no limit). Blocks
  /// until all indices complete; rethrows the first exception raised by
  /// fn. Concurrent run() calls from different threads are serialized.
  void run(std::size_t count, const std::function<void(std::size_t)>& fn,
           std::size_t max_threads = 0);

  /// True when called from one of this process's pool worker threads —
  /// used to run nested parallel regions inline.
  [[nodiscard]] static bool on_worker_thread() noexcept;

  /// The process-wide pool (hardware_concurrency - 1 workers).
  [[nodiscard]] static ThreadPool& shared();

 private:
  struct Batch;

  void worker_loop();
  void work_on(Batch& batch);

  std::vector<std::thread> workers_;
  std::mutex run_mutex_;  ///< serializes top-level batches
  std::mutex mutex_;      ///< guards batch_ / stop_ / Batch bookkeeping
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::shared_ptr<Batch> batch_;  ///< batch being executed, if any
  bool stop_ = false;
};

}  // namespace emoleak::util
