// Bounded multi-producer queue for the serving layer.
//
// Admission control lives at the queue boundary: try_push never blocks
// and never grows the queue past its capacity, so a saturated consumer
// surfaces as an overload rejection at the producer instead of
// unbounded memory growth (see serve/batcher.h for the policy). The
// consumer side drains in FIFO order, which is what keeps per-stream
// processing deterministic.
#pragma once

#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "util/error.h"

namespace emoleak::util {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_{capacity} {
    if (capacity_ == 0) throw ConfigError{"BoundedQueue: capacity == 0"};
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues unless the queue is full or closed; never blocks.
  [[nodiscard]] bool try_push(T value) {
    std::lock_guard<std::mutex> lock{mutex_};
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    return true;
  }

  /// Dequeues the oldest element, if any.
  [[nodiscard]] std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock{mutex_};
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  /// Moves everything currently queued into `out` (appending) in FIFO
  /// order; returns the number of elements drained.
  std::size_t drain_into(std::vector<T>& out) {
    std::lock_guard<std::mutex> lock{mutex_};
    const std::size_t n = items_.size();
    for (T& item : items_) out.push_back(std::move(item));
    items_.clear();
    return n;
  }

  /// After close(), try_push always fails; queued elements stay
  /// poppable so a consumer can finish the backlog.
  void close() {
    std::lock_guard<std::mutex> lock{mutex_};
    closed_ = true;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock{mutex_};
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  mutable std::mutex mutex_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace emoleak::util
