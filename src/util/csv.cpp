#include "util/csv.h"

#include <cmath>
#include <iomanip>

#include "util/error.h"

namespace emoleak::util {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void write_csv(std::ostream& out,
               const std::vector<std::string>& feature_names,
               const std::vector<std::vector<double>>& rows,
               const std::vector<std::string>& labels) {
  if (rows.size() != labels.size()) {
    throw DataError{"write_csv: rows and labels must have equal length"};
  }
  for (std::size_t i = 0; i < feature_names.size(); ++i) {
    if (i) out << ',';
    out << csv_escape(feature_names[i]);
  }
  out << ",label\n";
  out << std::setprecision(12);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != feature_names.size()) {
      throw DataError{"write_csv: row width does not match header"};
    }
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      if (c) out << ',';
      const double v = rows[r][c];
      if (std::isfinite(v)) out << v;
      // NaN / inf cells are written empty; the paper's pipeline removes
      // such invalid entries during preprocessing (§IV-D1).
    }
    out << ',' << csv_escape(labels[r]) << '\n';
  }
}

void write_arff(std::ostream& out, const std::string& relation,
                const std::vector<std::string>& feature_names,
                const std::vector<std::vector<double>>& rows,
                const std::vector<std::string>& labels,
                const std::vector<std::string>& class_values) {
  if (rows.size() != labels.size()) {
    throw DataError{"write_arff: rows and labels must have equal length"};
  }
  out << "@relation " << relation << "\n\n";
  for (const std::string& name : feature_names) {
    out << "@attribute " << name << " numeric\n";
  }
  out << "@attribute class {";
  for (std::size_t i = 0; i < class_values.size(); ++i) {
    if (i) out << ',';
    out << class_values[i];
  }
  out << "}\n\n@data\n";
  out << std::setprecision(12);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != feature_names.size()) {
      throw DataError{"write_arff: row width does not match attributes"};
    }
    for (const double v : rows[r]) {
      if (std::isfinite(v)) out << v;
      else out << '?';
      out << ',';
    }
    out << labels[r] << '\n';
  }
}

std::vector<std::string> parse_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace emoleak::util
