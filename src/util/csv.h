// CSV and ARFF serialization.
//
// The paper's toolchain exports time-frequency features to CSV for the
// Keras CNN and to ARFF for Weka (§IV-D). These writers reproduce the
// same artifact boundary so downstream users can inspect or reuse the
// extracted features outside this library.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace emoleak::util {

/// Escapes a single CSV field per RFC 4180 (quotes fields containing
/// commas, quotes, or newlines).
[[nodiscard]] std::string csv_escape(const std::string& field);

/// Writes a CSV file: a header row followed by numeric data rows with a
/// trailing string label column.
void write_csv(std::ostream& out,
               const std::vector<std::string>& feature_names,
               const std::vector<std::vector<double>>& rows,
               const std::vector<std::string>& labels);

/// Writes a Weka ARFF file with numeric attributes and a nominal class
/// attribute enumerating `class_values`.
void write_arff(std::ostream& out, const std::string& relation,
                const std::vector<std::string>& feature_names,
                const std::vector<std::vector<double>>& rows,
                const std::vector<std::string>& labels,
                const std::vector<std::string>& class_values);

/// Parses one CSV line into fields (handles RFC 4180 quoting).
[[nodiscard]] std::vector<std::string> parse_csv_line(const std::string& line);

}  // namespace emoleak::util
