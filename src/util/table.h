// Fixed-width plain-text table rendering for benchmark output.
//
// Every bench binary regenerates one of the paper's tables/figures; the
// TablePrinter gives them a uniform, aligned, diff-friendly format.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace emoleak::util {

/// Column-aligned text table. Usage:
///   TablePrinter t{{"Classifier", "Paper", "Measured"}};
///   t.add_row({"Logistic", "94.52%", "93.80%"});
///   std::cout << t.str();
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one row. Rows shorter than the header are padded with
  /// empty cells; longer rows extend the table width.
  void add_row(std::vector<std::string> cells);

  /// Inserts a horizontal rule between the previously added row and the
  /// next one.
  void add_rule();

  /// Renders the full table, including the header and border rules.
  [[nodiscard]] std::string str() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

/// Formats a fraction as a percentage string, e.g. 0.9534 -> "95.34%".
[[nodiscard]] std::string percent(double fraction, int decimals = 2);

/// Formats a double with fixed decimals, e.g. 1.30714 -> "1.307".
[[nodiscard]] std::string fixed(double value, int decimals = 3);

/// Renders a confusion matrix in the layout of the paper's Figure 6:
/// rows are true labels, columns are predictions.
[[nodiscard]] std::string render_confusion(
    const std::vector<std::vector<std::size_t>>& matrix,
    const std::vector<std::string>& labels);

}  // namespace emoleak::util
