// Scratch-buffer arena for hot-loop temporaries.
//
// A Workspace is a bump allocator over a small set of heap blocks.
// Kernels take() typed spans for per-call temporaries instead of
// constructing std::vectors; after a warm-up call has sized the arena,
// every subsequent take() is pointer arithmetic and the steady-state
// hot loop performs zero heap allocations. grow_count() exposes how
// often the arena had to touch the heap, which the tests use to assert
// the zero-allocation contract.
//
// Ownership rules (see DESIGN.md §7):
//  * A Workspace is single-threaded. Cross-thread use is a bug; the
//    parallel layers give each pool worker its own arena via
//    thread_workspace().
//  * Library code never reset()s a workspace it was handed — callers
//    may hold live spans. Internal temporaries are scoped with
//    Workspace::Scope (mark/rewind), which returns the arena to its
//    entry state on scope exit, so nested kernels compose.
//  * take() returns uninitialized storage; the previous contents are
//    stale, not zero.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

#include "obs/metrics.h"

namespace emoleak::util {

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Opaque position used to rewind nested scratch usage.
  struct Mark {
    std::size_t block = 0;
    std::size_t used = 0;
  };

  /// Uninitialized scratch for `count` elements of trivially
  /// destructible type T, aligned for T. Valid until the enclosing
  /// Scope exits (or reset()).
  template <typename T>
  [[nodiscard]] std::span<T> take(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Workspace only holds trivially destructible types");
    void* p = raw(count * sizeof(T), alignof(T));
    return {static_cast<T*>(p), count};
  }

  [[nodiscard]] Mark mark() const noexcept {
    if (blocks_.empty()) return Mark{};
    // Record the *active* bump position, not the last block: an inner
    // scope may have grown new blocks past the caller's position, and
    // rewinding to the last block would leak everything before it.
    return Mark{active_, blocks_[active_].used};
  }

  /// Returns the arena to a previous mark(); spans taken after the
  /// mark become invalid. Blocks allocated in between are kept (their
  /// capacity is merged into one block at the next reset/coalesce).
  void rewind(Mark m) noexcept {
    if (blocks_.empty()) return;
    if (m.block >= blocks_.size()) return;  // stale mark; keep state
    for (std::size_t b = m.block + 1; b < blocks_.size(); ++b) {
      blocks_[b].used = 0;
    }
    blocks_[m.block].used = m.used;
    active_ = m.block;
  }

  /// RAII mark/rewind for internal temporaries.
  class Scope {
   public:
    explicit Scope(Workspace& ws) noexcept : ws_{ws}, mark_{ws.mark()} {}
    ~Scope() { ws_.rewind(mark_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Workspace& ws_;
    Mark mark_;
  };

  /// Frees all outstanding spans and coalesces fragmented blocks into
  /// one, so the steady state is a single block that never regrows.
  void reset() {
    if (blocks_.size() > 1) {
      std::size_t total = 0;
      for (const Block& b : blocks_) total += b.capacity;
      blocks_.clear();
      add_block(total);
    }
    for (Block& b : blocks_) b.used = 0;
    active_ = 0;
  }

  /// Number of times the arena had to allocate from the heap. Stable
  /// across calls == the hot loop is allocation-free.
  [[nodiscard]] std::size_t grow_count() const noexcept { return grows_; }

  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.capacity;
    return total;
  }

  [[nodiscard]] std::size_t used_bytes() const noexcept {
    std::size_t total = 0;
    for (std::size_t b = 0; b <= active_ && b < blocks_.size(); ++b) {
      total += blocks_[b].used;
    }
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t capacity = 0;
    std::size_t used = 0;
  };

  static constexpr std::size_t kMinBlock = 4096;

  void* raw(std::size_t bytes, std::size_t align) {
    // Try the active block, then any later (already-allocated) block.
    while (active_ < blocks_.size()) {
      Block& b = blocks_[active_];
      const std::size_t offset = (b.used + align - 1) & ~(align - 1);
      if (offset + bytes <= b.capacity) {
        b.used = offset + bytes;
        return b.data.get() + offset;
      }
      if (active_ + 1 >= blocks_.size()) break;
      ++active_;
    }
    // Grow: geometric doubling bounds the number of warm-up grows.
    std::size_t want = bytes + align;
    const std::size_t doubled = 2 * capacity_bytes();
    if (want < doubled) want = doubled;
    if (want < kMinBlock) want = kMinBlock;
    add_block(want);
    active_ = blocks_.size() - 1;
    Block& b = blocks_.back();
    const std::size_t offset = (b.used + align - 1) & ~(align - 1);
    b.used = offset + bytes;
    return b.data.get() + offset;
  }

  void add_block(std::size_t capacity) {
    Block b;
    b.data = std::make_unique<std::byte[]>(capacity);
    b.capacity = capacity;
    blocks_.push_back(std::move(b));
    ++grows_;
    // Aggregate grow count across every arena in the process: the
    // zero-allocation contract ("steady-state hot loops never grow")
    // becomes a monitored invariant instead of a per-test assertion.
    // Grows are warm-up-only, so the registry lookup here is cold.
    obs::Registry::instance().counter("workspace.grows").add(1);
    obs::Registry::instance().counter("workspace.bytes_allocated").add(capacity);
  }

  std::vector<Block> blocks_;
  std::size_t active_ = 0;
  std::size_t grows_ = 0;
};

/// The calling thread's scratch arena. Library entry points that do not
/// take an explicit Workspace parameter draw their temporaries from
/// here (scoped, so nested calls compose); pool workers each get their
/// own arena that persists across tasks, which is what makes repeated
/// extraction/inference allocation-free in steady state.
[[nodiscard]] inline Workspace& thread_workspace() {
  thread_local Workspace ws;
  return ws;
}

}  // namespace emoleak::util
