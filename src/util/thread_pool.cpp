#include "util/thread_pool.h"

#include <atomic>

#include "obs/obs.h"

namespace emoleak::util {

namespace {
thread_local bool t_on_worker = false;

/// Pool load metrics in the process-wide registry: how many indexed
/// tasks ran, and the width of the batch currently in flight (0 when
/// the pool is idle). Resolved once; recording is lock-free.
obs::Counter& pool_tasks_counter() {
  static obs::Counter& c = obs::Registry::instance().counter("pool.tasks");
  return c;
}

obs::Gauge& pool_depth_gauge() {
  static obs::Gauge& g = obs::Registry::instance().gauge("pool.queue_depth");
  return g;
}
}  // namespace

struct ThreadPool::Batch {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t count = 0;
  std::atomic<std::size_t> next{0};  ///< next unclaimed index
  std::size_t slots = 0;    ///< worker joins remaining (guarded by mutex_)
  std::size_t active = 0;   ///< participants still running (guarded by mutex_)
  std::exception_ptr error;  ///< first exception (guarded by mutex_)
};

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock{mutex_};
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::on_worker_thread() noexcept { return t_on_worker; }

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool{[] {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 1 ? static_cast<std::size_t>(hw - 1) : std::size_t{0};
  }()};
  return pool;
}

void ThreadPool::work_on(Batch& batch) {
  // One span per participation (not per index): the span width shows
  // how long this thread stayed busy on the batch, which is the useful
  // occupancy view in the trace without per-index overhead.
  OBS_SPAN("pool.work");
  std::size_t ran = 0;
  for (;;) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.count) {
      pool_tasks_counter().add(ran);
      return;
    }
    ++ran;
    try {
      (*batch.fn)(i);
    } catch (...) {
      // Stop claiming further indices and keep the first error.
      pool_tasks_counter().add(ran);
      batch.next.store(batch.count, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock{mutex_};
      if (!batch.error) batch.error = std::current_exception();
      return;
    }
  }
}

void ThreadPool::run(std::size_t count,
                     const std::function<void(std::size_t)>& fn,
                     std::size_t max_threads) {
  if (count == 0) return;
  OBS_SPAN_ARG("pool.run", "count", count);
  if (workers_.empty() || count == 1 || max_threads == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    pool_tasks_counter().add(count);
    return;
  }

  std::lock_guard<std::mutex> run_lock{run_mutex_};
  pool_depth_gauge().set(static_cast<std::int64_t>(count));
  auto batch = std::make_shared<Batch>();
  batch->fn = &fn;
  batch->count = count;
  // Workers that may join beyond the caller; never more than useful.
  std::size_t slots = workers_.size();
  if (max_threads != 0) slots = std::min(slots, max_threads - 1);
  slots = std::min(slots, count - 1);
  {
    std::lock_guard<std::mutex> lock{mutex_};
    batch->slots = slots;
    batch->active = 1;  // the caller
    batch_ = batch;
  }
  cv_work_.notify_all();

  work_on(*batch);  // the caller participates; errors land in batch->error

  std::unique_lock<std::mutex> lock{mutex_};
  --batch->active;
  cv_done_.wait(lock, [&] { return batch->active == 0; });
  batch_ = nullptr;
  const std::exception_ptr error = batch->error;
  lock.unlock();
  pool_depth_gauge().set(0);
  if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop() {
  t_on_worker = true;
  std::shared_ptr<Batch> seen;  // last batch this worker considered
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock{mutex_};
      cv_work_.wait(lock, [&] { return stop_ || (batch_ && batch_ != seen); });
      if (stop_) return;
      seen = batch_;
      if (batch_->slots == 0) continue;  // participation limit reached
      --batch_->slots;
      ++batch_->active;
      batch = batch_;
    }
    work_on(*batch);
    {
      std::lock_guard<std::mutex> lock{mutex_};
      if (--batch->active == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace emoleak::util
