// Deterministic data-parallel helpers over the shared ThreadPool.
//
// Every parallel region in the library goes through parallel_for /
// parallel_map so the determinism contract lives in one place:
//
//  * results are written into per-index slots and reduced in index
//    order, so the output is bit-identical to the serial loop at any
//    thread count;
//  * any RNG draws a task needs are either precomputed serially before
//    the parallel region (preserving the legacy serial stream) or taken
//    from task_rng(seed, i), a per-task stream that depends only on the
//    seed and the task index — never on scheduling;
//  * Parallelism{.threads = 1} forces the plain serial loop, and nested
//    regions (a parallel task reaching another parallel_for) always run
//    inline, so there is exactly one level of fan-out.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace emoleak::util {

/// Thread-count knob shared by every parallel layer (extraction,
/// cross-validation, ensemble training, bench sweeps).
struct Parallelism {
  /// 0 = hardware_concurrency; 1 = force the serial path; N = cap at N.
  std::size_t threads = 0;

  [[nodiscard]] std::size_t resolved() const noexcept {
    if (threads != 0) return threads;
    const std::size_t hw = ThreadPool::shared().thread_count() + 1;
    return hw > 0 ? hw : 1;
  }

  [[nodiscard]] bool serial() const noexcept { return resolved() <= 1; }

  [[nodiscard]] static Parallelism serial_only() noexcept {
    return Parallelism{.threads = 1};
  }
};

/// Derives the RNG stream for task `index` from a base seed. The stream
/// depends only on (seed, index), so tasks may run in any order on any
/// thread and still draw identical numbers.
[[nodiscard]] inline Rng task_rng(std::uint64_t seed, std::size_t index) {
  SplitMix64 sm{seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(index) + 1))};
  return Rng{sm.next()};
}

/// Runs fn(i) for i in [0, count). Iterations must be independent;
/// ordering of side effects across iterations is unspecified, so write
/// results into per-index slots. Serial when par forces it, when there
/// is at most one iteration, or when already inside a pool worker.
template <typename Fn>
void parallel_for(const Parallelism& par, std::size_t count, Fn&& fn) {
  if (count <= 1 || par.serial() || ThreadPool::on_worker_thread()) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  const std::function<void(std::size_t)> task{std::forward<Fn>(fn)};
  ThreadPool::shared().run(count, task, par.resolved());
}

/// Maps fn over [0, count) and returns the results in index order —
/// a deterministic, ordered reduction independent of thread count.
template <typename Fn>
[[nodiscard]] auto parallel_map(const Parallelism& par, std::size_t count,
                                Fn&& fn) {
  using R = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
  std::vector<std::optional<R>> slots(count);
  parallel_for(par, count, [&](std::size_t i) { slots[i].emplace(fn(i)); });
  std::vector<R> out;
  out.reserve(count);
  for (std::optional<R>& slot : slots) out.push_back(std::move(*slot));
  return out;
}

/// Maps fn over a container's elements, preserving element order.
template <typename Container, typename Fn>
[[nodiscard]] auto parallel_map_items(const Parallelism& par,
                                      const Container& items, Fn&& fn) {
  return parallel_map(par, items.size(),
                      [&](std::size_t i) { return fn(items[i]); });
}

}  // namespace emoleak::util
