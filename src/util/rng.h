// Deterministic random number generation for all EmoLeak components.
//
// Every stochastic component in the library (corpus synthesis, sensor
// noise, classifier initialization, fold shuffling) takes an explicit
// 64-bit seed so experiments regenerate bit-identically. std::mt19937
// is avoided because its distributions are not guaranteed identical
// across standard-library implementations; the generators and
// distributions here are fully specified by this header.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <span>
#include <stdexcept>
#include <vector>

namespace emoleak::util {

/// SplitMix64: used to expand a single seed into generator state.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_{seed} {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality, and fully
/// reproducible across platforms.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x243f6a8885a308d3ULL) noexcept {
    SplitMix64 sm{seed};
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n) {
    if (n == 0) throw std::invalid_argument{"Rng::uniform_int: n must be > 0"};
    // Lemire's nearly-divisionless bounded sampling with rejection to
    // remove modulo bias.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = (-n) % n;
      while (l < t) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal deviate (Marsaglia polar method).
  double normal() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    have_spare_ = true;
    return u * factor;
  }

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Normal deviate truncated to [lo, hi] by resampling (falls back to
  /// clamping after a bounded number of attempts so it cannot spin).
  double normal_clamped(double mean, double stddev, double lo, double hi) noexcept {
    for (int attempt = 0; attempt < 16; ++attempt) {
      const double x = normal(mean, stddev);
      if (x >= lo && x <= hi) return x;
    }
    const double x = normal(mean, stddev);
    return x < lo ? lo : (x > hi ? hi : x);
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = uniform_int(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  template <typename T>
  void shuffle(std::vector<T>& items) {
    shuffle(std::span<T>{items});
  }

  /// Derive an independent child generator; used to give each utterance
  /// / phone / fold its own stream so reordering one experiment does
  /// not perturb another.
  Rng fork(std::uint64_t stream) noexcept {
    SplitMix64 sm{state_[0] ^ (0x9e3779b97f4a7c15ULL * (stream + 1))};
    Rng child{sm.next()};
    return child;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace emoleak::util
