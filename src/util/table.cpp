#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace emoleak::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_{std::move(header)} {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  rows_.push_back(Row{std::move(cells), pending_rule_});
  pending_rule_ = false;
}

void TablePrinter::add_rule() { pending_rule_ = true; }

namespace {

std::string rule_line(const std::vector<std::size_t>& widths) {
  std::string out = "+";
  for (const std::size_t w : widths) {
    out.append(w + 2, '-');
    out += '+';
  }
  out += '\n';
  return out;
}

std::string cells_line(const std::vector<std::string>& cells,
                       const std::vector<std::size_t>& widths) {
  std::string out = "|";
  for (std::size_t i = 0; i < widths.size(); ++i) {
    const std::string& cell = i < cells.size() ? cells[i] : std::string{};
    out += ' ';
    out += cell;
    out.append(widths[i] - cell.size() + 1, ' ');
    out += '|';
  }
  out += '\n';
  return out;
}

}  // namespace

std::string TablePrinter::str() const {
  std::size_t columns = header_.size();
  for (const Row& row : rows_) columns = std::max(columns, row.cells.size());

  std::vector<std::size_t> widths(columns, 0);
  for (std::size_t i = 0; i < header_.size(); ++i) {
    widths[i] = std::max(widths[i], header_[i].size());
  }
  for (const Row& row : rows_) {
    for (std::size_t i = 0; i < row.cells.size(); ++i) {
      widths[i] = std::max(widths[i], row.cells[i].size());
    }
  }

  std::string out = rule_line(widths);
  out += cells_line(header_, widths);
  out += rule_line(widths);
  for (const Row& row : rows_) {
    if (row.rule_before) out += rule_line(widths);
    out += cells_line(row.cells, widths);
  }
  out += rule_line(widths);
  return out;
}

std::string percent(double fraction, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << fraction * 100.0 << '%';
  return os.str();
}

std::string fixed(double value, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << value;
  return os.str();
}

std::string render_confusion(
    const std::vector<std::vector<std::size_t>>& matrix,
    const std::vector<std::string>& labels) {
  std::vector<std::string> header{"true \\ pred"};
  header.insert(header.end(), labels.begin(), labels.end());
  TablePrinter t{std::move(header)};
  for (std::size_t r = 0; r < matrix.size(); ++r) {
    std::vector<std::string> row;
    row.push_back(r < labels.size() ? labels[r] : std::to_string(r));
    for (const std::size_t count : matrix[r]) row.push_back(std::to_string(count));
    t.add_row(std::move(row));
  }
  return t.str();
}

}  // namespace emoleak::util
