// Error types shared across the EmoLeak library.
#pragma once

#include <stdexcept>
#include <string>

namespace emoleak::util {

/// Thrown when a configuration struct is internally inconsistent
/// (e.g. a negative sampling rate or an empty corpus spec).
class ConfigError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when input data violates a documented precondition
/// (e.g. mismatched feature-matrix dimensions).
class DataError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown on numerical failure (non-finite loss, singular system, ...).
class NumericalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace emoleak::util
