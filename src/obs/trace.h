// emoleak::obs tracing — RAII scoped spans in per-thread lock-free
// ring buffers, exported as Chrome trace_event JSON.
//
// Two gates keep the cost off the data path:
//
//  * compile time: the OBS_SPAN macros (obs.h) compile to nothing when
//    EMOLEAK_OBS is 0, so a stripped build carries no tracing code;
//  * run time: with tracing compiled in but disabled (the default), a
//    Span constructor is one relaxed atomic load and a branch (~1 ns,
//    measured by BM_SpanOverhead) — no clock read, no record.
//
// When enabled, a span reads the steady clock at entry/exit and writes
// one fixed-size slot into the calling thread's ring. Rings are
// allocated once per thread (first span) and never resized, so the
// steady state performs zero heap allocation; a full ring wraps and
// overwrites the oldest spans (dropped counts are tracked). Slot fields
// are individual relaxed atomics and the ring head is published with a
// release store, so concurrent export is TSan-clean by construction:
// an exporter racing a wrap may read a mixed slot, never a torn or
// invalid one. Span names must be string literals (or otherwise outlive
// the process) — slots store the pointer, not a copy.
//
// Observation never perturbs results: spans carry no data-path state,
// and tests assert bit-identical pipeline output with tracing on/off.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace emoleak::obs {

/// Runtime switch for span recording. Off by default.
void set_trace_enabled(bool on) noexcept;
[[nodiscard]] bool trace_enabled() noexcept;

/// Drops every recorded span (rings stay allocated, threads stay
/// registered). Dropped-by-wrap counts are reset too.
void clear_trace();

/// Spans recorded across all threads, newest `ring_capacity` per
/// thread, as Chrome trace_event JSON ({"traceEvents": [...]}) —
/// loadable in chrome://tracing and Perfetto. ts/dur are microseconds
/// since the first trace use in this process.
[[nodiscard]] std::string trace_json();

/// trace_json() to a file; false (with no partial file guarantee
/// beyond the OS's) when the file cannot be opened.
bool write_trace_file(const std::string& path);

/// Spans lost to ring wrap-around since the last clear_trace().
[[nodiscard]] std::uint64_t trace_dropped();

/// Occupancy of one per-thread ring at export time.
struct TraceRingInfo {
  std::uint32_t tid = 0;
  std::uint64_t recorded = 0;  ///< slots currently held (≤ capacity)
  std::uint64_t dropped = 0;   ///< spans lost to wrap on this ring
};

/// Per-thread ring occupancy, one entry per registered thread.
[[nodiscard]] std::vector<TraceRingInfo> trace_ring_info();

/// Nanoseconds since the process trace epoch (first call).
[[nodiscard]] std::uint64_t trace_now_ns() noexcept;

/// Phase of a causal flow event (Chrome trace_event "s"/"t"/"f").
/// Flow events link spans that handle the same logical request across
/// threads: begin where the request enters, step at each hand-off,
/// end where its result leaves. Viewers bind each flow event to the
/// duration slice enclosing it on the recording thread, so emit them
/// from inside a live OBS_SPAN scope.
enum class FlowPhase : std::uint8_t {
  kNone = 0,   ///< ordinary duration span ("X")
  kBegin = 1,  ///< flow start ("s")
  kStep = 2,   ///< flow step ("t")
  kEnd = 3,    ///< flow finish ("f", binding point "e")
};

namespace detail {

/// One recorded span. Fields are independent relaxed atomics so an
/// export racing a ring wrap is data-race-free (see file comment).
/// For flow events (phase != kNone) `arg` carries the flow id.
struct SpanSlot {
  std::atomic<const char*> name{nullptr};
  std::atomic<const char*> arg_name{nullptr};
  std::atomic<std::uint64_t> arg{0};
  std::atomic<std::uint64_t> start_ns{0};
  std::atomic<std::uint64_t> dur_ns{0};
  std::atomic<std::uint8_t> phase{0};
};

class TraceRing {
 public:
  static constexpr std::size_t kCapacity = 8192;  ///< spans per thread

  explicit TraceRing(std::uint32_t tid) : slots_(kCapacity), tid_{tid} {}

  /// Single writer: only the owning thread records.
  void record(const char* name, const char* arg_name, std::uint64_t arg,
              std::uint64_t start_ns, std::uint64_t dur_ns,
              FlowPhase phase = FlowPhase::kNone) noexcept {
    const std::uint64_t i = head_.load(std::memory_order_relaxed);
    SpanSlot& s = slots_[i % kCapacity];
    s.name.store(name, std::memory_order_relaxed);
    s.arg_name.store(arg_name, std::memory_order_relaxed);
    s.arg.store(arg, std::memory_order_relaxed);
    s.start_ns.store(start_ns, std::memory_order_relaxed);
    s.dur_ns.store(dur_ns, std::memory_order_relaxed);
    s.phase.store(static_cast<std::uint8_t>(phase), std::memory_order_relaxed);
    head_.store(i + 1, std::memory_order_release);
  }

  [[nodiscard]] std::uint64_t head() const noexcept {
    return head_.load(std::memory_order_acquire);
  }
  [[nodiscard]] const SpanSlot& slot(std::uint64_t i) const noexcept {
    return slots_[i % kCapacity];
  }
  [[nodiscard]] std::uint32_t tid() const noexcept { return tid_; }
  void reset() noexcept { head_.store(0, std::memory_order_release); }

 private:
  std::vector<SpanSlot> slots_;
  std::atomic<std::uint64_t> head_{0};  ///< total spans ever recorded
  std::uint32_t tid_;
};

/// The calling thread's ring, registering it on first use. The global
/// registry owns the rings, so they outlive their threads and export
/// after a join sees everything.
[[nodiscard]] TraceRing& thread_ring();

}  // namespace detail

/// Records one flow event on the calling thread's ring. `id` ties the
/// begin/step/end phases of one logical request together across
/// threads; `name` must be the same literal at every phase (Chrome
/// matches flows by name + id) and must outlive the trace. A disabled
/// trace costs one relaxed load.
inline void record_flow(const char* name, FlowPhase phase,
                        std::uint64_t id) noexcept {
  if (!trace_enabled()) return;
  detail::thread_ring().record(name, nullptr, id, trace_now_ns(), 0, phase);
}

/// RAII scoped span. Use through the OBS_SPAN macros (obs.h) so spans
/// compile out with EMOLEAK_OBS=0; construct directly in tests. `name`
/// (and `arg_name`) must outlive the trace — pass string literals.
class Span {
 public:
  explicit Span(const char* name) noexcept : Span{name, nullptr, 0} {}

  Span(const char* name, const char* arg_name, std::uint64_t arg) noexcept {
    if (!trace_enabled()) return;  // one relaxed load; name_ stays null
    name_ = name;
    arg_name_ = arg_name;
    arg_ = arg;
    start_ns_ = trace_now_ns();
  }

  ~Span() {
    if (name_ == nullptr) return;
    const std::uint64_t end = trace_now_ns();
    detail::thread_ring().record(name_, arg_name_, arg_, start_ns_,
                                 end - start_ns_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  const char* arg_name_ = nullptr;
  std::uint64_t arg_ = 0;
  std::uint64_t start_ns_ = 0;
};

}  // namespace emoleak::obs
