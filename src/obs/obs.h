// emoleak::obs — umbrella header and the OBS_SPAN macros.
//
// Usage on a hot path:
//
//   void drain() {
//     OBS_SPAN("serve.drain");             // whole-function span
//     ...
//     OBS_SPAN_ARG("serve.process", "stream", stream_id);
//   }
//
// With EMOLEAK_OBS compiled in (the default; -DEMOLEAK_OBS=OFF at
// configure time strips it) and tracing runtime-disabled, a span costs
// one relaxed atomic load; enabled it costs two steady-clock reads and
// a ring-slot write (see obs/trace.h). Metrics (obs/metrics.h) are
// always compiled in — counters are one relaxed fetch_add.
#pragma once

#include "obs/metrics.h"
#include "obs/trace.h"

#ifndef EMOLEAK_OBS
#define EMOLEAK_OBS 1
#endif

#define EMOLEAK_OBS_CONCAT_INNER(a, b) a##b
#define EMOLEAK_OBS_CONCAT(a, b) EMOLEAK_OBS_CONCAT_INNER(a, b)

#if EMOLEAK_OBS
/// Scoped span named by a string literal.
#define OBS_SPAN(name) \
  ::emoleak::obs::Span EMOLEAK_OBS_CONCAT(obs_span_, __LINE__) { name }
/// Scoped span with one numeric argument (shown in the trace viewer).
#define OBS_SPAN_ARG(name, key, value)                          \
  ::emoleak::obs::Span EMOLEAK_OBS_CONCAT(obs_span_, __LINE__) {  \
    name, key, static_cast<std::uint64_t>(value)                \
  }
/// Causal flow phases: begin where a request enters, step at each
/// cross-thread hand-off, end where its result leaves. Emit inside a
/// live OBS_SPAN scope so viewers can bind the flow to a slice. The
/// same `name` literal must be used at every phase of one flow family.
#define OBS_FLOW_BEGIN(name, id)                     \
  ::emoleak::obs::record_flow(name, ::emoleak::obs::FlowPhase::kBegin, \
                              static_cast<std::uint64_t>(id))
#define OBS_FLOW_STEP(name, id)                     \
  ::emoleak::obs::record_flow(name, ::emoleak::obs::FlowPhase::kStep, \
                              static_cast<std::uint64_t>(id))
#define OBS_FLOW_END(name, id)                     \
  ::emoleak::obs::record_flow(name, ::emoleak::obs::FlowPhase::kEnd, \
                              static_cast<std::uint64_t>(id))
#else
#define OBS_SPAN(name) ((void)0)
#define OBS_SPAN_ARG(name, key, value) ((void)0)
#define OBS_FLOW_BEGIN(name, id) ((void)0)
#define OBS_FLOW_STEP(name, id) ((void)0)
#define OBS_FLOW_END(name, id) ((void)0)
#endif
