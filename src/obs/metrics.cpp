#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace emoleak::obs {

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank over the bucket cumulative counts; the returned value
  // is the bucket's upper bound, so it never understates the true
  // quantile by more than rounding and never overstates it by more than
  // the bucket's relative width (<= 12.5% at kSubBits = 3).
  const auto rank = static_cast<std::uint64_t>(std::ceil(
      q * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (const Bucket& b : buckets) {
    seen += b.count;
    if (seen >= std::max<std::uint64_t>(rank, 1)) return b.upper;
  }
  return buckets.empty() ? 0.0 : buckets.back().upper;
}

std::uint64_t Histogram::bucket_lower(std::size_t index) noexcept {
  constexpr std::uint64_t kSub = std::uint64_t{1} << kSubBits;
  if (index < kSub) return index;
  const auto group = index >> kSubBits;  // >= 1
  const unsigned msb = static_cast<unsigned>(group) + kSubBits - 1;
  const std::uint64_t sub = index & (kSub - 1);
  return (std::uint64_t{1} << msb) + (sub << (msb - kSubBits));
}

std::uint64_t Histogram::bucket_upper(std::size_t index) noexcept {
  constexpr std::uint64_t kSub = std::uint64_t{1} << kSubBits;
  if (index < kSub) return index;
  const auto group = index >> kSubBits;
  const unsigned msb = static_cast<unsigned>(group) + kSubBits - 1;
  return bucket_lower(index) + (std::uint64_t{1} << (msb - kSubBits)) - 1;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    const std::uint64_t c = counts_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    const double lower = static_cast<double>(bucket_lower(i));
    const double upper = static_cast<double>(bucket_upper(i));
    s.buckets.push_back({upper, c});
    s.count += c;
    s.sum += 0.5 * (lower + upper) * static_cast<double>(c);
  }
  return s;
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

namespace {

template <typename Map, typename Value>
Value& get_or_create(std::mutex& mutex, Map& map, std::string_view name) {
  std::lock_guard<std::mutex> lock{mutex};
  const auto it = map.find(name);
  if (it != map.end()) return *it->second;
  auto [inserted, ok] =
      map.emplace(std::string{name}, std::make_unique<Value>());
  (void)ok;
  return *inserted->second;
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  return get_or_create<decltype(counters_), Counter>(mutex_, counters_, name);
}

Gauge& Registry::gauge(std::string_view name) {
  return get_or_create<decltype(gauges_), Gauge>(mutex_, gauges_, name);
}

Histogram& Registry::histogram(std::string_view name) {
  return get_or_create<decltype(histograms_), Histogram>(mutex_, histograms_,
                                                         name);
}

RegistrySnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock{mutex_};
  RegistrySnapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c->value());
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g->value());
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    s.histograms.emplace_back(name, h->snapshot());
  }
  return s;
}

HistogramSnapshot histogram_delta(const HistogramSnapshot& earlier,
                                  const HistogramSnapshot& later) {
  HistogramSnapshot d;
  // Buckets are ascending by bound in both inputs; march them together.
  std::size_t e = 0;
  for (const HistogramSnapshot::Bucket& b : later.buckets) {
    while (e < earlier.buckets.size() && earlier.buckets[e].upper < b.upper) {
      ++e;  // bucket emptied?  impossible for the lock-free Histogram —
            // counts are monotonic — so this only skips buckets `later`
            // no longer reports; clamping below keeps the delta sane.
    }
    std::uint64_t prior = 0;
    if (e < earlier.buckets.size() && earlier.buckets[e].upper == b.upper) {
      prior = earlier.buckets[e].count;
    }
    if (b.count <= prior) continue;
    const std::uint64_t c = b.count - prior;
    d.buckets.push_back({b.upper, c});
    d.count += c;
  }
  d.sum = d.count > 0 && later.sum > earlier.sum ? later.sum - earlier.sum : 0.0;
  return d;
}

namespace {

/// Merge two name-sorted (name, value) vectors; `a` wins collisions.
template <typename V>
std::vector<std::pair<std::string, V>> merge_by_name(
    const std::vector<std::pair<std::string, V>>& a,
    const std::vector<std::pair<std::string, V>>& b) {
  std::vector<std::pair<std::string, V>> out;
  out.reserve(a.size() + b.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() || j < b.size()) {
    if (j >= b.size() || (i < a.size() && a[i].first <= b[j].first)) {
      if (j < b.size() && a[i].first == b[j].first) ++j;  // a wins
      out.push_back(a[i++]);
    } else {
      out.push_back(b[j++]);
    }
  }
  return out;
}

}  // namespace

RegistrySnapshot registry_delta(const RegistrySnapshot& earlier,
                                const RegistrySnapshot& later) {
  RegistrySnapshot d;
  d.counters.reserve(later.counters.size());
  std::size_t e = 0;
  for (const auto& [name, value] : later.counters) {
    while (e < earlier.counters.size() && earlier.counters[e].first < name) ++e;
    std::uint64_t prior = 0;
    if (e < earlier.counters.size() && earlier.counters[e].first == name) {
      prior = earlier.counters[e].second;
    }
    d.counters.emplace_back(name, value > prior ? value - prior : 0);
  }
  d.gauges = later.gauges;
  d.histograms.reserve(later.histograms.size());
  std::size_t h = 0;
  static const HistogramSnapshot kEmpty;
  for (const auto& [name, snap] : later.histograms) {
    while (h < earlier.histograms.size() && earlier.histograms[h].first < name) {
      ++h;
    }
    const HistogramSnapshot& prior =
        h < earlier.histograms.size() && earlier.histograms[h].first == name
            ? earlier.histograms[h].second
            : kEmpty;
    d.histograms.emplace_back(name, histogram_delta(prior, snap));
  }
  return d;
}

RegistrySnapshot merge_snapshots(const RegistrySnapshot& primary,
                                 const RegistrySnapshot& secondary) {
  RegistrySnapshot out;
  out.counters = merge_by_name(primary.counters, secondary.counters);
  out.gauges = merge_by_name(primary.gauges, secondary.gauges);
  out.histograms = merge_by_name(primary.histograms, secondary.histograms);
  return out;
}

namespace {

/// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*; everything
/// else (the registry's dots, parens in task names) becomes '_'.
std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (digit && i == 0) out.push_back('_');
    out.push_back(alpha || digit ? c : '_');
  }
  if (out.empty()) out.push_back('_');
  return out;
}

void append_double(std::string& out, double v) {
  char num[64];
  std::snprintf(num, sizeof num, "%.17g", v);
  out += num;
}

void append_u64(std::string& out, std::uint64_t v) {
  char num[32];
  std::snprintf(num, sizeof num, "%llu", static_cast<unsigned long long>(v));
  out += num;
}

}  // namespace

std::string prometheus_text(const RegistrySnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string n = prometheus_name(name);
    out += "# TYPE " + n + " counter\n" + n + ' ';
    append_u64(out, value);
    out.push_back('\n');
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string n = prometheus_name(name);
    out += "# TYPE " + n + " gauge\n" + n + ' ';
    char num[32];
    std::snprintf(num, sizeof num, "%lld", static_cast<long long>(value));
    out += num;
    out.push_back('\n');
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string n = prometheus_name(name);
    out += "# TYPE " + n + " histogram\n";
    std::uint64_t cumulative = 0;
    for (const HistogramSnapshot::Bucket& b : h.buckets) {
      cumulative += b.count;
      out += n + "_bucket{le=\"";
      append_double(out, b.upper);
      out += "\"} ";
      append_u64(out, cumulative);
      out.push_back('\n');
    }
    out += n + "_bucket{le=\"+Inf\"} ";
    append_u64(out, h.count);
    out.push_back('\n');
    out += n + "_sum ";
    append_double(out, h.sum);
    out.push_back('\n');
    out += n + "_count ";
    append_u64(out, h.count);
    out.push_back('\n');
  }
  return out;
}

std::string Registry::render_text() const {
  const RegistrySnapshot s = snapshot();
  std::ostringstream out;
  for (const auto& [name, v] : s.counters) out << name << ' ' << v << '\n';
  for (const auto& [name, v] : s.gauges) out << name << ' ' << v << '\n';
  for (const auto& [name, h] : s.histograms) {
    out << name << "{count=" << h.count << ", mean=" << h.mean()
        << ", p50=" << h.quantile(0.50) << ", p99=" << h.quantile(0.99)
        << "}\n";
  }
  return out.str();
}

}  // namespace emoleak::obs
