#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace emoleak::obs {

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank over the bucket cumulative counts; the returned value
  // is the bucket's upper bound, so it never understates the true
  // quantile by more than rounding and never overstates it by more than
  // the bucket's relative width (<= 12.5% at kSubBits = 3).
  const auto rank = static_cast<std::uint64_t>(std::ceil(
      q * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (const Bucket& b : buckets) {
    seen += b.count;
    if (seen >= std::max<std::uint64_t>(rank, 1)) return b.upper;
  }
  return buckets.empty() ? 0.0 : buckets.back().upper;
}

std::uint64_t Histogram::bucket_lower(std::size_t index) noexcept {
  constexpr std::uint64_t kSub = std::uint64_t{1} << kSubBits;
  if (index < kSub) return index;
  const auto group = index >> kSubBits;  // >= 1
  const unsigned msb = static_cast<unsigned>(group) + kSubBits - 1;
  const std::uint64_t sub = index & (kSub - 1);
  return (std::uint64_t{1} << msb) + (sub << (msb - kSubBits));
}

std::uint64_t Histogram::bucket_upper(std::size_t index) noexcept {
  constexpr std::uint64_t kSub = std::uint64_t{1} << kSubBits;
  if (index < kSub) return index;
  const auto group = index >> kSubBits;
  const unsigned msb = static_cast<unsigned>(group) + kSubBits - 1;
  return bucket_lower(index) + (std::uint64_t{1} << (msb - kSubBits)) - 1;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    const std::uint64_t c = counts_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    const double lower = static_cast<double>(bucket_lower(i));
    const double upper = static_cast<double>(bucket_upper(i));
    s.buckets.push_back({upper, c});
    s.count += c;
    s.sum += 0.5 * (lower + upper) * static_cast<double>(c);
  }
  return s;
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

namespace {

template <typename Map, typename Value>
Value& get_or_create(std::mutex& mutex, Map& map, std::string_view name) {
  std::lock_guard<std::mutex> lock{mutex};
  const auto it = map.find(name);
  if (it != map.end()) return *it->second;
  auto [inserted, ok] =
      map.emplace(std::string{name}, std::make_unique<Value>());
  (void)ok;
  return *inserted->second;
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  return get_or_create<decltype(counters_), Counter>(mutex_, counters_, name);
}

Gauge& Registry::gauge(std::string_view name) {
  return get_or_create<decltype(gauges_), Gauge>(mutex_, gauges_, name);
}

Histogram& Registry::histogram(std::string_view name) {
  return get_or_create<decltype(histograms_), Histogram>(mutex_, histograms_,
                                                         name);
}

RegistrySnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock{mutex_};
  RegistrySnapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c->value());
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g->value());
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    s.histograms.emplace_back(name, h->snapshot());
  }
  return s;
}

std::string Registry::render_text() const {
  const RegistrySnapshot s = snapshot();
  std::ostringstream out;
  for (const auto& [name, v] : s.counters) out << name << ' ' << v << '\n';
  for (const auto& [name, v] : s.gauges) out << name << ' ' << v << '\n';
  for (const auto& [name, h] : s.histograms) {
    out << name << "{count=" << h.count << ", mean=" << h.mean()
        << ", p50=" << h.quantile(0.50) << ", p99=" << h.quantile(0.99)
        << "}\n";
  }
  return out.str();
}

}  // namespace emoleak::obs
