// emoleak::obs metrics — named counters, gauges, and log-bucketed
// histograms with lock-free recording.
//
// Recording is a relaxed fetch_add on an atomic (no mutex, no
// allocation), so metrics can sit on kernel hot paths and inside the
// thread pool without perturbing the data path. A Registry hands out
// stable references keyed by name: callers resolve a metric once
// (registry lookup takes a mutex) and then record through the reference
// for the life of the process. snapshot() assembles a self-consistent
// view — histogram totals are derived from the bucket counts actually
// read, so a snapshot taken mid-recording is internally coherent and
// totals are monotonic across snapshots.
//
// Histogram buckets are HDR-style log-linear: kSubBits sub-buckets per
// power of two, giving a fixed <= 1/2^kSubBits relative width (12.5%
// at kSubBits = 3) over the full uint64 range with a flat 496-entry
// array. Values 0..7 are exact. Quantiles come from the full history,
// not a sliding window, so tail percentiles survive bursty load (the
// failure mode of the mutex-guarded sample ring this replaces; see
// serve/counters.h).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace emoleak::obs {

/// Monotonic event count. Lock-free; safe from any thread.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time signed level (queue depth, bytes held). Lock-free.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Self-consistent histogram view: `count` and `sum` are derived from
/// the same bucket reads, so quantiles and means agree with each other.
struct HistogramSnapshot {
  struct Bucket {
    double upper = 0.0;  ///< inclusive upper bound of the value range
    std::uint64_t count = 0;
  };
  std::uint64_t count = 0;
  double sum = 0.0;  ///< approximate (bucket midpoints), exact for 0..7
  std::vector<Bucket> buckets;  ///< nonzero buckets, ascending by bound

  /// Quantile in [0, 1] as the containing bucket's upper bound; exact
  /// to within the bucket's relative width. 0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept;
  [[nodiscard]] double mean() const noexcept {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
};

/// Lock-free log-bucketed histogram over uint64 values (callers pick
/// the unit; latency recorders use nanoseconds).
class Histogram {
 public:
  static constexpr unsigned kSubBits = 3;  ///< 8 sub-buckets per octave
  /// Index of the bucket for the largest msb (63) plus its sub-buckets.
  static constexpr std::size_t kBucketCount =
      ((std::size_t{63} - kSubBits + 1) << kSubBits) + (std::size_t{1} << kSubBits);

  void record(std::uint64_t value) noexcept {
    counts_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    std::uint64_t total = 0;
    for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
    return total;
  }

  [[nodiscard]] HistogramSnapshot snapshot() const;

  /// Log-linear bucket of `v`: exact below 2^kSubBits, then kSubBits
  /// mantissa bits per octave. Contiguous and monotone in v.
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t v) noexcept {
    constexpr std::uint64_t kSub = std::uint64_t{1} << kSubBits;
    if (v < kSub) return static_cast<std::size_t>(v);
    const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(v));
    const unsigned shift = msb - kSubBits;
    const auto sub = static_cast<std::size_t>((v >> shift) & (kSub - 1));
    return ((static_cast<std::size_t>(msb) - kSubBits + 1) << kSubBits) + sub;
  }

  /// Inclusive [lower, upper] value range of a bucket.
  [[nodiscard]] static std::uint64_t bucket_lower(std::size_t index) noexcept;
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t index) noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> counts_{};
};

/// Everything a registry holds, rendered by name.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// Windowed view between two snapshots of the same histogram: bucket
/// counts recorded after `earlier` was taken. Counts are clamped at
/// zero bucketwise, so a well-ordered pair (earlier actually taken
/// first) yields exactly the in-window recordings and quantile() gives
/// the windowed percentile rather than the full-history one.
[[nodiscard]] HistogramSnapshot histogram_delta(const HistogramSnapshot& earlier,
                                                const HistogramSnapshot& later);

/// Windowed view between two snapshots of the same registry: counters
/// become in-window increments (clamped at zero; names only in `later`
/// keep their full value), gauges keep the `later` level (a gauge is a
/// point-in-time reading, not a rate), histograms become
/// histogram_delta(). Divide a counter delta by the window's seconds
/// for a rate.
[[nodiscard]] RegistrySnapshot registry_delta(const RegistrySnapshot& earlier,
                                              const RegistrySnapshot& later);

/// Two snapshots merged by name, `primary` winning collisions. Both
/// inputs must be sorted by name (Registry::snapshot() order); the
/// result is too. Used to serve one scrape over several registries.
[[nodiscard]] RegistrySnapshot merge_snapshots(const RegistrySnapshot& primary,
                                               const RegistrySnapshot& secondary);

/// Prometheus text exposition (version 0.0.4) of a snapshot: # TYPE
/// comments, names sanitized to [a-zA-Z0-9_:], histograms as cumulative
/// `_bucket{le="..."}` series plus `_sum`/`_count`.
[[nodiscard]] std::string prometheus_text(const RegistrySnapshot& snapshot);

/// Named metric store. counter()/gauge()/histogram() get-or-create and
/// return references that stay valid for the registry's lifetime, so
/// the lookup mutex is paid once per call site, not per record. The
/// process-wide instance() backs library-internal metrics; subsystems
/// that need isolated stats (serve::ServeCounters) own their own.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry (kernel tallies, cache stats, pool load).
  [[nodiscard]] static Registry& instance();

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  [[nodiscard]] RegistrySnapshot snapshot() const;

  /// Human-readable "name value" lines (counters/gauges) plus
  /// "name{count,mean,p50,p99}" lines for histograms — the --metrics
  /// output of the example binaries.
  [[nodiscard]] std::string render_text() const;

 private:
  mutable std::mutex mutex_;
  // unique_ptr values keep references stable across rehash/insert.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace emoleak::obs
