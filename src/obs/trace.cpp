#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>

namespace emoleak::obs {

namespace {

std::atomic<bool> g_enabled{false};

/// Owns every thread's ring so export works after threads exit.
struct RingRegistry {
  std::mutex mutex;
  std::vector<std::unique_ptr<detail::TraceRing>> rings;

  static RingRegistry& instance() {
    static RingRegistry r;
    return r;
  }
};

std::chrono::steady_clock::time_point trace_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

void append_json_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out.push_back(c);
    }  // control characters are dropped — span names are identifiers
  }
}

}  // namespace

void set_trace_enabled(bool on) noexcept {
  if (on) (void)trace_epoch();  // pin the epoch before the first span
  g_enabled.store(on, std::memory_order_relaxed);
}

bool trace_enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

std::uint64_t trace_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - trace_epoch())
          .count());
}

namespace detail {

TraceRing& thread_ring() {
  thread_local TraceRing* ring = [] {
    RingRegistry& reg = RingRegistry::instance();
    std::lock_guard<std::mutex> lock{reg.mutex};
    const auto tid = static_cast<std::uint32_t>(reg.rings.size());
    reg.rings.push_back(std::make_unique<TraceRing>(tid));
    return reg.rings.back().get();
  }();
  return *ring;
}

}  // namespace detail

void clear_trace() {
  RingRegistry& reg = RingRegistry::instance();
  std::lock_guard<std::mutex> lock{reg.mutex};
  for (const auto& ring : reg.rings) ring->reset();
}

std::uint64_t trace_dropped() {
  RingRegistry& reg = RingRegistry::instance();
  std::lock_guard<std::mutex> lock{reg.mutex};
  std::uint64_t dropped = 0;
  for (const auto& ring : reg.rings) {
    const std::uint64_t head = ring->head();
    if (head > detail::TraceRing::kCapacity) {
      dropped += head - detail::TraceRing::kCapacity;
    }
  }
  return dropped;
}

std::vector<TraceRingInfo> trace_ring_info() {
  RingRegistry& reg = RingRegistry::instance();
  std::lock_guard<std::mutex> lock{reg.mutex};
  std::vector<TraceRingInfo> info;
  info.reserve(reg.rings.size());
  for (const auto& ring : reg.rings) {
    const std::uint64_t head = ring->head();
    TraceRingInfo entry;
    entry.tid = ring->tid();
    entry.recorded = std::min<std::uint64_t>(head, detail::TraceRing::kCapacity);
    entry.dropped =
        head > detail::TraceRing::kCapacity ? head - detail::TraceRing::kCapacity : 0;
    info.push_back(entry);
  }
  return info;
}

std::string trace_json() {
  RingRegistry& reg = RingRegistry::instance();
  std::lock_guard<std::mutex> lock{reg.mutex};
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char num[128];
  for (const auto& ring : reg.rings) {
    const std::uint64_t head = ring->head();
    const std::uint64_t n = std::min<std::uint64_t>(
        head, detail::TraceRing::kCapacity);
    for (std::uint64_t i = head - n; i < head; ++i) {
      const detail::SpanSlot& s = ring->slot(i);
      const char* name = s.name.load(std::memory_order_relaxed);
      if (name == nullptr) continue;  // slot racing its first write
      if (!first) out.push_back(',');
      first = false;
      const std::uint8_t phase = s.phase.load(std::memory_order_relaxed);
      out += "{\"name\":\"";
      append_json_escaped(out, name);
      if (phase == static_cast<std::uint8_t>(FlowPhase::kNone)) {
        out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
      } else {
        // Flow event: "s"/"t"/"f" with an id, bound to the enclosing
        // "X" slice on this thread. Matched by name + id across rings.
        const char ph = phase == static_cast<std::uint8_t>(FlowPhase::kBegin)
                            ? 's'
                            : phase == static_cast<std::uint8_t>(FlowPhase::kStep)
                                  ? 't'
                                  : 'f';
        out += "\",\"cat\":\"flow\",\"ph\":\"";
        out.push_back(ph);
        out += "\",\"pid\":1,\"tid\":";
      }
      std::snprintf(num, sizeof num, "%u", ring->tid());
      out += num;
      out += ",\"ts\":";
      std::snprintf(num, sizeof num, "%.3f",
                    static_cast<double>(
                        s.start_ns.load(std::memory_order_relaxed)) /
                        1000.0);
      out += num;
      if (phase != static_cast<std::uint8_t>(FlowPhase::kNone)) {
        out += ",\"id\":";
        std::snprintf(num, sizeof num, "%llu",
                      static_cast<unsigned long long>(
                          s.arg.load(std::memory_order_relaxed)));
        out += num;
        if (phase == static_cast<std::uint8_t>(FlowPhase::kEnd)) {
          out += ",\"bp\":\"e\"";
        }
        out += "}";
        continue;
      }
      out += ",\"dur\":";
      std::snprintf(num, sizeof num, "%.3f",
                    static_cast<double>(
                        s.dur_ns.load(std::memory_order_relaxed)) /
                        1000.0);
      out += num;
      if (const char* arg_name = s.arg_name.load(std::memory_order_relaxed)) {
        out += ",\"args\":{\"";
        append_json_escaped(out, arg_name);
        out += "\":";
        std::snprintf(num, sizeof num, "%llu",
                      static_cast<unsigned long long>(
                          s.arg.load(std::memory_order_relaxed)));
        out += num;
        out += "}";
      }
      out += "}";
    }
  }
  // Exporter metadata (ignored by trace viewers): wrap losses and ring
  // occupancy, so scrapers can tell a quiet server from a wrapped ring.
  out += "],\"emoleakMeta\":{\"droppedSpans\":";
  std::uint64_t total_dropped = 0;
  for (const auto& ring : reg.rings) {
    const std::uint64_t head = ring->head();
    if (head > detail::TraceRing::kCapacity) {
      total_dropped += head - detail::TraceRing::kCapacity;
    }
  }
  std::snprintf(num, sizeof num, "%llu",
                static_cast<unsigned long long>(total_dropped));
  out += num;
  out += ",\"ringCapacity\":";
  std::snprintf(num, sizeof num, "%llu",
                static_cast<unsigned long long>(detail::TraceRing::kCapacity));
  out += num;
  out += ",\"rings\":[";
  bool first_ring = true;
  for (const auto& ring : reg.rings) {
    const std::uint64_t head = ring->head();
    if (!first_ring) out.push_back(',');
    first_ring = false;
    std::snprintf(
        num, sizeof num, "{\"tid\":%u,\"recorded\":%llu,\"dropped\":%llu}",
        ring->tid(),
        static_cast<unsigned long long>(
            std::min<std::uint64_t>(head, detail::TraceRing::kCapacity)),
        static_cast<unsigned long long>(
            head > detail::TraceRing::kCapacity
                ? head - detail::TraceRing::kCapacity
                : 0));
    out += num;
  }
  out += "]}}";
  return out;
}

bool write_trace_file(const std::string& path) {
  std::ofstream out{path};
  if (!out) return false;
  out << trace_json();
  return static_cast<bool>(out);
}

}  // namespace emoleak::obs
