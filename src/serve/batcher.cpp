#include "serve/batcher.h"

#include "obs/obs.h"
#include "util/error.h"

namespace emoleak::serve {

void BatcherConfig::validate() const {
  if (shard_count == 0) {
    throw util::ConfigError{"BatcherConfig: shard_count == 0"};
  }
  if (queue_capacity == 0) {
    throw util::ConfigError{"BatcherConfig: queue_capacity == 0"};
  }
}

RequestBatcher::RequestBatcher(BatcherConfig config) : config_{config} {
  config_.validate();
  shards_.reserve(config_.shard_count);
  for (std::size_t s = 0; s < config_.shard_count; ++s) {
    shards_.push_back(
        std::make_unique<util::BoundedQueue<PushRequest>>(config_.queue_capacity));
  }
}

bool RequestBatcher::submit(PushRequest request) {
  const std::size_t shard = shard_of(request.stream_id);
  return shards_[shard]->try_push(std::move(request));
}

std::size_t RequestBatcher::drain(
    const std::function<void(PushRequest&)>& process,
    const util::Parallelism& parallelism) {
  // Snapshot each shard's backlog up front so the cycle is bounded:
  // requests submitted while the drain runs wait for the next cycle
  // rather than extending this one indefinitely.
  std::vector<std::vector<PushRequest>> backlog(shards_.size());
  std::size_t total = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    total += shards_[s]->drain_into(backlog[s]);
  }
  if (total == 0) return 0;
  OBS_SPAN_ARG("serve.batch", "requests", total);
  util::parallel_for(parallelism, backlog.size(), [&](std::size_t s) {
    OBS_SPAN_ARG("serve.shard", "shard", s);
    for (PushRequest& request : backlog[s]) process(request);
  });
  return total;
}

std::size_t RequestBatcher::pending() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->size();
  return total;
}

}  // namespace emoleak::serve
