#include "serve/model_registry.h"

#include "ml/serialize.h"
#include "util/error.h"

namespace emoleak::serve {

std::uint32_t ModelRegistry::add(std::string name, ModelPtr model) {
  if (!model) throw util::DataError{"ModelRegistry::add: null model"};
  std::lock_guard<std::mutex> lock{mutex_};
  entries_.push_back(Entry{std::move(name), std::move(model)});
  const auto version = static_cast<std::uint32_t>(entries_.size());
  if (!current_) {
    current_ = entries_.back().model;
    generation_.store(1, std::memory_order_release);
  }
  return version;
}

std::uint32_t ModelRegistry::load_file(std::string name,
                                       const std::string& path) {
  // Parse outside the lock: load_model_file is the expensive, throwing
  // part, and a malformed file must not poison the registry.
  ModelPtr model = ml::load_model_file(path);
  return add(std::move(name), std::move(model));
}

void ModelRegistry::activate(std::uint32_t version) {
  std::lock_guard<std::mutex> lock{mutex_};
  if (version == 0 || version > entries_.size()) {
    throw util::DataError{"ModelRegistry::activate: unknown version " +
                          std::to_string(version)};
  }
  current_ = entries_[version - 1].model;
  generation_.fetch_add(1, std::memory_order_acq_rel);
}

ModelRegistry::ModelPtr ModelRegistry::current() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return current_;
}

std::pair<ModelRegistry::ModelPtr, std::uint64_t>
ModelRegistry::current_with_generation() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return {current_, generation_.load(std::memory_order_acquire)};
}

ModelRegistry::ModelPtr ModelRegistry::get(std::uint32_t version) const {
  std::lock_guard<std::mutex> lock{mutex_};
  if (version == 0 || version > entries_.size()) return nullptr;
  return entries_[version - 1].model;
}

std::vector<ModelRegistry::ModelInfo> ModelRegistry::list() const {
  std::lock_guard<std::mutex> lock{mutex_};
  std::vector<ModelInfo> out;
  out.reserve(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    out.push_back(ModelInfo{static_cast<std::uint32_t>(i + 1),
                            entries_[i].name, entries_[i].model->name()});
  }
  return out;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return entries_.size();
}

}  // namespace emoleak::serve
