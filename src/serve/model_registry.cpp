#include "serve/model_registry.h"

#include <algorithm>

#include "ml/serialize.h"
#include "util/error.h"

namespace emoleak::serve {

std::uint32_t ModelRegistry::add(std::string name, ModelPtr model,
                                 core::FeatureRoute route) {
  if (!model) throw util::DataError{"ModelRegistry::add: null model"};
  std::lock_guard<std::mutex> lock{mutex_};
  entries_.push_back(Entry{std::move(name), std::move(model), route});
  const auto version = static_cast<std::uint32_t>(entries_.size());

  NameState& state = names_[entries_.back().name];
  const bool swap = state.active_version != 0;  // duplicate-name re-register
  state.active_version = version;
  ++state.versions;

  if (default_version_ == 0) {
    // First model ever: becomes the default, generation starts ticking.
    default_version_ = version;
    generation_.store(1, std::memory_order_release);
  } else if (swap) {
    // Sessions bound to this name must re-resolve; sessions holding the
    // old ModelPtr keep it alive through their shared_ptr until then.
    generation_.fetch_add(1, std::memory_order_acq_rel);
  }
  return version;
}

std::uint32_t ModelRegistry::load_file(std::string name,
                                       const std::string& path,
                                       core::FeatureRoute route) {
  // Parse outside the lock: load_model_file is the expensive, throwing
  // part, and a malformed file must not poison the registry.
  ModelPtr model = ml::load_model_file(path);
  return add(std::move(name), std::move(model), route);
}

void ModelRegistry::activate(std::uint32_t version) {
  std::lock_guard<std::mutex> lock{mutex_};
  if (version == 0 || version > entries_.size()) {
    throw util::DataError{"ModelRegistry::activate: unknown version " +
                          std::to_string(version)};
  }
  default_version_ = version;
  names_[entries_[version - 1].name].active_version = version;
  generation_.fetch_add(1, std::memory_order_acq_rel);
}

ModelRegistry::ModelPtr ModelRegistry::current() const {
  std::lock_guard<std::mutex> lock{mutex_};
  if (default_version_ == 0) return nullptr;
  return entries_[default_version_ - 1].model;
}

std::pair<ModelRegistry::ModelPtr, std::uint64_t>
ModelRegistry::current_with_generation() const {
  std::lock_guard<std::mutex> lock{mutex_};
  ModelPtr model =
      default_version_ == 0 ? nullptr : entries_[default_version_ - 1].model;
  return {std::move(model), generation_.load(std::memory_order_acquire)};
}

ModelRegistry::Resolved ModelRegistry::resolve_locked(
    const std::string& name) const {
  Resolved out;
  out.generation = generation_.load(std::memory_order_acquire);
  std::uint32_t version = 0;
  if (name.empty()) {
    version = default_version_;
  } else if (const auto it = names_.find(name); it != names_.end()) {
    version = it->second.active_version;
  }
  if (version == 0) return out;  // unknown name or empty registry
  const Entry& entry = entries_[version - 1];
  out.model = entry.model;
  out.route = entry.route;
  out.name = entry.name;
  out.version = version;
  return out;
}

ModelRegistry::Resolved ModelRegistry::resolve(const std::string& name) const {
  std::lock_guard<std::mutex> lock{mutex_};
  return resolve_locked(name);
}

bool ModelRegistry::has(const std::string& name) const {
  std::lock_guard<std::mutex> lock{mutex_};
  if (name.empty()) return default_version_ != 0;
  const auto it = names_.find(name);
  return it != names_.end() && it->second.active_version != 0;
}

ModelRegistry::ModelPtr ModelRegistry::get(std::uint32_t version) const {
  std::lock_guard<std::mutex> lock{mutex_};
  if (version == 0 || version > entries_.size()) return nullptr;
  return entries_[version - 1].model;
}

std::vector<ModelRegistry::ModelInfo> ModelRegistry::list() const {
  std::lock_guard<std::mutex> lock{mutex_};
  std::vector<ModelInfo> out;
  out.reserve(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    out.push_back(ModelInfo{static_cast<std::uint32_t>(i + 1),
                            entries_[i].name, entries_[i].model->name()});
  }
  return out;
}

std::vector<ModelRegistry::NameInfo> ModelRegistry::stats() const {
  std::lock_guard<std::mutex> lock{mutex_};
  std::vector<NameInfo> out;
  out.reserve(names_.size());
  for (const auto& [name, state] : names_) {
    out.push_back(NameInfo{name, state.active_version, state.versions});
  }
  std::sort(out.begin(), out.end(),
            [](const NameInfo& a, const NameInfo& b) { return a.name < b.name; });
  return out;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return entries_.size();
}

}  // namespace emoleak::serve
