#include "serve/session_manager.h"

#include <algorithm>
#include <utility>

namespace emoleak::serve {

void SessionConfig::validate() const {
  stream.validate();
  if (sample_rate_hz <= 0.0) {
    throw util::ConfigError{"SessionConfig: sample_rate_hz <= 0"};
  }
  if (max_sessions == 0) {
    throw util::ConfigError{"SessionConfig: max_sessions == 0"};
  }
}

SessionManager::Session::Session(const SessionConfig& config,
                                 ModelRegistry::ModelPtr model)
    : attack{config.stream, config.sample_rate_hz, std::move(model)} {}

SessionManager::SessionManager(SessionConfig config,
                               std::shared_ptr<ModelRegistry> registry)
    : config_{std::move(config)}, registry_{std::move(registry)} {
  config_.validate();
  if (!registry_) {
    throw util::ConfigError{"SessionManager: null model registry"};
  }
}

SessionManager::Session* SessionManager::acquire(std::uint64_t stream_id,
                                                 std::uint64_t tick) {
  std::lock_guard<std::mutex> lock{mutex_};
  const auto it = sessions_.find(stream_id);
  if (it != sessions_.end()) {
    it->second->last_active_tick = tick;
    return it->second.get();
  }
  if (sessions_.size() >= config_.max_sessions) return nullptr;

  std::unique_ptr<Session> session;
  auto [model, generation] = registry_->current_with_generation();
  if (!free_pool_.empty()) {
    session = std::move(free_pool_.back());
    free_pool_.pop_back();
    session->attack.reset();
    // A recycled session may have served a different task: reset the
    // feature route along with the model, not just the detector state.
    session->attack.set_classifier(std::move(model),
                                   core::FeatureRoute::kTableFeatures);
    session->outbox.clear();
    session->pending.clear();
    ++pooled_;
  } else {
    session = std::make_unique<Session>(config_, std::move(model));
  }
  session->stream_id = stream_id;
  session->last_active_tick = tick;
  session->model_generation = generation;
  session->model_name.clear();
  session->task = nullptr;  // service re-binds on first processed request
  ++created_;
  Session* raw = session.get();
  sessions_.emplace(stream_id, std::move(session));
  return raw;
}

SessionManager::Session* SessionManager::find(std::uint64_t stream_id) {
  std::lock_guard<std::mutex> lock{mutex_};
  const auto it = sessions_.find(stream_id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

void SessionManager::retire(std::unique_ptr<Session> session) {
  // Bounded pool: keeping more parked sessions than the table can hold
  // live would just hoard history buffers.
  if (free_pool_.size() < config_.max_sessions) {
    free_pool_.push_back(std::move(session));
  }
}

void SessionManager::resolve_pending_solo(Session& session) {
  for (core::PendingWindow& p : session.pending) {
    core::EmotionEvent& event = session.outbox[p.slot];
    event.probabilities = p.classifier->predict_proba(p.input);
    event.predicted_class = static_cast<int>(
        std::max_element(event.probabilities.begin(),
                         event.probabilities.end()) -
        event.probabilities.begin());
    if (solo_counter_ != nullptr) solo_counter_->add(1);
  }
  session.pending.clear();
}

bool SessionManager::finish(std::uint64_t stream_id, std::uint64_t flow,
                            std::uint64_t arrival_ns) {
  std::lock_guard<std::mutex> lock{mutex_};
  const auto it = sessions_.find(stream_id);
  if (it == sessions_.end()) return false;
  std::unique_ptr<Session> session = std::move(it->second);
  sessions_.erase(it);
  // A finish mid-tick can retire a session whose earlier regions are
  // still waiting on the batch step; resolve them solo (bit-identical)
  // before the outbox leaves the session.
  resolve_pending_solo(*session);
  if (auto last = session->attack.finish()) {
    last->flow = flow;
    last->arrival_ns = arrival_ns;
    session->outbox.push_back(*last);
  }
  // The outbox must survive retirement until take_events(); park the
  // events on the side rather than losing them with the pool slot.
  for (core::EmotionEvent& event : session->outbox) {
    orphaned_events_.emplace_back(stream_id, std::move(event));
  }
  session->outbox.clear();
  retire(std::move(session));
  return true;
}

std::size_t SessionManager::evict_idle(std::uint64_t tick) {
  if (config_.idle_timeout_ticks == 0) return 0;
  std::lock_guard<std::mutex> lock{mutex_};
  std::size_t evicted = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    Session& session = *it->second;
    if (tick - session.last_active_tick >= config_.idle_timeout_ticks) {
      resolve_pending_solo(session);
      if (auto last = session.attack.finish()) {
        session.outbox.push_back(*last);
      }
      for (core::EmotionEvent& event : session.outbox) {
        orphaned_events_.emplace_back(session.stream_id, std::move(event));
      }
      session.outbox.clear();
      retire(std::move(it->second));
      it = sessions_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  evicted_ += evicted;
  return evicted;
}

std::vector<std::pair<std::uint64_t, core::EmotionEvent>>
SessionManager::take_events() {
  std::lock_guard<std::mutex> lock{mutex_};
  std::vector<std::pair<std::uint64_t, core::EmotionEvent>> out;
  out.swap(orphaned_events_);
  for (auto& [id, session] : sessions_) {
    for (core::EmotionEvent& event : session->outbox) {
      out.emplace_back(id, std::move(event));
    }
    session->outbox.clear();
  }
  // Deterministic order across streams: sort by stream id; the sort is
  // stable, so each stream's events keep their emission order.
  std::stable_sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.first < b.first;
  });
  return out;
}

std::vector<SessionManager::PendingEntry> SessionManager::take_pending() {
  std::lock_guard<std::mutex> lock{mutex_};
  std::vector<PendingEntry> out;
  for (auto& [id, session] : sessions_) {
    for (core::PendingWindow& window : session->pending) {
      out.push_back(PendingEntry{session.get(), std::move(window)});
    }
    session->pending.clear();
  }
  // Deterministic assembly order regardless of hash-map iteration or
  // shard scheduling: (stream id, outbox slot).
  std::sort(out.begin(), out.end(), [](const PendingEntry& a,
                                       const PendingEntry& b) {
    if (a.session->stream_id != b.session->stream_id) {
      return a.session->stream_id < b.session->stream_id;
    }
    return a.window.slot < b.window.slot;
  });
  return out;
}

std::size_t SessionManager::active_sessions() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return sessions_.size();
}

std::uint64_t SessionManager::sessions_created() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return created_;
}

std::uint64_t SessionManager::sessions_evicted() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return evicted_;
}

std::uint64_t SessionManager::sessions_pooled() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return pooled_;
}

}  // namespace emoleak::serve
