#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <utility>

#include "obs/obs.h"
#include "util/error.h"

namespace emoleak::serve {

void ServeConfig::validate() const {
  session.validate();
  batcher.validate();
  slo.validate();
}

ServeService::ServeService(ServeConfig config,
                           std::shared_ptr<ModelRegistry> registry)
    : config_{std::move(config)},
      registry_{std::move(registry)},
      sessions_{config_.session, registry_},
      batcher_{config_.batcher},
      slo_{config_.slo} {
  config_.validate();
  sessions_.set_solo_counter(&counters_.windows_solo);
}

Status ServeService::push(std::uint64_t stream_id,
                          std::vector<double> samples) {
  OBS_SPAN_ARG("serve.push", "stream", stream_id);
  counters_.requests.add(1);
  PushRequest request;
  request.stream_id = stream_id;
  request.samples = std::move(samples);
  request.arrival_ns = obs::trace_now_ns();
  request.flow = flow_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t flow = request.flow;
  if (!batcher_.submit(std::move(request))) {
    counters_.rejected_overload.add(1);
    return Status::kOverloaded;
  }
  // Flow begins only for admitted work — a rejected chunk never crosses
  // a thread, so there is nothing to link.
  OBS_FLOW_BEGIN("serve.flow", flow);
  counters_.accepted.add(1);
  return Status::kOk;
}

Status ServeService::finish_stream(std::uint64_t stream_id) {
  OBS_SPAN_ARG("serve.finish", "stream", stream_id);
  counters_.requests.add(1);
  PushRequest request;
  request.stream_id = stream_id;
  request.finish = true;
  request.arrival_ns = obs::trace_now_ns();
  request.flow = flow_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t flow = request.flow;
  if (!batcher_.submit(std::move(request))) {
    counters_.rejected_overload.add(1);
    return Status::kOverloaded;
  }
  OBS_FLOW_BEGIN("serve.flow", flow);
  counters_.accepted.add(1);
  return Status::kOk;
}

Status ServeService::start_stream(std::uint64_t stream_id,
                                  std::string model_name) {
  counters_.requests.add(1);
  if (!model_name.empty() && !registry_->has(model_name)) {
    // Reject before enqueueing: an unknown task name is a client error,
    // not load, so it must not consume shard-queue room.
    return Status::kError;
  }
  PushRequest request;
  request.stream_id = stream_id;
  request.start = true;
  request.model_name = std::move(model_name);
  if (!batcher_.submit(std::move(request))) {
    counters_.rejected_overload.add(1);
    return Status::kOverloaded;
  }
  counters_.accepted.add(1);
  return Status::kOk;
}

void ServeService::bind_session(SessionManager::Session& session) {
  const ModelRegistry::Resolved resolved =
      registry_->resolve(session.model_name);
  session.attack.set_classifier(resolved.model, resolved.route);
  session.attack.set_deferred(config_.batched_forward);
  session.model_generation = resolved.generation;
  ServeCounters::TaskCounters& task =
      counters_.task(resolved.name.empty() ? "(default)" : resolved.name);
  // One "stream" per task a session lands on: counted on first bind and
  // on a rebind that actually changed tasks, not on hot-swap refreshes
  // of the same name.
  if (session.task != &task) {
    task.streams.add(1);
    session.task = &task;
  }
}

void ServeService::process(PushRequest& request) {
  OBS_SPAN_ARG("serve.process", "stream", request.stream_id);
  if (request.flow != 0) OBS_FLOW_STEP("serve.flow", request.flow);
  if (request.finish) {
    sessions_.finish(request.stream_id, request.flow, request.arrival_ns);
    return;
  }
  const std::uint64_t tick = tick_.load(std::memory_order_relaxed);
  SessionManager::Session* session =
      sessions_.acquire(request.stream_id, tick);
  if (session == nullptr) {
    // Admission control, second gate: the queue had room but the
    // session table is full. The chunk is dropped (and counted) rather
    // than parked — parking would be unbounded queueing by another name.
    counters_.rejected_capacity.add(1);
    return;
  }
  if (request.start) {
    // Ordered ahead of the stream's subsequent chunks by the shard
    // FIFO, so the binding is in place before any sample of the stream
    // is processed.
    session->model_name = std::move(request.model_name);
    bind_session(*session);
    return;
  }
  // Lazy hot-swap: an add()/activate() since this session's last
  // request re-resolves its *own* model name before the next region
  // closes. The generation probe is one relaxed atomic load; the
  // registry lock is only taken when a swap actually happened (or on
  // the session's very first request).
  if (session->task == nullptr ||
      session->model_generation != registry_->generation()) {
    bind_session(*session);
  }
  const std::uint64_t t0 = obs::trace_now_ns();
  std::vector<core::EmotionEvent> events = session->attack.push(
      std::span<const double>{request.samples.data(), request.samples.size()});
  counters_.chunks_processed.add(1);
  counters_.samples_processed.add(request.samples.size());
  session->task->samples.add(request.samples.size());
  if (!events.empty()) {
    counters_.events_emitted.add(events.size());
    session->task->events.add(events.size());
    // Attribute the chunk's wall time to the task only when a region
    // actually closed — classification dominates the cost, and this is
    // the per-task latency the mitigation study compares.
    session->task->region_ns.record(obs::trace_now_ns() - t0);
    const std::size_t outbox_base = session->outbox.size();
    for (core::EmotionEvent& event : events) {
      // The closing chunk's telemetry riders travel with the event: the
      // flow id links this region's spans across threads, the arrival
      // stamp feeds serve.e2e_latency_ns at write-out.
      event.flow = request.flow;
      event.arrival_ns = request.arrival_ns;
      session->outbox.push_back(std::move(event));
    }
    // Deferred-mode regions queued their inputs instead of predicting;
    // rebase their slots from this push's event vector onto the outbox
    // so the batch step patches the right events.
    for (core::PendingWindow& window : session->attack.take_pending()) {
      window.slot += outbox_base;
      session->pending.push_back(std::move(window));
    }
  }
}

std::size_t ServeService::drain() {
  OBS_SPAN("serve.drain");
  std::lock_guard<std::mutex> lock{drain_mutex_};
  const std::uint64_t tick =
      tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  counters_.drains.add(1);
  const std::size_t evicted = sessions_.evict_idle(tick);
  (void)evicted;

  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t processed = batcher_.drain(
      [this](PushRequest& request) { process(request); },
      config_.parallelism);
  if (config_.batched_forward) run_batched_classify();
  if (processed > 0) {
    const auto t1 = std::chrono::steady_clock::now();
    counters_.record_drain_latency(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
    // Still under drain_mutex_ — the tracker's window state has exactly
    // one writer; the ack paths read the estimate through an atomic.
    if (config_.slo.adaptive_retry) {
      slo_.observe(counters_.drain_latency_snapshot());
    }
  }
  return processed;
}

void ServeService::run_batched_classify() {
  std::vector<SessionManager::PendingEntry> pending = sessions_.take_pending();
  if (pending.empty()) return;
  OBS_SPAN_ARG("serve.batch_classify", "windows", pending.size());
  // Group by (captured model, input width) in first-seen order over the
  // (stream, slot)-sorted entries — deterministic at any thread count.
  // The width key is belt-and-braces: one model only ever sees one
  // input space, but a mixed group would corrupt the row matrix.
  struct Group {
    const ml::Classifier* model = nullptr;
    std::size_t dim = 0;
    std::vector<std::size_t> members;  ///< indices into `pending`
  };
  std::vector<Group> groups;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const ml::Classifier* model = pending[i].window.classifier.get();
    const std::size_t dim = pending[i].window.input.size();
    auto it = std::find_if(groups.begin(), groups.end(),
                           [model, dim](const Group& g) {
                             return g.model == model && g.dim == dim;
                           });
    if (it == groups.end()) {
      groups.push_back(Group{model, dim, {}});
      it = std::prev(groups.end());
    }
    it->members.push_back(i);
  }
  std::vector<double> rows;
  for (const Group& group : groups) {
    const std::size_t cap =
        config_.max_batch == 0 ? group.members.size() : config_.max_batch;
    for (std::size_t b0 = 0; b0 < group.members.size(); b0 += cap) {
      const std::size_t count = std::min(cap, group.members.size() - b0);
      rows.clear();
      rows.reserve(count * group.dim);
      for (std::size_t i = 0; i < count; ++i) {
        const std::vector<double>& input =
            pending[group.members[b0 + i]].window.input;
        rows.insert(rows.end(), input.begin(), input.end());
      }
      const std::vector<double> probs =
          group.model->predict_proba_batch(rows, group.dim, count);
      const std::size_t classes = probs.size() / count;
      for (std::size_t i = 0; i < count; ++i) {
        const SessionManager::PendingEntry& entry =
            pending[group.members[b0 + i]];
        core::EmotionEvent& event = entry.session->outbox[entry.window.slot];
        const auto first = probs.begin() +
                           static_cast<std::ptrdiff_t>(i * classes);
        const auto last = first + static_cast<std::ptrdiff_t>(classes);
        event.probabilities.assign(first, last);
        event.predicted_class =
            static_cast<int>(std::max_element(first, last) - first);
        if (event.flow != 0) OBS_FLOW_STEP("serve.flow", event.flow);
      }
      counters_.record_batch(count);
    }
  }
}

std::vector<EventMsg> ServeService::take_events() {
  OBS_SPAN("serve.events");
  std::lock_guard<std::mutex> lock{drain_mutex_};
  std::vector<EventMsg> out;
  const std::uint64_t now = obs::trace_now_ns();
  for (auto& [stream_id, event] : sessions_.take_events()) {
    // End of the causal chain: the event is leaving for encoding. The
    // e2e histogram covers chunk arrival -> here, which (unlike drain
    // latency) includes shard-FIFO queueing and any ticks a deferred
    // window waited for its batch.
    if (event.arrival_ns != 0 && now >= event.arrival_ns) {
      counters_.record_e2e_latency(now - event.arrival_ns);
    }
    if (event.flow != 0) OBS_FLOW_END("serve.flow", event.flow);
    out.push_back(EventMsg{stream_id, std::move(event)});
  }
  return out;
}

Status ServeService::swap_model(std::uint32_t version) {
  try {
    registry_->activate(version);
    return Status::kOk;
  } catch (const util::DataError&) {
    return Status::kError;
  }
}

ServeStats ServeService::stats() const {
  ServeStats s = counters_.snapshot();
  s.sessions_active = sessions_.active_sessions();
  s.sessions_created = sessions_.sessions_created();
  s.sessions_evicted = sessions_.sessions_evicted();
  s.sessions_pooled = sessions_.sessions_pooled();
  s.model_generation = registry_->generation();
  // Per-task section: traffic counters joined with the registry's
  // per-name versions. A registered name with no traffic yet still
  // appears (zero counts) so clients can discover the task set.
  s.tasks = counters_.task_snapshot();
  for (const ModelRegistry::NameInfo& info : registry_->stats()) {
    auto it = std::find_if(s.tasks.begin(), s.tasks.end(),
                           [&info](const TaskStats& t) {
                             return t.name == info.name;
                           });
    if (it == s.tasks.end()) {
      TaskStats t;
      t.name = info.name;
      it = s.tasks.insert(s.tasks.end(), std::move(t));
    }
    it->active_version = info.active_version;
    it->versions = info.versions;
  }
  std::sort(s.tasks.begin(), s.tasks.end(),
            [](const TaskStats& a, const TaskStats& b) {
              return a.name < b.name;
            });
  return s;
}

obs::RegistrySnapshot ServeService::metrics_snapshot() const {
  // Service-local first (serve.*, serve.task.*, net.* registered by the
  // transport), then the process-wide registry (kernel/cache/pool) —
  // the service view wins name collisions, and the merge keeps the
  // name-sorted order scrapers rely on.
  return obs::merge_snapshots(counters_.registry().snapshot(),
                              obs::Registry::instance().snapshot());
}

HandleResult ServeService::handle_frames(std::string_view bytes) {
  HandleResult result;
  FrameReader reader{bytes};
  for (;;) {
    std::optional<Message> msg;
    try {
      msg = reader.next();
    } catch (const util::DataError&) {
      // One malformed client must not abort the batch: earlier valid
      // frames keep their replies, the offender gets a kError ack, and
      // the transport closes only that connection.
      encode(result.reply, AckMsg{Status::kError});
      result.corrupt = true;
      break;
    }
    if (!msg) break;  // clean end, or a partial tail left unconsumed
    result.consumed = reader.offset();
    ++result.frames;
    std::visit(
        [this, &result](auto& m) {
          using T = std::decay_t<decltype(m)>;
          const auto ack = [this, &result](Status status) {
            AckMsg a{status};
            if (status == Status::kOverloaded) {
              // Static config constant, or the SLO tracker's rolling
              // drain-p99 estimate when adaptive backpressure is on.
              a.retry_after_ms = retry_after_ms();
              ++result.overloaded;
            }
            encode(result.reply, a);
          };
          if constexpr (std::is_same_v<T, ChunkPushMsg>) {
            result.streams_touched.push_back(m.stream_id);
            ack(push(m.stream_id, std::move(m.samples)));
          } else if constexpr (std::is_same_v<T, StreamStartMsg>) {
            result.streams_touched.push_back(m.stream_id);
            ack(start_stream(m.stream_id, std::move(m.model_name)));
          } else if constexpr (std::is_same_v<T, StreamFinishMsg>) {
            result.streams_touched.push_back(m.stream_id);
            ack(finish_stream(m.stream_id));
          } else if constexpr (std::is_same_v<T, StatsRequestMsg>) {
            encode(result.reply, StatsReplyMsg{stats()});
          } else if constexpr (std::is_same_v<T, MetricsRequestMsg>) {
            try {
              encode(result.reply, MetricsReplyMsg{metrics_snapshot()});
            } catch (const util::DataError&) {
              // A snapshot too large to frame (pathological metric
              // count) degrades to an error ack, never a torn frame.
              ack(Status::kError);
            }
          } else if constexpr (std::is_same_v<T, TraceRequestMsg>) {
            TraceReplyMsg reply;
            reply.dropped_spans = obs::trace_dropped();
            reply.trace_json = obs::trace_json();
            try {
              encode(result.reply, reply);
            } catch (const util::DataError&) {
              ack(Status::kError);
            }
          } else if constexpr (std::is_same_v<T, ModelSwapMsg>) {
            ack(swap_model(m.version));
          } else {
            // Server-to-client message types arriving at the service
            // (Event, StatsReply, Ack, MetricsReply, TraceReply) are
            // protocol misuse, not fatal.
            ack(Status::kError);
          }
        },
        *msg);
  }
  return result;
}

std::string ServeService::handle(std::string_view bytes) {
  HandleResult result = handle_frames(bytes);
  if (!result.corrupt && result.consumed < bytes.size()) {
    // The in-process transport hands over whole buffers, so a partial
    // trailing frame is a framing bug on the caller's side.
    encode(result.reply, AckMsg{Status::kError});
  }
  return std::move(result.reply);
}

std::string ServeService::poll_events() {
  std::string out;
  for (const EventMsg& event : take_events()) {
    encode(out, event);
  }
  return out;
}

}  // namespace emoleak::serve
