// ServeService — the multi-session inference front end.
//
// The deployed shape of the paper's attack (§III-A): exfiltrated
// accelerometer streams from many devices are classified centrally
// against pre-trained models. ServeService wires the pieces together:
//
//   push/finish  -> RequestBatcher (bounded shard queues, admission
//                   control: full queue => Status::kOverloaded)
//   drain        -> shards fan out over util::ThreadPool; each shard
//                   feeds its streams' StreamingAttack sequentially,
//                   so per-stream event sequences are bit-identical to
//                   a standalone StreamingAttack at any thread count
//   SessionManager  bounded session table, idle eviction by drain
//                   tick, session pooling via StreamingAttack::reset()
//   ModelRegistry   versioned models, atomic hot-swap; sessions pick
//                   up a swap lazily at their next processed request
//   counters     -> requests/rejections/events + p50/p99 drain latency
//
// The wire face (handle / poll_events) speaks serve/protocol.h frames;
// tests and serve_demo use it as an in-process transport.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "serve/batcher.h"
#include "serve/counters.h"
#include "serve/model_registry.h"
#include "serve/protocol.h"
#include "serve/session_manager.h"
#include "util/parallel.h"

namespace emoleak::serve {

struct ServeConfig {
  SessionConfig session;
  BatcherConfig batcher;
  /// Thread budget for drain cycles (0 = all cores, 1 = serial).
  util::Parallelism parallelism;

  void validate() const;
};

class ServeService {
 public:
  ServeService(ServeConfig config, std::shared_ptr<ModelRegistry> registry);

  // ---- typed API -----------------------------------------------------
  /// Enqueues a chunk for `stream_id`. kOverloaded when the stream's
  /// shard queue is full — the caller should drain (or back off) and
  /// retry; nothing was enqueued.
  Status push(std::uint64_t stream_id, std::vector<double> samples);

  /// Enqueues an end-of-stream flush (emits the final open region, if
  /// any, and retires the session into the pool).
  Status finish_stream(std::uint64_t stream_id);

  /// Runs one batch cycle: advances the logical clock, evicts idle
  /// sessions, then processes every queued request (per-stream
  /// sequential, streams parallel). Returns requests processed.
  /// Thread-safe; concurrent callers are serialized.
  std::size_t drain();

  /// Events completed since the last call, ordered by (stream id,
  /// emission order).
  [[nodiscard]] std::vector<EventMsg> take_events();

  /// Activates a registry version for subsequent work; kError for an
  /// unknown version. Sessions apply the swap at their next processed
  /// request — regions already closed keep their old predictions.
  Status swap_model(std::uint32_t version);

  [[nodiscard]] ServeStats stats() const;

  // ---- wire API (in-process transport) -------------------------------
  /// Decodes each frame in `bytes`, applies it, and returns the reply
  /// frames (Ack per push/finish/swap, StatsReply per stats request).
  /// Throws util::DataError on a corrupt buffer.
  [[nodiscard]] std::string handle(std::string_view bytes);

  /// take_events() as encoded Event frames.
  [[nodiscard]] std::string poll_events();

  [[nodiscard]] ModelRegistry& registry() noexcept { return *registry_; }
  [[nodiscard]] std::uint64_t tick() const noexcept {
    return tick_.load(std::memory_order_relaxed);
  }

 private:
  void process(PushRequest& request);

  ServeConfig config_;
  std::shared_ptr<ModelRegistry> registry_;
  SessionManager sessions_;
  RequestBatcher batcher_;
  ServeCounters counters_;
  std::mutex drain_mutex_;          ///< one drain cycle at a time
  std::atomic<std::uint64_t> tick_{0};  ///< logical clock, 1 per drain
};

}  // namespace emoleak::serve
