// ServeService — the multi-session inference front end.
//
// The deployed shape of the paper's attack (§III-A): exfiltrated
// accelerometer streams from many devices are classified centrally
// against pre-trained models. ServeService wires the pieces together:
//
//   push/finish  -> RequestBatcher (bounded shard queues, admission
//                   control: full queue => Status::kOverloaded)
//   drain        -> shards fan out over util::ThreadPool; each shard
//                   feeds its streams' StreamingAttack sequentially,
//                   so per-stream event sequences are bit-identical to
//                   a standalone StreamingAttack at any thread count
//   SessionManager  bounded session table, idle eviction by drain
//                   tick, session pooling via StreamingAttack::reset()
//   ModelRegistry   versioned models, atomic hot-swap; sessions pick
//                   up a swap lazily at their next processed request
//   counters     -> requests/rejections/events + p50/p99 drain latency
//
// The wire face (handle / poll_events) speaks serve/protocol.h frames;
// tests and serve_demo use it as an in-process transport.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "serve/batcher.h"
#include "serve/counters.h"
#include "serve/model_registry.h"
#include "serve/protocol.h"
#include "serve/session_manager.h"
#include "serve/slo.h"
#include "util/parallel.h"

namespace emoleak::serve {

struct ServeConfig {
  SessionConfig session;
  BatcherConfig batcher;
  /// Thread budget for drain cycles (0 = all cores, 1 = serial).
  util::Parallelism parallelism;
  /// Back-off advertised in overload acks (AckMsg::retry_after_ms):
  /// roughly one drain tick — the earliest a retry can find queue room.
  std::uint32_t retry_after_ms = 1;
  /// Batched inference (DESIGN.md §13): sessions defer region
  /// classification to a per-drain-tick batch step that groups windows
  /// by (model, input width) and runs one predict_proba_batch per
  /// group. Results are bit-identical to the inline path; off restores
  /// the byte-identical legacy per-session predict.
  bool batched_forward = true;
  /// Rows per batched predict call (0 = unbounded). Smaller caps bound
  /// per-call latency and produce ragged final batches; parity holds at
  /// any value.
  std::size_t max_batch = 0;
  /// SLO-driven adaptive backpressure (serve/slo.h). With
  /// `slo.adaptive_retry` off (the default) overload acks carry the
  /// static retry_after_ms above, byte-identical to the legacy wire.
  SloConfig slo;

  void validate() const;
};

/// Outcome of feeding a byte range through the wire face. `reply`
/// holds the response frames for every frame decoded; `consumed` is the
/// bytes of whole frames processed (a partial trailing frame is left
/// for the transport to retain and retry — see FrameReader). A corrupt
/// frame does not abort the batch: replies already produced for earlier
/// valid frames survive, the offender is answered with a kError ack,
/// `corrupt` is set, and the transport should close that connection
/// after flushing.
struct HandleResult {
  std::string reply;
  std::size_t consumed = 0;
  std::size_t frames = 0;      ///< complete frames decoded
  std::size_t overloaded = 0;  ///< frames answered with kOverloaded
  bool corrupt = false;        ///< a corrupt frame ended the batch
  /// Stream ids named by push/finish frames in this batch, in frame
  /// order (duplicates possible). The transport uses these for
  /// connection -> stream affinity: events route back to the last
  /// connection that wrote the stream.
  std::vector<std::uint64_t> streams_touched;
};

class ServeService {
 public:
  ServeService(ServeConfig config, std::shared_ptr<ModelRegistry> registry);

  // ---- typed API -----------------------------------------------------
  /// Enqueues a chunk for `stream_id`. kOverloaded when the stream's
  /// shard queue is full — the caller should drain (or back off) and
  /// retry; nothing was enqueued.
  Status push(std::uint64_t stream_id, std::vector<double> samples);

  /// Enqueues an end-of-stream flush (emits the final open region, if
  /// any, and retires the session into the pool).
  Status finish_stream(std::uint64_t stream_id);

  /// Opens (or rebinds) a stream against a named registry model; empty
  /// name = the registry default. kError when the name is unknown —
  /// checked before enqueueing, so a bad name never consumes queue
  /// room. The start travels through the stream's shard FIFO, so it is
  /// applied before any chunk submitted after it (mixed-task
  /// determinism). Optional for default-task streams: a bare push with
  /// a fresh stream id still auto-binds to the default model.
  Status start_stream(std::uint64_t stream_id, std::string model_name);

  /// Runs one batch cycle: advances the logical clock, evicts idle
  /// sessions, then processes every queued request (per-stream
  /// sequential, streams parallel). Returns requests processed.
  /// Thread-safe; concurrent callers are serialized.
  std::size_t drain();

  /// Events completed since the last call, ordered by (stream id,
  /// emission order).
  [[nodiscard]] std::vector<EventMsg> take_events();

  /// Activates a registry version for subsequent work; kError for an
  /// unknown version. Sessions apply the swap at their next processed
  /// request — regions already closed keep their old predictions.
  Status swap_model(std::uint32_t version);

  [[nodiscard]] ServeStats stats() const;

  // ---- wire API --------------------------------------------------------
  /// Decodes each complete frame in `bytes`, applies it, and returns
  /// the reply frames (Ack per push/finish/swap, StatsReply per stats
  /// request) plus framing metadata. Never throws on bad input: a
  /// corrupt frame yields a kError ack and stops the batch with
  /// `corrupt` set, preserving the replies of earlier valid frames; a
  /// partial trailing frame is simply not consumed. This is the entry
  /// point the TCP transport (net::NetServer) feeds connection buffers
  /// through.
  [[nodiscard]] HandleResult handle_frames(std::string_view bytes);

  /// In-process transport: handle_frames over a whole buffer. A partial
  /// trailing frame — impossible when the caller hands over complete
  /// buffers — is answered with a kError ack like any corrupt frame.
  [[nodiscard]] std::string handle(std::string_view bytes);

  /// take_events() as encoded Event frames.
  [[nodiscard]] std::string poll_events();

  [[nodiscard]] const ServeConfig& config() const noexcept { return config_; }
  [[nodiscard]] ModelRegistry& registry() noexcept { return *registry_; }
  [[nodiscard]] std::uint64_t tick() const noexcept {
    return tick_.load(std::memory_order_relaxed);
  }

  /// Back-off advertised in overload acks. The static config constant,
  /// or the SLO tracker's rolling drain-p99 estimate when
  /// `config.slo.adaptive_retry` is on. Lock-free, any thread.
  [[nodiscard]] std::uint32_t retry_after_ms() const noexcept {
    return config_.slo.adaptive_retry
               ? slo_.retry_after_ms(config_.retry_after_ms)
               : config_.retry_after_ms;
  }

  /// The SLO tracker (estimates populate only with adaptive_retry on).
  [[nodiscard]] const SloTracker& slo() const noexcept { return slo_; }

  /// The registry behind this service's metrics — serve.* counters and
  /// histograms, plus whatever the transport (net.*) registers into it.
  /// kMetricsRequest serves a snapshot of this merged with the
  /// process-wide obs::Registry::instance() (kernel/cache/pool tallies).
  [[nodiscard]] obs::Registry& metrics_registry() noexcept {
    return counters_.registry();
  }

  /// The snapshot a kMetricsRequest answers: this service's registry
  /// merged with the process-wide one (service names win collisions).
  [[nodiscard]] obs::RegistrySnapshot metrics_snapshot() const;

 private:
  void process(PushRequest& request);
  /// Batch-classifies every deferred window collected this tick:
  /// groups by (captured model, input width), chunks by max_batch, one
  /// predict_proba_batch per chunk, results scattered back to each
  /// session's outbox by slot. Runs under drain_mutex_ after the shard
  /// barrier, so no shard task is touching any session.
  void run_batched_classify();
  /// (Re)binds a session to its model_name: resolves the registry,
  /// swings the classifier + feature route, caches the per-task counter
  /// bundle, and counts a stream for the task the session landed on.
  void bind_session(SessionManager::Session& session);

  ServeConfig config_;
  std::shared_ptr<ModelRegistry> registry_;
  SessionManager sessions_;
  RequestBatcher batcher_;
  ServeCounters counters_;
  SloTracker slo_;
  std::mutex drain_mutex_;          ///< one drain cycle at a time
  std::atomic<std::uint64_t> tick_{0};  ///< logical clock, 1 per drain
  /// Flow-id mint for causal tracing: each admitted push/finish/start
  /// gets a unique nonzero id, and the events its windows produce
  /// inherit it — linking one request's spans across the event-loop
  /// thread, pool workers, and the drain tick in the exported trace.
  std::atomic<std::uint64_t> flow_seq_{0};
};

}  // namespace emoleak::serve
