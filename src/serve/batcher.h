// Request batching + admission control for the serving layer.
//
// Requests land on bounded per-shard MPSC queues (util::BoundedQueue);
// a full queue rejects at submit() — the service answers "overloaded"
// instead of queueing unboundedly, which is the backpressure policy the
// whole layer is built around. drain() snapshots every shard's backlog
// and fans the shards out over the PR-1 thread pool: one task per
// shard, so all requests for a stream (same shard, FIFO queue) are
// processed sequentially in arrival order while distinct shards run in
// parallel. That sharding is the whole determinism argument — a
// stream's event sequence depends only on its own chunk order, never on
// thread count or scheduling.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/bounded_queue.h"
#include "util/parallel.h"

namespace emoleak::serve {

struct BatcherConfig {
  std::size_t shard_count = 8;
  std::size_t queue_capacity = 256;  ///< per shard, in requests

  void validate() const;
};

/// One unit of work: a chunk of samples for a stream, an end-of-stream
/// flush (`finish` set, `samples` empty), or a stream-open binding the
/// stream to a named model (`start` set). Starts travel through the
/// same per-stream FIFO as chunks, so a start is always applied before
/// the chunks submitted after it — the ordering the mixed-task
/// determinism contract rests on.
struct PushRequest {
  std::uint64_t stream_id = 0;
  std::vector<double> samples;
  bool finish = false;
  bool start = false;
  std::string model_name;  ///< for `start`: empty = registry default
  /// Telemetry riders (never touch classification): `flow` is the
  /// causal-trace id minted at admission and inherited by the events
  /// this request closes; `arrival_ns` is the obs::trace_now_ns()
  /// arrival stamp feeding the serve.e2e_latency_ns histogram. 0 = not
  /// stamped (requests built outside ServeService).
  std::uint64_t flow = 0;
  std::uint64_t arrival_ns = 0;
};

class RequestBatcher {
 public:
  explicit RequestBatcher(BatcherConfig config);

  /// Routes the request to its stream's shard. False = that shard's
  /// queue is full (overload) — the caller rejects, never blocks.
  [[nodiscard]] bool submit(PushRequest request);

  /// Drains every shard's current backlog, invoking `process` for each
  /// request (per-shard sequentially, shards in parallel across up to
  /// `parallelism` threads). Returns the number of requests processed.
  /// `process` must be safe to call concurrently for requests of
  /// *different* shards. Only one drain may run at a time (the service
  /// serializes callers).
  std::size_t drain(const std::function<void(PushRequest&)>& process,
                    const util::Parallelism& parallelism);

  [[nodiscard]] std::size_t shard_of(std::uint64_t stream_id) const noexcept {
    // splitmix64 finalizer: cheap, well-mixed, stable across runs.
    std::uint64_t x = stream_id + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x % shards_.size());
  }

  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] const BatcherConfig& config() const noexcept { return config_; }

 private:
  BatcherConfig config_;
  std::vector<std::unique_ptr<util::BoundedQueue<PushRequest>>> shards_;
};

}  // namespace emoleak::serve
