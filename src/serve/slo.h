// SLO tracker — windowed drain-latency percentiles driving adaptive
// backpressure.
//
// The static ServeConfig::retry_after_ms tells an overloaded client to
// come back after "roughly one drain tick", which is wrong in both
// directions: under light load a tick finishes in microseconds and the
// client waits a full millisecond for nothing; under a latency spike a
// retry lands while the queue is still full and is rejected again.
// SloTracker derives the advertised back-off from what drains are
// actually costing *right now*: every N drains it takes the delta
// between two full-history histogram snapshots (obs::histogram_delta),
// reads the windowed p99, and publishes
//
//   retry_after_ms = clamp(target_multiplier * windowed_p99, min, max)
//
// through a relaxed atomic that the ack paths read lock-free. Updates
// run under the service's drain mutex (one writer); readers are the
// wire face and the TCP accept path, on other threads — hence the
// atomics. Off by default: with `adaptive_retry` false the tracker is
// never consulted and every ack byte matches the legacy constant.
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>

#include "obs/metrics.h"
#include "util/error.h"

namespace emoleak::serve {

struct SloConfig {
  /// Feed windowed drain-p99 into overload acks' retry_after_ms. Off =
  /// legacy behavior, byte-identical acks from the static constant.
  bool adaptive_retry = false;
  /// Drains per estimation window. Small windows react faster but read
  /// noisier percentiles; one windowed p99 needs at least this many
  /// drain samples to mean anything.
  std::uint64_t window_drains = 32;
  /// Advertised back-off as a multiple of the windowed drain p99 — a
  /// retry should land *after* the next tick likely finished, so > 1.
  double target_multiplier = 2.0;
  /// Clamp on the advertised back-off. The floor keeps a microsecond
  /// p99 from advertising a zero back-off (a retry storm); the ceiling
  /// keeps one pathological window from parking clients for minutes.
  std::uint32_t min_retry_ms = 1;
  std::uint32_t max_retry_ms = 1000;

  void validate() const {
    if (window_drains == 0) {
      throw util::ConfigError{"slo: window_drains must be >= 1"};
    }
    if (!(target_multiplier > 0.0)) {
      throw util::ConfigError{"slo: target_multiplier must be > 0"};
    }
    if (min_retry_ms > max_retry_ms) {
      throw util::ConfigError{"slo: min_retry_ms > max_retry_ms"};
    }
  }
};

/// Rolling drain-p99 estimator. Single writer (the drain cycle, under
/// the service's drain mutex); lock-free readers (ack paths on the
/// event-loop and caller threads).
class SloTracker {
 public:
  explicit SloTracker(SloConfig config) : config_{config} {}

  /// Called once per drain with the full-history drain-latency
  /// snapshot. Every `window_drains` calls, folds the window's delta
  /// into a fresh retry estimate.
  void observe(const obs::HistogramSnapshot& history) {
    if (++drains_since_update_ < config_.window_drains) return;
    drains_since_update_ = 0;
    const obs::HistogramSnapshot window = obs::histogram_delta(prev_, history);
    prev_ = history;
    if (window.count == 0) return;  // idle window — keep the last estimate
    const double p99_ns = window.quantile(0.99);
    windowed_p99_ns_.store(static_cast<std::uint64_t>(p99_ns),
                           std::memory_order_relaxed);
    const double target_ms = config_.target_multiplier * p99_ns / 1e6;
    const auto clamped = static_cast<std::uint32_t>(std::clamp(
        std::ceil(target_ms), static_cast<double>(config_.min_retry_ms),
        static_cast<double>(config_.max_retry_ms)));
    retry_after_ms_.store(clamped, std::memory_order_relaxed);
  }

  /// Current advertised back-off; `fallback` until the first complete
  /// window has produced an estimate. Lock-free, any thread.
  [[nodiscard]] std::uint32_t retry_after_ms(
      std::uint32_t fallback) const noexcept {
    const std::uint32_t v = retry_after_ms_.load(std::memory_order_relaxed);
    return v == 0 ? fallback : v;
  }

  /// Last windowed drain p99 in nanoseconds (0 before the first
  /// window). For introspection and tests.
  [[nodiscard]] std::uint64_t windowed_p99_ns() const noexcept {
    return windowed_p99_ns_.load(std::memory_order_relaxed);
  }

 private:
  SloConfig config_;
  obs::HistogramSnapshot prev_;          ///< writer-only window baseline
  std::uint64_t drains_since_update_ = 0;  ///< writer-only
  std::atomic<std::uint32_t> retry_after_ms_{0};  ///< 0 = no estimate yet
  std::atomic<std::uint64_t> windowed_p99_ns_{0};
};

}  // namespace emoleak::serve
