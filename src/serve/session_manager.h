// Session table for the serving layer.
//
// One core::StreamingAttack per device/stream id, with a bounded total
// and idle eviction measured in drain ticks (a logical clock — wall
// time would make eviction scheduling-dependent and untestable).
// Evicted sessions park in a free pool and are recycled via
// StreamingAttack::reset(), so steady-state serving allocates nothing
// per new stream.
//
// Concurrency contract: acquire() may be called from any shard task
// (the table mutex covers lookup/creation), but a given Session object
// is only ever touched by the shard that owns its stream id while a
// drain is running — the batcher's sharding provides that exclusivity,
// not this class. begin_tick()/evict_idle() must be called outside any
// drain (ServeService does so from the single drain() caller).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/streaming.h"
#include "serve/counters.h"
#include "serve/model_registry.h"
#include "util/error.h"

namespace emoleak::serve {

struct SessionConfig {
  core::StreamingConfig stream;     ///< detector knobs for every session
  double sample_rate_hz = 420.0;    ///< accelerometer rate of the fleet
  std::size_t max_sessions = 64;    ///< hard cap on live sessions
  /// Sessions untouched for this many drain ticks are evicted (their
  /// open region is flushed into the outbox first); 0 disables idle
  /// eviction — sessions then live until explicitly finished.
  std::uint64_t idle_timeout_ticks = 0;

  void validate() const;
};

class SessionManager {
 public:
  struct Session {
    std::uint64_t stream_id = 0;
    core::StreamingAttack attack;
    /// Events awaiting pickup, in emission order (per-stream order is
    /// the determinism contract; only the owning shard appends).
    std::vector<core::EmotionEvent> outbox;
    std::uint64_t last_active_tick = 0;
    std::uint64_t model_generation = 0;
    /// Registry name this stream is bound to (empty = default). Set by
    /// a StreamStart request; re-resolved lazily on generation bumps so
    /// a hot-swapped model under the same name takes effect.
    std::string model_name;
    /// Per-task counter bundle, cached at bind time so the shard's hot
    /// path bumps lock-free. nullptr = not yet bound (the service binds
    /// on the first processed request).
    ServeCounters::TaskCounters* task = nullptr;
    /// Regions whose classification was deferred to the drain tick's
    /// batch step (ServeConfig::batched_forward). `slot` here is the
    /// event's index in `outbox`; the model is the classifier captured
    /// when the region closed, so a mid-tick rebind cannot change which
    /// model scores it. Always emptied before the drain returns.
    std::vector<core::PendingWindow> pending;

    Session(const SessionConfig& config, ModelRegistry::ModelPtr model);
  };

  SessionManager(SessionConfig config, std::shared_ptr<ModelRegistry> registry);

  /// The session for `stream_id`, creating (or recycling) one if the
  /// cap allows; nullptr when the table is full. The returned pointer
  /// stays valid until the session is evicted or finished — safe here
  /// because eviction never runs concurrently with shard processing.
  [[nodiscard]] Session* acquire(std::uint64_t stream_id, std::uint64_t tick);

  /// Existing session or nullptr; never creates.
  [[nodiscard]] Session* find(std::uint64_t stream_id);

  /// Flushes the open region (if any) into the outbox and retires the
  /// session into the free pool. Returns false for an unknown stream.
  /// `flow`/`arrival_ns` stamp the flushed final event with the finish
  /// request's telemetry riders (0 = unstamped; see EmotionEvent).
  bool finish(std::uint64_t stream_id, std::uint64_t flow = 0,
              std::uint64_t arrival_ns = 0);

  /// Evicts every session idle since before `tick - idle_timeout`;
  /// returns the number evicted. Call only between drains.
  std::size_t evict_idle(std::uint64_t tick);

  /// Moves every queued event out of the session outboxes, ordered by
  /// (stream id, emission order). Call only between drains.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, core::EmotionEvent>>
  take_events();

  /// One deferred window plus the session whose outbox it patches.
  struct PendingEntry {
    Session* session = nullptr;
    core::PendingWindow window;
  };

  /// Moves every session's deferred windows out for the batch-classify
  /// step, sorted by (stream id, outbox slot) so batch assembly is
  /// independent of shard scheduling and thread count. Call only from
  /// the drain cycle (no shard task may be running).
  [[nodiscard]] std::vector<PendingEntry> take_pending();

  /// Counter bumped for every window resolved solo (finish/evict ahead
  /// of the batch step); wired by ServeService so occupancy stats see
  /// the windows that escaped batching.
  void set_solo_counter(obs::Counter* counter) noexcept {
    solo_counter_ = counter;
  }

  [[nodiscard]] std::size_t active_sessions() const;
  [[nodiscard]] std::uint64_t sessions_created() const;
  [[nodiscard]] std::uint64_t sessions_evicted() const;
  [[nodiscard]] std::uint64_t sessions_pooled() const;

  [[nodiscard]] const SessionConfig& config() const noexcept { return config_; }
  [[nodiscard]] ModelRegistry& registry() noexcept { return *registry_; }

 private:
  void retire(std::unique_ptr<Session> session);
  /// Classifies any still-deferred windows inline (bit-identical to the
  /// batch step) so a retiring session's outbox never ships an
  /// unresolved event. Caller holds mutex_.
  void resolve_pending_solo(Session& session);

  SessionConfig config_;
  std::shared_ptr<ModelRegistry> registry_;

  mutable std::mutex mutex_;  ///< guards the table + pool + counters
  std::unordered_map<std::uint64_t, std::unique_ptr<Session>> sessions_;
  std::vector<std::unique_ptr<Session>> free_pool_;
  /// Events from finished/evicted sessions awaiting take_events().
  std::vector<std::pair<std::uint64_t, core::EmotionEvent>> orphaned_events_;
  obs::Counter* solo_counter_ = nullptr;
  std::uint64_t created_ = 0;
  std::uint64_t evicted_ = 0;
  std::uint64_t pooled_ = 0;
};

}  // namespace emoleak::serve
