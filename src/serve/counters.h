// Service counters for emoleak::serve.
//
// Backed by an obs::Registry owned by the service: producers bump
// lock-free counters from any thread, and drain latency goes into a
// log-bucketed obs::Histogram instead of the old mutex-guarded ring of
// recent samples — full-history quantiles at ≤12.5% relative error,
// with a wait-free record path. snapshot() assembles the ServeStats
// message payload exposed over the wire protocol.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace emoleak::serve {

/// Per-model-name slice of the service counters plus the registry's
/// view of that name (active version, total versions registered). One
/// entry per named task in the stats wire message, sorted by name.
struct TaskStats {
  std::string name;
  std::uint32_t active_version = 0;
  std::uint32_t versions = 0;
  std::uint64_t streams = 0;  ///< sessions ever bound to this name
  std::uint64_t samples = 0;  ///< samples processed under this name
  std::uint64_t events = 0;   ///< events emitted under this name
};

/// Plain snapshot of the service counters (the `stats` wire message).
struct ServeStats {
  std::uint64_t requests = 0;           ///< push/finish requests submitted
  std::uint64_t accepted = 0;           ///< admitted to a shard queue
  std::uint64_t rejected_overload = 0;  ///< shard queue full
  std::uint64_t rejected_capacity = 0;  ///< session table full
  std::uint64_t chunks_processed = 0;
  std::uint64_t samples_processed = 0;
  std::uint64_t events_emitted = 0;
  std::uint64_t drains = 0;
  std::uint64_t sessions_active = 0;
  std::uint64_t sessions_created = 0;
  std::uint64_t sessions_evicted = 0;
  std::uint64_t sessions_pooled = 0;  ///< reused from the free pool
  std::uint64_t model_generation = 0;
  double drain_p50_us = 0.0;
  double drain_p99_us = 0.0;
  std::uint64_t drain_count = 0;  ///< latency samples behind the quantiles
  /// Non-empty drain-latency histogram buckets as (upper_bound_us, count).
  std::vector<std::pair<double, std::uint64_t>> drain_hist;
  /// Batched-inference occupancy. Regions classified through the per-
  /// tick batch step vs resolved solo (finish/evict before the batch
  /// ran, or batched_forward off — then both stay 0).
  std::uint64_t windows_batched = 0;
  std::uint64_t windows_solo = 0;
  std::uint64_t batch_count = 0;  ///< batched predict calls issued
  double batch_p50 = 0.0;         ///< batch-size quantiles (rows/call)
  double batch_p99 = 0.0;
  /// Non-empty batch-size histogram buckets as (upper_bound, count) —
  /// same shape as drain_hist so clients reuse the rendering.
  std::vector<std::pair<double, std::uint64_t>> batch_hist;
  /// Per-task traffic + registry versions, sorted by name. Filled by
  /// ServeService::stats() from TaskCounters and ModelRegistry::stats().
  std::vector<TaskStats> tasks;
};

class ServeCounters {
  // Declared before the public references: member init order is
  // declaration order, and every reference below binds into this
  // registry, so it must be constructed first.
  obs::Registry registry_;

 public:
  ServeCounters()
      : requests{registry_.counter("serve.requests")},
        accepted{registry_.counter("serve.accepted")},
        rejected_overload{registry_.counter("serve.rejected_overload")},
        rejected_capacity{registry_.counter("serve.rejected_capacity")},
        chunks_processed{registry_.counter("serve.chunks_processed")},
        samples_processed{registry_.counter("serve.samples_processed")},
        events_emitted{registry_.counter("serve.events_emitted")},
        drains{registry_.counter("serve.drains")},
        windows_batched{registry_.counter("serve.windows_batched")},
        windows_solo{registry_.counter("serve.windows_solo")},
        drain_latency_ns_{registry_.histogram("serve.drain_latency_ns")},
        e2e_latency_ns_{registry_.histogram("serve.e2e_latency_ns")},
        batch_size_{registry_.histogram("serve.batch_size")} {}

  obs::Counter& requests;
  obs::Counter& accepted;
  obs::Counter& rejected_overload;
  obs::Counter& rejected_capacity;
  obs::Counter& chunks_processed;
  obs::Counter& samples_processed;
  obs::Counter& events_emitted;
  obs::Counter& drains;
  obs::Counter& windows_batched;
  obs::Counter& windows_solo;

  /// Records one batched predict call of `size` rows.
  void record_batch(std::size_t size) noexcept {
    windows_batched.add(size);
    batch_size_.record(size);
  }

  /// Records one drain-cycle wall time. Wait-free; the histogram keeps
  /// the full history, so quantiles cover every drain, not a window.
  void record_drain_latency(double microseconds) noexcept {
    const double ns = microseconds * 1000.0;
    drain_latency_ns_.record(
        ns > 0.0 ? static_cast<std::uint64_t>(ns) : std::uint64_t{0});
  }

  /// Records one event's end-to-end latency: chunk arrival at push()
  /// to the event leaving take_events(). Distinct from drain latency —
  /// this one includes queueing time in the shard FIFO and any ticks a
  /// deferred window waited for its batch.
  void record_e2e_latency(std::uint64_t ns) noexcept {
    e2e_latency_ns_.record(ns);
  }

  /// Full-history drain-latency snapshot, for the SLO tracker's
  /// windowed deltas (see serve/slo.h).
  [[nodiscard]] obs::HistogramSnapshot drain_latency_snapshot() const {
    return drain_latency_ns_.snapshot();
  }

  /// The service-local registry backing these counters; exposed so
  /// callers can render all serve metrics as text in one place.
  [[nodiscard]] obs::Registry& registry() noexcept { return registry_; }
  [[nodiscard]] const obs::Registry& registry() const noexcept {
    return registry_;
  }

  /// Lock-free per-task counters, named serve.task.<name>.* in the
  /// registry. References stay valid for the ServeCounters lifetime, so
  /// sessions cache the pointer at bind time and bump without locking.
  struct TaskCounters {
    obs::Counter& streams;
    obs::Counter& samples;
    obs::Counter& events;
    obs::Histogram& region_ns;  ///< per-region classification wall time
  };

  /// Returns this name's counter bundle, creating it on first use.
  /// Mutex only on the lookup (the bind path), never on the bump path.
  [[nodiscard]] TaskCounters& task(const std::string& name) {
    std::lock_guard<std::mutex> lock{tasks_mutex_};
    auto it = tasks_.find(name);
    if (it == tasks_.end()) {
      const std::string prefix = "serve.task." + name + ".";
      auto bundle = std::make_unique<TaskCounters>(
          TaskCounters{registry_.counter(prefix + "streams"),
                       registry_.counter(prefix + "samples"),
                       registry_.counter(prefix + "events"),
                       registry_.histogram(prefix + "region_ns")});
      it = tasks_.emplace(name, std::move(bundle)).first;
    }
    return *it->second;
  }

  /// Traffic snapshot per task name, sorted (deterministic wire order).
  /// The registry-side fields (versions) are merged in by the caller.
  [[nodiscard]] std::vector<TaskStats> task_snapshot() const {
    std::lock_guard<std::mutex> lock{tasks_mutex_};
    std::vector<TaskStats> out;
    out.reserve(tasks_.size());
    for (const auto& [name, bundle] : tasks_) {
      TaskStats t;
      t.name = name;
      t.streams = bundle->streams.value();
      t.samples = bundle->samples.value();
      t.events = bundle->events.value();
      out.push_back(std::move(t));
    }
    std::sort(out.begin(), out.end(), [](const TaskStats& a, const TaskStats& b) {
      return a.name < b.name;
    });
    return out;
  }

  /// Fills the request/latency half of a snapshot; the session/model
  /// fields are owned by SessionManager / ModelRegistry and are filled
  /// in by ServeService::stats().
  [[nodiscard]] ServeStats snapshot() const {
    ServeStats s;
    s.requests = requests.value();
    s.accepted = accepted.value();
    s.rejected_overload = rejected_overload.value();
    s.rejected_capacity = rejected_capacity.value();
    s.chunks_processed = chunks_processed.value();
    s.samples_processed = samples_processed.value();
    s.events_emitted = events_emitted.value();
    s.drains = drains.value();
    const obs::HistogramSnapshot h = drain_latency_ns_.snapshot();
    s.drain_count = h.count;
    if (h.count > 0) {
      s.drain_p50_us = static_cast<double>(h.quantile(0.50)) / 1000.0;
      s.drain_p99_us = static_cast<double>(h.quantile(0.99)) / 1000.0;
    }
    s.drain_hist.reserve(h.buckets.size());
    for (const obs::HistogramSnapshot::Bucket& b : h.buckets) {
      s.drain_hist.emplace_back(static_cast<double>(b.upper) / 1000.0, b.count);
    }
    s.windows_batched = windows_batched.value();
    s.windows_solo = windows_solo.value();
    const obs::HistogramSnapshot hb = batch_size_.snapshot();
    s.batch_count = hb.count;
    if (hb.count > 0) {
      s.batch_p50 = static_cast<double>(hb.quantile(0.50));
      s.batch_p99 = static_cast<double>(hb.quantile(0.99));
    }
    s.batch_hist.reserve(hb.buckets.size());
    for (const obs::HistogramSnapshot::Bucket& b : hb.buckets) {
      s.batch_hist.emplace_back(static_cast<double>(b.upper), b.count);
    }
    return s;
  }

 private:
  obs::Histogram& drain_latency_ns_;
  obs::Histogram& e2e_latency_ns_;
  obs::Histogram& batch_size_;
  mutable std::mutex tasks_mutex_;
  std::unordered_map<std::string, std::unique_ptr<TaskCounters>> tasks_;
};

}  // namespace emoleak::serve
