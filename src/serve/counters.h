// Service counters for emoleak::serve.
//
// Producers bump atomic counters from any thread; drain latency goes
// through a mutex-guarded ring of recent samples (p50/p99 need order
// statistics, which atomics can't give). snapshot() assembles the
// ServeStats message payload exposed over the wire protocol.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace emoleak::serve {

/// Plain snapshot of the service counters (the `stats` wire message).
struct ServeStats {
  std::uint64_t requests = 0;           ///< push/finish requests submitted
  std::uint64_t accepted = 0;           ///< admitted to a shard queue
  std::uint64_t rejected_overload = 0;  ///< shard queue full
  std::uint64_t rejected_capacity = 0;  ///< session table full
  std::uint64_t chunks_processed = 0;
  std::uint64_t samples_processed = 0;
  std::uint64_t events_emitted = 0;
  std::uint64_t drains = 0;
  std::uint64_t sessions_active = 0;
  std::uint64_t sessions_created = 0;
  std::uint64_t sessions_evicted = 0;
  std::uint64_t sessions_pooled = 0;  ///< reused from the free pool
  std::uint64_t model_generation = 0;
  double drain_p50_us = 0.0;
  double drain_p99_us = 0.0;
};

class ServeCounters {
 public:
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> rejected_overload{0};
  std::atomic<std::uint64_t> rejected_capacity{0};
  std::atomic<std::uint64_t> chunks_processed{0};
  std::atomic<std::uint64_t> samples_processed{0};
  std::atomic<std::uint64_t> events_emitted{0};
  std::atomic<std::uint64_t> drains{0};

  /// Records one drain-cycle wall time; keeps the most recent
  /// kLatencyWindow samples.
  void record_drain_latency(double microseconds) {
    std::lock_guard<std::mutex> lock{latency_mutex_};
    if (latencies_.size() < kLatencyWindow) {
      latencies_.push_back(microseconds);
    } else {
      latencies_[latency_next_ % kLatencyWindow] = microseconds;
    }
    ++latency_next_;
  }

  /// Fills the request/latency half of a snapshot; the session/model
  /// fields are owned by SessionManager / ModelRegistry and are filled
  /// in by ServeService::stats().
  [[nodiscard]] ServeStats snapshot() const {
    ServeStats s;
    s.requests = requests.load(std::memory_order_relaxed);
    s.accepted = accepted.load(std::memory_order_relaxed);
    s.rejected_overload = rejected_overload.load(std::memory_order_relaxed);
    s.rejected_capacity = rejected_capacity.load(std::memory_order_relaxed);
    s.chunks_processed = chunks_processed.load(std::memory_order_relaxed);
    s.samples_processed = samples_processed.load(std::memory_order_relaxed);
    s.events_emitted = events_emitted.load(std::memory_order_relaxed);
    s.drains = drains.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock{latency_mutex_};
    if (!latencies_.empty()) {
      std::vector<double> sorted = latencies_;
      std::sort(sorted.begin(), sorted.end());
      s.drain_p50_us = quantile(sorted, 0.50);
      s.drain_p99_us = quantile(sorted, 0.99);
    }
    return s;
  }

 private:
  static constexpr std::size_t kLatencyWindow = 1024;

  static double quantile(const std::vector<double>& sorted, double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
  }

  mutable std::mutex latency_mutex_;
  std::vector<double> latencies_;
  std::size_t latency_next_ = 0;
};

}  // namespace emoleak::serve
