// Wire protocol for the emoleak::serve inference service.
//
// Little-endian, length-prefixed binary frames:
//
//   u32 payload_length | u8 type | type-specific payload
//
// The in-process transport used by tests and serve_demo concatenates
// frames into a byte buffer; the epoll front end (net/server.h) ships
// the same bytes over TCP sockets. Doubles travel as IEEE-754 bit
// patterns (std::bit_cast), so a chunk pushed over the wire classifies
// bit-identically to one passed in memory.
//
// Framing distinguishes two failure shapes, because a TCP stream
// delivers frames split at arbitrary byte boundaries:
//   - a *partial* trailing frame is a normal state — FrameReader::next()
//     returns nullopt with needs_more() set, and the caller retains the
//     tail until more bytes arrive;
//   - a *corrupt* frame (bad type, short payload, absurd length) throws
//     util::DataError — corrupt input must never crash the service
//     (same hardening contract as ml::load_model).
// encode() enforces the same limits it expects of peers: a message
// whose frame would exceed kMaxPayload throws before any bytes are
// emitted, so we can never produce a frame our own decoder rejects.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "core/streaming.h"
#include "obs/metrics.h"
#include "serve/counters.h"

namespace emoleak::serve {

/// Hard ceiling on one frame's payload. A frame longer than this is
/// corrupt, not big: the largest legitimate payload is a chunk push,
/// and chunks are seconds of accelerometer data, not gigabytes. The
/// decoder checks it before any allocation; the encoder refuses to
/// emit a frame above it.
inline constexpr std::size_t kMaxPayload = std::size_t{64} << 20;  // 64 MiB

enum class MsgType : std::uint8_t {
  kChunkPush = 1,   ///< client -> service: samples for one stream
  kStreamFinish,    ///< client -> service: end-of-stream flush
  kEvent,           ///< service -> client: one classified speech region
  kStatsRequest,    ///< client -> service
  kStatsReply,      ///< service -> client
  kModelSwap,       ///< client -> service: activate a registry version
  kAck,             ///< service -> client: request status
  kStreamStart,     ///< client -> service: open a stream, optionally
                    ///< binding it to a named model (appended in v2 —
                    ///< earlier types keep their byte values)
  kMetricsRequest,  ///< client -> service: pull the metrics registry
                    ///< (appended in v4 — an older peer decodes this
                    ///< type as corrupt and answers kError, which is
                    ///< the designed downgrade signal)
  kMetricsReply,    ///< service -> client: full registry snapshot
  kTraceRequest,    ///< client -> service: pull the trace rings
  kTraceReply,      ///< service -> client: Chrome trace JSON + drops
};

enum class Status : std::uint8_t {
  kOk = 0,
  kOverloaded,   ///< shard queue full — retry after a drain
  kNoCapacity,   ///< session table full and nothing evictable
  kError,        ///< malformed request / unknown model version
};

struct ChunkPushMsg {
  std::uint64_t stream_id = 0;
  std::vector<double> samples;
};

/// Opens a stream explicitly, optionally naming the registry model the
/// stream should classify against (empty = the registry default, which
/// is also what a bare ChunkPushMsg with a fresh stream_id binds to —
/// StreamStart is only *required* for non-default tasks).
///
/// Old-encoding compatibility: the v1 payload was `u64 stream_id` with
/// no name field. The decoder accepts that short form (name absent ->
/// default model), and encoding an empty name *produces* the short
/// form, so v1 and v2 peers interoperate byte-for-byte on default-task
/// streams.
struct StreamStartMsg {
  std::uint64_t stream_id = 0;
  std::string model_name;  ///< empty = registry default
};

struct StreamFinishMsg {
  std::uint64_t stream_id = 0;
};

struct EventMsg {
  std::uint64_t stream_id = 0;
  core::EmotionEvent event;
};

struct StatsRequestMsg {};

struct StatsReplyMsg {
  ServeStats stats;
};

struct ModelSwapMsg {
  std::uint32_t version = 0;
};

struct AckMsg {
  Status status = Status::kOk;
  /// For kOverloaded: how long the client should back off before
  /// retrying the rejected request. The wire-level face of the
  /// reject-on-overload admission policy — the service sheds load and
  /// tells the peer when to come back instead of queueing unboundedly.
  /// 0 for every other status.
  std::uint32_t retry_after_ms = 0;
};

/// Remote telemetry pull (v4 append). The reply carries a full
/// obs::RegistrySnapshot — every counter, gauge, and non-empty
/// histogram bucket — so a scraper needs no prior knowledge of which
/// metrics exist. Taking the snapshot is lock-free on the recording
/// side, so a scrape never perturbs the serving path.
struct MetricsRequestMsg {};

struct MetricsReplyMsg {
  obs::RegistrySnapshot snapshot;
};

/// Remote trace pull (v4 append). The reply ships the ready-made
/// Chrome trace_event JSON (obs::trace_json()) rather than re-encoding
/// spans field-by-field: the JSON is the stable export format, and the
/// ring snapshot it represents is already race-safe by construction.
struct TraceRequestMsg {};

struct TraceReplyMsg {
  std::string trace_json;
  std::uint64_t dropped_spans = 0;  ///< spans lost to ring wrap
};

using Message = std::variant<ChunkPushMsg, StreamFinishMsg, EventMsg,
                             StatsRequestMsg, StatsReplyMsg, ModelSwapMsg,
                             AckMsg, StreamStartMsg, MetricsRequestMsg,
                             MetricsReplyMsg, TraceRequestMsg, TraceReplyMsg>;

/// Appends one length-prefixed frame for `msg` to `out`. Throws
/// util::DataError — leaving `out` untouched — when the message cannot
/// be framed within kMaxPayload (e.g. a chunk whose sample count would
/// not survive the u32 length fields); the peer's decoder would reject
/// such a frame, so it must never reach the wire.
void encode(std::string& out, const Message& msg);

/// Convenience: a single message as its own buffer.
[[nodiscard]] std::string encode_one(const Message& msg);

/// Iterates the frames of a byte buffer, resumably: frames may arrive
/// split at arbitrary byte boundaries (a TCP stream), so running out of
/// bytes mid-frame is a normal state, not an error. Throws
/// util::DataError only on genuinely corrupt frames (bad type, short
/// payload relative to its own length field, absurd length).
class FrameReader {
 public:
  explicit FrameReader(std::string_view bytes) : bytes_{bytes} {}
  /// Deleted: a temporary's bytes would dangle while frames are read.
  explicit FrameReader(std::string&& bytes) = delete;

  /// Next decoded message, or nullopt when no complete frame remains.
  /// nullopt with needs_more() unset is a clean end-of-buffer; nullopt
  /// with needs_more() set means a partial trailing frame starts at
  /// offset() — the transport should retain bytes_[offset()..] and
  /// retry once at least missing_bytes() more have arrived.
  [[nodiscard]] std::optional<Message> next();

  /// Bytes consumed so far (whole frames only — never advances into a
  /// partial frame).
  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

  /// True after next() returned nullopt because the trailing frame is
  /// incomplete (as opposed to a clean end-of-buffer).
  [[nodiscard]] bool needs_more() const noexcept { return needed_ > 0; }

  /// Lower bound on the bytes still missing from the partial trailing
  /// frame (exact once the 4-byte length prefix is complete). 0 when
  /// not mid-frame.
  [[nodiscard]] std::size_t missing_bytes() const noexcept { return needed_; }

 private:
  std::string_view bytes_;
  std::size_t offset_ = 0;
  std::size_t needed_ = 0;
};

}  // namespace emoleak::serve
