// Wire protocol for the emoleak::serve inference service.
//
// Little-endian, length-prefixed binary frames:
//
//   u32 payload_length | u8 type | type-specific payload
//
// The in-process transport used by tests and serve_demo concatenates
// frames into a byte buffer; a real deployment would ship the same
// bytes over a socket. Doubles travel as IEEE-754 bit patterns
// (std::bit_cast), so a chunk pushed over the wire classifies
// bit-identically to one passed in memory. decode failures throw
// util::DataError — truncated or corrupt frames must never crash the
// service (same hardening contract as ml::load_model).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "core/streaming.h"
#include "serve/counters.h"

namespace emoleak::serve {

enum class MsgType : std::uint8_t {
  kChunkPush = 1,   ///< client -> service: samples for one stream
  kStreamFinish,    ///< client -> service: end-of-stream flush
  kEvent,           ///< service -> client: one classified speech region
  kStatsRequest,    ///< client -> service
  kStatsReply,      ///< service -> client
  kModelSwap,       ///< client -> service: activate a registry version
  kAck,             ///< service -> client: request status
};

enum class Status : std::uint8_t {
  kOk = 0,
  kOverloaded,   ///< shard queue full — retry after a drain
  kNoCapacity,   ///< session table full and nothing evictable
  kError,        ///< malformed request / unknown model version
};

struct ChunkPushMsg {
  std::uint64_t stream_id = 0;
  std::vector<double> samples;
};

struct StreamFinishMsg {
  std::uint64_t stream_id = 0;
};

struct EventMsg {
  std::uint64_t stream_id = 0;
  core::EmotionEvent event;
};

struct StatsRequestMsg {};

struct StatsReplyMsg {
  ServeStats stats;
};

struct ModelSwapMsg {
  std::uint32_t version = 0;
};

struct AckMsg {
  Status status = Status::kOk;
};

using Message = std::variant<ChunkPushMsg, StreamFinishMsg, EventMsg,
                             StatsRequestMsg, StatsReplyMsg, ModelSwapMsg,
                             AckMsg>;

/// Appends one length-prefixed frame for `msg` to `out`.
void encode(std::string& out, const Message& msg);

/// Convenience: a single message as its own buffer.
[[nodiscard]] std::string encode_one(const Message& msg);

/// Iterates the frames of a byte buffer. Throws util::DataError on a
/// corrupt frame (bad type, short payload, absurd length).
class FrameReader {
 public:
  explicit FrameReader(std::string_view bytes) : bytes_{bytes} {}
  /// Deleted: a temporary's bytes would dangle while frames are read.
  explicit FrameReader(std::string&& bytes) = delete;

  /// Next decoded message, or nullopt at end-of-buffer. A partial
  /// trailing frame is an error: the in-process transport always hands
  /// over whole buffers.
  [[nodiscard]] std::optional<Message> next();

  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

 private:
  std::string_view bytes_;
  std::size_t offset_ = 0;
};

}  // namespace emoleak::serve
