#include "serve/protocol.h"

#include <bit>
#include <cstring>
#include <limits>

#include "util/error.h"

namespace emoleak::serve {

namespace {

/// Encode-time mirror of the decoder's bounds checks: refuses an array
/// whose elements alone would overflow kMaxPayload (or the u32 element
/// count), *before* anything is written. Without this, a caller could
/// hand encode() a chunk whose size truncates through the u32 count
/// field — emitting a frame the peer's decoder must reject.
void check_array_encodable(std::size_t count, std::size_t elem_bytes,
                           const char* what) {
  if (count > std::numeric_limits<std::uint32_t>::max() ||
      count > kMaxPayload / elem_bytes) {
    throw util::DataError{std::string{"serve::encode: "} + what +
                          " count exceeds frame limits"};
  }
}

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_i32(std::string& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_str(std::string& out, std::string_view s) {
  check_array_encodable(s.size(), 1, "string");
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

/// Bounds-checked little-endian cursor over one frame payload.
class Cursor {
 public:
  explicit Cursor(std::string_view payload) : payload_{payload} {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(payload_[pos_++]);
  }

  [[nodiscard]] std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(payload_[pos_ + static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  [[nodiscard]] std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(payload_[pos_ + static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  [[nodiscard]] std::int32_t i32() {
    return static_cast<std::int32_t>(u32());
  }

  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }

  [[nodiscard]] std::vector<double> f64_array() {
    const std::uint32_t n = u32();
    need(std::size_t{n} * 8);  // before allocating — see kMaxPayload
    std::vector<double> out(n);
    for (double& v : out) v = f64();
    return out;
  }

  [[nodiscard]] std::string str() {
    const std::uint32_t n = u32();
    need(n);  // before allocating — see kMaxPayload
    std::string out{payload_.substr(pos_, n)};
    pos_ += n;
    return out;
  }

  /// True once the whole payload is consumed — lets a decoder accept an
  /// older, shorter encoding of a message (trailing fields absent).
  [[nodiscard]] bool done() const noexcept { return pos_ == payload_.size(); }

  void expect_done() const {
    if (pos_ != payload_.size()) {
      throw util::DataError{"serve::decode: trailing bytes in frame"};
    }
  }

 private:
  void need(std::size_t n) const {
    if (payload_.size() - pos_ < n) {
      throw util::DataError{"serve::decode: short payload"};
    }
  }

  std::string_view payload_;
  std::size_t pos_ = 0;
};

void encode_payload(std::string& out, const Message& msg) {
  std::visit(
      [&out](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, ChunkPushMsg>) {
          check_array_encodable(m.samples.size(), 8, "chunk samples");
          put_u8(out, static_cast<std::uint8_t>(MsgType::kChunkPush));
          put_u64(out, m.stream_id);
          put_u32(out, static_cast<std::uint32_t>(m.samples.size()));
          for (const double v : m.samples) put_f64(out, v);
        } else if constexpr (std::is_same_v<T, StreamFinishMsg>) {
          put_u8(out, static_cast<std::uint8_t>(MsgType::kStreamFinish));
          put_u64(out, m.stream_id);
        } else if constexpr (std::is_same_v<T, EventMsg>) {
          check_array_encodable(m.event.probabilities.size(), 8,
                                "event probabilities");
          put_u8(out, static_cast<std::uint8_t>(MsgType::kEvent));
          put_u64(out, m.stream_id);
          put_u64(out, m.event.start_sample);
          put_u64(out, m.event.end_sample);
          put_i32(out, m.event.predicted_class);
          put_u32(out, static_cast<std::uint32_t>(m.event.probabilities.size()));
          for (const double v : m.event.probabilities) put_f64(out, v);
        } else if constexpr (std::is_same_v<T, StatsRequestMsg>) {
          put_u8(out, static_cast<std::uint8_t>(MsgType::kStatsRequest));
        } else if constexpr (std::is_same_v<T, StatsReplyMsg>) {
          check_array_encodable(m.stats.drain_hist.size(), 16,
                                "drain histogram buckets");
          put_u8(out, static_cast<std::uint8_t>(MsgType::kStatsReply));
          const ServeStats& s = m.stats;
          put_u64(out, s.requests);
          put_u64(out, s.accepted);
          put_u64(out, s.rejected_overload);
          put_u64(out, s.rejected_capacity);
          put_u64(out, s.chunks_processed);
          put_u64(out, s.samples_processed);
          put_u64(out, s.events_emitted);
          put_u64(out, s.drains);
          put_u64(out, s.sessions_active);
          put_u64(out, s.sessions_created);
          put_u64(out, s.sessions_evicted);
          put_u64(out, s.sessions_pooled);
          put_u64(out, s.model_generation);
          put_f64(out, s.drain_p50_us);
          put_f64(out, s.drain_p99_us);
          put_u64(out, s.drain_count);
          put_u32(out, static_cast<std::uint32_t>(s.drain_hist.size()));
          for (const auto& [upper_us, count] : s.drain_hist) {
            put_f64(out, upper_us);
            put_u64(out, count);
          }
          // v2 extension: per-task section. Appended after the v1
          // payload so a v1-era byte capture still decodes (the decoder
          // treats an exhausted payload here as "no task section").
          check_array_encodable(s.tasks.size(), 28, "task stats");
          put_u32(out, static_cast<std::uint32_t>(s.tasks.size()));
          for (const TaskStats& t : s.tasks) {
            put_str(out, t.name);
            put_u32(out, t.active_version);
            put_u32(out, t.versions);
            put_u64(out, t.streams);
            put_u64(out, t.samples);
            put_u64(out, t.events);
          }
          // v3 extension: batched-inference occupancy, appended after
          // the task section with the same older-decoder contract (an
          // exhausted payload reads as "no batch section", all zeros).
          check_array_encodable(s.batch_hist.size(), 16,
                                "batch histogram buckets");
          put_u64(out, s.windows_batched);
          put_u64(out, s.windows_solo);
          put_u64(out, s.batch_count);
          put_f64(out, s.batch_p50);
          put_f64(out, s.batch_p99);
          put_u32(out, static_cast<std::uint32_t>(s.batch_hist.size()));
          for (const auto& [upper, count] : s.batch_hist) {
            put_f64(out, upper);
            put_u64(out, count);
          }
        } else if constexpr (std::is_same_v<T, ModelSwapMsg>) {
          put_u8(out, static_cast<std::uint8_t>(MsgType::kModelSwap));
          put_u32(out, m.version);
        } else if constexpr (std::is_same_v<T, AckMsg>) {
          put_u8(out, static_cast<std::uint8_t>(MsgType::kAck));
          put_u8(out, static_cast<std::uint8_t>(m.status));
          put_u32(out, m.retry_after_ms);
        } else if constexpr (std::is_same_v<T, StreamStartMsg>) {
          put_u8(out, static_cast<std::uint8_t>(MsgType::kStreamStart));
          put_u64(out, m.stream_id);
          // An empty name encodes to the v1 short form (stream_id only)
          // so a default-task start is byte-identical to what a v1 peer
          // would have sent.
          if (!m.model_name.empty()) put_str(out, m.model_name);
        } else if constexpr (std::is_same_v<T, MetricsRequestMsg>) {
          put_u8(out, static_cast<std::uint8_t>(MsgType::kMetricsRequest));
        } else if constexpr (std::is_same_v<T, MetricsReplyMsg>) {
          const obs::RegistrySnapshot& s = m.snapshot;
          check_array_encodable(s.counters.size(), 12, "metric counters");
          check_array_encodable(s.gauges.size(), 12, "metric gauges");
          check_array_encodable(s.histograms.size(), 16, "metric histograms");
          put_u8(out, static_cast<std::uint8_t>(MsgType::kMetricsReply));
          put_u32(out, static_cast<std::uint32_t>(s.counters.size()));
          for (const auto& [name, value] : s.counters) {
            put_str(out, name);
            put_u64(out, value);
          }
          put_u32(out, static_cast<std::uint32_t>(s.gauges.size()));
          for (const auto& [name, value] : s.gauges) {
            put_str(out, name);
            put_u64(out, static_cast<std::uint64_t>(value));  // two's complement
          }
          put_u32(out, static_cast<std::uint32_t>(s.histograms.size()));
          for (const auto& [name, h] : s.histograms) {
            check_array_encodable(h.buckets.size(), 16, "histogram buckets");
            put_str(out, name);
            put_f64(out, h.sum);
            put_u32(out, static_cast<std::uint32_t>(h.buckets.size()));
            for (const obs::HistogramSnapshot::Bucket& b : h.buckets) {
              put_f64(out, b.upper);
              put_u64(out, b.count);
            }
          }
        } else if constexpr (std::is_same_v<T, TraceRequestMsg>) {
          put_u8(out, static_cast<std::uint8_t>(MsgType::kTraceRequest));
        } else if constexpr (std::is_same_v<T, TraceReplyMsg>) {
          put_u8(out, static_cast<std::uint8_t>(MsgType::kTraceReply));
          put_str(out, m.trace_json);
          put_u64(out, m.dropped_spans);
        }
      },
      msg);
}

Message decode_payload(std::string_view payload) {
  Cursor c{payload};
  const auto type = static_cast<MsgType>(c.u8());
  Message msg;
  switch (type) {
    case MsgType::kChunkPush: {
      ChunkPushMsg m;
      m.stream_id = c.u64();
      m.samples = c.f64_array();
      msg = std::move(m);
      break;
    }
    case MsgType::kStreamFinish: {
      StreamFinishMsg m;
      m.stream_id = c.u64();
      msg = m;
      break;
    }
    case MsgType::kEvent: {
      EventMsg m;
      m.stream_id = c.u64();
      m.event.start_sample = c.u64();
      m.event.end_sample = c.u64();
      m.event.predicted_class = c.i32();
      m.event.probabilities = c.f64_array();
      msg = std::move(m);
      break;
    }
    case MsgType::kStatsRequest:
      msg = StatsRequestMsg{};
      break;
    case MsgType::kStatsReply: {
      StatsReplyMsg m;
      ServeStats& s = m.stats;
      s.requests = c.u64();
      s.accepted = c.u64();
      s.rejected_overload = c.u64();
      s.rejected_capacity = c.u64();
      s.chunks_processed = c.u64();
      s.samples_processed = c.u64();
      s.events_emitted = c.u64();
      s.drains = c.u64();
      s.sessions_active = c.u64();
      s.sessions_created = c.u64();
      s.sessions_evicted = c.u64();
      s.sessions_pooled = c.u64();
      s.model_generation = c.u64();
      s.drain_p50_us = c.f64();
      s.drain_p99_us = c.f64();
      s.drain_count = c.u64();
      // No reserve before reading: a hostile bucket count would ask for
      // a huge allocation; growing as bytes actually arrive means a short
      // payload throws long before memory becomes a problem.
      const std::uint32_t buckets = c.u32();
      for (std::uint32_t i = 0; i < buckets; ++i) {
        const double upper_us = c.f64();
        const std::uint64_t count = c.u64();
        s.drain_hist.emplace_back(upper_us, count);
      }
      // v1 payloads end here; the task section is a v2 append.
      if (!c.done()) {
        const std::uint32_t tasks = c.u32();
        for (std::uint32_t i = 0; i < tasks; ++i) {
          TaskStats t;
          t.name = c.str();
          t.active_version = c.u32();
          t.versions = c.u32();
          t.streams = c.u64();
          t.samples = c.u64();
          t.events = c.u64();
          s.tasks.push_back(std::move(t));
        }
      }
      // v2 payloads end here; batch occupancy is a v3 append.
      if (!c.done()) {
        s.windows_batched = c.u64();
        s.windows_solo = c.u64();
        s.batch_count = c.u64();
        s.batch_p50 = c.f64();
        s.batch_p99 = c.f64();
        const std::uint32_t batch_buckets = c.u32();
        for (std::uint32_t i = 0; i < batch_buckets; ++i) {
          const double upper = c.f64();
          const std::uint64_t count = c.u64();
          s.batch_hist.emplace_back(upper, count);
        }
      }
      msg = std::move(m);
      break;
    }
    case MsgType::kModelSwap: {
      ModelSwapMsg m;
      m.version = c.u32();
      msg = m;
      break;
    }
    case MsgType::kAck: {
      AckMsg m;
      const std::uint8_t status = c.u8();
      if (status > static_cast<std::uint8_t>(Status::kError)) {
        throw util::DataError{"serve::decode: bad ack status"};
      }
      m.status = static_cast<Status>(status);
      m.retry_after_ms = c.u32();
      msg = m;
      break;
    }
    case MsgType::kStreamStart: {
      StreamStartMsg m;
      m.stream_id = c.u64();
      // v1 short form carries only the stream id — absent name means
      // the registry default.
      if (!c.done()) m.model_name = c.str();
      msg = std::move(m);
      break;
    }
    case MsgType::kMetricsRequest:
      msg = MetricsRequestMsg{};
      break;
    case MsgType::kMetricsReply: {
      MetricsReplyMsg m;
      obs::RegistrySnapshot& s = m.snapshot;
      // As with the stats reply, no reserve before reading: hostile
      // counts must not provoke huge allocations — growth is bounded by
      // bytes that actually arrived.
      const std::uint32_t counters = c.u32();
      for (std::uint32_t i = 0; i < counters; ++i) {
        std::string name = c.str();
        const std::uint64_t value = c.u64();
        s.counters.emplace_back(std::move(name), value);
      }
      const std::uint32_t gauges = c.u32();
      for (std::uint32_t i = 0; i < gauges; ++i) {
        std::string name = c.str();
        const auto value = static_cast<std::int64_t>(c.u64());
        s.gauges.emplace_back(std::move(name), value);
      }
      const std::uint32_t histograms = c.u32();
      for (std::uint32_t i = 0; i < histograms; ++i) {
        std::string name = c.str();
        obs::HistogramSnapshot h;
        h.sum = c.f64();
        const std::uint32_t buckets = c.u32();
        for (std::uint32_t j = 0; j < buckets; ++j) {
          const double upper = c.f64();
          const std::uint64_t count = c.u64();
          h.buckets.push_back({upper, count});
          h.count += count;  // derived, not wired — stays self-consistent
        }
        s.histograms.emplace_back(std::move(name), std::move(h));
      }
      msg = std::move(m);
      break;
    }
    case MsgType::kTraceRequest:
      msg = TraceRequestMsg{};
      break;
    case MsgType::kTraceReply: {
      TraceReplyMsg m;
      m.trace_json = c.str();
      m.dropped_spans = c.u64();
      msg = std::move(m);
      break;
    }
    default:
      throw util::DataError{"serve::decode: unknown message type"};
  }
  c.expect_done();
  return msg;
}

}  // namespace

void encode(std::string& out, const Message& msg) {
  const std::size_t header_at = out.size();
  put_u32(out, 0);  // placeholder
  try {
    encode_payload(out, msg);
  } catch (...) {
    out.resize(header_at);  // no half-written frame may reach the wire
    throw;
  }
  const std::size_t payload_size = out.size() - header_at - 4;
  if (payload_size > kMaxPayload) {
    // Belt and braces behind check_array_encodable: our decoder would
    // reject this frame, so the encoder must not produce it.
    out.resize(header_at);
    throw util::DataError{"serve::encode: frame exceeds kMaxPayload"};
  }
  const auto len = static_cast<std::uint32_t>(payload_size);
  for (int i = 0; i < 4; ++i) {
    out[header_at + static_cast<std::size_t>(i)] =
        static_cast<char>((len >> (8 * i)) & 0xff);
  }
}

std::string encode_one(const Message& msg) {
  std::string out;
  encode(out, msg);
  return out;
}

std::optional<Message> FrameReader::next() {
  needed_ = 0;
  const std::size_t avail = bytes_.size() - offset_;
  if (avail == 0) return std::nullopt;
  if (avail < 4) {
    // Partial length prefix — on a TCP stream frames split at arbitrary
    // byte boundaries, so this is a resumable state, not corruption.
    needed_ = 4 - avail;
    return std::nullopt;
  }
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(bytes_[offset_ + static_cast<std::size_t>(i)]))
           << (8 * i);
  }
  if (len > kMaxPayload) {
    // Genuinely corrupt: no legitimate peer frames this much. Throwing
    // (rather than waiting for 4 GiB that will never arrive) is what
    // lets the transport close the connection promptly.
    throw util::DataError{"serve::decode: frame length out of range"};
  }
  if (avail - 4 < len) {
    needed_ = len - (avail - 4);
    return std::nullopt;
  }
  const std::string_view payload = bytes_.substr(offset_ + 4, len);
  offset_ += 4 + len;
  return decode_payload(payload);
}

}  // namespace emoleak::serve
