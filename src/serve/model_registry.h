// Versioned model registry for the serving layer.
//
// The registry warm-loads trained classifiers (ml::load_model_file) and
// hands them out as shared_ptr<const Classifier>, so every session
// shares one immutable model instance and a hot-swap is a pointer
// swing, not a reload. activate() bumps a generation counter; sessions
// compare their cached generation against it at drain time and refresh
// lazily — an O(1) check on the hot path, no locking unless a swap
// actually happened.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ml/classifier.h"

namespace emoleak::serve {

class ModelRegistry {
 public:
  using ModelPtr = std::shared_ptr<const ml::Classifier>;

  struct ModelInfo {
    std::uint32_t version = 0;
    std::string name;
    std::string classifier;  ///< Classifier::name()
  };

  /// Registers an already-loaded model under the next version number
  /// (versions start at 1). The first registered model auto-activates.
  std::uint32_t add(std::string name, ModelPtr model);

  /// Loads a model file (ml::load_model_file — throws util::DataError
  /// on malformed input) and registers it.
  std::uint32_t load_file(std::string name, const std::string& path);

  /// Atomically makes `version` the model for new work. Throws
  /// util::DataError for an unknown version.
  void activate(std::uint32_t version);

  /// The active model; nullptr before any registration.
  [[nodiscard]] ModelPtr current() const;

  /// Active model plus the generation it belongs to, read atomically
  /// (sessions cache the generation to detect swaps).
  [[nodiscard]] std::pair<ModelPtr, std::uint64_t> current_with_generation()
      const;

  /// Bumps on every activate(); 0 until the first activation. Cheap
  /// enough to poll per request.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_.load(std::memory_order_acquire);
  }

  [[nodiscard]] ModelPtr get(std::uint32_t version) const;
  [[nodiscard]] std::vector<ModelInfo> list() const;
  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    std::string name;
    ModelPtr model;
  };

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;  ///< version v lives at entries_[v - 1]
  ModelPtr current_;
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace emoleak::serve
