// Versioned, multi-model registry for the serving layer.
//
// The registry warm-loads trained classifiers (ml::load_model_file) and
// hands them out as shared_ptr<const Classifier>, so every session
// shares one immutable model instance and a hot-swap is a pointer
// swing, not a reload. Models register under *names* — one per attack
// task (emotion, speaker, gender, media fingerprint, ...) — and each
// name tracks its own active version:
//
//   - add()/load_file() with a fresh name creates the name and makes
//     the new version its active model;
//   - add()/load_file() with an existing name atomically swaps that
//     name's active model to the new version. Sessions holding the old
//     ModelPtr keep it alive for their in-flight work (shared_ptr
//     ownership) and pick up the swap lazily at their next request;
//   - activate(version) re-points both the *default* model (what
//     unnamed streams bind to) and the version's own name at that
//     version — including rolling a name back to an older version.
//
// Every change that can re-bind a session bumps a generation counter;
// sessions compare their cached generation against it at drain time
// and re-resolve lazily — an O(1) check on the hot path, no locking
// unless a swap actually happened.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/streaming.h"
#include "ml/classifier.h"

namespace emoleak::serve {

class ModelRegistry {
 public:
  using ModelPtr = std::shared_ptr<const ml::Classifier>;

  struct ModelInfo {
    std::uint32_t version = 0;
    std::string name;
    std::string classifier;  ///< Classifier::name()
  };

  /// Per-name view for stats(): which version a name currently serves
  /// and how many versions were ever registered under it.
  struct NameInfo {
    std::string name;
    std::uint32_t active_version = 0;
    std::uint32_t versions = 0;
  };

  /// A name resolved to what a session needs to bind: the model, the
  /// feature route it was trained on, its registry version, and the
  /// generation the resolution belongs to.
  struct Resolved {
    ModelPtr model;
    core::FeatureRoute route = core::FeatureRoute::kTableFeatures;
    std::string name;
    std::uint32_t version = 0;
    std::uint64_t generation = 0;
  };

  /// Registers an already-loaded model under the next version number
  /// (versions start at 1) and makes it `name`'s active version. The
  /// first registered model also becomes the default. Re-registering an
  /// existing name is the hot-swap path: the new version becomes
  /// visible atomically, the old one stays alive for in-flight
  /// sessions, and the generation bumps so sessions re-resolve.
  std::uint32_t add(std::string name, ModelPtr model,
                    core::FeatureRoute route =
                        core::FeatureRoute::kTableFeatures);

  /// Loads a model file (ml::load_model_file — throws util::DataError
  /// on malformed input) and registers it. Same duplicate-name
  /// semantics as add().
  std::uint32_t load_file(std::string name, const std::string& path,
                          core::FeatureRoute route =
                              core::FeatureRoute::kTableFeatures);

  /// Atomically makes `version` the default model for new unnamed work
  /// *and* the active version of its own name (this is how a name rolls
  /// back to an earlier version). Throws util::DataError for an unknown
  /// version.
  void activate(std::uint32_t version);

  /// The default model; nullptr before any registration.
  [[nodiscard]] ModelPtr current() const;

  /// Default model plus the generation it belongs to, read atomically
  /// (sessions cache the generation to detect swaps).
  [[nodiscard]] std::pair<ModelPtr, std::uint64_t> current_with_generation()
      const;

  /// Resolves a model name to its active model (empty name = the
  /// default). `model` is nullptr for an unknown name or an empty
  /// registry; `name` echoes the entry's registered name, so callers
  /// binding the default learn which task they actually got.
  [[nodiscard]] Resolved resolve(const std::string& name) const;

  /// True when `name` currently serves a model (empty name: true once
  /// any model is registered). Admission control uses this to reject a
  /// stream-start naming an unknown task before it is enqueued.
  [[nodiscard]] bool has(const std::string& name) const;

  /// Bumps on every visible re-binding (first add, duplicate-name add,
  /// activate); 0 until the first registration. Cheap enough to poll
  /// per request.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_.load(std::memory_order_acquire);
  }

  [[nodiscard]] ModelPtr get(std::uint32_t version) const;
  [[nodiscard]] std::vector<ModelInfo> list() const;
  /// Per-name active versions, sorted by name (deterministic for the
  /// wire-level stats payload).
  [[nodiscard]] std::vector<NameInfo> stats() const;
  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    std::string name;
    ModelPtr model;
    core::FeatureRoute route = core::FeatureRoute::kTableFeatures;
  };

  struct NameState {
    std::uint32_t active_version = 0;
    std::uint32_t versions = 0;  ///< registrations under this name
  };

  [[nodiscard]] Resolved resolve_locked(const std::string& name) const;

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;  ///< version v lives at entries_[v - 1]
  std::unordered_map<std::string, NameState> names_;
  std::uint32_t default_version_ = 0;  ///< what unnamed streams bind to
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace emoleak::serve
