// Experiment report generation.
//
// Renders one attack scenario's results — configuration, capture
// statistics, classifier comparison, confusion matrix, per-class
// metrics — as a self-contained Markdown document, so experiment runs
// can be archived or diffed. Used by the examples and available to
// library users.
#pragma once

#include <string>
#include <vector>

#include "core/attack.h"

namespace emoleak::core {

struct ReportInputs {
  ScenarioConfig scenario;
  const ExtractedData* data = nullptr;  ///< required
  /// Classifier results to tabulate (at least one).
  std::vector<ClassifierResult> results;
  /// Index into `results` whose confusion matrix gets the detailed
  /// per-class breakdown.
  std::size_t detailed_result = 0;
  std::string title = "EmoLeak experiment report";
};

/// Renders the full Markdown report. Throws util::DataError on missing
/// data or an empty result list.
[[nodiscard]] std::string render_report(const ReportInputs& inputs);

}  // namespace emoleak::core
