// Memoized dataset construction.
//
// The synthesize -> conduct -> extract pipeline is fully deterministic:
// ScenarioConfig (plus the feature schema) completely determines the
// ExtractedData it produces. The bench suite and repeated
// cross-validation configs rebuild the same datasets over and over, so
// this process-wide cache keys each build by a canonical rendering of
// every config field that reaches the pipeline and hands out shared
// read-only snapshots. Parallelism settings are excluded from the key:
// extraction is bit-identical at any thread count, so runs that differ
// only in thread budget share an entry.
//
// Thread safety: lookups and inserts take a mutex, but the build itself
// runs unlocked, so a long capture never blocks hits on other keys.
// When two threads race to build the same key, the first insert wins
// and the loser adopts the winner's snapshot (both are bit-identical).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/attack.h"

namespace emoleak::core {

/// Snapshot of the cache counters, surfaced the same way the serve
/// layer exposes ServeStats.
struct DatasetCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;    ///< cache fills (builds actually run)
  std::uint64_t entries = 0;   ///< datasets currently held
  std::uint64_t approx_bytes = 0;  ///< payload estimate across entries
};

class DatasetCache {
 public:
  /// The process-wide cache used by capture_cached().
  static DatasetCache& instance();

  /// Returns the dataset for `config`, building it with core::capture
  /// on the first request for this key. The returned snapshot is
  /// immutable and stays valid after clear().
  [[nodiscard]] std::shared_ptr<const ExtractedData> get_or_build(
      const ScenarioConfig& config);

  [[nodiscard]] DatasetCacheStats stats() const;

  /// Drops all entries (counters are kept). Outstanding snapshots
  /// remain valid through their shared_ptr.
  void clear();

  /// Canonical cache key: every pipeline-reaching ScenarioConfig field
  /// (doubles rendered as hexfloats so the key is lossless) plus the
  /// feature-schema signature. Exposed for tests.
  [[nodiscard]] static std::string key_of(const ScenarioConfig& config);

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<const ExtractedData>>
      entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// capture() through the process-wide DatasetCache: the first call for
/// a config pays the full synthesize/conduct/extract cost, every later
/// call with an equivalent config returns the same shared snapshot.
[[nodiscard]] std::shared_ptr<const ExtractedData> capture_cached(
    const ScenarioConfig& config);

}  // namespace emoleak::core
