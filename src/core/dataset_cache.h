// Memoized dataset construction, tiered across memory and disk.
//
// The synthesize -> conduct -> extract pipeline is fully deterministic:
// ScenarioConfig (plus the feature schema) completely determines the
// ExtractedData it produces. The bench suite, repeated CLI runs, and
// long-lived serve processes rebuild the same datasets over and over,
// so this cache keys each build by a canonical rendering of every
// config field that reaches the pipeline and hands out shared
// read-only snapshots. Parallelism settings are excluded from the key:
// extraction is bit-identical at any thread count, so runs that differ
// only in thread budget share an entry.
//
// Two tiers:
//  * memory — per-process LRU over shared_ptr snapshots with an
//    optional byte budget. Unbounded by default, which keeps the
//    original per-process semantics for callers that construct a bare
//    DatasetCache.
//  * disk — optional, shared across processes. Each dataset is stored
//    as one file addressed by the FNV-1a hash of its canonical key,
//    with a checksummed header that embeds the full key (so a hash
//    collision reads as a miss, never as wrong data). Files are
//    written to a temp name and renamed into place, so concurrent
//    writers are safe and readers never observe a half-written file;
//    readers mmap the file, verify the checksum, then materialize the
//    snapshot. Eviction unlinks files — in-flight mmaps stay valid
//    (POSIX keeps the pages alive until munmap), which is what makes
//    concurrent open/evict races benign.
//
// The process-wide instance() is configured from the environment:
// EMOLEAK_DATASET_CACHE_DIR enables the disk tier, and
// EMOLEAK_DATASET_CACHE_MEMORY_MB / EMOLEAK_DATASET_CACHE_DISK_MB set
// byte budgets (0 or unset = unbounded).
//
// Thread safety: lookups and inserts take a mutex, but builds and all
// disk I/O run unlocked, so a long capture never blocks hits on other
// keys. When two threads race to build the same key, the first insert
// wins and the loser adopts the winner's snapshot (both are
// bit-identical).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/attack.h"

namespace emoleak::core {

/// Per-tier counter snapshot. `entries`/`bytes` are point-in-time
/// (for the disk tier they come from a directory scan, so they reflect
/// every process sharing the directory); the rest are cumulative for
/// this process.
struct DatasetCacheTierStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;
};

/// Snapshot of the cache counters, surfaced the same way the serve
/// layer exposes ServeStats. The top-level fields keep their original
/// (pre-tiering) meaning: `hits` counts requests served without a
/// build from either tier, `misses` counts builds actually run.
struct DatasetCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;        ///< cache fills (builds actually run)
  std::uint64_t entries = 0;       ///< datasets held in memory
  std::uint64_t approx_bytes = 0;  ///< payload estimate across memory entries
  DatasetCacheTierStats memory;
  DatasetCacheTierStats disk;
};

struct DatasetCacheConfig {
  /// Memory-tier byte budget; 0 = unbounded. When exceeded, least-
  /// recently-used entries are dropped (the entry just inserted is
  /// never evicted, so a single oversized dataset still caches).
  std::uint64_t memory_budget_bytes = 0;
  /// Disk-tier directory; empty disables the disk tier. Created on
  /// first use.
  std::string disk_dir;
  /// Disk-tier byte budget; 0 = unbounded. When exceeded after a
  /// write, oldest files (by mtime) are unlinked until under budget.
  std::uint64_t disk_budget_bytes = 0;
};

class DatasetCache {
 public:
  /// Memory-only, unbounded (the original per-process behaviour).
  DatasetCache() = default;
  explicit DatasetCache(DatasetCacheConfig config);

  /// The process-wide cache used by capture_cached(), configured from
  /// the EMOLEAK_DATASET_CACHE_* environment variables.
  static DatasetCache& instance();

  /// Returns the dataset for `config`, building it with core::capture
  /// on the first request for this key. The returned snapshot is
  /// immutable and stays valid after clear() and across evictions.
  [[nodiscard]] std::shared_ptr<const ExtractedData> get_or_build(
      const ScenarioConfig& config);

  /// Keyed-builder form: the tiering/LRU/disk machinery with an
  /// arbitrary deterministic builder. `build` runs unlocked and only
  /// when both tiers miss. Exposed for tests and alternate pipelines.
  [[nodiscard]] std::shared_ptr<const ExtractedData> get_or_build(
      const std::string& key, const std::function<ExtractedData()>& build);

  [[nodiscard]] DatasetCacheStats stats() const;

  /// Drops all memory-tier entries (counters and disk files are kept).
  /// Outstanding snapshots remain valid through their shared_ptr.
  void clear();

  /// Canonical cache key: every pipeline-reaching ScenarioConfig field
  /// (doubles rendered as hexfloats so the key is lossless) plus the
  /// feature-schema signature. Exposed for tests.
  [[nodiscard]] static std::string key_of(const ScenarioConfig& config);

  /// Disk-tier file path for `key` under this cache's directory
  /// (empty string when the disk tier is disabled). Exposed for tests
  /// (e.g. corrupting a file to exercise the checksum path).
  [[nodiscard]] std::string disk_path_of(const std::string& key) const;

 private:
  struct Entry {
    std::shared_ptr<const ExtractedData> data;
    std::uint64_t bytes = 0;
    std::list<std::string>::iterator lru_it;
  };

  /// Inserts under the lock, evicting LRU entries while over budget.
  /// Returns the entry actually held (an earlier racing writer wins).
  std::shared_ptr<const ExtractedData> insert_and_trim(
      const std::string& key, std::shared_ptr<const ExtractedData> data);

  /// Loads `key` from the disk tier; nullptr on miss, checksum or key
  /// mismatch (corrupt files are unlinked so the rebuild replaces them).
  [[nodiscard]] std::shared_ptr<const ExtractedData> disk_load(
      const std::string& key);
  void disk_store(const std::string& key, const ExtractedData& data);
  void disk_trim();

  DatasetCacheConfig config_{};
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  ///< front = most recently used
  std::uint64_t memory_bytes_ = 0;
  std::uint64_t builds_ = 0;  ///< legacy `misses`
  std::uint64_t memory_hits_ = 0;
  std::uint64_t memory_misses_ = 0;
  std::uint64_t memory_evictions_ = 0;
  // Disk-tier counters are bumped outside the lock (all disk I/O runs
  // unlocked), so they are atomics rather than mutex-guarded fields.
  std::atomic<std::uint64_t> disk_hits_{0};
  std::atomic<std::uint64_t> disk_misses_{0};
  std::atomic<std::uint64_t> disk_evictions_{0};
};

/// capture() through the process-wide DatasetCache: the first call for
/// a config pays the full synthesize/conduct/extract cost, every later
/// call with an equivalent config returns the same shared snapshot (or
/// mmap-loads it from the disk tier when another process built it).
[[nodiscard]] std::shared_ptr<const ExtractedData> capture_cached(
    const ScenarioConfig& config);

}  // namespace emoleak::core
