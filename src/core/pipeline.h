// End-to-end extraction pipeline: recording -> labelled regions ->
// feature vectors + spectrogram images.
//
// Mirrors the paper's §III-B3: regions detected in the continuous
// accelerometer capture are labelled from the playback schedule (the
// attacker knows the playback times of each emotion block in training
// data), then each region yields (a) the 24 Table-II features from the
// *unfiltered* samples and (b) a 32x32 spectrogram image.
#pragma once

#include <cstddef>
#include <vector>

#include "core/speech_region.h"
#include "dsp/stft.h"
#include "features/features.h"
#include "ml/dataset.h"
#include "phone/recorder.h"
#include "util/parallel.h"

namespace emoleak::core {

/// A detected region matched to the utterance that produced it.
struct LabelledRegion {
  Region region;
  std::size_t schedule_index = 0;  ///< index into Recording::schedule
  audio::Emotion emotion = audio::Emotion::kNeutral;
  int speaker_id = 0;
};

/// Matches detected regions to scheduled utterances by maximal overlap.
/// Regions overlapping no utterance are dropped (false alarms).
[[nodiscard]] std::vector<LabelledRegion> label_regions(
    const std::vector<Region>& regions, const phone::Recording& recording);

/// Fraction of scheduled utterances matched by at least one detected
/// region — the paper's "extraction rate" (>=90% table-top, >=45% ear
/// speaker).
[[nodiscard]] double extraction_rate(const std::vector<LabelledRegion>& labelled,
                                     const phone::Recording& recording);

struct PipelineConfig {
  DetectorConfig detector;
  std::size_t image_size = 32;  ///< spectrogram image side (paper: 32)
  dsp::StftConfig stft{.window_length = 64, .hop = 8};
  /// Threads for per-region feature/spectrogram extraction. Outputs are
  /// bit-identical at any thread count; 1 forces the serial path.
  util::Parallelism parallelism;

  void validate() const;
};

/// Everything the classifiers consume, extracted from one recording.
struct ExtractedData {
  ml::Dataset features;  ///< 24-dim Table-II features per region
  /// Flattened image per region (image_size^2 doubles in [0,1]),
  /// aligned with `features` rows.
  std::vector<std::vector<double>> spectrograms;
  /// Corpus speaker id per region, aligned with `features` rows —
  /// enables Spearphone-style speaker/gender analyses (paper SII-C).
  std::vector<int> speaker_ids;
  std::size_t image_size = 32;
  std::size_t regions_detected = 0;
  std::size_t utterances_total = 0;
  double extraction_rate = 0.0;
};

/// Runs detection, labelling and both feature extractions.
[[nodiscard]] ExtractedData extract(const phone::Recording& recording,
                                    const PipelineConfig& config);

}  // namespace emoleak::core
