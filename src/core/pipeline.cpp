#include "core/pipeline.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "obs/obs.h"
#include "util/error.h"
#include "util/workspace.h"

namespace emoleak::core {

std::vector<LabelledRegion> label_regions(const std::vector<Region>& regions,
                                          const phone::Recording& recording) {
  std::vector<LabelledRegion> out;
  out.reserve(regions.size());
  for (const Region& r : regions) {
    std::size_t best_overlap = 0;
    std::size_t best_idx = 0;
    for (std::size_t s = 0; s < recording.schedule.size(); ++s) {
      const phone::ScheduledUtterance& u = recording.schedule[s];
      const std::size_t lo = std::max(r.start, u.start_sample);
      const std::size_t hi = std::min(r.end, u.end_sample);
      const std::size_t overlap = hi > lo ? hi - lo : 0;
      if (overlap > best_overlap) {
        best_overlap = overlap;
        best_idx = s;
      }
    }
    if (best_overlap == 0) continue;  // false alarm, no playback there
    const phone::ScheduledUtterance& u = recording.schedule[best_idx];
    out.push_back(LabelledRegion{r, best_idx, u.emotion, u.speaker_id});
  }
  return out;
}

double extraction_rate(const std::vector<LabelledRegion>& labelled,
                       const phone::Recording& recording) {
  if (recording.schedule.empty()) return 0.0;
  std::set<std::size_t> matched;
  for (const LabelledRegion& lr : labelled) matched.insert(lr.schedule_index);
  return static_cast<double>(matched.size()) /
         static_cast<double>(recording.schedule.size());
}

void PipelineConfig::validate() const {
  detector.validate();
  if (image_size == 0) throw util::ConfigError{"PipelineConfig: image_size == 0"};
  stft.validate();
}

ExtractedData extract(const phone::Recording& recording,
                      const PipelineConfig& config) {
  config.validate();
  if (recording.rate_hz <= 0.0) {
    throw util::DataError{"extract: recording rate must be > 0"};
  }
  OBS_SPAN("pipeline.extract");

  const SpeechRegionDetector detector{config.detector};
  std::vector<Region> regions;
  {
    OBS_SPAN_ARG("pipeline.detect", "samples", recording.accel.size());
    regions = detector.detect(recording.accel, recording.rate_hz);
  }
  const std::vector<LabelledRegion> labelled =
      label_regions(regions, recording);

  ExtractedData data;
  data.image_size = config.image_size;
  data.regions_detected = regions.size();
  data.utterances_total = recording.schedule.size();
  data.extraction_rate = extraction_rate(labelled, recording);

  // Class indices follow the dataset's emotion list.
  const std::vector<audio::Emotion>& emotions = recording.dataset.emotions;
  const auto class_of = [&emotions](audio::Emotion e) {
    for (std::size_t i = 0; i < emotions.size(); ++i) {
      if (emotions[i] == e) return static_cast<int>(i);
    }
    throw util::DataError{"extract: emotion not in dataset spec"};
  };

  data.features.class_count = static_cast<int>(emotions.size());
  data.features.class_names = audio::emotion_names(emotions);
  data.features.feature_names = features::feature_names();

  // Per-region extraction is pure (no RNG, no shared state), so regions
  // fan out across the pool; results are reduced in region order below,
  // which keeps the output bit-identical to the serial loop.
  struct RegionOutput {
    std::vector<double> features;
    std::vector<double> spectrogram;
    bool valid = false;
  };
  const std::span<const double> accel{recording.accel};
  std::vector<RegionOutput> outputs = util::parallel_map(
      config.parallelism, labelled.size(), [&](std::size_t i) {
        OBS_SPAN_ARG("pipeline.region", "index", i);
        const LabelledRegion& lr = labelled[i];
        // Features always come from the *raw* samples (paper Table I:
        // even a 1 Hz high-pass destroys the information).
        const std::span<const double> region =
            accel.subspan(lr.region.start, lr.region.length());
        // Per-worker scratch arena: after the first few regions warm it
        // up, extraction runs without heap allocation (beyond the
        // returned feature/spectrogram vectors themselves).
        util::Workspace& ws = util::thread_workspace();
        const util::Workspace::Scope scope{ws};
        RegionOutput out;
        out.features =
            features::extract_features(region, recording.rate_hz, ws);
        // Paper §IV-D1: invalid entries (NaN/inf) are removed up front —
        // done here so feature rows and spectrograms stay aligned.
        out.valid = std::all_of(out.features.begin(), out.features.end(),
                                [](double v) { return std::isfinite(v); });
        if (!out.valid) return out;

        // Spectrogram image of the same raw region. Remove the DC offset
        // so the gravity component does not saturate the dB scale.
        std::span<double> centered = ws.take<double>(region.size());
        std::copy(region.begin(), region.end(), centered.begin());
        double mean = 0.0;
        for (const double v : centered) mean += v;
        mean /= static_cast<double>(centered.size());
        for (double& v : centered) v -= mean;
        const dsp::Spectrogram spec =
            dsp::stft(centered, recording.rate_hz, config.stft, ws);
        out.spectrogram =
            dsp::spectrogram_image(spec, config.image_size, config.image_size);
        return out;
      });

  for (std::size_t i = 0; i < labelled.size(); ++i) {
    if (!outputs[i].valid) continue;
    data.features.x.push_back(std::move(outputs[i].features));
    data.features.y.push_back(class_of(labelled[i].emotion));
    data.speaker_ids.push_back(labelled[i].speaker_id);
    data.spectrograms.push_back(std::move(outputs[i].spectrogram));
  }
  return data;
}

}  // namespace emoleak::core
