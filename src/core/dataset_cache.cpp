#include "core/dataset_cache.h"

#include <sstream>

#include "features/features.h"
#include "obs/metrics.h"

namespace emoleak::core {

namespace {

/// Canonical, lossless field rendering: doubles as hexfloats (round-trip
/// exact), every field separated so adjacent values can't alias. The
/// full string is the map key — no hashing, so collisions are
/// impossible by construction.
class KeyWriter {
 public:
  KeyWriter& field(const std::string& v) {
    out_ << v.size() << ':' << v << '|';
    return *this;
  }
  KeyWriter& field(double v) {
    out_ << std::hexfloat << v << '|';
    return *this;
  }
  KeyWriter& field(std::uint64_t v) {
    out_ << v << '|';
    return *this;
  }
  KeyWriter& field(std::int64_t v) {
    out_ << v << '|';
    return *this;
  }
  KeyWriter& field(int v) { return field(static_cast<std::int64_t>(v)); }
  KeyWriter& field(bool v) { return field(static_cast<std::int64_t>(v)); }

  [[nodiscard]] std::string str() const { return out_.str(); }

 private:
  std::ostringstream out_;
};

void write_dataset(KeyWriter& k, const audio::DatasetSpec& d) {
  k.field(d.name);
  k.field(d.emotions.size());
  for (const audio::Emotion e : d.emotions) k.field(static_cast<int>(e));
  k.field(d.speaker_count);
  k.field(d.utterances_per_speaker_emotion);
  k.field(d.male_fraction);
  k.field(d.expressiveness);
  k.field(d.speaker_variability);
  k.field(d.expressiveness_jitter);
  k.field(d.synth.sample_rate_hz);
  k.field(d.synth.target_duration_s);
  k.field(d.synth.duration_jitter);
  k.field(d.synth.max_harmonics);
}

void write_phone(KeyWriter& k, const phone::PhoneProfile& p) {
  k.field(p.name);
  k.field(p.accel_rate_hz);
  k.field(p.accel_noise_sigma);
  k.field(p.accel_lsb);
  k.field(p.internal_lpf_order);
  k.field(p.internal_lpf_cutoff_factor);
  k.field(p.software_cap_hz);
  k.field(p.loudspeaker_gain);
  k.field(p.ear_speaker_gain);
  k.field(p.speaker_rolloff_hz);
  k.field(p.ear_rolloff_hz);
  k.field(p.ear_rolloff_order);
  k.field(p.resonances.size());
  for (const phone::Resonance& r : p.resonances) {
    k.field(r.frequency_hz);
    k.field(r.q);
    k.field(r.gain);
  }
  k.field(p.direct_path_gain);
  k.field(p.coupling_jitter);
}

void write_pipeline(KeyWriter& k, const PipelineConfig& p) {
  const DetectorConfig& d = p.detector;
  k.field(d.detection_highpass_hz);
  k.field(d.highpass_order);
  k.field(d.envelope_window_s);
  k.field(d.threshold_k);
  k.field(d.min_ratio);
  k.field(d.min_region_s);
  k.field(d.merge_gap_s);
  k.field(d.pad_s);
  k.field(p.image_size);
  k.field(p.stft.window_length);
  k.field(p.stft.hop);
  k.field(p.stft.fft_size);
  k.field(static_cast<int>(p.stft.window));
  k.field(p.stft.center);
  // p.parallelism deliberately omitted: extraction is bit-identical at
  // any thread count (see PipelineConfig), so runs that differ only in
  // thread budget must share the cached dataset.
}

std::uint64_t approximate_bytes(const ExtractedData& data) {
  std::uint64_t bytes = 0;
  for (const auto& row : data.features.x) bytes += row.size() * sizeof(double);
  bytes += data.features.y.size() * sizeof(int);
  for (const auto& img : data.spectrograms) bytes += img.size() * sizeof(double);
  bytes += data.speaker_ids.size() * sizeof(int);
  return bytes;
}

}  // namespace

std::string DatasetCache::key_of(const ScenarioConfig& config) {
  KeyWriter k;
  k.field(std::string{"emoleak-dataset-v1"});
  // The feature schema participates in the key: if the Table-II set
  // ever changes shape, previously cached datasets stop matching.
  k.field(features::schema_signature());
  write_dataset(k, config.dataset);
  write_phone(k, config.phone);
  k.field(static_cast<int>(config.speaker));
  k.field(static_cast<int>(config.posture));
  k.field(config.corpus_fraction);
  k.field(config.seed);
  write_pipeline(k, config.pipeline);
  return k.str();
}

DatasetCache& DatasetCache::instance() {
  static DatasetCache cache;
  return cache;
}

std::shared_ptr<const ExtractedData> DatasetCache::get_or_build(
    const ScenarioConfig& config) {
  const std::string key = key_of(config);
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      obs::Registry::instance().counter("dataset_cache.hits").add(1);
      return it->second;
    }
    ++misses_;
    obs::Registry::instance().counter("dataset_cache.misses").add(1);
  }
  // Build outside the lock: a capture can take seconds and must not
  // serialize hits (or builds of other keys) behind it.
  auto built = std::make_shared<const ExtractedData>(capture(config));
  obs::Registry::instance()
      .counter("dataset_cache.bytes_built")
      .add(approximate_bytes(*built));
  const std::lock_guard<std::mutex> lock{mutex_};
  const auto [it, inserted] = entries_.emplace(key, std::move(built));
  return it->second;  // first writer wins on a racing double-build
}

DatasetCacheStats DatasetCache::stats() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  DatasetCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.entries = entries_.size();
  for (const auto& [key, data] : entries_) {
    s.approx_bytes += approximate_bytes(*data);
  }
  return s;
}

void DatasetCache::clear() {
  const std::lock_guard<std::mutex> lock{mutex_};
  entries_.clear();
}

std::shared_ptr<const ExtractedData> capture_cached(
    const ScenarioConfig& config) {
  return DatasetCache::instance().get_or_build(config);
}

}  // namespace emoleak::core
