#include "core/dataset_cache.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "features/features.h"
#include "obs/metrics.h"

namespace emoleak::core {

namespace {

/// Canonical, lossless field rendering: doubles as hexfloats (round-trip
/// exact), every field separated so adjacent values can't alias. The
/// full string is the map key — no hashing, so collisions are
/// impossible by construction.
class KeyWriter {
 public:
  KeyWriter& field(const std::string& v) {
    out_ << v.size() << ':' << v << '|';
    return *this;
  }
  KeyWriter& field(double v) {
    out_ << std::hexfloat << v << '|';
    return *this;
  }
  KeyWriter& field(std::uint64_t v) {
    out_ << v << '|';
    return *this;
  }
  KeyWriter& field(std::int64_t v) {
    out_ << v << '|';
    return *this;
  }
  KeyWriter& field(int v) { return field(static_cast<std::int64_t>(v)); }
  KeyWriter& field(bool v) { return field(static_cast<std::int64_t>(v)); }

  [[nodiscard]] std::string str() const { return out_.str(); }

 private:
  std::ostringstream out_;
};

void write_dataset(KeyWriter& k, const audio::DatasetSpec& d) {
  k.field(d.name);
  k.field(d.emotions.size());
  for (const audio::Emotion e : d.emotions) k.field(static_cast<int>(e));
  k.field(d.speaker_count);
  k.field(d.utterances_per_speaker_emotion);
  k.field(d.male_fraction);
  k.field(d.expressiveness);
  k.field(d.speaker_variability);
  k.field(d.expressiveness_jitter);
  k.field(d.synth.sample_rate_hz);
  k.field(d.synth.target_duration_s);
  k.field(d.synth.duration_jitter);
  k.field(d.synth.max_harmonics);
}

void write_phone(KeyWriter& k, const phone::PhoneProfile& p) {
  k.field(p.name);
  k.field(p.accel_rate_hz);
  k.field(p.accel_noise_sigma);
  k.field(p.accel_lsb);
  k.field(p.internal_lpf_order);
  k.field(p.internal_lpf_cutoff_factor);
  k.field(p.software_cap_hz);
  k.field(p.loudspeaker_gain);
  k.field(p.ear_speaker_gain);
  k.field(p.speaker_rolloff_hz);
  k.field(p.ear_rolloff_hz);
  k.field(p.ear_rolloff_order);
  k.field(p.resonances.size());
  for (const phone::Resonance& r : p.resonances) {
    k.field(r.frequency_hz);
    k.field(r.q);
    k.field(r.gain);
  }
  k.field(p.direct_path_gain);
  k.field(p.coupling_jitter);
}

void write_pipeline(KeyWriter& k, const PipelineConfig& p) {
  const DetectorConfig& d = p.detector;
  k.field(d.detection_highpass_hz);
  k.field(d.highpass_order);
  k.field(d.envelope_window_s);
  k.field(d.threshold_k);
  k.field(d.min_ratio);
  k.field(d.min_region_s);
  k.field(d.merge_gap_s);
  k.field(d.pad_s);
  k.field(p.image_size);
  k.field(p.stft.window_length);
  k.field(p.stft.hop);
  k.field(p.stft.fft_size);
  k.field(static_cast<int>(p.stft.window));
  k.field(p.stft.center);
  // p.parallelism deliberately omitted: extraction is bit-identical at
  // any thread count (see PipelineConfig), so runs that differ only in
  // thread budget must share the cached dataset.
}

std::uint64_t approximate_bytes(const ExtractedData& data) {
  std::uint64_t bytes = 0;
  for (const auto& row : data.features.x) bytes += row.size() * sizeof(double);
  bytes += data.features.y.size() * sizeof(int);
  for (const auto& img : data.spectrograms) bytes += img.size() * sizeof(double);
  bytes += data.speaker_ids.size() * sizeof(int);
  return bytes;
}

// ---------------------------------------------------------------------------
// Disk-tier file format.
//
//   FileHeader | key bytes | payload bytes
//
// The header carries its own checksum (over every header field and the
// key) plus a checksum of the payload, so truncation, bit rot and
// hash-collision misaddressing all read as a miss instead of bad data.
// Fields are written in the host's native byte order: the files are a
// local cache shared between processes on one machine, not an
// interchange format.

constexpr std::uint64_t kFileMagic = 0x314B53444C4D45ULL;  // "EMLDSK1"
constexpr std::uint64_t kFileVersion = 1;

struct FileHeader {
  std::uint64_t magic = kFileMagic;
  std::uint64_t version = kFileVersion;
  std::uint64_t key_size = 0;
  std::uint64_t payload_size = 0;
  std::uint64_t payload_fnv = 0;
  std::uint64_t header_fnv = 0;  ///< over the five fields above + key
};
static_assert(sizeof(FileHeader) == 48);

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a64(const void* data, std::size_t size,
                      std::uint64_t seed = kFnvOffset) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t header_checksum(const FileHeader& h, const std::string& key) {
  const std::uint64_t fields = fnv1a64(&h, offsetof(FileHeader, header_fnv));
  return fnv1a64(key.data(), key.size(), fields);
}

/// Appends native-endian scalars into a flat byte buffer.
class ByteWriter {
 public:
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void i64(std::int64_t v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }
  void f64s(const std::vector<double>& v) {
    u64(v.size());
    raw(v.data(), v.size() * sizeof(double));
  }
  void str(const std::string& s) {
    u64(s.size());
    raw(s.data(), s.size());
  }
  void raw(const void* p, std::size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  [[nodiscard]] const std::string& bytes() const { return buf_; }

 private:
  std::string buf_;
};

/// Bounds-checked cursor over a mapped payload; any overrun throws and
/// the caller treats the file as corrupt.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_{data}, size_{size} {}

  std::uint64_t u64() {
    std::uint64_t v = 0;
    raw(&v, sizeof(v));
    return v;
  }
  std::int64_t i64() {
    std::int64_t v = 0;
    raw(&v, sizeof(v));
    return v;
  }
  double f64() {
    double v = 0;
    raw(&v, sizeof(v));
    return v;
  }
  std::vector<double> f64s() {
    const std::uint64_t n = count(u64(), sizeof(double));
    std::vector<double> v(n);
    raw(v.data(), n * sizeof(double));
    return v;
  }
  std::string str() {
    const std::uint64_t n = count(u64(), 1);
    std::string s(n, '\0');
    raw(s.data(), n);
    return s;
  }
  void raw(void* out, std::size_t n) {
    if (n > size_ - pos_) throw std::runtime_error{"dataset file truncated"};
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }
  [[nodiscard]] bool exhausted() const { return pos_ == size_; }

 private:
  /// Rejects element counts that can't possibly fit the remaining
  /// bytes before any allocation is attempted.
  std::uint64_t count(std::uint64_t n, std::size_t elem) {
    if (n > (size_ - pos_) / elem) {
      throw std::runtime_error{"dataset file truncated"};
    }
    return n;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

std::string serialize_payload(const ExtractedData& d) {
  ByteWriter w;
  w.u64(d.features.x.size());
  for (const auto& row : d.features.x) w.f64s(row);
  w.u64(d.features.y.size());
  for (const int y : d.features.y) w.i64(y);
  w.i64(d.features.class_count);
  w.u64(d.features.feature_names.size());
  for (const auto& s : d.features.feature_names) w.str(s);
  w.u64(d.features.class_names.size());
  for (const auto& s : d.features.class_names) w.str(s);
  w.u64(d.spectrograms.size());
  for (const auto& img : d.spectrograms) w.f64s(img);
  w.u64(d.speaker_ids.size());
  for (const int id : d.speaker_ids) w.i64(id);
  w.u64(d.image_size);
  w.u64(d.regions_detected);
  w.u64(d.utterances_total);
  w.f64(d.extraction_rate);
  return w.bytes();
}

ExtractedData deserialize_payload(const std::uint8_t* data, std::size_t size) {
  ByteReader r{data, size};
  ExtractedData d;
  d.features.x.resize(r.u64());
  for (auto& row : d.features.x) row = r.f64s();
  d.features.y.resize(r.u64());
  for (int& y : d.features.y) y = static_cast<int>(r.i64());
  d.features.class_count = static_cast<int>(r.i64());
  d.features.feature_names.resize(r.u64());
  for (auto& s : d.features.feature_names) s = r.str();
  d.features.class_names.resize(r.u64());
  for (auto& s : d.features.class_names) s = r.str();
  d.spectrograms.resize(r.u64());
  for (auto& img : d.spectrograms) img = r.f64s();
  d.speaker_ids.resize(r.u64());
  for (int& id : d.speaker_ids) id = static_cast<int>(r.i64());
  d.image_size = r.u64();
  d.regions_detected = r.u64();
  d.utterances_total = r.u64();
  d.extraction_rate = r.f64();
  if (!r.exhausted()) throw std::runtime_error{"dataset file overlong"};
  return d;
}

/// Read-only mapping of a whole file; unmapped on destruction. Once
/// mapped, the pages stay valid even if the file is unlinked by a
/// concurrent eviction — the kernel frees them at munmap.
class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile() {
    if (data_ != nullptr) ::munmap(data_, size_);
  }

  [[nodiscard]] bool open(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return false;
    struct stat st {};
    if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
      ::close(fd);
      return false;
    }
    void* map = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                       PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping holds its own reference
    if (map == MAP_FAILED) return false;
    data_ = map;
    size_ = static_cast<std::size_t>(st.st_size);
    return true;
  }

  [[nodiscard]] const std::uint8_t* data() const {
    return static_cast<const std::uint8_t*>(data_);
  }
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  void* data_ = nullptr;
  std::size_t size_ = 0;
};

constexpr const char* kFilePrefix = "emoleak-ds-";
constexpr const char* kFileSuffix = ".bin";

std::string hex16(std::uint64_t v) {
  static const char kDigits[] = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
    v >>= 4;
  }
  return s;
}

obs::Registry& registry() { return obs::Registry::instance(); }

void update_memory_gauges(std::uint64_t bytes, std::uint64_t entries) {
  registry().gauge("dataset_cache.memory.bytes").set(
      static_cast<std::int64_t>(bytes));
  registry().gauge("dataset_cache.memory.entries").set(
      static_cast<std::int64_t>(entries));
}

}  // namespace

std::string DatasetCache::key_of(const ScenarioConfig& config) {
  KeyWriter k;
  k.field(std::string{"emoleak-dataset-v1"});
  // The feature schema participates in the key: if the Table-II set
  // ever changes shape, previously cached datasets stop matching.
  k.field(features::schema_signature());
  write_dataset(k, config.dataset);
  write_phone(k, config.phone);
  k.field(static_cast<int>(config.speaker));
  k.field(static_cast<int>(config.posture));
  k.field(config.corpus_fraction);
  k.field(config.seed);
  write_pipeline(k, config.pipeline);
  return k.str();
}

DatasetCache::DatasetCache(DatasetCacheConfig config)
    : config_{std::move(config)} {}

DatasetCache& DatasetCache::instance() {
  static DatasetCache cache{[] {
    DatasetCacheConfig c;
    if (const char* dir = std::getenv("EMOLEAK_DATASET_CACHE_DIR")) {
      c.disk_dir = dir;
    }
    const auto mb_env = [](const char* name) -> std::uint64_t {
      const char* v = std::getenv(name);
      if (v == nullptr) return 0;
      return std::strtoull(v, nullptr, 10) * 1024 * 1024;
    };
    c.memory_budget_bytes = mb_env("EMOLEAK_DATASET_CACHE_MEMORY_MB");
    c.disk_budget_bytes = mb_env("EMOLEAK_DATASET_CACHE_DISK_MB");
    return c;
  }()};
  return cache;
}

std::string DatasetCache::disk_path_of(const std::string& key) const {
  if (config_.disk_dir.empty()) return {};
  return config_.disk_dir + "/" + kFilePrefix +
         hex16(fnv1a64(key.data(), key.size())) + kFileSuffix;
}

std::shared_ptr<const ExtractedData> DatasetCache::get_or_build(
    const ScenarioConfig& config) {
  return get_or_build(key_of(config), [&config] { return capture(config); });
}

std::shared_ptr<const ExtractedData> DatasetCache::get_or_build(
    const std::string& key, const std::function<ExtractedData()>& build) {
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++memory_hits_;
      registry().counter("dataset_cache.hits").add(1);
      registry().counter("dataset_cache.memory.hits").add(1);
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.data;
    }
    ++memory_misses_;
    registry().counter("dataset_cache.memory.misses").add(1);
  }

  if (!config_.disk_dir.empty()) {
    if (auto loaded = disk_load(key)) {
      disk_hits_.fetch_add(1, std::memory_order_relaxed);
      registry().counter("dataset_cache.hits").add(1);
      registry().counter("dataset_cache.disk.hits").add(1);
      return insert_and_trim(key, std::move(loaded));
    }
    disk_misses_.fetch_add(1, std::memory_order_relaxed);
    registry().counter("dataset_cache.disk.misses").add(1);
  }

  {
    const std::lock_guard<std::mutex> lock{mutex_};
    ++builds_;
  }
  registry().counter("dataset_cache.misses").add(1);
  // Build outside the lock: a capture can take seconds and must not
  // serialize hits (or builds of other keys) behind it.
  auto built = std::make_shared<const ExtractedData>(build());
  registry().counter("dataset_cache.bytes_built").add(approximate_bytes(*built));
  if (!config_.disk_dir.empty()) {
    disk_store(key, *built);
    disk_trim();
  }
  return insert_and_trim(key, std::move(built));
}

std::shared_ptr<const ExtractedData> DatasetCache::insert_and_trim(
    const std::string& key, std::shared_ptr<const ExtractedData> data) {
  const std::lock_guard<std::mutex> lock{mutex_};
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    // A racing builder/loader got here first; both snapshots are
    // bit-identical, keep the incumbent so all callers share one.
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.data;
  }
  Entry entry;
  entry.data = std::move(data);
  entry.bytes = approximate_bytes(*entry.data);
  lru_.push_front(key);
  entry.lru_it = lru_.begin();
  memory_bytes_ += entry.bytes;
  const auto result = entries_.emplace(key, std::move(entry)).first->second.data;
  // Evict least-recently-used entries while over budget, but never the
  // entry just inserted: one oversized dataset must still cache.
  while (config_.memory_budget_bytes != 0 &&
         memory_bytes_ > config_.memory_budget_bytes && entries_.size() > 1) {
    const auto vit = entries_.find(lru_.back());
    memory_bytes_ -= vit->second.bytes;
    entries_.erase(vit);
    lru_.pop_back();
    ++memory_evictions_;
    registry().counter("dataset_cache.memory.evictions").add(1);
  }
  update_memory_gauges(memory_bytes_, entries_.size());
  return result;
}

std::shared_ptr<const ExtractedData> DatasetCache::disk_load(
    const std::string& key) {
  const std::string path = disk_path_of(key);
  MappedFile map;
  if (!map.open(path)) return nullptr;
  const auto corrupt = [&path]() -> std::shared_ptr<const ExtractedData> {
    // A corrupt file can never become a hit again: drop it so the
    // rebuild below replaces it with a good copy.
    std::error_code ec;
    std::filesystem::remove(path, ec);
    return nullptr;
  };
  if (map.size() < sizeof(FileHeader)) return corrupt();
  FileHeader header;
  std::memcpy(&header, map.data(), sizeof(header));
  if (header.magic != kFileMagic || header.version != kFileVersion) {
    return corrupt();
  }
  if (map.size() != sizeof(FileHeader) + header.key_size + header.payload_size) {
    return corrupt();
  }
  const std::uint8_t* key_bytes = map.data() + sizeof(FileHeader);
  const std::uint8_t* payload = key_bytes + header.key_size;
  if (header.key_size != key.size() ||
      std::memcmp(key_bytes, key.data(), key.size()) != 0) {
    // FNV collision with another key: a miss (the other key's data
    // must not be returned), but keep the file — it is valid for its
    // owner. The colliding key simply rebuilds every run.
    return nullptr;
  }
  FileHeader expected = header;
  expected.header_fnv = 0;
  if (header.header_fnv != header_checksum(expected, key)) return corrupt();
  if (fnv1a64(payload, header.payload_size) != header.payload_fnv) {
    return corrupt();
  }
  try {
    return std::make_shared<const ExtractedData>(
        deserialize_payload(payload, header.payload_size));
  } catch (const std::exception&) {
    return corrupt();
  }
}

void DatasetCache::disk_store(const std::string& key,
                              const ExtractedData& data) {
  const std::string path = disk_path_of(key);
  std::error_code ec;
  std::filesystem::create_directories(config_.disk_dir, ec);

  const std::string payload = serialize_payload(data);
  FileHeader header;
  header.key_size = key.size();
  header.payload_size = payload.size();
  header.payload_fnv = fnv1a64(payload.data(), payload.size());
  header.header_fnv = header_checksum(header, key);

  // Write to a unique temp name and rename into place: the rename is
  // atomic, so a concurrent reader sees either no file or a whole one,
  // and racing writers (same key => bit-identical bytes) both succeed.
  static std::atomic<std::uint64_t> seq{0};
  const std::string tmp = path + ".tmp-" + std::to_string(::getpid()) + "-" +
                          std::to_string(seq.fetch_add(1));
  {
    std::ofstream out{tmp, std::ios::binary | std::ios::trunc};
    out.write(reinterpret_cast<const char*>(&header), sizeof(header));
    out.write(key.data(), static_cast<std::streamsize>(key.size()));
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (!out.good()) {
      out.close();
      std::filesystem::remove(tmp, ec);
      return;  // cache writes are best-effort
    }
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) std::filesystem::remove(tmp, ec);
}

void DatasetCache::disk_trim() {
  if (config_.disk_budget_bytes == 0) return;
  struct File {
    std::filesystem::path path;
    std::uint64_t bytes = 0;
    std::filesystem::file_time_type mtime;
  };
  std::vector<File> files;
  std::uint64_t total = 0;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator{config_.disk_dir, ec}) {
    const std::string name = entry.path().filename().string();
    if (!name.starts_with(kFilePrefix) || !name.ends_with(kFileSuffix)) {
      continue;
    }
    std::error_code fec;
    const std::uint64_t bytes = entry.file_size(fec);
    if (fec) continue;
    const auto mtime = entry.last_write_time(fec);
    if (fec) continue;
    files.push_back({entry.path(), bytes, mtime});
    total += bytes;
  }
  std::sort(files.begin(), files.end(),
            [](const File& a, const File& b) { return a.mtime < b.mtime; });
  // Unlink oldest-first until under budget, always sparing the newest
  // file (mirrors the memory tier: the dataset just written survives).
  // Readers holding an mmap of an unlinked file are unaffected.
  std::size_t i = 0;
  while (total > config_.disk_budget_bytes && i + 1 < files.size()) {
    std::error_code rec;
    if (std::filesystem::remove(files[i].path, rec) && !rec) {
      total -= files[i].bytes;
      disk_evictions_.fetch_add(1, std::memory_order_relaxed);
      registry().counter("dataset_cache.disk.evictions").add(1);
    }
    ++i;
  }
  registry().gauge("dataset_cache.disk.bytes").set(
      static_cast<std::int64_t>(total));
}

DatasetCacheStats DatasetCache::stats() const {
  DatasetCacheStats s;
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    s.misses = builds_;
    s.entries = entries_.size();
    s.approx_bytes = memory_bytes_;
    s.memory.hits = memory_hits_;
    s.memory.misses = memory_misses_;
    s.memory.evictions = memory_evictions_;
    s.memory.entries = entries_.size();
    s.memory.bytes = memory_bytes_;
  }
  s.disk.hits = disk_hits_.load(std::memory_order_relaxed);
  s.disk.misses = disk_misses_.load(std::memory_order_relaxed);
  s.disk.evictions = disk_evictions_.load(std::memory_order_relaxed);
  s.hits = s.memory.hits + s.disk.hits;
  if (!config_.disk_dir.empty()) {
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator{config_.disk_dir, ec}) {
      const std::string name = entry.path().filename().string();
      if (!name.starts_with(kFilePrefix) || !name.ends_with(kFileSuffix)) {
        continue;
      }
      std::error_code fec;
      const std::uint64_t bytes = entry.file_size(fec);
      if (fec) continue;
      ++s.disk.entries;
      s.disk.bytes += bytes;
    }
  }
  return s;
}

void DatasetCache::clear() {
  const std::lock_guard<std::mutex> lock{mutex_};
  entries_.clear();
  lru_.clear();
  memory_bytes_ = 0;
  update_memory_gauges(0, 0);
}

std::shared_ptr<const ExtractedData> capture_cached(
    const ScenarioConfig& config) {
  return DatasetCache::instance().get_or_build(config);
}

}  // namespace emoleak::core
