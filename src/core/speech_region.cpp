#include "core/speech_region.h"

#include <algorithm>
#include <cmath>

#include "dsp/envelope.h"
#include "dsp/stats.h"
#include "util/error.h"

namespace emoleak::core {

void DetectorConfig::validate() const {
  if (detection_highpass_hz < 0.0) {
    throw util::ConfigError{"DetectorConfig: negative highpass cutoff"};
  }
  if (highpass_order <= 0 || highpass_order % 2 != 0) {
    throw util::ConfigError{"DetectorConfig: highpass order must be even > 0"};
  }
  if (envelope_window_s <= 0.0) {
    throw util::ConfigError{"DetectorConfig: envelope window must be > 0"};
  }
  if (threshold_k <= 0.0) throw util::ConfigError{"DetectorConfig: threshold_k <= 0"};
  if (min_ratio < 1.0) throw util::ConfigError{"DetectorConfig: min_ratio < 1"};
  if (min_region_s < 0.0 || merge_gap_s < 0.0 || pad_s < 0.0) {
    throw util::ConfigError{"DetectorConfig: negative timing parameter"};
  }
}

SpeechRegionDetector::SpeechRegionDetector(DetectorConfig config)
    : config_{config} {
  config_.validate();
}

std::vector<double> SpeechRegionDetector::detection_envelope(
    std::span<const double> accel, double rate_hz) const {
  if (rate_hz <= 0.0) throw util::ConfigError{"detect: rate_hz must be > 0"};
  if (accel.empty()) return {};

  // Remove the DC component (gravity) first; a long-window moving mean
  // would also track slow drift, but the HPF (when enabled) covers it.
  std::vector<double> x{accel.begin(), accel.end()};
  const double m = dsp::mean(x);
  for (double& v : x) v -= m;

  if (config_.detection_highpass_hz > 0.0) {
    dsp::BiquadCascade hpf = dsp::BiquadCascade::butterworth_highpass(
        config_.highpass_order, config_.detection_highpass_hz, rate_hz);
    x = hpf.filtfilt(x);
  }

  const auto window = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.envelope_window_s * rate_hz));
  return dsp::moving_rms(x, window);
}

std::vector<Region> SpeechRegionDetector::detect(std::span<const double> accel,
                                                 double rate_hz) const {
  const std::vector<double> env = detection_envelope(accel, rate_hz);
  if (env.empty()) return {};

  // Robust noise statistics from the quiet part of the envelope: the
  // lower quartile estimates the floor; the 25->50 percentile gap is a
  // spread proxy immune to the speech spikes.
  const double floor = dsp::quantile(env, 0.25);
  const double mid = dsp::quantile(env, 0.50);
  const double spread = std::max(mid - floor, 1e-9);
  const double threshold = std::max(floor + config_.threshold_k * spread,
                                    config_.min_ratio * floor);

  const auto min_len =
      static_cast<std::size_t>(config_.min_region_s * rate_hz);
  const auto merge_gap =
      static_cast<std::size_t>(config_.merge_gap_s * rate_hz);
  const auto pad = static_cast<std::size_t>(config_.pad_s * rate_hz);

  std::vector<Region> regions;
  bool inside = false;
  std::size_t start = 0;
  for (std::size_t i = 0; i < env.size(); ++i) {
    const bool active = env[i] > threshold;
    if (active && !inside) {
      inside = true;
      start = i;
    } else if (!active && inside) {
      inside = false;
      regions.push_back(Region{start, i});
    }
  }
  if (inside) regions.push_back(Region{start, env.size()});

  // Merge regions separated by small gaps.
  std::vector<Region> merged;
  for (const Region& r : regions) {
    if (!merged.empty() && r.start - merged.back().end <= merge_gap) {
      merged.back().end = r.end;
    } else {
      merged.push_back(r);
    }
  }

  // Pad and drop too-short regions.
  std::vector<Region> out;
  for (Region r : merged) {
    if (r.length() < min_len) continue;
    r.start = r.start > pad ? r.start - pad : 0;
    r.end = std::min(r.end + pad, env.size());
    out.push_back(r);
  }
  return out;
}

DetectorConfig tabletop_detector_config() {
  DetectorConfig c;
  c.detection_highpass_hz = 0.0;  // table-top traces need no filter
  return c;
}

DetectorConfig handheld_detector_config() {
  DetectorConfig c;
  c.detection_highpass_hz = 8.0;  // paper §III-B2: 8 Hz HPF for detection
  c.threshold_k = 4.2;            // tuned for the low ear-speaker SNR
  c.min_region_s = 0.12;
  return c;
}

}  // namespace emoleak::core
