// Online (streaming) EmoLeak attack.
//
// The deployed form of the attack (paper §III-A): a background app
// receives accelerometer samples continuously and must detect speech
// regions and classify emotions on the fly, without buffering the whole
// session. StreamingAttack consumes arbitrary-size sample chunks,
// maintains detector state (high-pass filter, envelope, adaptive noise
// floor) incrementally, and emits an EmotionEvent per completed speech
// region using a pre-trained classifier.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/speech_region.h"
#include "dsp/stft.h"
#include "ml/classifier.h"

namespace emoleak::core {

/// One classified speech region emitted by the streaming pipeline.
struct EmotionEvent {
  std::size_t start_sample = 0;  ///< absolute sample index in the stream
  std::size_t end_sample = 0;
  int predicted_class = -1;
  std::vector<double> probabilities;  ///< classifier distribution
  /// Telemetry riders, stamped by the serving layer on the request that
  /// closed the region (0 = unstamped, e.g. standalone pipeline use).
  /// Never encoded on the wire and never compared by parity checks —
  /// the event's identity is the four fields above.
  std::uint64_t flow = 0;        ///< causal-trace flow id
  std::uint64_t arrival_ns = 0;  ///< closing chunk's arrival stamp
};

/// What a classifier consumes per detected region. Different attack
/// tasks train on different views of the same trace (tasks::TaskSpec):
/// the classical heads take the 24 Table-II features, the media
/// fingerprint matches the region's spectrogram image.
enum class FeatureRoute {
  kTableFeatures,     ///< 24-dim Table-II feature vector (default)
  kSpectrogramImage,  ///< flattened image_size^2 spectrogram in [0,1]
};

struct StreamingConfig {
  DetectorConfig detector;       ///< same knobs as the offline detector
  double noise_window_s = 10.0;  ///< sliding window for the noise floor
  double max_region_s = 6.0;     ///< force-close pathological regions
  /// Samples of history retained for feature extraction beyond the
  /// longest expected region (raw samples are needed because features
  /// come from the unfiltered stream).
  double history_s = 12.0;
  /// Spectrogram-route geometry; must match the training pipeline
  /// (PipelineConfig defaults) so served regions land in the same input
  /// space the fingerprint models were fit on.
  std::size_t image_size = 32;
  dsp::StftConfig stft{.window_length = 64, .hop = 8};

  void validate() const;
};

/// A region whose classifier input was computed but whose predict was
/// deferred to a batch step (see set_deferred). `slot` indexes into the
/// event vector returned by the push() that closed the region; the
/// classifier is captured at close time so a hot-swap between close and
/// batch-classify cannot change which model scores the region.
struct PendingWindow {
  std::size_t slot = 0;
  std::shared_ptr<const ml::Classifier> classifier;
  std::vector<double> input;
};

class StreamingAttack {
 public:
  /// `classifier` must already be trained on the 24 Table-II features
  /// (e.g. loaded via ml::load_model_file). Pass nullptr to run in
  /// detection-only mode (events carry predicted_class == -1).
  StreamingAttack(StreamingConfig config, double sample_rate_hz,
                  std::shared_ptr<const ml::Classifier> classifier);

  /// Feeds a chunk of raw accelerometer samples; returns the events
  /// completed within this chunk (possibly none).
  std::vector<EmotionEvent> push(std::span<const double> samples);

  /// Flushes a region still open at end-of-stream, if any.
  [[nodiscard]] std::optional<EmotionEvent> finish();

  /// Rewinds to the just-constructed state (filter delay lines, DC/
  /// envelope trackers, histories, counters) without reallocating the
  /// config-derived capacities, so a session pool can reuse instances
  /// across streams (serve::SessionManager).
  void reset();

  /// Swaps the model used for subsequent regions (hot-swap in the
  /// serving layer). Pass nullptr for detection-only mode. Regions
  /// closed before the call keep their old predictions. The route keeps
  /// its current value unless the two-argument overload names one.
  void set_classifier(std::shared_ptr<const ml::Classifier> classifier) {
    classifier_ = std::move(classifier);
  }
  void set_classifier(std::shared_ptr<const ml::Classifier> classifier,
                      FeatureRoute route) {
    classifier_ = std::move(classifier);
    route_ = route;
  }

  [[nodiscard]] FeatureRoute route() const noexcept { return route_; }

  /// In deferred mode push() leaves classified regions' events at
  /// predicted_class == -1 and queues {slot, classifier, input} in the
  /// pending list instead of predicting inline; the caller batches the
  /// predicts and scatters results back by slot. finish() always
  /// classifies inline (values are bit-identical either way). Drain
  /// take_pending() after every push — slots are relative to that
  /// push's event vector.
  void set_deferred(bool deferred) noexcept { deferred_ = deferred; }
  [[nodiscard]] bool deferred() const noexcept { return deferred_; }
  [[nodiscard]] std::vector<PendingWindow> take_pending() {
    return std::move(pending_);
  }

  [[nodiscard]] std::size_t samples_seen() const noexcept { return absolute_; }
  [[nodiscard]] std::size_t events_emitted() const noexcept { return events_; }

 private:
  void process_sample(double raw, std::vector<EmotionEvent>& out);
  /// `slot` is the event's index in the push() result; only used when
  /// `defer` queues the window instead of predicting inline.
  EmotionEvent close_region(std::size_t start, std::size_t end, bool defer,
                            std::size_t slot);
  [[nodiscard]] double noise_floor() const;

  StreamingConfig config_;
  double rate_;
  std::shared_ptr<const ml::Classifier> classifier_;
  FeatureRoute route_ = FeatureRoute::kTableFeatures;
  bool deferred_ = false;
  std::vector<PendingWindow> pending_;

  dsp::BiquadCascade hpf_;
  bool use_hpf_ = false;
  double dc_estimate_ = 0.0;   ///< slow DC tracker (gravity removal)
  bool dc_initialized_ = false;
  double envelope_sq_ = 0.0;   ///< running mean-square for the envelope
  double env_alpha_ = 0.0;

  std::deque<double> raw_history_;    ///< unfiltered samples for features
  std::size_t history_capacity_ = 0;
  std::size_t history_start_ = 0;     ///< absolute index of history front

  std::deque<double> noise_window_;   ///< envelope samples for the floor
  std::size_t noise_capacity_ = 0;

  std::size_t absolute_ = 0;
  std::size_t events_ = 0;
  bool in_region_ = false;
  std::size_t region_start_ = 0;
  std::size_t below_count_ = 0;  ///< consecutive sub-threshold samples
  std::size_t min_region_samples_ = 0;
  std::size_t gap_samples_ = 0;
  std::size_t max_region_samples_ = 0;
  std::size_t pad_samples_ = 0;
};

}  // namespace emoleak::core
