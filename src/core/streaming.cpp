#include "core/streaming.h"

#include <algorithm>
#include <cmath>

#include "features/features.h"
#include "obs/obs.h"
#include "util/error.h"

namespace emoleak::core {

void StreamingConfig::validate() const {
  detector.validate();
  // The offline detector tolerates zero-length gap/region windows, but
  // the incremental detector closes regions by counting sub-threshold
  // samples, so both must be strictly positive here.
  if (detector.merge_gap_s <= 0.0) {
    throw util::ConfigError{"StreamingConfig: detector.merge_gap_s <= 0"};
  }
  if (detector.min_region_s <= 0.0) {
    throw util::ConfigError{"StreamingConfig: detector.min_region_s <= 0"};
  }
  if (noise_window_s <= 0.0) {
    throw util::ConfigError{"StreamingConfig: noise_window_s <= 0"};
  }
  if (max_region_s <= detector.min_region_s) {
    throw util::ConfigError{"StreamingConfig: max_region_s too small"};
  }
  if (history_s < max_region_s) {
    throw util::ConfigError{"StreamingConfig: history shorter than regions"};
  }
  if (image_size == 0) {
    throw util::ConfigError{"StreamingConfig: image_size == 0"};
  }
  stft.validate();
}

StreamingAttack::StreamingAttack(StreamingConfig config, double sample_rate_hz,
                                 std::shared_ptr<const ml::Classifier> classifier)
    : config_{config}, rate_{sample_rate_hz}, classifier_{std::move(classifier)} {
  config_.validate();
  if (rate_ <= 0.0) throw util::ConfigError{"StreamingAttack: rate <= 0"};

  if (config_.detector.detection_highpass_hz > 0.0) {
    hpf_ = dsp::BiquadCascade::butterworth_highpass(
        config_.detector.highpass_order,
        config_.detector.detection_highpass_hz, rate_);
    use_hpf_ = true;
  }
  // Envelope: single-pole mean-square tracker matching the offline
  // moving-RMS window length.
  env_alpha_ = std::exp(-1.0 / (config_.detector.envelope_window_s * rate_));

  // Each count is at least 1: at low sample rates the truncation of
  // seconds * rate can reach 0, and gap_samples_ == 0 in particular
  // closes a region on the first sub-threshold sample (below_count_ >= 0
  // holds even while the signal is active).
  const auto samples_of = [this](double seconds) {
    return std::max<std::size_t>(1, static_cast<std::size_t>(seconds * rate_));
  };
  history_capacity_ = samples_of(config_.history_s);
  noise_capacity_ = samples_of(config_.noise_window_s);
  min_region_samples_ = samples_of(config_.detector.min_region_s);
  gap_samples_ = samples_of(config_.detector.merge_gap_s);
  max_region_samples_ = samples_of(config_.max_region_s);
  pad_samples_ = static_cast<std::size_t>(config_.detector.pad_s * rate_);
}

double StreamingAttack::noise_floor() const {
  if (noise_window_.empty()) return 0.0;
  // Quantile over a decimated copy (every 8th sample) keeps this cheap
  // while matching the offline detector's robust floor estimate.
  std::vector<double> sample;
  sample.reserve(noise_window_.size() / 8 + 1);
  for (std::size_t i = 0; i < noise_window_.size(); i += 8) {
    sample.push_back(noise_window_[i]);
  }
  std::sort(sample.begin(), sample.end());
  const double q25 = sample[sample.size() / 4];
  const double q50 = sample[sample.size() / 2];
  const double spread = std::max(q50 - q25, 1e-9);
  return std::max(q25 + config_.detector.threshold_k * spread,
                  config_.detector.min_ratio * q25);
}

EmotionEvent StreamingAttack::close_region(std::size_t start, std::size_t end,
                                           bool defer, std::size_t slot) {
  EmotionEvent event;
  event.start_sample = start > pad_samples_ ? start - pad_samples_ : 0;
  event.end_sample = end + pad_samples_;
  ++events_;

  // Slice the raw history for feature extraction. Both bounds clamp
  // against history_start_ before subtracting: a padded region that has
  // (partly or fully) been evicted from raw_history_ would otherwise
  // wrap the unsigned difference and slice the entire history. A fully
  // evicted region simply yields an unclassified event below.
  const std::size_t lo =
      event.start_sample > history_start_ ? event.start_sample - history_start_
                                          : 0;
  const std::size_t hi =
      event.end_sample > history_start_
          ? std::min<std::size_t>(event.end_sample - history_start_,
                                  raw_history_.size())
          : 0;
  if (classifier_ && hi > lo + 4) {
    std::vector<double> region(raw_history_.begin() + static_cast<std::ptrdiff_t>(lo),
                               raw_history_.begin() + static_cast<std::ptrdiff_t>(hi));
    // The classifier's input view depends on the task it was trained
    // for: Table-II features for the classical heads, the spectrogram
    // image for fingerprint matching. Both are computed exactly like
    // the offline pipeline (core::extract) so a served region lands in
    // the same input space as the training rows.
    std::vector<double> input;
    if (route_ == FeatureRoute::kTableFeatures) {
      input = features::extract_features(region, rate_);
    } else {
      double mean = 0.0;
      for (const double v : region) mean += v;
      mean /= static_cast<double>(region.size());
      for (double& v : region) v -= mean;
      const dsp::Spectrogram spec = dsp::stft(region, rate_, config_.stft);
      input = dsp::spectrogram_image(spec, config_.image_size,
                                     config_.image_size);
    }
    const bool valid = std::all_of(input.begin(), input.end(), [](double v) {
      return std::isfinite(v);
    });
    if (valid) {
      if (defer) {
        // Queue for the caller's batch-classify step; the event ships
        // unclassified and is patched by slot when the batch resolves.
        pending_.push_back({slot, classifier_, std::move(input)});
      } else {
        event.probabilities = classifier_->predict_proba(input);
        event.predicted_class = static_cast<int>(
            std::max_element(event.probabilities.begin(),
                             event.probabilities.end()) -
            event.probabilities.begin());
      }
    }
  }
  return event;
}

void StreamingAttack::process_sample(double raw, std::vector<EmotionEvent>& out) {
  // Raw history for feature extraction.
  raw_history_.push_back(raw);
  if (raw_history_.size() > history_capacity_) {
    raw_history_.pop_front();
    ++history_start_;
  }

  // Detection domain: DC removal (slow tracker) + optional HPF.
  if (!dc_initialized_) {
    dc_estimate_ = raw;
    dc_initialized_ = true;
  }
  constexpr double kDcAlpha = 0.999;  // ~2.4 s time constant at 420 Hz
  dc_estimate_ = kDcAlpha * dc_estimate_ + (1.0 - kDcAlpha) * raw;
  double x = raw - dc_estimate_;
  if (use_hpf_) x = hpf_.process(x);

  envelope_sq_ = env_alpha_ * envelope_sq_ + (1.0 - env_alpha_) * x * x;
  const double envelope = std::sqrt(envelope_sq_);

  noise_window_.push_back(envelope);
  if (noise_window_.size() > noise_capacity_) noise_window_.pop_front();

  // Need enough noise context before detecting at all.
  if (noise_window_.size() < noise_capacity_ / 4) {
    ++absolute_;
    return;
  }

  const double threshold = noise_floor();
  const bool active = envelope > threshold;

  if (!in_region_) {
    if (active) {
      in_region_ = true;
      region_start_ = absolute_;
      below_count_ = 0;
    }
  } else {
    if (active) {
      below_count_ = 0;
    } else {
      ++below_count_;
    }
    const std::size_t length = absolute_ - region_start_;
    const bool gap_closed = below_count_ >= gap_samples_;
    const bool too_long = length >= max_region_samples_;
    if (gap_closed || too_long) {
      const std::size_t end = absolute_ - below_count_;
      in_region_ = false;
      if (end > region_start_ &&
          end - region_start_ >= min_region_samples_) {
        out.push_back(close_region(region_start_, end, deferred_, out.size()));
      }
    }
  }
  ++absolute_;
}

std::vector<EmotionEvent> StreamingAttack::push(std::span<const double> samples) {
  OBS_SPAN_ARG("streaming.push", "samples", samples.size());
  // Per-window wall-time budget: each push() is one sensor window in a
  // real deployment, so the distribution of its cost (not just a mean)
  // is what decides whether the attack keeps up with the sample rate.
  static obs::Histogram& window_ns =
      obs::Registry::instance().histogram("streaming.window_ns");
  const std::uint64_t t0 = obs::trace_now_ns();
  std::vector<EmotionEvent> out;
  for (const double s : samples) process_sample(s, out);
  window_ns.record(obs::trace_now_ns() - t0);
  return out;
}

void StreamingAttack::reset() {
  hpf_.reset();
  dc_estimate_ = 0.0;
  dc_initialized_ = false;
  envelope_sq_ = 0.0;
  raw_history_.clear();
  history_start_ = 0;
  noise_window_.clear();
  pending_.clear();
  absolute_ = 0;
  events_ = 0;
  in_region_ = false;
  region_start_ = 0;
  below_count_ = 0;
}

std::optional<EmotionEvent> StreamingAttack::finish() {
  if (!in_region_) return std::nullopt;
  in_region_ = false;
  const std::size_t end = absolute_ - below_count_;
  if (end <= region_start_ || end - region_start_ < min_region_samples_) {
    return std::nullopt;
  }
  // End-of-stream regions classify inline even in deferred mode: the
  // session is leaving the pool, and the values are bit-identical.
  return close_region(region_start_, end, /*defer=*/false, 0);
}

}  // namespace emoleak::core
