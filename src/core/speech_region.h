// Speech-region detection from raw accelerometer traces.
//
// Implements the paper's extraction algorithm (§III-B2, §IV-A2): the
// speech region is where the vibration envelope spikes above the noise
// floor. Table-top/loudspeaker traces need no filtering; handheld /
// ear-speaker traces are high-pass filtered at 8 Hz *for detection
// only* (features are always extracted from the unfiltered samples,
// because even a 1 Hz filter destroys them — Table I).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/filter.h"

namespace emoleak::core {

struct Region {
  std::size_t start = 0;  ///< first sample
  std::size_t end = 0;    ///< one past the last sample

  [[nodiscard]] std::size_t length() const noexcept { return end - start; }
};

struct DetectorConfig {
  /// High-pass cutoff used for *detection only*; 0 disables (table-top).
  /// The paper uses 8 Hz for the handheld/ear-speaker setting.
  double detection_highpass_hz = 0.0;
  int highpass_order = 4;
  double envelope_window_s = 0.040;  ///< moving-RMS window
  /// Detection threshold: noise_floor + k * noise_spread (robust
  /// estimates from the envelope's lower quantiles).
  double threshold_k = 3.0;
  /// Secondary criterion: the threshold never drops below
  /// `min_ratio * noise_floor`, which rejects pure-noise traces whose
  /// quantile spread is tiny.
  double min_ratio = 1.8;
  double min_region_s = 0.15;   ///< discard shorter regions
  double merge_gap_s = 0.20;    ///< merge regions separated by less
  double pad_s = 0.03;          ///< extend region boundaries slightly

  void validate() const;
};

class SpeechRegionDetector {
 public:
  SpeechRegionDetector() = default;
  explicit SpeechRegionDetector(DetectorConfig config);

  /// Detects speech regions in a raw accelerometer trace (gravity and
  /// all; the detector removes the DC/trend internally).
  [[nodiscard]] std::vector<Region> detect(std::span<const double> accel,
                                           double rate_hz) const;

  [[nodiscard]] const DetectorConfig& config() const noexcept { return config_; }

  /// The detection-domain envelope (exposed for Fig. 4-style plots).
  [[nodiscard]] std::vector<double> detection_envelope(
      std::span<const double> accel, double rate_hz) const;

 private:
  DetectorConfig config_{};
};

/// Convenience presets matching the paper's two settings.
[[nodiscard]] DetectorConfig tabletop_detector_config();
[[nodiscard]] DetectorConfig handheld_detector_config();

}  // namespace emoleak::core
