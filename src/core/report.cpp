#include "core/report.h"

#include <sstream>

#include "ml/metrics.h"
#include "util/error.h"
#include "util/table.h"

namespace emoleak::core {

namespace {

std::string speaker_name(phone::SpeakerKind kind) {
  return kind == phone::SpeakerKind::kLoudspeaker ? "loudspeaker"
                                                  : "ear speaker";
}

std::string posture_name(phone::Posture posture) {
  return posture == phone::Posture::kTableTop ? "table-top" : "handheld";
}

}  // namespace

std::string render_report(const ReportInputs& inputs) {
  if (inputs.data == nullptr) {
    throw util::DataError{"render_report: data is required"};
  }
  if (inputs.results.empty()) {
    throw util::DataError{"render_report: at least one classifier result"};
  }
  if (inputs.detailed_result >= inputs.results.size()) {
    throw util::DataError{"render_report: detailed_result out of range"};
  }
  const ExtractedData& data = *inputs.data;

  std::ostringstream out;
  out << "# " << inputs.title << "\n\n";

  out << "## Scenario\n\n";
  out << "* dataset: " << inputs.scenario.dataset.name << " ("
      << inputs.scenario.dataset.emotions.size() << " emotions, "
      << inputs.scenario.dataset.speaker_count << " speakers)\n";
  out << "* device: " << inputs.scenario.phone.name << " ("
      << util::fixed(inputs.scenario.phone.accel_rate_hz, 0)
      << " Hz accelerometer)\n";
  out << "* channel: " << speaker_name(inputs.scenario.speaker) << ", "
      << posture_name(inputs.scenario.posture) << "\n";
  out << "* corpus fraction: "
      << util::fixed(inputs.scenario.corpus_fraction, 2) << ", seed "
      << inputs.scenario.seed << "\n\n";

  out << "## Capture\n\n";
  out << "* utterances played: " << data.utterances_total << "\n";
  out << "* regions detected: " << data.regions_detected << "\n";
  out << "* extraction rate: " << util::percent(data.extraction_rate)
      << "\n";
  out << "* labelled feature rows: " << data.features.size() << " ("
      << data.features.dim() << " features)\n";
  out << "* random-guess accuracy: "
      << util::percent(1.0 / data.features.class_count) << "\n\n";

  out << "## Classifiers\n\n";
  util::TablePrinter comparison{
      {"classifier", "accuracy", "kappa", "macro F1"}};
  for (const ClassifierResult& r : inputs.results) {
    comparison.add_row({r.classifier, util::percent(r.accuracy),
                        util::fixed(ml::cohens_kappa(r.confusion)),
                        util::fixed(r.confusion.macro_f1())});
  }
  out << "```\n" << comparison.str() << "```\n\n";

  const ClassifierResult& detail = inputs.results[inputs.detailed_result];
  out << "## Detail: " << detail.classifier << "\n\n";
  out << "```\n"
      << util::render_confusion(detail.confusion.counts(),
                                data.features.class_names)
      << "```\n\n```\n"
      << ml::classification_report(detail.confusion,
                                   data.features.class_names)
      << "```\n";
  return out.str();
}

}  // namespace emoleak::core
