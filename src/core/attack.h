// The EmoLeak attack: one-call experiment runners.
//
// Wires corpus synthesis, the phone channel, region extraction and the
// classifier stable into the experiments the paper's evaluation section
// reports. Every bench binary and example builds on these entry points.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "ml/classifier.h"
#include "ml/ensemble.h"
#include "ml/eval.h"
#include "ml/lmt.h"
#include "ml/multiclass.h"
#include "nn/cnn_models.h"

namespace emoleak::core {

/// One attack scenario: a dataset replayed on a phone through a
/// speaker in a posture.
struct ScenarioConfig {
  audio::DatasetSpec dataset;
  phone::PhoneProfile phone;
  phone::SpeakerKind speaker = phone::SpeakerKind::kLoudspeaker;
  phone::Posture posture = phone::Posture::kTableTop;
  /// Scale on utterances-per-speaker-emotion; < 1 keeps benches fast.
  double corpus_fraction = 1.0;
  std::uint64_t seed = 42;
  PipelineConfig pipeline;  ///< detector defaults chosen from posture

  /// Applies posture-appropriate detector defaults (8 Hz HPF handheld).
  void apply_posture_defaults();
};

/// Loudspeaker/table-top scenario for a dataset + phone.
[[nodiscard]] ScenarioConfig loudspeaker_scenario(audio::DatasetSpec dataset,
                                                  phone::PhoneProfile phone,
                                                  std::uint64_t seed = 42);

/// Ear-speaker/handheld scenario.
[[nodiscard]] ScenarioConfig ear_speaker_scenario(audio::DatasetSpec dataset,
                                                  phone::PhoneProfile phone,
                                                  std::uint64_t seed = 42);

/// Synthesizes the corpus, records the session and extracts features +
/// spectrograms: the attacker's data-collection stage.
[[nodiscard]] ExtractedData capture(const ScenarioConfig& config);

/// Result of one classifier evaluation.
struct ClassifierResult {
  std::string classifier;
  double accuracy = 0.0;
  ml::ConfusionMatrix confusion{1};
};

/// The paper's classical-classifier stable for loudspeaker experiments
/// (Tables III-V): Logistic, multiClassClassifier, trees.lmt.
[[nodiscard]] std::vector<std::unique_ptr<ml::Classifier>> loudspeaker_classifiers();

/// The ear-speaker stable (Table VI): RandomForest, RandomSubSpace,
/// trees.lmt.
[[nodiscard]] std::vector<std::unique_ptr<ml::Classifier>> ear_speaker_classifiers();

/// Evaluates a classical classifier on extracted features with the
/// paper's protocol (80/20 split by default, or k-fold CV). With CV,
/// folds run across `parallelism` threads; results are bit-identical
/// at any thread count.
[[nodiscard]] ClassifierResult evaluate_classical(
    const ml::Classifier& prototype, const ml::Dataset& features,
    std::uint64_t seed, std::size_t cv_folds = 0,
    const util::Parallelism& parallelism = {});

struct CnnResult {
  double accuracy = 0.0;
  nn::History history;
  ml::ConfusionMatrix confusion{1};
};

struct CnnRunConfig {
  nn::CnnConfig arch = nn::CnnConfig::fast();
  nn::TrainConfig train{.epochs = 40, .batch_size = 64, .learning_rate = 3e-3};
  std::uint64_t seed = 31;
};

/// Trains/evaluates the time-frequency CNN (z-scored 24-dim features as
/// a 1-D sequence) with an 80/20 split.
[[nodiscard]] CnnResult evaluate_timefreq_cnn(const ml::Dataset& features,
                                              const CnnRunConfig& config);

/// Trains/evaluates the spectrogram-image CNN with an 80/20 split.
[[nodiscard]] CnnResult evaluate_spectrogram_cnn(
    const std::vector<std::vector<double>>& images, std::size_t image_size,
    const std::vector<int>& labels, int class_count,
    const CnnRunConfig& config);

}  // namespace emoleak::core
