#include "core/attack.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "ml/logistic.h"
#include "obs/obs.h"
#include "util/error.h"

namespace emoleak::core {

void ScenarioConfig::apply_posture_defaults() {
  pipeline.detector = posture == phone::Posture::kHandheld
                          ? handheld_detector_config()
                          : tabletop_detector_config();
}

ScenarioConfig loudspeaker_scenario(audio::DatasetSpec dataset,
                                    phone::PhoneProfile phone,
                                    std::uint64_t seed) {
  ScenarioConfig c;
  c.dataset = std::move(dataset);
  c.phone = std::move(phone);
  c.speaker = phone::SpeakerKind::kLoudspeaker;
  c.posture = phone::Posture::kTableTop;
  c.seed = seed;
  c.apply_posture_defaults();
  return c;
}

ScenarioConfig ear_speaker_scenario(audio::DatasetSpec dataset,
                                    phone::PhoneProfile phone,
                                    std::uint64_t seed) {
  ScenarioConfig c;
  c.dataset = std::move(dataset);
  c.phone = std::move(phone);
  c.speaker = phone::SpeakerKind::kEarSpeaker;
  c.posture = phone::Posture::kHandheld;
  c.seed = seed;
  c.apply_posture_defaults();
  return c;
}

ExtractedData capture(const ScenarioConfig& config) {
  OBS_SPAN("pipeline.capture");
  audio::DatasetSpec spec = config.dataset;
  if (config.corpus_fraction != 1.0) {
    spec = audio::scaled_spec(spec, config.corpus_fraction);
  }
  std::optional<audio::Corpus> corpus;
  {
    OBS_SPAN("pipeline.synthesize");
    corpus.emplace(spec, config.seed);
  }

  phone::RecorderConfig rec_cfg;
  rec_cfg.speaker = config.speaker;
  rec_cfg.posture = config.posture;
  rec_cfg.seed = config.seed ^ 0x5E5510ULL;
  std::optional<phone::Recording> recording;
  {
    OBS_SPAN_ARG("pipeline.conduct", "utterances", corpus->size());
    recording.emplace(record_session(*corpus, config.phone, rec_cfg));
  }

  return extract(*recording, config.pipeline);
}

std::vector<std::unique_ptr<ml::Classifier>> loudspeaker_classifiers() {
  std::vector<std::unique_ptr<ml::Classifier>> out;
  out.push_back(std::make_unique<ml::LogisticRegression>());
  out.push_back(std::make_unique<ml::OneVsRestLogistic>());
  out.push_back(std::make_unique<ml::LogisticModelTree>());
  return out;
}

std::vector<std::unique_ptr<ml::Classifier>> ear_speaker_classifiers() {
  std::vector<std::unique_ptr<ml::Classifier>> out;
  out.push_back(std::make_unique<ml::RandomForest>());
  out.push_back(std::make_unique<ml::RandomSubspace>());
  out.push_back(std::make_unique<ml::LogisticModelTree>());
  return out;
}

ClassifierResult evaluate_classical(const ml::Classifier& prototype,
                                    const ml::Dataset& features,
                                    std::uint64_t seed, std::size_t cv_folds,
                                    const util::Parallelism& parallelism) {
  OBS_SPAN_ARG("pipeline.classify", "rows", features.size());
  const ml::EvalResult r =
      cv_folds >= 2
          ? ml::cross_validate(prototype, features, cv_folds, seed, parallelism)
          : ml::evaluate_split(prototype, features, 0.8, seed);
  return ClassifierResult{prototype.name(), r.accuracy, r.confusion};
}

namespace {

/// Splits row indices 80/20 stratified and returns (train, test).
std::pair<std::vector<std::size_t>, std::vector<std::size_t>> split_indices(
    const std::vector<int>& labels, int class_count, std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<std::vector<std::size_t>> groups(
      static_cast<std::size_t>(class_count));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    groups[static_cast<std::size_t>(labels[i])].push_back(i);
  }
  std::vector<std::size_t> train, test;
  for (auto& g : groups) {
    rng.shuffle(g);
    const auto cut = static_cast<std::size_t>(
        std::round(0.8 * static_cast<double>(g.size())));
    for (std::size_t i = 0; i < g.size(); ++i) {
      (i < cut ? train : test).push_back(g[i]);
    }
  }
  rng.shuffle(train);
  rng.shuffle(test);
  return {std::move(train), std::move(test)};
}

CnnResult finish_cnn(nn::Sequential& model, const nn::Tensor& train_x,
                     const std::vector<int>& train_y, const nn::Tensor& test_x,
                     const std::vector<int>& test_y, int class_count,
                     const CnnRunConfig& config) {
  nn::TrainConfig tc = config.train;
  tc.seed = config.seed;
  CnnResult result{0.0, {}, ml::ConfusionMatrix{class_count}};
  result.history = model.train(train_x, train_y, class_count, tc);
  const std::vector<int> pred = model.predict(test_x);
  for (std::size_t i = 0; i < pred.size(); ++i) {
    result.confusion.add(test_y[i], pred[i]);
  }
  result.accuracy = result.confusion.accuracy();
  return result;
}

}  // namespace

CnnResult evaluate_timefreq_cnn(const ml::Dataset& features,
                                const CnnRunConfig& config) {
  features.validate();
  if (features.size() < 20) {
    throw util::DataError{"evaluate_timefreq_cnn: too few samples"};
  }
  const std::size_t d = features.dim();

  // z-score normalization (paper §IV-D2) fitted on all rows' train part.
  const auto [train_idx, test_idx] =
      split_indices(features.y, features.class_count, config.seed);
  ml::StandardScaler scaler;
  scaler.fit(features.subset(train_idx));

  const auto to_tensor = [&](const std::vector<std::size_t>& idx) {
    nn::Tensor t{{idx.size(), 1, d, 1}};
    for (std::size_t i = 0; i < idx.size(); ++i) {
      const std::vector<double> row = scaler.transform_row(features.x[idx[i]]);
      for (std::size_t j = 0; j < d; ++j) {
        t[i * d + j] = static_cast<float>(row[j]);
      }
    }
    return t;
  };
  const auto to_labels = [&](const std::vector<std::size_t>& idx) {
    std::vector<int> y(idx.size());
    for (std::size_t i = 0; i < idx.size(); ++i) y[i] = features.y[idx[i]];
    return y;
  };

  nn::Sequential model =
      nn::build_timefreq_cnn(d, features.class_count, config.arch);
  return finish_cnn(model, to_tensor(train_idx), to_labels(train_idx),
                    to_tensor(test_idx), to_labels(test_idx),
                    features.class_count, config);
}

CnnResult evaluate_spectrogram_cnn(
    const std::vector<std::vector<double>>& images, std::size_t image_size,
    const std::vector<int>& labels, int class_count,
    const CnnRunConfig& config) {
  if (images.size() != labels.size()) {
    throw util::DataError{"evaluate_spectrogram_cnn: size mismatch"};
  }
  if (images.size() < 20) {
    throw util::DataError{"evaluate_spectrogram_cnn: too few samples"};
  }
  const std::size_t pixels = image_size * image_size;
  for (const auto& img : images) {
    if (img.size() != pixels) {
      throw util::DataError{"evaluate_spectrogram_cnn: wrong image size"};
    }
  }

  const auto [train_idx, test_idx] = split_indices(labels, class_count, config.seed);
  const auto to_tensor = [&](const std::vector<std::size_t>& idx) {
    nn::Tensor t{{idx.size(), image_size, image_size, 1}};
    for (std::size_t i = 0; i < idx.size(); ++i) {
      const std::vector<double>& img = images[idx[i]];
      for (std::size_t p = 0; p < pixels; ++p) {
        t[i * pixels + p] = static_cast<float>(img[p]);
      }
    }
    return t;
  };
  const auto to_labels = [&](const std::vector<std::size_t>& idx) {
    std::vector<int> y(idx.size());
    for (std::size_t i = 0; i < idx.size(); ++i) y[i] = labels[idx[i]];
    return y;
  };

  nn::Sequential model =
      nn::build_spectrogram_cnn(image_size, image_size, class_count, config.arch);
  return finish_cnn(model, to_tensor(train_idx), to_labels(train_idx),
                    to_tensor(test_idx), to_labels(test_idx), class_count,
                    config);
}

}  // namespace emoleak::core
