#!/usr/bin/env python3
"""Kernel-benchmark regression harness.

Runs bench_micro_perf with google-benchmark's JSON reporter over the
kernel-level benchmarks, compares each one against the checked-in
baseline (BENCH_kernels.json), and fails when a benchmark regresses
beyond the tolerance. With --update, rewrites the baseline's `after_ns`
numbers from the fresh run instead (the `before_ns` column — the
pre-overhaul numbers — is preserved so the speedup history stays
visible).

Usage:
  scripts/bench_compare.py --bench build/bench/bench_micro_perf
  scripts/bench_compare.py --bench ... --update     # re-baseline
  scripts/bench_compare.py --bench ... --tolerance 0.4

Wired into CMake as the `bench_check` target.
"""

import argparse
import json
import subprocess
import sys
from pathlib import Path

# Kernel benchmarks tracked by the baseline. Fixture-heavy end-to-end
# benchmarks (serving, synthesis) are too noisy for a regression gate.
# google-benchmark filters are partial-match regexes, so entries whose
# name prefixes an untracked reference variant (BM_TreeTrainReference,
# BM_PitchTrackNaive, ...) are anchored with `/` or `$`.
KERNEL_FILTER = (
    "BM_FftPow2|BM_Rfft|BM_FftBluestein|BM_Stft|BM_Gemm|"
    "BM_FeatureExtraction|BM_TimefreqCnnForward|BM_SpectrogramCnnForward|"
    "BM_Conv2DBackward|"
    "BM_TreeTrain/|BM_ForestTrain$|BM_PitchTrack$|BM_DatasetBuildHit$|"
    "BM_SpanOverhead$|BM_HistogramRecord"
)


def run_benchmarks(bench_path: Path, repetitions: int) -> dict[str, float]:
    """Runs the benchmark binary; returns {name: real_time_ns}."""
    cmd = [
        str(bench_path),
        f"--benchmark_filter={KERNEL_FILTER}",
        "--benchmark_format=json",
    ]
    if repetitions > 1:
        cmd += [
            f"--benchmark_repetitions={repetitions}",
            "--benchmark_report_aggregates_only=true",
        ]
    out = subprocess.run(cmd, capture_output=True, text=True, check=True)
    report = json.loads(out.stdout)

    results: dict[str, float] = {}
    for row in report.get("benchmarks", []):
        name = row["name"]
        if repetitions > 1:
            if row.get("aggregate_name") != "median":
                continue
            name = name.removesuffix("_median")
        unit = row.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        results[name] = float(row["real_time"]) * scale
    return results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", type=Path, required=True,
                        help="path to the bench_micro_perf binary")
    parser.add_argument("--baseline", type=Path,
                        default=Path(__file__).resolve().parent.parent /
                        "BENCH_kernels.json")
    parser.add_argument("--tolerance", type=float, default=0.35,
                        help="allowed fractional slowdown vs after_ns "
                             "(default 0.35 = 35%%, absorbs machine noise)")
    parser.add_argument("--repetitions", type=int, default=1,
                        help="benchmark repetitions; >1 compares medians")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline's after_ns from this run")
    args = parser.parse_args()

    measured = run_benchmarks(args.bench, args.repetitions)
    if not measured:
        print("error: benchmark run produced no results", file=sys.stderr)
        return 2

    baseline = {"benchmarks": {}}
    if args.baseline.exists():
        baseline = json.loads(args.baseline.read_text())
    entries = baseline.setdefault("benchmarks", {})

    if args.update:
        for name, after_ns in sorted(measured.items()):
            entry = entries.setdefault(name, {})
            entry["after_ns"] = round(after_ns, 1)
            before = entry.get("before_ns")
            if before:
                entry["speedup"] = round(before / after_ns, 2)
        args.baseline.write_text(json.dumps(baseline, indent=2,
                                            sort_keys=True) + "\n")
        print(f"updated {args.baseline} with {len(measured)} benchmarks")
        return 0

    failures = []
    missing = []
    for name, got_ns in sorted(measured.items()):
        entry = entries.get(name)
        if entry is None or "after_ns" not in entry:
            missing.append(name)
            continue
        want_ns = entry["after_ns"]
        ratio = got_ns / want_ns
        status = "ok"
        if ratio > 1.0 + args.tolerance:
            status = "REGRESSION"
            failures.append(name)
        print(f"{name:45s} {got_ns:12.1f} ns  baseline {want_ns:12.1f} ns  "
              f"x{ratio:5.2f}  {status}")
    for name in missing:
        print(f"{name:45s} {measured[name]:12.1f} ns  (no baseline — run "
              f"with --update)")

    stale = sorted(set(entries) - set(measured))
    for name in stale:
        print(f"{name:45s} in baseline but not measured (filter changed?)")

    if failures:
        print(f"\n{len(failures)} benchmark(s) regressed beyond "
              f"{args.tolerance:.0%}: {', '.join(failures)}", file=sys.stderr)
        return 1
    print(f"\nall {len(measured) - len(missing)} tracked benchmarks within "
          f"{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
