#!/usr/bin/env python3
"""Benchmark regression harness.

Two modes:

Kernel mode (--bench): runs bench_micro_perf with google-benchmark's
JSON reporter over the kernel-level benchmarks, compares each one
against the checked-in baseline (BENCH_kernels.json), and fails when a
benchmark regresses beyond the tolerance. With --update, rewrites the
baseline's `after_ns` numbers from the fresh run instead (the
`before_ns` column — the pre-overhaul numbers — is preserved so the
speedup history stays visible).

Serve mode (--serve): runs the TCP-transport load generator
(examples/loadgen) against a live NetServer and compares its summary —
throughput (conns/sec, events/sec, samples/sec) and drain latency
quantiles — against BENCH_serve.json. loadgen itself exits non-zero on
any dropped frame or parity mismatch, so a passing run is also a
correctness statement. The serve tolerance is wider than the kernel one:
this is a fixture-heavy end-to-end benchmark.

Tasks mode (--tasks): runs the multi-task mitigation sweep
(bench/bench_tasks) and compares per-task held-out accuracy at every
mitigation level against BENCH_tasks.json. Accuracy is a fraction, so
the gate is an *absolute* drop (default 0.10): a task regresses when
its accuracy falls more than the tolerance below the baseline at the
same mitigation level. Accuracy gains never fail.

Usage:
  scripts/bench_compare.py --bench build/bench/bench_micro_perf
  scripts/bench_compare.py --bench ... --update     # re-baseline
  scripts/bench_compare.py --bench ... --tolerance 0.4
  scripts/bench_compare.py --serve build/examples/loadgen
  scripts/bench_compare.py --serve ... --update     # re-baseline
  scripts/bench_compare.py --tasks build/bench/bench_tasks

Wired into CMake as the `bench_check`, `bench_serve_check`, and
`bench_tasks_check` targets.
"""

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

# Kernel benchmarks tracked by the baseline. Fixture-heavy end-to-end
# benchmarks (serving, synthesis) are too noisy for a regression gate.
# google-benchmark filters are partial-match regexes, so entries whose
# name prefixes an untracked reference variant (BM_TreeTrainReference,
# BM_PitchTrackNaive, ...) are anchored with `/` or `$`.
KERNEL_FILTER = (
    "BM_FftPow2|BM_Rfft|BM_FftBluestein|BM_Stft|BM_Gemm|"
    "BM_FeatureExtraction|BM_TimefreqCnnForward|BM_SpectrogramCnnForward|"
    "BM_BatchedCnnForward|BM_Conv2DBackward|"
    "BM_TreeTrain/|BM_ForestTrain$|BM_ForestTrainBinned$|BM_PitchTrack$|"
    "BM_DatasetBuildHit$|BM_DatasetDiskHit|"
    "BM_SpanOverhead$|BM_HistogramRecord|"
    "BM_MetricsReplyEncode$|BM_PromText$"
)


def run_benchmarks(bench_path: Path, repetitions: int) -> dict[str, float]:
    """Runs the benchmark binary; returns {name: real_time_ns}."""
    cmd = [
        str(bench_path),
        f"--benchmark_filter={KERNEL_FILTER}",
        "--benchmark_format=json",
    ]
    if repetitions > 1:
        cmd += [
            f"--benchmark_repetitions={repetitions}",
            "--benchmark_report_aggregates_only=true",
        ]
    out = subprocess.run(cmd, capture_output=True, text=True, check=True)
    report = json.loads(out.stdout)

    results: dict[str, float] = {}
    for row in report.get("benchmarks", []):
        name = row["name"]
        if repetitions > 1:
            if row.get("aggregate_name") != "median":
                continue
            name = name.removesuffix("_median")
        unit = row.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        results[name] = float(row["real_time"]) * scale
    return results


# Serve-summary fields tracked against BENCH_serve.json. Throughput
# regresses downward, latency upward; everything else in the summary
# (counters, config echo, trajectory) is recorded but not gated.
SERVE_HIGHER_IS_BETTER = ("conns_per_sec", "events_per_sec",
                          "samples_per_sec")
SERVE_LOWER_IS_BETTER = ("drain_p50_us", "drain_p99_us")


def run_loadgen(loadgen_path: Path, extra_args: list[str]) -> dict:
    """Runs loadgen with --json into a temp file; returns the report."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = Path(tmp.name)
    try:
        subprocess.run([str(loadgen_path), "--json", str(out_path),
                        *extra_args], check=True)
        return json.loads(out_path.read_text())
    finally:
        out_path.unlink(missing_ok=True)


def serve_main(args: argparse.Namespace) -> int:
    report = run_loadgen(args.serve, args.serve_args)
    summary = report.get("summary", {})
    if not summary:
        print("error: loadgen report has no summary", file=sys.stderr)
        return 2

    if summary.get("dropped_frames", 1) != 0:
        print(f"FAIL: {summary['dropped_frames']} dropped frames",
              file=sys.stderr)
        return 1

    # Batched inference engaging at all is a hard gate, not a tolerance
    # band: windows_batched == 0 on a batched-mode run means the drain
    # quietly fell back to per-session predicts.
    if (report.get("config", {}).get("batched", False)
            and summary.get("windows_batched", 0) == 0):
        print("FAIL: batched mode ran but classified zero windows via "
              "the batch path", file=sys.stderr)
        return 1

    if args.update:
        args.serve_baseline.write_text(
            json.dumps(report, indent=2) + "\n")
        print(f"updated {args.serve_baseline}")
        return 0

    if not args.serve_baseline.exists():
        print(f"error: no baseline at {args.serve_baseline} — run with "
              f"--update first", file=sys.stderr)
        return 2
    want = json.loads(args.serve_baseline.read_text()).get("summary", {})

    failures = []
    for name in SERVE_HIGHER_IS_BETTER + SERVE_LOWER_IS_BETTER:
        got, base = summary.get(name), want.get(name)
        if got is None or base is None or base == 0:
            print(f"{name:20s} {got!s:>12}  (no baseline)")
            continue
        ratio = got / base
        slower = (ratio < 1.0 / (1.0 + args.tolerance)
                  if name in SERVE_HIGHER_IS_BETTER
                  else ratio > 1.0 + args.tolerance)
        status = "REGRESSION" if slower else "ok"
        if slower:
            failures.append(name)
        print(f"{name:20s} {got:12.2f}  baseline {base:12.2f}  "
              f"x{ratio:5.2f}  {status}")

    if failures:
        print(f"\n{len(failures)} serve metric(s) regressed beyond "
              f"{args.tolerance:.0%}: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    print(f"\nserve benchmark within {args.tolerance:.0%} of baseline "
          f"(zero dropped frames)")
    return 0


def tasks_main(args: argparse.Namespace) -> int:
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = Path(tmp.name)
    try:
        subprocess.run([str(args.tasks), "--json", str(out_path),
                        *args.tasks_args], check=True)
        report = json.loads(out_path.read_text())
    finally:
        out_path.unlink(missing_ok=True)

    levels = report.get("levels", [])
    if not levels:
        print("error: bench_tasks report has no levels", file=sys.stderr)
        return 2

    if args.update:
        args.tasks_baseline.write_text(json.dumps(report, indent=2) + "\n")
        print(f"updated {args.tasks_baseline}")
        return 0

    if not args.tasks_baseline.exists():
        print(f"error: no baseline at {args.tasks_baseline} — run with "
              f"--update first", file=sys.stderr)
        return 2
    want = {lvl["label"]: lvl.get("tasks", {})
            for lvl in json.loads(
                args.tasks_baseline.read_text()).get("levels", [])}

    failures = []
    for level in levels:
        base_tasks = want.get(level["label"])
        if base_tasks is None:
            print(f"{level['label']}: not in baseline (new level)")
            continue
        for name, got in sorted(level.get("tasks", {}).items()):
            base = base_tasks.get(name)
            if base is None:
                print(f"  {level['label']} / {name}: no baseline")
                continue
            # Untrainable at this level in either run (mitigation erased
            # all regions) — compare trainability, not accuracy.
            if got["test_rows"] == 0 or base["test_rows"] == 0:
                ok = (got["test_rows"] == 0) == (base["test_rows"] == 0)
                status = "ok (untrainable)" if ok else "REGRESSION"
                if not ok:
                    failures.append(f"{level['label']}/{name}")
                print(f"  {level['label']:30s} {name:8s} "
                      f"{'--':>7}  {status}")
                continue
            drop = base["accuracy"] - got["accuracy"]
            status = "REGRESSION" if drop > args.tolerance else "ok"
            if drop > args.tolerance:
                failures.append(f"{level['label']}/{name}")
            print(f"  {level['label']:30s} {name:8s} "
                  f"{got['accuracy']:7.3f}  baseline "
                  f"{base['accuracy']:7.3f}  {status}")

    if failures:
        print(f"\n{len(failures)} task accuracy cell(s) dropped more than "
              f"{args.tolerance:.2f} below baseline: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    print(f"\nall task accuracies within {args.tolerance:.2f} of baseline")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", type=Path,
                        help="path to the bench_micro_perf binary")
    parser.add_argument("--baseline", type=Path,
                        default=Path(__file__).resolve().parent.parent /
                        "BENCH_kernels.json")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="allowed fractional regression (default 0.35 "
                             "for kernels, 0.75 for --serve)")
    parser.add_argument("--repetitions", type=int, default=1,
                        help="benchmark repetitions; >1 compares medians")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this run")
    parser.add_argument("--serve", type=Path,
                        help="path to the loadgen binary: compare the TCP "
                             "transport against BENCH_serve.json instead")
    parser.add_argument("--serve-baseline", type=Path,
                        default=Path(__file__).resolve().parent.parent /
                        "BENCH_serve.json")
    parser.add_argument("--serve-args", nargs=argparse.REMAINDER, default=[],
                        help="extra arguments passed through to loadgen")
    parser.add_argument("--tasks", type=Path,
                        help="path to the bench_tasks binary: compare "
                             "per-task accuracy against BENCH_tasks.json")
    parser.add_argument("--tasks-baseline", type=Path,
                        default=Path(__file__).resolve().parent.parent /
                        "BENCH_tasks.json")
    parser.add_argument("--tasks-args", nargs=argparse.REMAINDER, default=[],
                        help="extra arguments passed through to bench_tasks")
    args = parser.parse_args()

    if args.tasks is not None:
        if args.tolerance is None:
            args.tolerance = 0.10
        return tasks_main(args)
    if args.serve is not None:
        if args.tolerance is None:
            args.tolerance = 0.75
        return serve_main(args)
    if args.bench is None:
        parser.error("one of --bench or --serve is required")
    if args.tolerance is None:
        args.tolerance = 0.35

    measured = run_benchmarks(args.bench, args.repetitions)
    if not measured:
        print("error: benchmark run produced no results", file=sys.stderr)
        return 2

    baseline = {"benchmarks": {}}
    if args.baseline.exists():
        baseline = json.loads(args.baseline.read_text())
    entries = baseline.setdefault("benchmarks", {})

    if args.update:
        for name, after_ns in sorted(measured.items()):
            entry = entries.setdefault(name, {})
            old_after = entry.get("after_ns")
            before = entry.get("before_ns")
            if before is None and old_after is not None \
                    and after_ns > old_after:
                # Baseline-only entry: its after_ns is a regression
                # floor, not a speedup record. A slower fresh run must
                # not quietly raise the floor (that would launder the
                # regression into the next baseline).
                print(f"note: {name} measured {after_ns:.1f} ns, slower "
                      f"than its {old_after:.1f} ns floor — floor kept")
                continue
            entry["after_ns"] = round(after_ns, 1)
            if before:
                entry["speedup"] = round(before / after_ns, 2)
        args.baseline.write_text(json.dumps(baseline, indent=2,
                                            sort_keys=True) + "\n")
        print(f"updated {args.baseline} with {len(measured)} benchmarks")
        return 0

    failures = []
    missing = []
    for name, got_ns in sorted(measured.items()):
        entry = entries.get(name)
        # An entry with only before_ns still gates: the pre-overhaul
        # number is a (loose) regression floor until an --update run
        # records a fresh after_ns. Only entries with no number at all
        # are reported as missing. Each row says which kind of baseline
        # it compared against — `ratio` (a fresh after_ns measurement)
        # or `floor` (before_ns-only, the looser pre-overhaul bound) —
        # so a failing gate reads unambiguously.
        want_ns = None
        kind = "ratio"
        if entry is not None:
            want_ns = entry.get("after_ns")
            if want_ns is None:
                want_ns = entry.get("before_ns")
                kind = "floor"
        if want_ns is None:
            missing.append(name)
            continue
        ratio = got_ns / want_ns
        status = "ok"
        if ratio > 1.0 + args.tolerance:
            status = "REGRESSION"
            failures.append(name)
        print(f"{name:45s} {got_ns:12.1f} ns  {kind:5s} {want_ns:12.1f} ns  "
              f"x{ratio:5.2f}  {status}")
    for name in missing:
        print(f"{name:45s} {measured[name]:12.1f} ns  (no baseline — run "
              f"with --update)")

    stale = sorted(set(entries) - set(measured))
    for name in stale:
        print(f"{name:45s} in baseline but not measured (filter changed?)")

    if failures:
        print(f"\n{len(failures)} benchmark(s) regressed beyond "
              f"{args.tolerance:.0%}: {', '.join(failures)}", file=sys.stderr)
        return 1
    print(f"\nall {len(measured) - len(missing)} tracked benchmarks within "
          f"{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
