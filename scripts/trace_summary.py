#!/usr/bin/env python3
"""Summarize a Chrome trace_event JSON file written by --trace.

Reads the trace produced by `emoleak_cli --trace out.json` (or
live_monitor / serve_demo) and prints a per-stage wall-time breakdown —
span count, total/mean/max duration, share of traced time — plus the
top-N widest individual spans. Durations are wall time per span, so
nested and concurrent spans overlap by design; the table answers "where
did the time go per stage", not "what was the critical path".

Usage:
  scripts/trace_summary.py out.json
  scripts/trace_summary.py out.json --top 10
"""

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path


def load_events(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents", doc if isinstance(doc, list) else [])
    # Only complete events ("X") carry durations; the exporter emits
    # nothing else, but stay tolerant of hand-edited files.
    return [e for e in events if e.get("ph") == "X" and "dur" in e]


def fmt_us(us):
    if us >= 1e6:
        return f"{us / 1e6:.3f} s"
    if us >= 1e3:
        return f"{us / 1e3:.3f} ms"
    return f"{us:.1f} us"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", type=Path, help="trace_event JSON file")
    parser.add_argument("--top", type=int, default=5,
                        help="widest individual spans to list (default 5)")
    args = parser.parse_args()

    events = load_events(args.trace)
    if not events:
        print(f"{args.trace}: no complete ('X') events found", file=sys.stderr)
        return 1

    by_stage = defaultdict(list)
    for e in events:
        by_stage[e.get("name", "?")].append(float(e["dur"]))
    total_us = sum(sum(durs) for durs in by_stage.values())

    print(f"{len(events)} spans across {len(by_stage)} stages, "
          f"{fmt_us(total_us)} total traced time\n")

    header = f"{'stage':<24} {'count':>7} {'total':>12} {'mean':>12} {'max':>12} {'share':>7}"
    print(header)
    print("-" * len(header))
    for name, durs in sorted(by_stage.items(), key=lambda kv: -sum(kv[1])):
        stage_total = sum(durs)
        share = 100.0 * stage_total / total_us if total_us else 0.0
        print(f"{name:<24} {len(durs):>7} {fmt_us(stage_total):>12} "
              f"{fmt_us(stage_total / len(durs)):>12} {fmt_us(max(durs)):>12} "
              f"{share:>6.1f}%")

    widest = sorted(events, key=lambda e: -float(e["dur"]))[: args.top]
    print(f"\nTop {len(widest)} widest spans:")
    for e in widest:
        arg_str = ""
        if e.get("args"):
            arg_str = " " + " ".join(f"{k}={v}" for k, v in e["args"].items())
        print(f"  {fmt_us(float(e['dur'])):>12}  {e.get('name', '?')}"
              f" (tid {e.get('tid', '?')}){arg_str}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
