#!/usr/bin/env python3
"""Summarize a Chrome trace_event JSON file written by --trace.

Reads the trace produced by `emoleak_cli --trace out.json` (or
live_monitor / serve_demo / a remote kTraceRequest scrape) and prints a
per-stage wall-time breakdown — span count, total/mean/max duration,
share of traced time — plus the top-N widest individual spans and, when
the trace carries them, a flow-event section (the serving layer links
each admitted window's hops across threads with s/t/f flow phases) and
the exporter's ring metadata (dropped spans, per-thread occupancy).
Durations are wall time per span, so nested and concurrent spans
overlap by design; the table answers "where did the time go per
stage", not "what was the critical path".

Usage:
  scripts/trace_summary.py out.json
  scripts/trace_summary.py out.json --top 10
  scripts/trace_summary.py out.json --strict   # exit 1 on malformed or
                                               # empty traces (smoke tests)
"""

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path


def load_doc(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def fmt_us(us):
    if us >= 1e6:
        return f"{us / 1e6:.3f} s"
    if us >= 1e3:
        return f"{us / 1e3:.3f} ms"
    return f"{us:.1f} us"


def summarize_flows(events):
    """Flow ('s'/'t'/'f') events: counts per phase and linkage health."""
    phases = defaultdict(int)
    flows = defaultdict(set)  # id -> set of phases seen
    threads = defaultdict(set)  # id -> tids touched
    for e in events:
        ph = e.get("ph")
        if ph not in ("s", "t", "f"):
            continue
        phases[ph] += 1
        fid = e.get("id")
        if fid is not None:
            flows[fid].add(ph)
            threads[fid].add(e.get("tid"))
    if not phases:
        return None
    complete = sum(1 for p in flows.values() if "s" in p and "f" in p)
    cross_thread = sum(1 for t in threads.values() if len(t) > 1)
    return {
        "begins": phases.get("s", 0),
        "steps": phases.get("t", 0),
        "ends": phases.get("f", 0),
        "distinct": len(flows),
        "complete": complete,
        "cross_thread": cross_thread,
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", type=Path, help="trace_event JSON file")
    parser.add_argument("--top", type=int, default=5,
                        help="widest individual spans to list (default 5)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on malformed or empty traces "
                             "(what trace_smoke.cmake runs)")
    args = parser.parse_args()

    try:
        doc = load_doc(args.trace)
    except (OSError, json.JSONDecodeError) as err:
        print(f"{args.trace}: unreadable trace: {err}", file=sys.stderr)
        return 1

    if isinstance(doc, list):
        all_events, meta = doc, None
    elif isinstance(doc, dict):
        if args.strict and "traceEvents" not in doc:
            print(f"{args.trace}: missing traceEvents", file=sys.stderr)
            return 1
        all_events = doc.get("traceEvents", [])
        meta = doc.get("emoleakMeta")
    else:
        print(f"{args.trace}: not a trace document", file=sys.stderr)
        return 1

    # Only complete events ("X") carry durations; flow events ride
    # alongside and are summarized separately.
    events = [e for e in all_events if e.get("ph") == "X" and "dur" in e]
    if not events:
        print(f"{args.trace}: no complete ('X') events found", file=sys.stderr)
        return 1

    by_stage = defaultdict(list)
    for e in events:
        by_stage[e.get("name", "?")].append(float(e["dur"]))
    total_us = sum(sum(durs) for durs in by_stage.values())

    print(f"{len(events)} spans across {len(by_stage)} stages, "
          f"{fmt_us(total_us)} total traced time\n")

    header = f"{'stage':<24} {'count':>7} {'total':>12} {'mean':>12} {'max':>12} {'share':>7}"
    print(header)
    print("-" * len(header))
    for name, durs in sorted(by_stage.items(), key=lambda kv: -sum(kv[1])):
        stage_total = sum(durs)
        share = 100.0 * stage_total / total_us if total_us else 0.0
        print(f"{name:<24} {len(durs):>7} {fmt_us(stage_total):>12} "
              f"{fmt_us(stage_total / len(durs)):>12} {fmt_us(max(durs)):>12} "
              f"{share:>6.1f}%")

    flows = summarize_flows(all_events)
    if flows:
        print(f"\nFlows: {flows['distinct']} distinct "
              f"({flows['begins']} begin / {flows['steps']} step / "
              f"{flows['ends']} end), {flows['complete']} begin-to-end, "
              f"{flows['cross_thread']} crossing threads")

    if meta:
        dropped = meta.get("droppedSpans", 0)
        capacity = meta.get("ringCapacity", 0)
        print(f"\nSpan rings: {dropped} spans dropped by ring wrap"
              + (f" (capacity {capacity}/thread)" if capacity else ""))
        for ring in meta.get("rings", []):
            recorded = ring.get("recorded", 0)
            occupancy = (100.0 * recorded / capacity) if capacity else 0.0
            print(f"  tid {ring.get('tid', '?'):>8}: {recorded:>6} recorded "
                  f"({occupancy:5.1f}% full), {ring.get('dropped', 0)} dropped")

    widest = sorted(events, key=lambda e: -float(e["dur"]))[: args.top]
    print(f"\nTop {len(widest)} widest spans:")
    for e in widest:
        arg_str = ""
        if e.get("args"):
            arg_str = " " + " ".join(f"{k}={v}" for k, v in e["args"].items())
        print(f"  {fmt_us(float(e['dur'])):>12}  {e.get('name', '?')}"
              f" (tid {e.get('tid', '?')}){arg_str}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
