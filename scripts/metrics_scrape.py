#!/usr/bin/env python3
"""Pure-python wire client for the emoleak serving telemetry frames.

Speaks the serve protocol directly (no C++ involved), which makes it
both an operational scraper and an independent cross-check of the wire
format: if the C++ encoder and this decoder disagree, the scrape fails.

  frame   = u32le payload_len | payload
  payload = u8 msg_type | fields            (len covers the type byte)

Message types used here (appended in protocol v4):
  9  kMetricsRequest   ->   10 kMetricsReply
  11 kTraceRequest     ->   12 kTraceReply
  7  kAck              (an old server answers 9/11 with status=kError)

Usage:
  metrics_scrape.py --port 9090                    scrape, print Prometheus text
  metrics_scrape.py --port 9090 --trace out.json   also pull the span rings
  metrics_scrape.py --port 9090 --check            validate the exposition
  metrics_scrape.py --spawn ./serve_demo [--cli ./emoleak_cli] --check
      spawn `serve_demo --listen 0`, parse the ephemeral port from its
      stdout, scrape it over TCP, validate, optionally cross-check the
      C++ `emoleak_cli --scrape` output, then SIGINT the server.
      This is the `metrics_smoke` ctest entry point.
"""

import argparse
import json
import re
import signal
import socket
import struct
import subprocess
import sys
import time

MSG_ACK = 7
MSG_METRICS_REQUEST = 9
MSG_METRICS_REPLY = 10
MSG_TRACE_REQUEST = 11
MSG_TRACE_REPLY = 12

MAX_PAYLOAD = 64 * 1024 * 1024

# Prometheus exposition grammar (text format, no labels except `le`).
NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r'(?:\{le="(?P<le>[^"]*)"\})?'
    r" (?P<value>\S+)$"
)


class ScrapeError(Exception):
    pass


# ---- framing -------------------------------------------------------------


def send_frame(sock, msg_type, fields=b""):
    payload = struct.pack("<B", msg_type) + fields
    sock.sendall(struct.pack("<I", len(payload)) + payload)


def recv_exact(sock, n):
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ScrapeError("server closed the connection mid-frame")
        buf += chunk
    return buf


def recv_frame(sock):
    (length,) = struct.unpack("<I", recv_exact(sock, 4))
    if length == 0 or length > MAX_PAYLOAD:
        raise ScrapeError(f"bad frame length {length}")
    payload = recv_exact(sock, length)
    return payload[0], payload[1:]


# ---- payload decode ------------------------------------------------------


class Cursor:
    def __init__(self, data):
        self.data = data
        self.pos = 0

    def need(self, n):
        if len(self.data) - self.pos < n:
            raise ScrapeError("short payload")

    def u32(self):
        self.need(4)
        (v,) = struct.unpack_from("<I", self.data, self.pos)
        self.pos += 4
        return v

    def u64(self):
        self.need(8)
        (v,) = struct.unpack_from("<Q", self.data, self.pos)
        self.pos += 8
        return v

    def i64(self):
        v = self.u64()
        return v - (1 << 64) if v >= (1 << 63) else v

    def f64(self):
        self.need(8)
        (v,) = struct.unpack_from("<d", self.data, self.pos)
        self.pos += 8
        return v

    def str(self):
        n = self.u32()
        self.need(n)
        v = self.data[self.pos : self.pos + n].decode("utf-8", "replace")
        self.pos += n
        return v

    def expect_done(self):
        if self.pos != len(self.data):
            raise ScrapeError("trailing bytes in frame")


def decode_metrics_reply(payload):
    """MetricsReply -> {counters: {..}, gauges: {..}, histograms: {..}}."""
    c = Cursor(payload)
    counters = {}
    for _ in range(c.u32()):
        name = c.str()
        counters[name] = c.u64()
    gauges = {}
    for _ in range(c.u32()):
        name = c.str()
        gauges[name] = c.i64()
    histograms = {}
    for _ in range(c.u32()):
        name = c.str()
        total = c.f64()
        buckets = []
        count = 0
        for _ in range(c.u32()):
            upper = c.f64()
            n = c.u64()
            buckets.append((upper, n))
            count += n
        histograms[name] = {"sum": total, "count": count, "buckets": buckets}
    c.expect_done()
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def decode_trace_reply(payload):
    c = Cursor(payload)
    trace_json = c.str()
    dropped = c.u64()
    c.expect_done()
    return trace_json, dropped


def describe_ack(payload):
    c = Cursor(payload)
    status = c.data[c.pos]
    names = {0: "ok", 1: "overloaded", 2: "no-capacity", 3: "error"}
    return names.get(status, f"status {status}")


# ---- prometheus rendering (mirrors obs::prometheus_text) -----------------


def prom_name(raw):
    out = "".join(ch if re.match(r"[a-zA-Z0-9_:]", ch) else "_" for ch in raw)
    if not out:
        return "_"
    if out[0].isdigit():
        out = "_" + out
    return out


def prometheus_text(snapshot):
    lines = []
    for name, value in snapshot["counters"].items():
        p = prom_name(name)
        lines.append(f"# TYPE {p} counter")
        lines.append(f"{p} {value}")
    for name, value in snapshot["gauges"].items():
        p = prom_name(name)
        lines.append(f"# TYPE {p} gauge")
        lines.append(f"{p} {value}")
    for name, hist in snapshot["histograms"].items():
        p = prom_name(name)
        lines.append(f"# TYPE {p} histogram")
        cumulative = 0
        for upper, count in hist["buckets"]:
            cumulative += count
            lines.append(f'{p}_bucket{{le="{upper:.17g}"}} {cumulative}')
        lines.append(f'{p}_bucket{{le="+Inf"}} {hist["count"]}')
        lines.append(f'{p}_sum {hist["sum"]:.17g}')
        lines.append(f'{p}_count {hist["count"]}')
    return "\n".join(lines) + "\n" if lines else ""


def validate_exposition(text):
    """Well-formedness check on Prometheus text; returns issue list."""
    issues = []
    bucket_prev = {}
    counts = {}
    inf_buckets = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            issues.append(f"line {lineno}: empty line inside exposition")
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "TYPE" or parts[3] not in (
                "counter",
                "gauge",
                "histogram",
            ):
                issues.append(f"line {lineno}: malformed comment: {line}")
            elif not NAME_RE.match(parts[2]):
                issues.append(f"line {lineno}: bad metric name: {parts[2]}")
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            issues.append(f"line {lineno}: malformed sample: {line}")
            continue
        name, le, value = m.group("name"), m.group("le"), m.group("value")
        try:
            numeric = float(value)
        except ValueError:
            issues.append(f"line {lineno}: non-numeric value: {value}")
            continue
        if le is not None:
            if not name.endswith("_bucket"):
                issues.append(f"line {lineno}: le label on non-bucket {name}")
                continue
            base = name[: -len("_bucket")]
            if le == "+Inf":
                inf_buckets[base] = numeric
            else:
                prev = bucket_prev.get(base, -1.0)
                if numeric < prev:
                    issues.append(
                        f"line {lineno}: non-cumulative bucket in {base}"
                    )
                bucket_prev[base] = numeric
        elif name.endswith("_count"):
            counts[name[: -len("_count")]] = numeric
    for base, total in counts.items():
        if base not in inf_buckets:
            issues.append(f"histogram {base}: missing +Inf bucket")
        elif inf_buckets[base] != total:
            issues.append(
                f"histogram {base}: +Inf {inf_buckets[base]} != count {total}"
            )
        if bucket_prev.get(base, 0.0) > total:
            issues.append(f"histogram {base}: finite bucket exceeds count")
    return issues


def validate_trace(trace_json):
    """The TraceReply must carry parseable Chrome trace JSON."""
    issues = []
    try:
        doc = json.loads(trace_json)
    except json.JSONDecodeError as err:
        return [f"trace JSON does not parse: {err}"]
    if "traceEvents" not in doc:
        issues.append("trace JSON missing traceEvents")
    meta = doc.get("emoleakMeta")
    if not isinstance(meta, dict) or "droppedSpans" not in meta:
        issues.append("trace JSON missing emoleakMeta.droppedSpans")
    return issues


# ---- scrape --------------------------------------------------------------


def scrape(host, port, want_trace, timeout_s=10.0):
    with socket.create_connection((host, port), timeout=timeout_s) as sock:
        send_frame(sock, MSG_METRICS_REQUEST)
        msg_type, payload = recv_frame(sock)
        if msg_type == MSG_ACK:
            raise ScrapeError(
                f"server acked metrics request with {describe_ack(payload)} "
                "(pre-telemetry server?)"
            )
        if msg_type != MSG_METRICS_REPLY:
            raise ScrapeError(f"unexpected reply type {msg_type}")
        snapshot = decode_metrics_reply(payload)

        trace = None
        if want_trace:
            send_frame(sock, MSG_TRACE_REQUEST)
            msg_type, payload = recv_frame(sock)
            if msg_type != MSG_TRACE_REPLY:
                raise ScrapeError(f"unexpected trace reply type {msg_type}")
            trace = decode_trace_reply(payload)
        return snapshot, trace


# ---- spawn mode (the metrics_smoke ctest body) ---------------------------


def spawn_and_scrape(opts):
    proc = subprocess.Popen(
        [opts.spawn, "--listen", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    port = None
    try:
        deadline = time.monotonic() + opts.spawn_timeout
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if not line:
                raise ScrapeError("server exited before listening")
            m = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
            if m:
                port = int(m.group(1))
                break
        if port is None:
            raise ScrapeError("timed out waiting for the listening line")

        snapshot, trace = scrape("127.0.0.1", port, want_trace=True)
        text = prometheus_text(snapshot)
        issues = validate_exposition(text) if opts.check else []
        if not snapshot["counters"] and not snapshot["histograms"]:
            issues.append("scrape returned an empty registry")
        for raw in ("serve.requests", "net.connections_accepted"):
            if raw not in snapshot["counters"]:
                issues.append(f"scrape missing expected counter {raw}")
        if trace is not None:
            issues.extend(validate_trace(trace[0]))

        if opts.cli:
            cli = subprocess.run(
                [opts.cli, "--scrape", f"127.0.0.1:{port}"],
                capture_output=True,
                text=True,
                timeout=opts.spawn_timeout,
            )
            if cli.returncode != 0:
                issues.append(
                    f"emoleak_cli --scrape exited {cli.returncode}: "
                    f"{cli.stderr.strip()}"
                )
            else:
                issues.extend(
                    f"cli exposition: {i}"
                    for i in validate_exposition(cli.stdout)
                )

        if issues:
            for issue in issues:
                print(f"FAIL: {issue}", file=sys.stderr)
            return 1
        print(
            f"scraped {len(snapshot['counters'])} counters, "
            f"{len(snapshot['gauges'])} gauges, "
            f"{len(snapshot['histograms'])} histograms from a live server"
        )
        return 0
    finally:
        proc.send_signal(signal.SIGINT)
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, help="scrape a running server")
    parser.add_argument(
        "--trace", metavar="PATH", help="also pull the trace rings to PATH"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate the exposition instead of trusting it",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the raw snapshot as JSON"
    )
    parser.add_argument(
        "--spawn", metavar="SERVE_DEMO", help="spawn this server binary first"
    )
    parser.add_argument(
        "--cli", metavar="EMOLEAK_CLI", help="cross-check the C++ scraper too"
    )
    parser.add_argument("--spawn-timeout", type=float, default=120.0)
    opts = parser.parse_args()

    try:
        if opts.spawn:
            return spawn_and_scrape(opts)
        if opts.port is None:
            parser.error("need --port or --spawn")
        snapshot, trace = scrape(opts.host, opts.port, opts.trace is not None)
        if opts.trace:
            trace_json, dropped = trace
            with open(opts.trace, "w") as f:
                f.write(trace_json)
            print(
                f"wrote server trace to {opts.trace} "
                f"({dropped} spans dropped by ring wrap)",
                file=sys.stderr,
            )
            issues = validate_trace(trace_json)
            if issues:
                for issue in issues:
                    print(f"FAIL: {issue}", file=sys.stderr)
                return 1
        text = prometheus_text(snapshot)
        if opts.check:
            issues = validate_exposition(text)
            if issues:
                for issue in issues:
                    print(f"FAIL: {issue}", file=sys.stderr)
                return 1
        if opts.json:
            printable = dict(snapshot)
            printable["histograms"] = {
                k: {"count": v["count"], "sum": v["sum"]}
                for k, v in snapshot["histograms"].items()
            }
            print(json.dumps(printable, indent=2))
        else:
            sys.stdout.write(text)
        return 0
    except (ScrapeError, OSError) as err:
        print(f"metrics_scrape: {err}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
