// Tests for evaluation utilities (ml/eval.h).
#include "ml/eval.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ml/logistic.h"
#include "util/error.h"
#include "util/rng.h"

namespace {

using emoleak::ml::ConfusionMatrix;
using emoleak::ml::cross_validate;
using emoleak::ml::Dataset;
using emoleak::ml::evaluate_holdout;
using emoleak::ml::evaluate_split;
using emoleak::ml::LogisticRegression;
using emoleak::util::Rng;

Dataset blobs(std::size_t per_class, int classes, double spread,
              std::uint64_t seed) {
  Rng rng{seed};
  Dataset d;
  d.class_count = classes;
  for (int c = 0; c < classes; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      d.x.push_back({2.5 * c + spread * rng.normal(),
                     -1.5 * c + spread * rng.normal()});
      d.y.push_back(c);
    }
  }
  return d;
}

TEST(ConfusionMatrixTest, CountsAndAccuracy) {
  ConfusionMatrix cm{2};
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 1);
  EXPECT_EQ(cm.total(), 4u);
  EXPECT_EQ(cm.count(0, 0), 2u);
  EXPECT_EQ(cm.count(0, 1), 1u);
  EXPECT_NEAR(cm.accuracy(), 0.75, 1e-12);
}

TEST(ConfusionMatrixTest, RecallAndPrecision) {
  ConfusionMatrix cm{2};
  // Class 0: 3 true, 2 recalled. Class 1: 2 true, 2 recalled.
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 1);
  cm.add(1, 1);
  const auto recall = cm.recall();
  EXPECT_NEAR(recall[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(recall[1], 1.0, 1e-12);
  const auto precision = cm.precision();
  EXPECT_NEAR(precision[0], 1.0, 1e-12);
  EXPECT_NEAR(precision[1], 2.0 / 3.0, 1e-12);
}

TEST(ConfusionMatrixTest, MacroF1PerfectClassifier) {
  ConfusionMatrix cm{3};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 5; ++i) cm.add(c, c);
  }
  EXPECT_NEAR(cm.macro_f1(), 1.0, 1e-12);
  EXPECT_NEAR(cm.accuracy(), 1.0, 1e-12);
}

TEST(ConfusionMatrixTest, MergeAddsCounts) {
  ConfusionMatrix a{2}, b{2};
  a.add(0, 0);
  b.add(0, 1);
  b.add(1, 1);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.count(0, 1), 1u);
}

TEST(ConfusionMatrixTest, MergeDimensionMismatchThrows) {
  ConfusionMatrix a{2}, b{3};
  EXPECT_THROW(a.merge(b), emoleak::util::DataError);
}

TEST(ConfusionMatrixTest, OutOfRangeThrows) {
  ConfusionMatrix cm{2};
  EXPECT_THROW(cm.add(2, 0), emoleak::util::DataError);
  EXPECT_THROW(cm.add(0, -1), emoleak::util::DataError);
  EXPECT_THROW((void)cm.count(5, 0), emoleak::util::DataError);
  EXPECT_THROW(ConfusionMatrix{0}, emoleak::util::DataError);
}

TEST(ConfusionMatrixTest, EmptyAccuracyIsZero) {
  EXPECT_DOUBLE_EQ(ConfusionMatrix{3}.accuracy(), 0.0);
}

TEST(EvaluateHoldoutTest, PerfectOnSeparableData) {
  const Dataset train = blobs(50, 3, 0.2, 1);
  const Dataset test = blobs(20, 3, 0.2, 2);
  LogisticRegression model;
  const auto result = evaluate_holdout(model, train, test);
  EXPECT_GT(result.accuracy, 0.97);
  EXPECT_EQ(result.confusion.total(), test.size());
}

TEST(EvaluateHoldoutTest, ClassMismatchThrows) {
  Dataset train = blobs(10, 2, 0.5, 3);
  Dataset test = blobs(10, 3, 0.5, 4);
  LogisticRegression model;
  EXPECT_THROW((void)evaluate_holdout(model, train, test),
               emoleak::util::DataError);
}

TEST(EvaluateSplitTest, EvaluatesOnTwentyPercent) {
  const Dataset d = blobs(50, 2, 0.3, 5);
  const auto result = evaluate_split(LogisticRegression{}, d, 0.8, 7);
  EXPECT_NEAR(static_cast<double>(result.confusion.total()), 20.0, 3.0);
  EXPECT_GT(result.accuracy, 0.9);
}

TEST(EvaluateSplitTest, DeterministicGivenSeed) {
  const Dataset d = blobs(40, 3, 1.0, 6);
  const auto a = evaluate_split(LogisticRegression{}, d, 0.8, 9);
  const auto b = evaluate_split(LogisticRegression{}, d, 0.8, 9);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
}

TEST(CrossValidateTest, PoolsEverySampleExactlyOnce) {
  const Dataset d = blobs(30, 3, 0.4, 7);
  const auto result = cross_validate(LogisticRegression{}, d, 10, 11);
  EXPECT_EQ(result.confusion.total(), d.size());
  EXPECT_GT(result.accuracy, 0.9);
}

TEST(CrossValidateTest, WorksWithSmallK) {
  const Dataset d = blobs(20, 2, 0.4, 8);
  const auto result = cross_validate(LogisticRegression{}, d, 2, 12);
  EXPECT_EQ(result.confusion.total(), d.size());
}

TEST(CrossValidateTest, HarderDataLowerAccuracy) {
  const Dataset easy = blobs(40, 3, 0.2, 9);
  const Dataset hard = blobs(40, 3, 2.5, 9);
  const auto e = cross_validate(LogisticRegression{}, easy, 5, 13);
  const auto h = cross_validate(LogisticRegression{}, hard, 5, 13);
  EXPECT_GT(e.accuracy, h.accuracy);
}

// Property: CV accuracy is well-calibrated (between chance and 1) for
// multiple fold counts.
class CvSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CvSweep, AccuracyInSaneRange) {
  const Dataset d = blobs(25, 4, 0.8, 10);
  const auto result = cross_validate(LogisticRegression{}, d, GetParam(), 14);
  EXPECT_GT(result.accuracy, 0.25);
  EXPECT_LE(result.accuracy, 1.0);
  EXPECT_EQ(result.confusion.total(), d.size());
}

INSTANTIATE_TEST_SUITE_P(Folds, CvSweep, ::testing::Values(2, 3, 5, 10));

}  // namespace
