// Tests for recording sessions (phone/recorder.h).
#include "phone/recorder.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/stats.h"
#include "util/error.h"

namespace {

using emoleak::audio::Corpus;
using emoleak::audio::scaled_spec;
using emoleak::audio::tess_spec;
using emoleak::phone::oneplus_7t;
using emoleak::phone::Posture;
using emoleak::phone::record_session;
using emoleak::phone::RecorderConfig;
using emoleak::phone::Recording;
using emoleak::phone::SpeakerKind;

Corpus small_corpus(std::uint64_t seed = 5) {
  return Corpus{scaled_spec(tess_spec(), 0.02), seed};  // 2x7x4 = 56
}

TEST(RecorderConfigTest, Validation) {
  RecorderConfig c;
  c.gap_mean_s = -1.0;
  EXPECT_THROW(c.validate(), emoleak::util::ConfigError);
  c = RecorderConfig{};
  c.gap_jitter_s = c.gap_mean_s + 1.0;
  EXPECT_THROW(c.validate(), emoleak::util::ConfigError);
}

TEST(RecorderTest, ScheduleCoversAllUtterances) {
  const Corpus corpus = small_corpus();
  const Recording rec = record_session(corpus, oneplus_7t(), RecorderConfig{});
  EXPECT_EQ(rec.schedule.size(), corpus.size());
}

TEST(RecorderTest, ScheduleIsMonotoneAndInBounds) {
  const Corpus corpus = small_corpus();
  const Recording rec = record_session(corpus, oneplus_7t(), RecorderConfig{});
  std::size_t prev_end = 0;
  for (const auto& s : rec.schedule) {
    EXPECT_LE(prev_end, s.start_sample);
    EXPECT_LT(s.start_sample, s.end_sample);
    EXPECT_LE(s.end_sample, rec.accel.size());
    prev_end = s.end_sample;
  }
}

TEST(RecorderTest, GroupsByEmotion) {
  const Corpus corpus = small_corpus();
  RecorderConfig cfg;
  cfg.group_by_emotion = true;
  const Recording rec = record_session(corpus, oneplus_7t(), cfg);
  // Emotion sequence in the schedule must be non-decreasing blocks.
  int prev = -1;
  int blocks = 0;
  for (const auto& s : rec.schedule) {
    const int e = static_cast<int>(s.emotion);
    if (e != prev) {
      ++blocks;
      prev = e;
    }
  }
  EXPECT_EQ(blocks, 7);  // one contiguous block per emotion
}

TEST(RecorderTest, RateMatchesProfile) {
  const Corpus corpus = small_corpus();
  const Recording rec = record_session(corpus, oneplus_7t(), RecorderConfig{});
  EXPECT_DOUBLE_EQ(rec.rate_hz, oneplus_7t().accel_rate_hz);
}

TEST(RecorderTest, GravityPresent) {
  const Corpus corpus = small_corpus();
  const Recording rec = record_session(corpus, oneplus_7t(), RecorderConfig{});
  EXPECT_NEAR(emoleak::dsp::mean(rec.accel), 9.81, 0.1);
}

TEST(RecorderTest, DeterministicGivenSeed) {
  const Corpus corpus = small_corpus();
  RecorderConfig cfg;
  cfg.seed = 11;
  const Recording a = record_session(corpus, oneplus_7t(), cfg);
  const Recording b = record_session(corpus, oneplus_7t(), cfg);
  ASSERT_EQ(a.accel.size(), b.accel.size());
  for (std::size_t i = 0; i < a.accel.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.accel[i], b.accel[i]);
  }
}

TEST(RecorderTest, UtteranceRegionsCarryVibration) {
  const Corpus corpus = small_corpus();
  const Recording rec = record_session(corpus, oneplus_7t(), RecorderConfig{});
  // Variance inside scheduled utterances must exceed variance in gaps.
  double in_var = 0.0;
  std::size_t in_n = 0;
  for (const auto& s : rec.schedule) {
    for (std::size_t i = s.start_sample; i < s.end_sample; ++i) {
      const double d = rec.accel[i] - 9.81;
      in_var += d * d;
      ++in_n;
    }
  }
  in_var /= static_cast<double>(in_n);
  // First gap (before any utterance).
  double gap_var = 0.0;
  const std::size_t gap_end = rec.schedule.front().start_sample;
  for (std::size_t i = 0; i < gap_end; ++i) {
    const double d = rec.accel[i] - 9.81;
    gap_var += d * d;
  }
  gap_var /= static_cast<double>(gap_end);
  EXPECT_GT(in_var, 10.0 * gap_var);
}

TEST(RecorderTest, HandheldAddsLowFrequencyMotion) {
  const Corpus corpus = small_corpus();
  RecorderConfig table;
  table.posture = Posture::kTableTop;
  RecorderConfig hand;
  hand.posture = Posture::kHandheld;
  const Recording t = record_session(corpus, oneplus_7t(), table);
  const Recording h = record_session(corpus, oneplus_7t(), hand);
  // Compare variance in the leading gap (no playback): handheld must be
  // noisier.
  const std::size_t n = std::min(t.schedule.front().start_sample,
                                 h.schedule.front().start_sample);
  double tv = 0.0, hv = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    tv += (t.accel[i] - 9.81) * (t.accel[i] - 9.81);
    hv += (h.accel[i] - 9.81) * (h.accel[i] - 9.81);
  }
  EXPECT_GT(hv, 3.0 * tv);
}

TEST(RecorderTest, SubsetRecordingRespectsIndices) {
  const Corpus corpus = small_corpus();
  std::vector<std::size_t> subset{0, 5, 10};
  const Recording rec =
      record_session(corpus, subset, oneplus_7t(), RecorderConfig{});
  EXPECT_EQ(rec.schedule.size(), 3u);
}

TEST(RecorderTest, EarSpeakerQuieterThanLoudspeaker) {
  const Corpus corpus = small_corpus();
  RecorderConfig loud;
  loud.speaker = SpeakerKind::kLoudspeaker;
  RecorderConfig ear;
  ear.speaker = SpeakerKind::kEarSpeaker;
  const Recording l = record_session(corpus, oneplus_7t(), loud);
  const Recording e = record_session(corpus, oneplus_7t(), ear);
  double lv = 0.0, ev = 0.0;
  for (const auto& s : l.schedule) {
    for (std::size_t i = s.start_sample; i < s.end_sample; ++i) {
      lv += (l.accel[i] - 9.81) * (l.accel[i] - 9.81);
    }
  }
  for (const auto& s : e.schedule) {
    for (std::size_t i = s.start_sample; i < s.end_sample; ++i) {
      ev += (e.accel[i] - 9.81) * (e.accel[i] - 9.81);
    }
  }
  EXPECT_GT(lv, ev);
}

}  // namespace
