// Tests for the online streaming attack (core/streaming.h).
#include "core/streaming.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "audio/corpus.h"
#include "core/attack.h"
#include "ml/logistic.h"
#include "phone/recorder.h"
#include "util/error.h"
#include "util/rng.h"

namespace {

using namespace emoleak;
using core::StreamingAttack;
using core::StreamingConfig;

std::vector<double> trace_with_bursts(
    std::size_t n, double rate,
    const std::vector<std::pair<std::size_t, std::size_t>>& bursts,
    std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<double> x(n, 9.81);
  for (std::size_t i = 0; i < n; ++i) x[i] += 0.003 * rng.normal();
  for (const auto& [lo, hi] : bursts) {
    for (std::size_t i = lo; i < hi && i < n; ++i) {
      x[i] += 0.1 * std::sin(2.0 * std::numbers::pi * 100.0 *
                             static_cast<double>(i) / rate);
    }
  }
  return x;
}

StreamingConfig default_config() {
  StreamingConfig cfg;
  cfg.detector = core::tabletop_detector_config();
  return cfg;
}

TEST(StreamingConfigTest, Validation) {
  StreamingConfig cfg = default_config();
  cfg.noise_window_s = 0.0;
  EXPECT_THROW(cfg.validate(), util::ConfigError);
  cfg = default_config();
  cfg.max_region_s = 0.01;
  EXPECT_THROW(cfg.validate(), util::ConfigError);
  cfg = default_config();
  cfg.history_s = 1.0;
  EXPECT_THROW(cfg.validate(), util::ConfigError);
}

TEST(StreamingConfigTest, RejectsZeroGapAndMinRegion) {
  // The incremental detector closes regions by counting sub-threshold
  // samples, so zero-length gap/min-region windows are meaningless for
  // it (the offline detector tolerates them).
  StreamingConfig cfg = default_config();
  cfg.detector.merge_gap_s = 0.0;
  EXPECT_THROW(cfg.validate(), util::ConfigError);
  cfg = default_config();
  cfg.detector.min_region_s = 0.0;
  EXPECT_THROW(cfg.validate(), util::ConfigError);
}

TEST(StreamingTest, LowRateBurstYieldsSingleEvent) {
  // Regression: at very low sample rates, seconds * rate truncated
  // gap_samples_ to 0, so `below_count_ >= gap_samples_` held on every
  // in-region sample and a single burst shattered into an event per
  // sample. The counts must clamp to at least one sample.
  const double rate = 2.0;  // merge_gap_s = 0.2 -> 0.4 samples pre-fix
  StreamingConfig cfg;
  cfg.detector.detection_highpass_hz = 0.0;
  cfg.detector.envelope_window_s = 0.5;
  cfg.detector.min_ratio = 3.0;
  cfg.detector.pad_s = 0.0;
  cfg.noise_window_s = 8.0;
  cfg.max_region_s = 30.0;
  cfg.history_s = 30.0;

  // Constant gravity outside the burst: the detection-domain envelope is
  // exactly zero there, so the only activity is the burst itself.
  std::vector<double> x(64, 9.81);
  for (std::size_t i = 24; i < 34; ++i) {
    x[i] += (i % 2 == 0 ? -1.0 : 1.0);  // alternating so DC stays put
  }

  StreamingAttack attack{cfg, rate, nullptr};
  auto events = attack.push(x);
  if (auto last = attack.finish()) events.push_back(*last);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NEAR(static_cast<double>(events[0].start_sample), 24.0, 2.0);
  EXPECT_GT(events[0].end_sample, events[0].start_sample);
  EXPECT_LE(events[0].end_sample, attack.samples_seen());
}

/// Always-confident two-class stub; a classified event would carry
/// predicted_class == 1, so predicted_class == -1 proves the streaming
/// attack declined to classify.
class StubClassifier final : public ml::Classifier {
 public:
  void fit(const ml::Dataset&) override {}
  [[nodiscard]] int predict(std::span<const double>) const override {
    return 1;
  }
  [[nodiscard]] std::vector<double> predict_proba(
      std::span<const double>) const override {
    return {0.1, 0.9};
  }
  [[nodiscard]] std::unique_ptr<ml::Classifier> clone() const override {
    return std::make_unique<StubClassifier>();
  }
  [[nodiscard]] std::string name() const override { return "stub"; }
};

TEST(StreamingTest, EvictedHistoryYieldsUnclassifiedEvent) {
  // Regression guard for the raw-history slice in close_region: when a
  // force-closed region has (partly) slid out of the bounded raw
  // history, the slice bounds clamp to the retained window and the
  // event is emitted unclassified instead of wrapping the unsigned
  // subtraction and slicing garbage.
  const double rate = 1.0;
  StreamingConfig cfg;
  cfg.detector.detection_highpass_hz = 0.0;
  cfg.detector.envelope_window_s = 1.0;
  cfg.detector.min_ratio = 3.0;
  cfg.detector.min_region_s = 1.0;
  cfg.detector.merge_gap_s = 2.0;
  cfg.detector.pad_s = 0.0;
  cfg.noise_window_s = 8.0;
  cfg.max_region_s = 4.0;   // force-close after 4 samples...
  cfg.history_s = 4.0;      // ...with only 4 samples of history

  std::vector<double> x(24, 9.81);
  for (std::size_t i = 12; i < x.size(); ++i) {
    x[i] += (i % 2 == 0 ? -1.0 : 1.0);  // burst to the end of the stream
  }

  StreamingAttack attack{cfg, rate, std::make_shared<StubClassifier>()};
  auto events = attack.push(x);
  if (auto last = attack.finish()) events.push_back(*last);
  ASSERT_GE(events.size(), 1u);
  for (const auto& e : events) {
    EXPECT_EQ(e.predicted_class, -1);  // history evicted -> no features
    EXPECT_TRUE(e.probabilities.empty());
    EXPECT_LT(e.start_sample, e.end_sample);
    EXPECT_LE(e.end_sample, attack.samples_seen());
  }
}

TEST(StreamingTest, DetectsBurstsWithoutClassifier) {
  const double rate = 420.0;
  const auto x = trace_with_bursts(
      25200, rate, {{8000, 8700}, {13000, 13800}, {20000, 20600}}, 1);
  StreamingAttack attack{default_config(), rate, nullptr};
  const auto events = attack.push(x);
  EXPECT_EQ(events.size(), 3u);
  for (const auto& e : events) {
    EXPECT_EQ(e.predicted_class, -1);  // detection-only mode
    EXPECT_LT(e.start_sample, e.end_sample);
  }
  EXPECT_NEAR(static_cast<double>(events[0].start_sample), 8000.0, 120.0);
}

TEST(StreamingTest, ChunkSizeDoesNotChangeEvents) {
  const double rate = 420.0;
  const auto x =
      trace_with_bursts(16800, rate, {{8000, 8700}, {12000, 12800}}, 2);
  StreamingAttack whole{default_config(), rate, nullptr};
  const auto all = whole.push(x);

  StreamingAttack chunked{default_config(), rate, nullptr};
  std::vector<core::EmotionEvent> collected;
  for (std::size_t i = 0; i < x.size(); i += 97) {
    const std::size_t hi = std::min(i + 97, x.size());
    const auto events = chunked.push(
        std::span<const double>{x.data() + i, hi - i});
    collected.insert(collected.end(), events.begin(), events.end());
  }
  ASSERT_EQ(collected.size(), all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(collected[i].start_sample, all[i].start_sample);
    EXPECT_EQ(collected[i].end_sample, all[i].end_sample);
  }
}

TEST(StreamingTest, FinishFlushesOpenRegion) {
  const double rate = 420.0;
  // Burst extends to the end of the stream.
  const auto x = trace_with_bursts(12600, rate, {{12000, 12600}}, 3);
  StreamingAttack attack{default_config(), rate, nullptr};
  const auto during = attack.push(x);
  EXPECT_TRUE(during.empty());
  const auto final_event = attack.finish();
  ASSERT_TRUE(final_event.has_value());
  EXPECT_NEAR(static_cast<double>(final_event->start_sample), 12000.0, 120.0);
}

TEST(StreamingTest, SilenceEmitsNothing) {
  const auto x = trace_with_bursts(21000, 420.0, {}, 4);
  StreamingAttack attack{default_config(), 420.0, nullptr};
  EXPECT_TRUE(attack.push(x).empty());
  EXPECT_FALSE(attack.finish().has_value());
  EXPECT_EQ(attack.samples_seen(), x.size());
}

TEST(StreamingTest, ForceClosesPathologicalRegions) {
  StreamingConfig cfg = default_config();
  cfg.max_region_s = 2.0;
  const double rate = 420.0;
  // 20-second continuous tone: must be chopped, not buffered forever.
  const auto x = trace_with_bursts(12600, rate, {{4200, 12600}}, 5);
  StreamingAttack attack{cfg, rate, nullptr};
  const auto events = attack.push(x);
  EXPECT_GE(events.size(), 2u);
  for (const auto& e : events) {
    EXPECT_LE(e.end_sample - e.start_sample,
              static_cast<std::size_t>(2.5 * rate));
  }
}

TEST(StreamingTest, ClassifiesEmotionsOnline) {
  // Train offline on a captured session, then stream a fresh recording
  // through the online pipeline and require above-chance accuracy.
  core::ScenarioConfig train_sc = core::loudspeaker_scenario(
      audio::tess_spec(), phone::oneplus_7t(), 60);
  train_sc.corpus_fraction = 0.1;
  const core::ExtractedData train = core::capture(train_sc);
  auto model = std::make_shared<ml::LogisticRegression>();
  model->fit(train.features);

  const audio::Corpus corpus{audio::scaled_spec(audio::tess_spec(), 0.04), 61};
  phone::RecorderConfig rc;
  rc.seed = 61;
  const phone::Recording rec =
      record_session(corpus, phone::oneplus_7t(), rc);

  StreamingAttack attack{default_config(), rec.rate_hz, model};
  std::vector<core::EmotionEvent> events;
  for (std::size_t i = 0; i < rec.accel.size(); i += 512) {
    const std::size_t hi = std::min(i + 512, rec.accel.size());
    auto chunk = attack.push(
        std::span<const double>{rec.accel.data() + i, hi - i});
    events.insert(events.end(), chunk.begin(), chunk.end());
  }
  if (auto last = attack.finish()) events.push_back(*last);

  ASSERT_GT(events.size(), 20u);
  // Match events to the schedule and score.
  std::size_t correct = 0;
  std::size_t scored = 0;
  for (const auto& e : events) {
    if (e.predicted_class < 0) continue;
    for (const auto& s : rec.schedule) {
      const std::size_t lo = std::max(e.start_sample, s.start_sample);
      const std::size_t hi = std::min(e.end_sample, s.end_sample);
      if (hi > lo && hi - lo > (e.end_sample - e.start_sample) / 2) {
        ++scored;
        int truth = 0;
        for (std::size_t c = 0; c < rec.dataset.emotions.size(); ++c) {
          if (rec.dataset.emotions[c] == s.emotion) truth = static_cast<int>(c);
        }
        if (truth == e.predicted_class) ++correct;
        break;
      }
    }
  }
  ASSERT_GT(scored, 20u);
  const double accuracy =
      static_cast<double>(correct) / static_cast<double>(scored);
  EXPECT_GT(accuracy, 0.4);  // far above the 14.3% random guess
}

TEST(StreamingTest, ResetReproducesFreshInstanceBitForBit) {
  // reset() is what lets serve::SessionManager recycle sessions across
  // streams: after a full run (filters warmed, histories populated, a
  // region left open at finish), a reset instance must emit exactly the
  // events a newly constructed one does.
  const double rate = 420.0;
  const auto x = trace_with_bursts(
      25200, rate, {{8000, 8700}, {13000, 13800}, {24800, 25200}}, 6);

  StreamingAttack fresh{default_config(), rate, nullptr};
  StreamingAttack reused{default_config(), rate, nullptr};

  // Dirty `reused` with a different trace first (open region at the
  // end, so finish() flushes state too), then reset.
  const auto other = trace_with_bursts(16800, rate, {{9000, 16800}}, 7);
  (void)reused.push(other);
  (void)reused.finish();
  reused.reset();
  EXPECT_EQ(reused.samples_seen(), 0u);
  EXPECT_EQ(reused.events_emitted(), 0u);

  std::vector<std::vector<core::EmotionEvent>> runs;
  for (StreamingAttack* attack : {&fresh, &reused}) {
    std::vector<core::EmotionEvent> events;
    for (std::size_t i = 0; i < x.size(); i += 97) {
      const std::size_t hi = std::min(i + 97, x.size());
      const auto chunk = attack->push(
          std::span<const double>{x.data() + i, hi - i});
      events.insert(events.end(), chunk.begin(), chunk.end());
    }
    if (auto last = attack->finish()) events.push_back(*last);
    runs.push_back(std::move(events));
  }
  ASSERT_GE(runs[0].size(), 3u);
  ASSERT_EQ(runs[0].size(), runs[1].size());
  for (std::size_t i = 0; i < runs[0].size(); ++i) {
    EXPECT_EQ(runs[0][i].start_sample, runs[1][i].start_sample);
    EXPECT_EQ(runs[0][i].end_sample, runs[1][i].end_sample);
  }

  // A second reset replays the exact same stream again.
  reused.reset();
  std::vector<core::EmotionEvent> replay = reused.push(x);
  if (auto last = reused.finish()) replay.push_back(*last);
  ASSERT_EQ(replay.size(), runs[1].size());
  for (std::size_t i = 0; i < replay.size(); ++i) {
    EXPECT_EQ(replay[i].start_sample, runs[1][i].start_sample);
    EXPECT_EQ(replay[i].end_sample, runs[1][i].end_sample);
  }
}

}  // namespace
