// Tests for the deterministic RNG (util/rng.h).
#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace {

using emoleak::util::Rng;
using emoleak::util::SplitMix64;

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a{1234};
  SplitMix64 b{1234};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a{1};
  SplitMix64 b{2};
  EXPECT_NE(a.next(), b.next());
}

TEST(RngTest, SameSeedSameStream) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng a{42};
  Rng b{43};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 2.5);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.5);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng{11};
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng{13};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_int(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng{13};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntZeroThrows) {
  Rng rng{1};
  EXPECT_THROW((void)rng.uniform_int(0), std::invalid_argument);
}

TEST(RngTest, UniformIntIsApproximatelyUnbiased) {
  Rng rng{17};
  const int buckets = 5;
  std::vector<int> counts(buckets, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(buckets)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 1.0 / buckets, 0.01);
  }
}

TEST(RngTest, NormalMomentsMatchStandardNormal) {
  Rng rng{19};
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalWithParamsShiftsAndScales) {
  Rng rng{23};
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, NormalClampedStaysInBounds) {
  Rng rng{29};
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.normal_clamped(0.0, 10.0, -1.0, 1.0);
    EXPECT_GE(x, -1.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(RngTest, BernoulliFrequencyMatchesProbability) {
  Rng rng{31};
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng{37};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng{41};
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleActuallyShuffles) {
  Rng rng{43};
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent{47};
  Rng child1 = parent.fork(1);
  Rng child2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.next() == child2.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a{47};
  Rng b{47};
  Rng ca = a.fork(5);
  Rng cb = b.fork(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next(), cb.next());
}

// Property sweep: statistical sanity across many seeds.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformMeanNearHalf) {
  Rng rng{GetParam()};
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST_P(RngSeedSweep, NormalVarianceNearOne) {
  Rng rng{GetParam()};
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum_sq / n, 1.0, 0.06);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 1337ULL,
                                           0xDEADBEEFULL, 0xFFFFFFFFFFFFFFFFULL));

}  // namespace
